#!/usr/bin/env python3
"""Quickstart: profile a workload with TMP and read its statistics.

Builds the scaled simulated machine, attaches the GUPS workload
(uniform random updates — the TLB- and cache-hostile extreme of the
paper's Table III), runs five one-second epochs under the TMP profiler,
and prints what the profiler saw: per-epoch detection counts, the final
hotness ranking's head, the daemon's summary statistics, and the
extended /proc numa_maps view of one process.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Machine, MachineConfig, TMPConfig, TMPDaemon, TMProfiler
from repro.workloads import make_workload

EPOCHS = 5


def main() -> None:
    # The scaled testbed: the paper's Ryzen 3600X machine with every
    # capacity (TLB reach, caches, sampling period, clock) shrunk by
    # the same ~64x factor as the workload footprints.
    machine = Machine(MachineConfig.scaled())

    workload = make_workload("gups")
    workload.attach(machine)

    profiler = TMProfiler(machine, TMPConfig())
    daemon = TMPDaemon(profiler)
    daemon.add_workload(workload)

    rng = np.random.default_rng(0)
    print(f"profiling {workload.name!r}: {workload.footprint_pages} pages, "
          f"{workload.n_processes} processes\n")
    for epoch in range(EPOCHS):
        batch = workload.epoch(epoch, rng)
        result = machine.run_batch(batch)
        profiler.observe_batch(batch, result)
        report = daemon.poll_epoch()
        print(
            f"epoch {epoch}: {batch.n:7d} accesses | "
            f"A-bit pages {report.abit_pages_found:6d} | "
            f"trace samples {report.trace_samples:5d} | "
            f"tracked PIDs {len(report.tracked_pids)} | "
            f"overhead {report.overhead.total_s * 1e3:6.2f} ms"
        )

    # The profiler-policy interface: one rank per page, hottest first.
    rank = profiler.reports[-1].rank()
    hottest = np.argsort(rank)[::-1][:5]
    print("\nhottest pages (PFN: rank):")
    for pfn in hottest:
        print(f"  {int(pfn):#8x}: {rank[pfn]:.0f}")

    print("\ndaemon statistics:")
    for key, value in daemon.statistics().items():
        print(f"  {key}: {value}")

    pid = workload.pids[0]
    print(f"\nextended numa_maps for pid {pid}:")
    print(daemon.numa_maps([pid]))


if __name__ == "__main__":
    main()
