#!/usr/bin/env python3
"""Parallel Fig. 6 sweep with the content-addressed run cache.

Runs the paper's headline experiment for two workloads twice through
``repro.runner``: the first pass records on a process pool and
populates the cache, the second pass scores the identical grid without
a single machine simulation.  Prints both grids (they are
bit-identical) and the runner's per-stage timing summary — the same
numbers the benchmark suite persists to ``BENCH_runner.json`` /
``BENCH_suite.json``.

Run:  python examples/parallel_sweep.py
      REPRO_JOBS=8 python examples/parallel_sweep.py   # wider fan-out
"""

import json
import os
import tempfile
import time

from repro.analysis import format_series
from repro.analysis.hitrate import fig6_sweep
from repro.runner import RunCache, RunnerMetrics

WORKLOADS = ["web-serving", "graph500"]
RATIOS = (1 / 8, 1 / 16, 1 / 32)
JOBS = int(os.environ.get("REPRO_JOBS", 0) or (os.cpu_count() or 1))


def sweep(cache: RunCache, label: str):
    metrics = RunnerMetrics(jobs=JOBS)
    t0 = time.perf_counter()
    points = fig6_sweep(
        WORKLOADS,
        epochs=4,
        ratios=RATIOS,
        jobs=JOBS,
        cache=cache,
        metrics=metrics,
    )
    elapsed = time.perf_counter() - t0
    recorded = sum(
        1 for ev in metrics.events if ev.stage == "record" and not ev.cached
    )
    cached = sum(
        1 for ev in metrics.events if ev.stage == "record" and ev.cached
    )
    print(
        f"[{label}] {elapsed:.2f}s with jobs={JOBS}: "
        f"{recorded} recorded, {cached} from cache, "
        f"{len(points)} grid cells"
    )
    return points, metrics


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-runcache-") as cache_dir:
        cache = RunCache(cache_dir)

        cold_points, _ = sweep(cache, "cold cache")
        warm_points, metrics = sweep(cache, "warm cache")
        assert cold_points == warm_points, "cache changed the results!"

        labels = [f"1/{int(round(1 / r))}" for r in RATIOS]
        for name in WORKLOADS:
            print(f"\nFig. 6 grid for {name}:")
            for policy in ("oracle", "history"):
                for source in ("abit", "trace", "combined"):
                    ys = [
                        p.hitrate
                        for p in warm_points
                        if p.workload == name
                        and p.policy == policy
                        and p.source == source
                    ]
                    print(format_series(f"{policy}/{source}", labels, ys))

        print("\nrunner stage summary (warm pass):")
        print(json.dumps(metrics.summary()["stages"], indent=2))
        print(f"\ncache stats: {cache.stats()}")


if __name__ == "__main__":
    main()
