#!/usr/bin/env python3
"""Compare the monitoring methods of §II-B on one workload.

Runs the memcached-style data-caching service four times, each under a
different visibility mechanism — A-bit scanning, IBS op sampling, PEBS
event sampling, and BadgerTrap fault interception — and prints the
Table I trade-offs as measured numbers: pages detected, how much of the
true memory-hot set each method ranked correctly, and the modelled
collection overhead.

Run:  python examples/compare_profilers.py
"""

import numpy as np

from repro import Machine, MachineConfig, TMPConfig, TMProfiler
from repro.analysis import format_table, hot_classification_fraction
from repro.workloads import make_workload

EPOCHS = 6


def run_config(label: str, tmp_config: TMPConfig, use_badgertrap: bool = False):
    machine = Machine(MachineConfig.scaled(ibs_period=16))
    workload = make_workload("data-caching")
    workload.attach(machine)
    profiler = TMProfiler(machine, tmp_config)
    profiler.register_workload(workload)

    if use_badgertrap:
        # Instrument every server heap page: each TLB miss now faults.
        for pid in workload.pids:
            pt = machine.page_tables[pid]
            profiler_slots = np.arange(pt.n_pages, dtype=np.int64)
            machine.badgertrap.instrument(pt, profiler_slots, machine.tlb)

    rng = np.random.default_rng(0)
    truth = np.zeros(0, dtype=np.int64)
    for epoch in range(EPOCHS):
        batch = workload.epoch(epoch, rng)
        result = machine.run_batch(batch)
        profiler.observe_batch(batch, result)
        profiler.end_epoch()
        mem = result.page_mem_access_counts(machine.n_frames)
        if truth.size < mem.size:
            truth = np.pad(truth, (0, mem.size - truth.size))
        truth += mem

    store = profiler.store
    if use_badgertrap:
        counts = np.zeros(machine.n_frames, dtype=np.int64)
        fc = machine.badgertrap.fault_counts
        counts[: fc.size] = fc
        detected = int((counts > 0).sum())
        overhead = machine.badgertrap.stats.handler_time_s / machine.time_s
    elif tmp_config.abit_enabled and not tmp_config.trace_enabled:
        counts = store.abit_total.astype(np.int64)
        detected = store.detected_pages("abit")
        overhead = profiler.overhead_fraction()
    elif tmp_config.abit_enabled and tmp_config.trace_enabled:
        counts = store.abit_total + store.trace_total
        detected = store.detected_pages("either")
        overhead = profiler.overhead_fraction()
    else:
        counts = store.trace_total.astype(np.int64)
        detected = store.detected_pages("trace")
        overhead = profiler.overhead_fraction()

    capacity = workload.footprint_pages // 8
    accuracy = hot_classification_fraction(counts, truth > 0, capacity)
    return [label, detected, accuracy, overhead]


def main() -> None:
    rows = [
        run_config("A-bit scan (1 Hz)", TMPConfig(trace_enabled=False)),
        run_config("IBS op sampling (4x)", TMPConfig(abit_enabled=False)),
        run_config(
            "PEBS LLC-miss sampling",
            TMPConfig(abit_enabled=False, trace_source="pebs"),
        ),
        run_config(
            "BadgerTrap faults",
            TMPConfig(abit_enabled=False, trace_enabled=False),
            use_badgertrap=True,
        ),
        run_config("TMP (A-bit + IBS)", TMPConfig()),
    ]
    print(
        format_table(
            ["method", "pages_detected", "hot_coverage", "overhead_frac"],
            rows,
            title="Monitoring methods on data-caching (Table I, measured)",
            float_fmt="{:.4f}",
        )
    )
    print(
        "\nReading: trace methods see exactly where memory misses go;"
        "\nthe A-bit walk sees every touched page in its scan window but"
        "\ncannot grade hotness; BadgerTrap counts TLB misses at fault"
        "\ncost; TMP's hybrid gets the union at near-trace overhead."
    )


if __name__ == "__main__":
    main()
