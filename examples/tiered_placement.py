#!/usr/bin/env python3
"""Tiered-memory placement end to end (§IV + §VI-C).

Runs the graph-analytics workload on a two-tier memory (fast tier sized
to 1/16 of the footprint) under four placement policies — the paper's
Oracle and History, the first-come-first-allocate baseline, and the
ground-truth upper bound — and prints per-policy tier-1 hitrates,
migration volume, and emulated runtime with the paper's 50/10/13 µs
latency calibration.

Run:  python examples/tiered_placement.py
"""

from repro import MachineConfig
from repro.analysis import format_table
from repro.tiering import (
    FCFAPolicy,
    HistoryPolicy,
    OraclePolicy,
    TieredSimulator,
    TrueOraclePolicy,
)
from repro.workloads import make_workload

EPOCHS = 8
RATIO = 1 / 16


def run(policy, rank_source="combined"):
    sim = TieredSimulator(
        make_workload("graph-analytics"),
        policy,
        tier1_ratio=RATIO,
        rank_source=rank_source,
        machine_config=MachineConfig.scaled(ibs_period=16),
        seed=0,
    )
    return sim.run(EPOCHS)


def main() -> None:
    rows = []
    for label, policy, source in [
        ("fcfa (baseline)", FCFAPolicy(), "combined"),
        ("history / A-bit only", HistoryPolicy(), "abit"),
        ("history / IBS only", HistoryPolicy(), "trace"),
        ("history / TMP combined", HistoryPolicy(), "combined"),
        ("history + anti-thrash", HistoryPolicy(smoothing=0.5, resident_bonus=0.3, min_rank=2.0), "combined"),
        ("oracle / TMP combined", OraclePolicy(), "combined"),
        ("true oracle (bound)", TrueOraclePolicy(), "combined"),
    ]:
        res = run(policy, source)
        rows.append(
            [
                label,
                res.mean_hitrate,
                res.total_migrations,
                res.total_runtime_s,
            ]
        )
    baseline_runtime = rows[0][3]
    for row in rows:
        row.append(baseline_runtime / row[3])

    print(
        format_table(
            ["policy / source", "hitrate", "migrations", "runtime_s", "speedup"],
            rows,
            title=f"graph-analytics, tier1 = 1/16 of footprint, {EPOCHS} epochs",
        )
    )
    print(
        "\nReading: better monitoring data lifts both policies (the"
        "\nFig. 6 effect); anti-thrash knobs convert the hitrate gain"
        "\ninto actual speedup by not spending it on migrations."
    )


if __name__ == "__main__":
    main()
