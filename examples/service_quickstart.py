#!/usr/bin/env python3
"""The online profiling service, end to end, in one process.

Hosts the JSON-lines service on a background thread (the same server
``repro serve`` runs), then drives two concurrent tenants through the
blocking ``ServiceClient``: create sessions over different workloads,
subscribe to streaming epoch telemetry, step them, reconfigure one
mid-run, inspect operator statistics and numa_maps, and close — the
final summaries are bit-identical to direct ``TieredSimulator`` runs
with the same seeds.

Run:  python examples/service_quickstart.py
"""

from repro.service import ServerThread, ServiceClient

SMALL = {"footprint_pages": 2048, "accesses_per_epoch": 20_000}
EPOCHS = 4


def drive(client: ServiceClient, workload: str, seed: int) -> dict:
    info = client.create_session(
        workload,
        seed=seed,
        tier1_ratio=1 / 8,
        workload_kwargs=dict(SMALL),
    )
    sid = info["session"]
    print(
        f"[{sid}] created: {info['workload']} / {info['policy']} "
        f"tier1={info['tier1_capacity']} pages"
    )
    client.subscribe(sid, max_queue=16)
    client.step(sid, epochs=EPOCHS)
    for frame in client.iter_events(EPOCHS, timeout_s=60):
        d = frame["data"]
        print(
            f"[{sid}] epoch {d['epoch']}: hitrate={d['hitrate']:.3f} "
            f"promoted={d['promoted']} demoted={d['demoted']} "
            f"runtime={d['runtime_s']:.3f}s"
        )
    return info


def main() -> None:
    with ServerThread(max_sessions=8, idle_ttl_s=120) as srv:
        host, port = srv.address
        print(f"service up on {host}:{port}")
        with ServiceClient(address=srv.address, timeout_s=60) as client:
            a = drive(client, "gups", seed=7)
            b = drive(client, "web-serving", seed=7)

            # Live reconfiguration: crank the trace sampler 2x on one
            # tenant; the change reaches the sampler, not just config.
            client.reconfigure(a["session"], trace_sample_period=8)
            client.step(a["session"], epochs=1)

            stats = client.stats(a["session"])
            daemon = stats["daemon"]
            print(
                f"[{a['session']}] operator view: epochs={daemon['epochs']} "
                f"abit_pages={daemon['pages_detected_abit']} "
                f"trace_samples={daemon['trace_samples']} "
                f"overhead={daemon['overhead_fraction']:.4f}"
            )
            print(client.numa_maps(a["session"]).splitlines()[0], "...")

            for info in (a, b):
                summary = client.close_session(info["session"])["result"]
                print(
                    f"[{info['session']}] closed: mean_hitrate="
                    f"{summary['mean_hitrate']:.3f} "
                    f"migrations={summary['total_migrations']}"
                )
    print("server drained")


if __name__ == "__main__":
    main()
