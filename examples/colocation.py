#!/usr/bin/env python3
"""Profiling a consolidated server: two tenants, one memory system.

The paper motivates TMP with consolidated cloud servers (§I): many
applications share the machine, so the profiler must attribute hotness
per process and spend its overhead budget only where it matters.  This
example colocates the memcached service (hot, skewed) with GUPS
(uniform random, memory-hostile) on one simulated machine, lets TMP
profile the mix, and then runs tiered placement over the *combined*
footprint — showing the fast tier ends up holding the pages of
whichever tenant actually earns it.

Run:  python examples/colocation.py
"""

import numpy as np

from repro import Machine, MachineConfig, TMPConfig, TMPDaemon, TMProfiler
from repro.analysis import format_table
from repro.tiering import HistoryPolicy, TieredSimulator
from repro.workloads import MultiWorkload, make_workload

EPOCHS = 5


def main() -> None:
    # --- profile the mix -------------------------------------------------
    machine = Machine(MachineConfig.scaled(ibs_period=16))
    mix = MultiWorkload([make_workload("data-caching"), make_workload("gups")])
    mix.attach(machine)

    profiler = TMProfiler(machine, TMPConfig())
    daemon = TMPDaemon(profiler)
    for name, pids in mix.tenant_pids().items():
        daemon.add_program(name, pids)

    rng = np.random.default_rng(0)
    for epoch in range(EPOCHS):
        batch = mix.epoch(epoch, rng)
        result = machine.run_batch(batch)
        profiler.observe_batch(batch, result)
        report = daemon.poll_epoch()
    print(
        f"profiled {mix.name}: {mix.n_processes} processes, "
        f"{machine.n_frames} frames"
    )
    print(f"tracked after resource filter: {len(report.tracked_pids)} PIDs "
          f"(memcached clients fall below the 5%/10% thresholds)\n")

    # Per-tenant hotness attribution from the final epoch's rank.
    rank = report.rank()
    rows = []
    for tenant in mix.tenants:
        mass = 0.0
        pages = 0
        for proc in tenant.processes:
            for vma in proc.vmas.values():
                lo, hi = vma.pfn_base, vma.pfn_base + vma.npages
                mass += float(rank[lo:hi].sum())
                pages += vma.npages
        rows.append([tenant.name, pages, mass, mass / max(pages, 1)])
    print(
        format_table(
            ["tenant", "pages", "rank_mass", "rank_per_page"],
            rows,
            title="hotness attribution by tenant (last epoch)",
        )
    )

    # --- place the mix over two tiers -------------------------------------
    sim = TieredSimulator(
        MultiWorkload([make_workload("data-caching"), make_workload("gups")]),
        HistoryPolicy(smoothing=0.5, resident_bonus=0.3, min_rank=2.0),
        tier1_ratio=1 / 8,
        rank_source="combined",
        machine_config=MachineConfig.scaled(ibs_period=16),
        seed=0,
    )
    res = sim.run(EPOCHS)

    # Who owns the fast tier at the end?
    tier1 = set(sim.tiers.tier1_pages().tolist())
    rows = []
    for tenant in sim.workload.tenants:
        owned = 0
        for proc in tenant.processes:
            for vma in proc.vmas.values():
                owned += sum(
                    1 for p in range(vma.pfn_base, vma.pfn_base + vma.npages)
                    if p in tier1
                )
        rows.append([tenant.name, owned, owned / max(len(tier1), 1)])
    print()
    print(
        format_table(
            ["tenant", "tier1_pages", "tier1_share"],
            rows,
            title=f"fast-tier ownership after placement "
            f"(hitrate {res.mean_hitrate:.3f})",
        )
    )
    print(
        "\nReading: fast memory follows measured memory hotness across"
        "\ntenant boundaries — GUPS's relentlessly missing table earns"
        "\nper-page priority while memcached's cache-friendly tail does"
        "\nnot — with no static partitioning required."
    )


if __name__ == "__main__":
    main()
