#!/usr/bin/env python3
"""Visualize a workload's memory-access structure (Figs. 3 and 4).

Records one run of a chosen workload and prints two ASCII heatmaps —
time (epochs) on the x-axis, physical address space on the y-axis —
one from IBS trace samples and one from A-bit scan detections, the
paper's two complementary views of the same execution.

Run:  python examples/hotness_heatmap.py [workload]
      (default: lulesh; see repro.workloads.WORKLOAD_NAMES)
"""

import sys

from repro import MachineConfig, record_run
from repro.analysis import heatmap_from_profiles, render_heatmap
from repro.analysis.heatmap import heatmap_from_epoch_samples
from repro.workloads import WORKLOAD_NAMES, make_workload

EPOCHS = 8
N_ADDR = 28


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "lulesh"
    if name not in WORKLOAD_NAMES:
        raise SystemExit(f"unknown workload {name!r}; pick one of {WORKLOAD_NAMES}")

    print(f"recording {name} ({EPOCHS} epochs)...")
    rec = record_run(
        make_workload(name),
        machine_config=MachineConfig.scaled(ibs_period=16),
        epochs=EPOCHS,
        seed=0,
    )

    ibs = heatmap_from_epoch_samples(
        [r.samples for r in rec.epochs], n_addr_bins=N_ADDR, n_frames=rec.n_frames
    )
    print()
    print(render_heatmap(ibs, title=f"[{name}] IBS 4x samples (Fig. 3 view)"))

    abit = heatmap_from_profiles(
        [r.profile for r in rec.epochs],
        field="abit",
        n_addr_bins=N_ADDR,
        n_frames=rec.n_frames,
    )
    print()
    print(render_heatmap(abit, title=f"[{name}] A-bit detections (Fig. 4 view)"))

    print(
        "\nReading: IBS paints wherever memory misses go — sparse or"
        "\nhuge regions included — while the A-bit view is exact within"
        "\nits bounded scan window and blind beyond it."
    )


if __name__ == "__main__":
    main()
