"""Fig. 6 — tier-1 hitrate: Oracle & History × monitoring source × ratio.

The paper's headline experiment: for tier1:footprint ratios 1/8..1/128,
compute each policy's fast-tier hitrate when fed (a) A-bit data alone,
(b) IBS data alone, (c) TMP's combined data.  Claims reproduced in
shape:

* smaller ratios are harder (hitrate falls monotonically-ish),
* the Oracle on combined data beats the piecemeal sources — often by
  as much as ~70 % against the weaker one,
* even History often outperforms the piecemeal monitoring methods,
* Oracle ≥ History (History's one-epoch lag costs on randomized
  workloads).
"""

from __future__ import annotations

import numpy as np
from conftest import JOBS, REPO_ROOT, save_artifact

from repro.analysis import DEFAULT_RATIOS, format_csv, format_series, sweep_recorded
from repro.workloads import WORKLOAD_NAMES

RATIO_LABELS = ["1/8", "1/16", "1/32", "1/64", "1/128"]


def _sweep(recorded_suite, metrics=None):
    points = []
    for name in WORKLOAD_NAMES:
        points.extend(
            sweep_recorded(
                recorded_suite[name],
                ratios=DEFAULT_RATIOS,
                jobs=JOBS,
                metrics=metrics,
            )
        )
    return points


def test_fig6_hitrate(recorded_suite, suite_metrics, benchmark):
    with suite_metrics.stage("evaluate"):
        points = benchmark.pedantic(
            _sweep,
            args=(recorded_suite,),
            kwargs={"metrics": suite_metrics},
            rounds=1,
            iterations=1,
        )
    # The runner's own per-stage instrumentation, for perf trajectory.
    suite_metrics.write(REPO_ROOT / "BENCH_runner.json")
    grid = {(p.workload, p.policy, p.source, round(p.ratio, 6)): p.hitrate for p in points}

    lines = ["Fig. 6 — tier-1 hitrate by policy and monitoring source"]
    for name in WORKLOAD_NAMES:
        lines.append(f"\n[{name}]")
        for policy in ("oracle", "history"):
            for source in ("abit", "trace", "combined"):
                ys = [
                    grid[(name, policy, source, round(r, 6))] for r in DEFAULT_RATIOS
                ]
                lines.append(format_series(f"{policy}/{source}", RATIO_LABELS, ys))
    text = "\n".join(lines)
    print("\n" + text)
    save_artifact("fig6_hitrate.txt", text)
    save_artifact(
        "fig6_hitrate.csv",
        format_csv(
            ["workload", "policy", "source", "ratio", "hitrate"],
            [[p.workload, p.policy, p.source, p.ratio, p.hitrate] for p in points],
        ),
    )

    # --- Shape assertions -------------------------------------------------
    def hr(name, policy, source, ratio):
        return grid[(name, policy, source, round(ratio, 6))]

    # 1. Capacity monotonicity: 1/8 >= 1/128 for every curve.
    for name in WORKLOAD_NAMES:
        for policy in ("oracle", "history"):
            for source in ("abit", "trace", "combined"):
                assert hr(name, policy, source, 1 / 8) >= hr(
                    name, policy, source, 1 / 128
                ) - 1e-9, (name, policy, source)

    # 2. Combined beats (or matches) the weaker piecemeal source at the
    #    paper's headline ratio, for the Oracle, on every workload.
    for name in WORKLOAD_NAMES:
        combined = hr(name, "oracle", "combined", 1 / 8)
        weaker = min(hr(name, "oracle", "abit", 1 / 8), hr(name, "oracle", "trace", 1 / 8))
        assert combined >= weaker - 0.02, (name, combined, weaker)

    # 3. Somewhere, combined beats the weaker piecemeal source by >=50 %
    #    (the paper: "often by as high as 70%").
    gains = []
    for name in WORKLOAD_NAMES:
        for ratio in DEFAULT_RATIOS:
            weaker = min(
                hr(name, "oracle", "abit", ratio), hr(name, "oracle", "trace", ratio)
            )
            if weaker > 0.01:
                gains.append(hr(name, "oracle", "combined", ratio) / weaker)
    assert max(gains) >= 1.5, f"max combined-vs-weaker gain {max(gains):.2f}"

    # 4. History also beats the weaker piecemeal source on most cells.
    wins = total = 0
    for name in WORKLOAD_NAMES:
        for ratio in DEFAULT_RATIOS:
            weaker = min(
                hr(name, "history", "abit", ratio), hr(name, "history", "trace", ratio)
            )
            total += 1
            wins += hr(name, "history", "combined", ratio) >= weaker - 0.02
    assert wins / total > 0.7

    # 5. Oracle >= History on the combined source (small tolerance).
    for name in WORKLOAD_NAMES:
        for ratio in DEFAULT_RATIOS:
            assert (
                hr(name, "oracle", "combined", ratio)
                >= hr(name, "history", "combined", ratio) - 0.05
            ), (name, ratio)
