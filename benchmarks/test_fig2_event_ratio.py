"""Fig. 2 — ratio of PTW (A-bit-setting) events to cache-miss events.

The paper uses this ratio to justify TMP's unweighted rank sum: the
two event populations arrive at the same order of magnitude, so adding
A-bit and trace samples risks drowning neither source.  We reproduce
the per-workload ratio of page-walk events (dTLB misses, each of which
can set an A bit) to data-cache miss events (LLC misses, the population
trace-based methods sample).
"""

from __future__ import annotations

from conftest import save_artifact

from repro.analysis import format_table
from repro.workloads import WORKLOAD_NAMES


def _ratios(recorded_suite):
    rows = []
    for name in WORKLOAD_NAMES:
        totals = recorded_suite[name].event_totals
        ptw = totals["ptw_walks"]
        llc = totals["llc_miss"]
        rows.append([name, ptw, llc, ptw / llc if llc else float("inf")])
    return rows


def test_fig2_event_ratio(recorded_suite, benchmark):
    rows = benchmark.pedantic(
        _ratios, args=(recorded_suite,), rounds=1, iterations=1
    )
    text = format_table(
        ["workload", "ptw_events", "cache_miss_events", "ratio"],
        rows,
        title="Fig. 2 — PTW events vs cache-miss events",
    )
    print("\n" + text)
    save_artifact("fig2_event_ratio.txt", text)

    # The paper's point: same order of magnitude for every workload, so
    # the unweighted A-bit + trace rank sum under-weighs neither source.
    for name, ptw, llc, ratio in rows:
        assert 0.01 <= ratio <= 100, f"{name}: ratio {ratio} out of range"
    # And for most workloads the two populations are within one decade.
    within_decade = sum(1 for *_, r in rows if 0.1 <= r <= 10)
    assert within_decade >= len(rows) - 2
