"""Contribution-1 bench — profiling accuracy per monitoring source.

The paper claims a "low-overhead, high-accuracy profiling mechanism"
(§I contribution 1).  Overhead has its own bench; this one scores each
monitoring source's per-epoch hotness ranking against the machine's
ground-truth memory-access counts: precision/recall of the hot-set
classification at tier-1 capacity, the true access mass the predicted
hot set captures, and Spearman rank correlation.

Shape claims: the combined rank is at least as accurate as the weaker
piecemeal source on every workload, and matches the better one within
tolerance — the hybrid never costs accuracy.
"""

from __future__ import annotations

import numpy as np
from conftest import save_artifact

from repro.analysis import format_table
from repro.analysis.accuracy import rank_accuracy
from repro.core.hotness import hotness_rank
from repro.workloads import WORKLOAD_NAMES

SOURCES = ("abit", "trace", "combined")
RATIO = 8  # K = footprint / 8, the headline tier ratio


def _score(recorded_suite):
    rows = {}
    for name in WORKLOAD_NAMES:
        rec = recorded_suite[name]
        k = max(1, rec.footprint_pages // RATIO)
        # Average over the scored epochs (skip epoch 0: cold profiles).
        for source in SOURCES:
            accs = [
                rank_accuracy(
                    hotness_rank(r.profile, source),
                    r.mem_counts.astype(float),
                    k,
                )
                for r in rec.epochs[1:]
            ]
            rows[(name, source)] = (
                float(np.mean([a.f1 for a in accs])),
                float(np.mean([a.weighted_coverage for a in accs])),
                float(np.mean([a.spearman for a in accs])),
            )
    return rows


def test_profiler_accuracy(recorded_suite, benchmark):
    rows = benchmark.pedantic(_score, args=(recorded_suite,), rounds=1, iterations=1)
    table = [
        [name, source, *rows[(name, source)]]
        for name in WORKLOAD_NAMES
        for source in SOURCES
    ]
    text = format_table(
        ["workload", "source", "f1@K", "coverage", "spearman"],
        table,
        title=f"Profiling accuracy vs ground truth (K = footprint/{RATIO})",
    )
    print("\n" + text)
    save_artifact("accuracy_profilers.txt", text)

    for name in WORKLOAD_NAMES:
        f1 = {s: rows[(name, s)][0] for s in SOURCES}
        cov = {s: rows[(name, s)][1] for s in SOURCES}
        weaker = min(f1["abit"], f1["trace"])
        stronger = max(f1["abit"], f1["trace"])
        # The hybrid never loses to the weaker source...
        assert f1["combined"] >= weaker - 0.02, name
        # ...and keeps most of the stronger source's set classification
        # (binary A-bit ties can blur the exact top-K boundary)...
        assert f1["combined"] >= 0.55 * stronger, name
        # ...while the placement-relevant metric — captured true access
        # mass — stays within a tight band of the stronger source.
        assert cov["combined"] >= 0.85 * max(cov["abit"], cov["trace"]), name

    # Somewhere the hybrid beats a piecemeal source decisively (the
    # accuracy half of the paper's headline).
    best_gain = max(
        rows[(n, "combined")][0] - min(rows[(n, "abit")][0], rows[(n, "trace")][0])
        for n in WORKLOAD_NAMES
    )
    assert best_gain > 0.2
