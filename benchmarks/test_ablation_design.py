"""Ablations of the design choices DESIGN.md calls out.

Four TMP design points, each isolated:

1. **No-shootdown A-bit scans** (§III-B.4, third optimization): skipping
   the post-clear TLB shootdown loses a little visibility (stale TLB
   entries hide re-accesses) but eliminates the IPI bill.
2. **HWPC gating** (first optimization): on a bursty workload the gate
   disables the heavyweight drivers during troughs, cutting overhead
   without losing the busy-phase picture.
3. **Process filtering** (second optimization): untracked low-usage
   processes stop costing page-table walks.
4. **History rank accumulation** (extension): EMA smoothing over epoch
   ranks raises hitrate on stationary workloads vs the memoryless
   Table II History.
5. **Transparent huge pages** (extension): THP-backing the HPC heaps
   makes A-bit profiling 2 MiB-granular while IBS stays 4 KiB-granular,
   reproducing the paper's extreme Table IV gaps (GUPS: A-bit 5.5 K vs
   IBS 270 K on a 1 M-page footprint) and near-disjoint "Both" counts.
"""

from __future__ import annotations

import numpy as np
from conftest import save_artifact

from repro.analysis import format_table, measure_overhead
from repro.core import TMPConfig
from repro.memsim import MachineConfig
from repro.tiering import HistoryPolicy, evaluate_recorded, record_run
from repro.workloads import make_workload

EPOCHS = 8


def _shootdown_ablation():
    """Visibility and cost with vs without the post-clear shootdown."""
    out = {}
    for label, shootdown in (("no_shootdown", False), ("shootdown", True)):
        rep = measure_overhead(
            make_workload("data-caching"),
            tmp_config=TMPConfig(abit_shootdown=shootdown, trace_enabled=False),
            machine_config=MachineConfig.scaled(),
            epochs=EPOCHS,
        )
        out[label] = rep
    return out


def _gating_ablation():
    """Overhead with vs without HWPC gating on the bursty web workload."""
    out = {}
    for label, gating in (("gated", True), ("always_on", False)):
        rep = measure_overhead(
            make_workload("web-serving"),
            tmp_config=TMPConfig(hwpc_gating=gating),
            machine_config=MachineConfig.scaled(ibs_period=16),
            epochs=10,
        )
        out[label] = rep
    return out


def _filter_ablation():
    """PTEs walked with vs without the resource filter (many clients)."""
    out = {}
    for label, filt in (("filtered", True), ("unfiltered", False)):
        rep = measure_overhead(
            make_workload("data-caching"),
            tmp_config=TMPConfig(process_filter=filt, trace_enabled=False),
            machine_config=MachineConfig.scaled(),
            epochs=EPOCHS,
        )
        out[label] = rep
    return out


def _smoothing_ablation():
    """History hitrate: memoryless vs EMA-smoothed rank on a stationary
    zipf workload."""
    rec = record_run(
        make_workload("data-caching"),
        machine_config=MachineConfig.scaled(ibs_period=16),
        epochs=EPOCHS,
        seed=0,
    )
    plain = evaluate_recorded(rec, HistoryPolicy(), tier1_ratio=1 / 16)
    smoothed = evaluate_recorded(
        rec, HistoryPolicy(smoothing=0.5), tier1_ratio=1 / 16
    )
    return plain.mean_hitrate, smoothed.mean_hitrate


def _thp_ablation():
    """Table IV counts for GUPS with and without THP-backed heaps."""
    import numpy as np

    from repro.core import TMProfiler
    from repro.memsim import Machine

    out = {}
    for label, thp in (("base_pages", False), ("thp", True)):
        machine = Machine(MachineConfig.scaled(ibs_period=16))
        workload = make_workload("gups", thp=thp)
        workload.attach(machine)
        profiler = TMProfiler(machine, TMPConfig())
        profiler.register_workload(workload)
        rng = np.random.default_rng(0)
        for e in range(EPOCHS):
            batch = workload.epoch(e, rng)
            res = machine.run_batch(batch)
            profiler.observe_batch(batch, res)
            profiler.end_epoch()
        out[label] = {
            "abit": profiler.store.detected_pages("abit"),
            "trace": profiler.store.detected_pages("trace"),
            "both": profiler.store.detected_pages("both"),
        }
    return out


def _run_all():
    return (
        _shootdown_ablation(),
        _gating_ablation(),
        _filter_ablation(),
        _smoothing_ablation(),
        _thp_ablation(),
    )


def test_ablation_design(benchmark):
    shoot, gate, filt, smooth, thp = benchmark.pedantic(
        _run_all, rounds=1, iterations=1
    )

    rows = [
        ["abit no-shootdown cost", shoot["no_shootdown"].abit_fraction],
        ["abit shootdown cost", shoot["shootdown"].abit_fraction],
        ["gated overhead (web)", gate["gated"].fraction],
        ["always-on overhead (web)", gate["always_on"].fraction],
        ["filtered abit cost", filt["filtered"].abit_fraction],
        ["unfiltered abit cost", filt["unfiltered"].abit_fraction],
        ["history hitrate (plain)", smooth[0]],
        ["history hitrate (EMA)", smooth[1]],
        ["gups abit pages (4K PTEs)", thp["base_pages"]["abit"]],
        ["gups abit pages (THP)", thp["thp"]["abit"]],
        ["gups both overlap (4K)", thp["base_pages"]["both"]],
        ["gups both overlap (THP)", thp["thp"]["both"]],
    ]
    text = format_table(
        ["design point", "value"],
        rows,
        title="Ablations — TMP design choices",
        float_fmt="{:.5f}",
    )
    print("\n" + text)
    save_artifact("ablation_design.txt", text)

    # 1. Shootdowns cost strictly more CPU time.
    assert shoot["shootdown"].abit_fraction > shoot["no_shootdown"].abit_fraction
    # ... while detecting at least as many page events per scan.
    assert shoot["shootdown"].abit_scans == shoot["no_shootdown"].abit_scans

    # 2. Gating saves overhead on the bursty workload.
    assert gate["gated"].fraction <= gate["always_on"].fraction
    # ... and still collects a substantial busy-phase sample volume.
    assert gate["gated"].trace_samples > 0.3 * gate["always_on"].trace_samples

    # 3. The filter cuts A-bit walk cost (clients' tables are skipped).
    assert filt["filtered"].abit_fraction <= filt["unfiltered"].abit_fraction

    # 4. Rank accumulation helps on the stationary zipf workload.
    assert smooth[1] > smooth[0]

    # 5. THP collapses A-bit granularity by ~two orders while IBS keeps
    #    4 KiB resolution — the paper's extreme GUPS gap (49x) and tiny
    #    "Both" overlap appear.
    assert thp["thp"]["abit"] < thp["base_pages"]["abit"] / 10
    assert thp["thp"]["trace"] == thp["base_pages"]["trace"]
    assert thp["thp"]["trace"] > 10 * thp["thp"]["abit"]
    assert thp["thp"]["both"] < thp["base_pages"]["both"] / 10
