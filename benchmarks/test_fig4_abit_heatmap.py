"""Fig. 4 — per-workload memory-access heatmaps from A-bit profiling.

The A-bit counterpart of Fig. 3: per epoch, which address bands had
pages whose accessed bit the scan found set.  The A-bit view is
complementary (virtual-memory-subsystem visibility): binary per page
per scan, bounded by the per-process scan window, and blind to nothing
that touches memory — the qualitative contrast the paper draws between
Figs. 3 and 4.
"""

from __future__ import annotations

import numpy as np
from conftest import save_artifact

from repro.analysis import heatmap_from_profiles, render_heatmap
from repro.workloads import WORKLOAD_NAMES

N_ADDR = 24


def _heatmaps(recorded_suite):
    out = {}
    for name in WORKLOAD_NAMES:
        rec = recorded_suite[name]
        out[name] = heatmap_from_profiles(
            [r.profile for r in rec.epochs],
            field="abit",
            n_addr_bins=N_ADDR,
            n_frames=rec.n_frames,
        )
    return out


def test_fig4_abit_heatmaps(recorded_suite, benchmark):
    maps = benchmark.pedantic(
        _heatmaps, args=(recorded_suite,), rounds=1, iterations=1
    )
    blocks = [
        render_heatmap(maps[name], title=f"Fig. 4 [{name}] (A-bit profiling)")
        for name in WORKLOAD_NAMES
    ]
    text = "\n\n".join(blocks)
    print("\n" + text)
    save_artifact("fig4_abit_heatmaps.txt", text)

    for name, h in maps.items():
        assert h.sum() > 0, f"{name}: empty heatmap"

    # The scan-window bound: for huge-footprint workloads the A-bit
    # view covers only a band of the address space, while IBS (Fig. 3)
    # covers almost all of it.
    xs = maps["xsbench"]
    covered_bands = (xs.sum(axis=1) > 0).mean()
    assert covered_bands < 0.9, "xsbench A-bit view should be window-bounded"

    # Per-epoch stability: the A-bit scan finds pages every epoch.
    for name, h in maps.items():
        assert (h.sum(axis=0) > 0).all(), f"{name}: an epoch with no detections"
