"""Shared fixtures for the paper-reproduction benchmarks.

Every bench regenerates one of the paper's tables or figures, printing
the same rows/series the paper reports and writing a text artifact to
``benchmarks/results/``.  The expensive machine executions are shared:
one recorded run per workload (at the paper's adopted 4x IBS rate)
feeds Figs. 2-6; Table IV and the overhead study run their own
per-rate configurations.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core import TMPConfig
from repro.memsim import MachineConfig
from repro.tiering import record_run
from repro.workloads import WORKLOAD_NAMES, make_workload

RESULTS_DIR = Path(__file__).parent / "results"

#: Epochs per recorded run (the scored horizon of every figure).
BENCH_EPOCHS = 8
#: Scaled IBS periods (see repro.analysis.tables.RATE_PERIODS).
PERIOD_DEFAULT, PERIOD_4X, PERIOD_8X = 64, 16, 8


def save_artifact(name: str, text: str) -> Path:
    """Write a bench's printable output under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    return path


@pytest.fixture(scope="session")
def recorded_suite():
    """One recorded run per Table III workload at the 4x trace rate."""
    suite = {}
    for name in WORKLOAD_NAMES:
        suite[name] = record_run(
            make_workload(name),
            machine_config=MachineConfig.scaled(ibs_period=PERIOD_4X),
            tmp_config=TMPConfig(),
            epochs=BENCH_EPOCHS,
            seed=0,
        )
    return suite
