"""Shared fixtures for the paper-reproduction benchmarks.

Every bench regenerates one of the paper's tables or figures, printing
the same rows/series the paper reports and writing a text artifact to
``benchmarks/results/``.  The expensive machine executions are shared
*and cached*: one recorded run per workload (at the paper's adopted 4x
IBS rate) feeds Figs. 2-6, recorded in parallel through
:mod:`repro.runner` and reused across sessions from a
content-addressed cache — a warm session skips all eight machine
simulations.  Table IV and the overhead study run their own per-rate
configurations.

Knobs (also honoured by the library itself):

``REPRO_CACHE_DIR``
    Recorded-run cache directory (default ``benchmarks/.runcache``).
``REPRO_JOBS``
    Worker processes for record/evaluate fan-out (default: core count).

Suite timings land in ``BENCH_suite.json`` at the repo root —
per-workload record time (cold vs warm cache) and per-grid-cell
evaluate time — so successive PRs have a perf trajectory to compare.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core import TMPConfig
from repro.memsim import MachineConfig
from repro.runner import RecordSpec, RunCache, RunnerMetrics, record_suite
from repro.workloads import WORKLOAD_NAMES

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent

#: Epochs per recorded run (the scored horizon of every figure).
BENCH_EPOCHS = 8
#: Scaled IBS periods (see repro.analysis.tables.RATE_PERIODS).
PERIOD_DEFAULT, PERIOD_4X, PERIOD_8X = 64, 16, 8

CACHE_DIR = Path(
    os.environ.get("REPRO_CACHE_DIR", Path(__file__).parent / ".runcache")
)
JOBS = int(os.environ.get("REPRO_JOBS", 0) or (os.cpu_count() or 1))

#: Session-wide runner instrumentation, flushed to BENCH_suite.json.
SUITE_METRICS = RunnerMetrics(jobs=JOBS)


def save_artifact(name: str, text: str) -> Path:
    """Write a bench's printable output under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    return path


def suite_specs() -> list[RecordSpec]:
    """The Table III suite at the 4x trace rate — one spec per workload."""
    return [
        RecordSpec(
            name,
            machine_config=MachineConfig.scaled(ibs_period=PERIOD_4X),
            tmp_config=TMPConfig(),
            epochs=BENCH_EPOCHS,
            seed=0,
        )
        for name in WORKLOAD_NAMES
    ]


@pytest.fixture(scope="session")
def recorded_suite():
    """One recorded run per Table III workload at the 4x trace rate.

    Records in parallel (``REPRO_JOBS``) and reuses the on-disk cache
    across sessions (``REPRO_CACHE_DIR``): a warm cache performs zero
    machine simulations here.
    """
    cache = RunCache(CACHE_DIR)
    with SUITE_METRICS.stage("record"):
        runs = record_suite(
            suite_specs(), jobs=JOBS, cache=cache, metrics=SUITE_METRICS
        )
    return dict(zip(WORKLOAD_NAMES, runs))


@pytest.fixture(scope="session")
def suite_metrics():
    """The session's shared RunnerMetrics (benches add evaluate events)."""
    return SUITE_METRICS


def pytest_sessionfinish(session, exitstatus):
    if not SUITE_METRICS.events:
        return
    record = [
        {"workload": ev.name, "seconds": ev.seconds, "cached": ev.cached}
        for ev in SUITE_METRICS.events
        if ev.stage == "record"
    ]
    evaluate = [
        {"cell": ev.name, "seconds": ev.seconds}
        for ev in SUITE_METRICS.events
        if ev.stage == "evaluate"
    ]
    warm = sum(r["cached"] for r in record)
    payload = {
        "jobs": JOBS,
        "cache_dir": str(CACHE_DIR),
        "stage_wall_s": SUITE_METRICS.stage_wall_s,
        "record": record,
        "evaluate_cells": len(evaluate),
        "evaluate_s": sum(e["seconds"] for e in evaluate),
        "evaluate": evaluate,
        "totals": {
            "record_s": sum(r["seconds"] for r in record),
            "warm_records": warm,
            "cold_records": len(record) - warm,
        },
    }
    (REPO_ROOT / "BENCH_suite.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
