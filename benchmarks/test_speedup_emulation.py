"""§VI-C — end-to-end speedup under the slow-memory emulation.

The paper's final experiment: run each workload under the
BadgerTrap-style emulation testbed (50 µs/page migration, 10 µs per
trapped slow access, +13 µs when the trapped page is hot; small fast
tier in front of a large slow tier) and compare TMP-driven placement
against the NUMA-like first-come-first-allocate baseline.  Paper
result: average speedup 1.04x, best case 1.13x.

TMP's production configuration here is the History policy on the
combined rank with the anti-thrash knobs engaged (EMA smoothing,
resident hysteresis, promotion threshold, migration budget) — plain
Table II History chases sampling noise into migration costs; see the
ablation bench for the decomposition.
"""

from __future__ import annotations

import numpy as np
from conftest import save_artifact

from repro.analysis import format_table
from repro.memsim import MachineConfig
from repro.tiering import FCFAPolicy, HistoryPolicy, TieredSimulator
from repro.workloads import WORKLOAD_NAMES, make_workload

EPOCHS = 8
TIER1_RATIO = 1 / 8  # 4 GB fast : ~32 GB hot footprint, scaled


def _tmp_policy():
    return HistoryPolicy(smoothing=0.5, resident_bonus=0.3, min_rank=2.0)


def _run(workload_name: str, policy, budget: bool):
    sim = TieredSimulator(
        make_workload(workload_name),
        policy,
        tier1_ratio=TIER1_RATIO,
        rank_source="combined",
        machine_config=MachineConfig.scaled(ibs_period=16),
        seed=0,
    )
    if budget:
        sim.mover.max_moves_per_epoch = sim.tier1_capacity // 2
    return sim.run(EPOCHS)


def _speedups():
    rows = []
    for name in WORKLOAD_NAMES:
        tmp = _run(name, _tmp_policy(), budget=True)
        fcfa = _run(name, FCFAPolicy(), budget=False)
        rows.append(
            [
                name,
                tmp.mean_hitrate,
                fcfa.mean_hitrate,
                tmp.total_runtime_s,
                fcfa.total_runtime_s,
                tmp.speedup_over(fcfa),
            ]
        )
    return rows


def test_speedup_emulation(benchmark):
    rows = benchmark.pedantic(_speedups, rounds=1, iterations=1)
    speedups = [r[-1] for r in rows]
    text = format_table(
        ["workload", "tmp_hitrate", "fcfa_hitrate", "tmp_s", "fcfa_s", "speedup"],
        rows,
        title="§VI-C — TMP placement vs first-come-first-allocate",
    )
    text += (
        f"\n\naverage speedup: {np.mean(speedups):.3f}x (paper: 1.04x)"
        f"\nbest speedup:    {max(speedups):.3f}x (paper: 1.13x)"
    )
    print("\n" + text)
    save_artifact("speedup_emulation.txt", text)

    # Shape: TMP wins on average, the best case is a clear win, and no
    # workload collapses (randomized GUPS is allowed a small loss —
    # the paper's own Monte Carlo caveat).
    assert np.mean(speedups) > 1.0
    assert max(speedups) >= 1.08
    assert min(speedups) > 0.90
    # TMP's hitrate advantage is what pays for the migrations.
    better_hitrate = sum(1 for r in rows if r[1] >= r[2] - 0.01)
    assert better_hitrate >= 6
