"""Extension bench — the full policy zoo head-to-head.

Beyond the paper's Oracle/History/FCFA triangle, the library ships the
ground-truth bound, an AutoNUMA-style fault sampler, a write-aware
(CLOCK-DWF-inspired) variant, anti-thrash History, and a random floor.
This bench scores all of them on three representative workloads from
one recording each, checking the sanity orderings any placement stack
must satisfy:

    true-oracle ≥ oracle ≥ history ≥ random
    every profiling-driven policy ≥ the random floor
"""

from __future__ import annotations

from conftest import save_artifact

from repro.analysis import format_table
from repro.tiering import (
    AutoNUMAPolicy,
    ThermostatPolicy,
    FCFAPolicy,
    HistoryPolicy,
    OraclePolicy,
    RandomPolicy,
    TrueOraclePolicy,
    WriteAwarePolicy,
    evaluate_recorded,
)

WORKLOADS = ("data-caching", "graph-analytics", "web-serving")
RATIO = 1 / 16


def _zoo():
    return [
        ("fcfa", lambda: FCFAPolicy()),
        ("random", lambda: RandomPolicy(seed=1)),
        ("autonuma", lambda: AutoNUMAPolicy(window_pages=4096)),
        ("thermostat", lambda: ThermostatPolicy()),
        ("history", lambda: HistoryPolicy()),
        ("history+at", lambda: HistoryPolicy(smoothing=0.5, resident_bonus=0.3, min_rank=2.0)),
        ("write-aware", lambda: WriteAwarePolicy(write_boost=2.0)),
        ("oracle", lambda: OraclePolicy()),
        ("true-oracle", lambda: TrueOraclePolicy()),
    ]


def _evaluate(recorded_suite):
    grid = {}
    for wname in WORKLOADS:
        rec = recorded_suite[wname]
        for label, factory in _zoo():
            res = evaluate_recorded(
                rec, factory(), tier1_ratio=RATIO, rank_source="combined"
            )
            grid[(wname, label)] = (res.mean_hitrate, res.total_migrations)
    return grid


def test_policy_zoo(recorded_suite, benchmark):
    grid = benchmark.pedantic(
        _evaluate, args=(recorded_suite,), rounds=1, iterations=1
    )
    rows = []
    for wname in WORKLOADS:
        for label, _ in _zoo():
            hr, migr = grid[(wname, label)]
            rows.append([wname, label, hr, migr])
    text = format_table(
        ["workload", "policy", "hitrate", "migrations"],
        rows,
        title=f"Policy zoo @ tier1 = 1/{int(1/RATIO)} of footprint (combined rank)",
    )
    print("\n" + text)
    save_artifact("policy_zoo.txt", text)

    for wname in WORKLOADS:
        hr = {label: grid[(wname, label)][0] for label, _ in _zoo()}
        # The information hierarchy.
        assert hr["true-oracle"] >= hr["oracle"] - 0.01, wname
        assert hr["oracle"] >= hr["history"] - 0.02, wname
        # Profiling-driven policies clear the random floor.
        for label in (
            "history",
            "history+at",
            "oracle",
            "write-aware",
            "thermostat",
        ):
            assert hr[label] > hr["random"], (wname, label)
        # Write-aware is a History variant: stays in its neighbourhood.
        assert abs(hr["write-aware"] - hr["history"]) < 0.15, wname
        # Anti-thrash does not destroy hitrate while cutting migrations.
        assert hr["history+at"] > 0.7 * hr["history"], wname
        migr_at = grid[(wname, "history+at")][1]
        migr_plain = grid[(wname, "history")][1]
        assert migr_at < migr_plain, wname
        # FCFA and random never migrate / churn respectively.
        assert grid[(wname, "fcfa")][1] == 0
