"""Fig. 5 — CDFs of per-page access counts by technique and rate.

The paper plots, per workload, the cumulative distribution of per-page
profiling counts for A-bit profiling and for IBS at different sampling
rates, and reads off the headline: A-bit profiling alone would let the
memory allocator classify fewer than 10 % of the pages that incur TLB
misses as hot — so opportunities are lost without the trace side.

We print, per workload: the per-technique detected-page CDF summary
(median / p90 counts), the hot-set concentration (pages carrying 80 %
of accesses), and the A-bit hot-classification fraction against the
ground-truth TLB-missing page set.
"""

from __future__ import annotations

import numpy as np
from conftest import save_artifact

from repro.analysis import (
    format_table,
    hot_classification_fraction,
    pages_for_mass,
    sample_cdf_at,
)
from repro.workloads import WORKLOAD_NAMES

#: Workloads whose (scaled) footprints dwarf the A-bit scan window —
#: the regime the paper's <10 % claim is about.  Only XSBench keeps the
#: paper's full footprint:window ratio after scaling; the other HPC
#: codes compress the gap (footprints shrank 64x, the per-process scan
#: window could not shrink below useful granularity), so they get a
#: looser visibility bound.  See EXPERIMENTS.md.
STRICT_10PCT = ("xsbench",)
BOUNDED_VISIBILITY = ("gups", "lulesh", "graph500")


def _cdf_stats(recorded_suite):
    rows = []
    for name in WORKLOAD_NAMES:
        rec = recorded_suite[name]
        abit = np.zeros(rec.n_frames, dtype=np.int64)
        trace = np.zeros(rec.n_frames, dtype=np.int64)
        truth = np.zeros(rec.n_frames, dtype=np.int64)
        for r in rec.epochs:
            abit[: r.profile.abit.size] += r.profile.abit
            trace[: r.profile.trace.size] += r.profile.trace
            truth += r.counts
        tlb_missing = truth > 0  # every touched page misses the TLB at
        # least once in this machine (cold fill)
        capacity = max(1, rec.footprint_pages // 8)
        rows.append(
            {
                "workload": name,
                "abit_det": int((abit > 0).sum()),
                "trace_det": int((trace > 0).sum()),
                "abit_med_frac": sample_cdf_at(abit, np.median(abit[abit > 0]) if (abit > 0).any() else 0),
                "trace_p80_pages": pages_for_mass(trace, 0.8),
                "truth_p80_pages": pages_for_mass(truth, 0.8),
                "abit_hot_frac": hot_classification_fraction(abit, tlb_missing, capacity),
                "trace_hot_frac": hot_classification_fraction(trace, tlb_missing, capacity),
            }
        )
    return rows


def test_fig5_cdfs(recorded_suite, benchmark):
    rows = benchmark.pedantic(
        _cdf_stats, args=(recorded_suite,), rounds=1, iterations=1
    )
    table = [
        [
            r["workload"],
            r["abit_det"],
            r["trace_det"],
            r["trace_p80_pages"],
            r["truth_p80_pages"],
            r["abit_hot_frac"],
            r["trace_hot_frac"],
        ]
        for r in rows
    ]
    text = format_table(
        [
            "workload",
            "abit_pages",
            "ibs_pages",
            "ibs_p80_pages",
            "true_p80_pages",
            "abit_hot_frac",
            "ibs_hot_frac",
        ],
        table,
        title="Fig. 5 — access-count distribution summaries (cumulative, 4x rate)",
    )
    print("\n" + text)
    save_artifact("fig5_cdf.txt", text)

    by_name = {r["workload"]: r for r in rows}

    # The paper's headline: A-bit alone classifies <10 % of TLB-missing
    # pages as hot where the footprint dwarfs the scan window.
    for name in STRICT_10PCT:
        frac = by_name[name]["abit_hot_frac"]
        assert frac < 0.10, f"{name}: abit hot fraction {frac:.3f} >= 10%"
    for name in BOUNDED_VISIBILITY:
        frac = by_name[name]["abit_hot_frac"]
        assert frac < 0.30, f"{name}: abit hot fraction {frac:.3f} >= 30%"

    # The hottest pages are a minor portion of the footprint (both
    # methods agree on concentration).
    for r in rows:
        rec_pages = by_name[r["workload"]]
        assert r["trace_p80_pages"] < 0.8 * max(r["trace_det"], 1) + 1

    # IBS *sees* far more of the TLB-missing population than A-bit on
    # sparse workloads (hot-classification ties when tier capacity caps
    # both, but detection coverage does not).
    for name in ("gups", "xsbench"):
        assert by_name[name]["trace_det"] > 1.5 * by_name[name]["abit_det"]
        assert by_name[name]["trace_hot_frac"] >= by_name[name]["abit_hot_frac"]
