"""Table IV — pages detected by A-bit vs IBS at three sampling rates.

Regenerates the paper's central profiling-visibility table: for each
Table III workload, the count of distinct pages the A-bit scan and the
IBS trace each detected (plus the overlap), at the default, 4x and 8x
sampling rates.  Absolute counts are on the scaled testbed; the shape
targets are the paper's derived claims:

* raising the rate to 4x improves trace visibility ~2.6x on average,
* 8x adds <40 % over 4x (diminishing returns → 4x is the sweet spot),
* sparse/huge HPC footprints (GUPS, XSBench, LULESH, Graph500): IBS
  detects far more pages than the budgeted A-bit scan,
* low-memory-intensity CloudSuite services (Web-Serving,
  Data-Analytics): the A-bit scan detects more than IBS.
"""

from __future__ import annotations

from conftest import save_artifact

from repro.analysis import format_table, rate_improvements, table4_rows
from repro.workloads import WORKLOAD_NAMES

EPOCHS = 8


def _collect():
    return table4_rows(WORKLOAD_NAMES, epochs=EPOCHS, seed=0)


def test_table4_detected_pages(benchmark):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)

    by_key = {(r.workload, r.rate): r for r in rows}
    table = []
    for name in WORKLOAD_NAMES:
        d, x4, x8 = (by_key[(name, r)] for r in ("default", "4x", "8x"))
        table.append(
            [name, d.abit, d.trace, d.both, x4.trace, x4.both, x8.trace, x8.both]
        )
    text = format_table(
        [
            "workload",
            "abit",
            "ibs_1x",
            "both_1x",
            "ibs_4x",
            "both_4x",
            "ibs_8x",
            "both_8x",
        ],
        table,
        title="Table IV — detected pages per method and sampling rate",
    )
    gains = rate_improvements(rows)
    text += (
        f"\n\nmean IBS gain 4x over default: {gains['gain_4x_over_default']:.2f}x"
        f" (paper: 2.58x)"
        f"\nmean IBS gain 8x over 4x:      {gains['gain_8x_over_4x']:.2f}x"
        f" (paper: <1.40x)"
    )
    print("\n" + text)
    save_artifact("table4_detected_pages.txt", text)

    # Shape assertions ---------------------------------------------------
    # 4x is a substantial improvement; 8x is marginal.
    assert gains["gain_4x_over_default"] > 1.5
    assert gains["gain_8x_over_4x"] < gains["gain_4x_over_default"]
    assert gains["gain_8x_over_4x"] < 1.9

    # Sparse HPC: IBS(4x) detects far more pages than the A-bit window.
    for name in ("gups", "xsbench", "lulesh"):
        r = by_key[(name, "4x")]
        assert r.trace > 1.5 * r.abit, f"{name}: IBS should dominate A-bit"

    # Low-memory-intensity services: A-bit sees more than IBS(4x).
    for name in ("web-serving", "data-analytics"):
        r = by_key[(name, "4x")]
        assert r.abit > r.trace, f"{name}: A-bit should dominate IBS"

    # Overlap never exceeds either method's own count.
    for r in rows:
        assert r.both <= min(r.abit, r.trace)
