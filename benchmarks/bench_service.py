"""Service throughput benchmark: worker pool vs. in-process stepping.

Runs the acceptance scenario of the multi-core service work: eight
concurrent sessions stepping continuously against one server, once
with ``workers=0`` (the GIL-bound in-process path) and once with
``workers=4`` (the sticky worker-process pool), and records epochs/s
plus the pool speedup to ``BENCH_service.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py --out BENCH_service.json

On a >= 4-core machine the pool scenario must clear a 2.5x speedup
floor (asserted by ``tests/test_performance.py``, not here, so the
benchmark itself stays runnable on small CI boxes).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.service import ServerThread, ServiceClient  # noqa: E402

WORKLOAD_KWARGS = {"footprint_pages": 512, "accesses_per_epoch": 4000}
DEFAULT_SESSIONS = 8
DEFAULT_EPOCHS = 24
STEP_CHUNK = 4


def run_scenario(
    workers: int,
    sessions: int = DEFAULT_SESSIONS,
    epochs: int = DEFAULT_EPOCHS,
    chunk: int = STEP_CHUNK,
) -> dict:
    """Step ``sessions`` concurrent sessions; return the timing record.

    Every client thread creates its own session, warms it up with one
    epoch (excluded from timing), then all threads step ``epochs``
    epochs in ``chunk``-sized requests between two barriers.
    """
    start_barrier = threading.Barrier(sessions + 1)
    done_barrier = threading.Barrier(sessions + 1)
    errors: list[BaseException] = []

    with ServerThread(
        port=0,
        workers=workers,
        max_sessions=sessions,
        step_workers=sessions,
        reap_interval_s=0,
    ) as srv:

        def drive(seed: int) -> None:
            try:
                with ServiceClient(address=srv.address, timeout_s=300) as client:
                    sid = client.create_session(
                        "gups", seed=seed, workload_kwargs=dict(WORKLOAD_KWARGS)
                    )["session"]
                    client.step(sid, epochs=1)  # warmup: JIT-ish caches, pages
                    start_barrier.wait()
                    for _ in range(0, epochs, chunk):
                        client.step(sid, epochs=chunk)
                    done_barrier.wait()
            except BaseException as exc:  # noqa: BLE001 — surface in main thread
                errors.append(exc)
                raise

        threads = [
            threading.Thread(target=drive, args=(seed,), daemon=True)
            for seed in range(sessions)
        ]
        for thread in threads:
            thread.start()
        start_barrier.wait()
        t0 = time.perf_counter()
        done_barrier.wait()
        wall_s = time.perf_counter() - t0
        for thread in threads:
            thread.join(timeout=60)
    if errors:
        raise errors[0]

    total_epochs = sessions * epochs
    return {
        "workers": workers,
        "sessions": sessions,
        "epochs_per_session": epochs,
        "total_epochs": total_epochs,
        "wall_s": wall_s,
        "epochs_per_s": total_epochs / wall_s,
    }


def run(workers_list=(0, 4), sessions=DEFAULT_SESSIONS, epochs=DEFAULT_EPOCHS) -> dict:
    scenarios = []
    for workers in workers_list:
        record = run_scenario(workers, sessions=sessions, epochs=epochs)
        print(
            f"workers={workers}: {record['total_epochs']} epochs in "
            f"{record['wall_s']:.2f}s -> {record['epochs_per_s']:.1f} epochs/s"
        )
        scenarios.append(record)
    by_workers = {s["workers"]: s["epochs_per_s"] for s in scenarios}
    baseline = by_workers.get(0)
    pooled = max(
        (v for k, v in by_workers.items() if k > 0), default=None
    )
    speedup = (pooled / baseline) if baseline and pooled else None
    return {
        "generated_unix": time.time(),
        "cpu_count": os.cpu_count(),
        "sessions": sessions,
        "workload_kwargs": WORKLOAD_KWARGS,
        "scenarios": scenarios,
        "speedup": speedup,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_service.json", help="output JSON path"
    )
    parser.add_argument(
        "--workers", type=int, nargs="+", default=[0, 4],
        help="worker counts to benchmark (default: 0 4)",
    )
    parser.add_argument("--sessions", type=int, default=DEFAULT_SESSIONS)
    parser.add_argument("--epochs", type=int, default=DEFAULT_EPOCHS)
    args = parser.parse_args(argv)

    report = run(
        workers_list=args.workers, sessions=args.sessions, epochs=args.epochs
    )
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    if report["speedup"] is not None:
        print(f"speedup (pool vs in-process): {report['speedup']:.2f}x")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
