"""Service throughput benchmark: worker pool vs. in-process stepping.

Runs the acceptance scenario of the multi-core service work: eight
concurrent sessions stepping continuously against one server, once
with ``workers=0`` (the GIL-bound in-process path) and once with
``workers=4`` (the sticky worker-process pool), and records epochs/s
plus the pool speedup to ``BENCH_service.json``.

A second scenario measures observability cost: the same stepped run
with ``repro.obs`` metrics enabled vs. disabled, recorded as
``metrics_overhead`` (fractional slowdown of the min-of-N CPU-time
floor, so scheduler noise doesn't masquerade as instrumentation
cost).  A third applies the same estimator to the telemetry ledger
(``--ledger-dir`` on vs. off), recorded as ``ledger_overhead``.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py --out BENCH_service.json

On a >= 4-core machine the pool scenario must clear a 2.5x speedup
floor, and metrics overhead must stay under 3 % (both asserted by
``tests/test_performance.py``, not here, so the benchmark itself stays
runnable on small CI boxes).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import statistics
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np  # noqa: E402

from repro.obs import metrics as obs_metrics  # noqa: E402
from repro.service import ServerThread, ServiceClient  # noqa: E402
from repro.service.protocol import (  # noqa: E402
    encode_frame,
    encode_payload,
    event_frame,
    splice_event_frame,
)

WORKLOAD_KWARGS = {"footprint_pages": 512, "accesses_per_epoch": 4000}
DEFAULT_SESSIONS = 8
DEFAULT_EPOCHS = 24
STEP_CHUNK = 4
FANOUT_SUBSCRIBERS = 16


def run_scenario(
    workers: int,
    sessions: int = DEFAULT_SESSIONS,
    epochs: int = DEFAULT_EPOCHS,
    chunk: int = STEP_CHUNK,
    ledger_dir: str | None = None,
    subscribe: bool = False,
) -> dict:
    """Step ``sessions`` concurrent sessions; return the timing record.

    Every client thread creates its own session, warms it up with one
    epoch (excluded from timing), then all threads step ``epochs``
    epochs in ``chunk``-sized requests between two barriers.

    ``subscribe=True`` attaches every session to its own event stream
    first, putting the subscriber fan-out (``SubscriberQueue.push``,
    one frame per epoch) on the measured path.
    """
    start_barrier = threading.Barrier(sessions + 1)
    done_barrier = threading.Barrier(sessions + 1)
    errors: list[BaseException] = []

    with ServerThread(
        port=0,
        workers=workers,
        max_sessions=sessions,
        step_workers=sessions,
        reap_interval_s=0,
        ledger_dir=ledger_dir,
    ) as srv:

        def drive(seed: int) -> None:
            try:
                with ServiceClient(address=srv.address, timeout_s=300) as client:
                    sid = client.create_session(
                        "gups", seed=seed, workload_kwargs=dict(WORKLOAD_KWARGS)
                    )["session"]
                    if subscribe:
                        client.subscribe(sid, max_queue=epochs + 8)
                    client.step(sid, epochs=1)  # warmup: JIT-ish caches, pages
                    start_barrier.wait()
                    for _ in range(0, epochs, chunk):
                        client.step(sid, epochs=chunk)
                    done_barrier.wait()
            except BaseException as exc:  # noqa: BLE001 — surface in main thread
                errors.append(exc)
                raise

        threads = [
            threading.Thread(target=drive, args=(seed,), daemon=True)
            for seed in range(sessions)
        ]
        for thread in threads:
            thread.start()
        start_barrier.wait()
        c0 = time.process_time()
        t0 = time.perf_counter()
        done_barrier.wait()
        wall_s = time.perf_counter() - t0
        # process_time sums CPU across every thread in the process, so
        # this delta is the stepped phase's CPU cost regardless of how
        # the scheduler interleaved the driving threads.
        cpu_s = time.process_time() - c0
        for thread in threads:
            thread.join(timeout=60)
    if errors:
        raise errors[0]

    total_epochs = sessions * epochs
    return {
        "workers": workers,
        "sessions": sessions,
        "epochs_per_session": epochs,
        "total_epochs": total_epochs,
        "wall_s": wall_s,
        "cpu_s": cpu_s,
        "epochs_per_s": total_epochs / wall_s,
    }


def run_metrics_overhead(
    sessions: int = DEFAULT_SESSIONS,
    epochs: int = DEFAULT_EPOCHS,
    repeats: int = 8,
) -> dict:
    """Fractional cost of metrics collection on a stepped run.

    Both arms run in-process (``workers=0``) so ``configure`` toggles
    the very registry the instrumentation writes to.  Individual runs
    jitter 10-30% (scheduler, GIL convoys) — far above the real
    instrumentation cost — so the design compares *floors* instead of
    hoping: two discarded warmups, then ``repeats`` interleaved pairs
    whose within-pair order alternates (position bias cancels), each
    arm scored by its min CPU time.  CPU time (``process_time``, which
    sums across threads) is used over wall time because it is immune
    to CPU stolen by other processes, and the instrumentation's cost
    *is* CPU work, so it cannot hide from this clock.

    Even CPU-time floors wander a few percent between trials on a
    noisy box, so the reported fraction is the min of two estimators
    with disjoint failure modes: the floor ratio (wrong only when one
    arm never draws its floor) and the median of per-pair ratios
    (adjacent runs share drift, so each ratio cancels it; wrong only
    under sustained correlated drift).  A real regression inflates
    every enabled run and therefore moves both; noise rarely moves
    both at once.

    Every session is subscribed to its own event stream, so the
    per-epoch subscriber fan-out (``SubscriberQueue.push``, which
    bumps the frame/drop counters on every single frame) is inside the
    measured region — that hot path must resolve cached metric handles,
    not re-walk the registry per frame.
    """
    records = {False: [], True: []}
    try:
        # Two discarded warmups: run times settle over the first few
        # runs (page cache, allocator, thread pools), and a run still
        # on that slope would bias whichever arm samples it.
        run_scenario(0, sessions=sessions, epochs=epochs, subscribe=True)
        run_scenario(0, sessions=sessions, epochs=epochs, subscribe=True)
        for i in range(repeats):
            order = (False, True) if i % 2 == 0 else (True, False)
            for enabled in order:
                obs_metrics.configure(enabled)
                records[enabled].append(
                    run_scenario(
                        0, sessions=sessions, epochs=epochs, subscribe=True
                    )
                )
    finally:
        obs_metrics.configure(True)
    disabled_cpu = min(r["cpu_s"] for r in records[False])
    enabled_cpu = min(r["cpu_s"] for r in records[True])
    floor_fraction = enabled_cpu / disabled_cpu - 1.0
    pair_fraction = statistics.median(
        en["cpu_s"] / dis["cpu_s"]
        for en, dis in zip(records[True], records[False])
    ) - 1.0
    return {
        "sessions": sessions,
        "epochs_per_session": epochs,
        "repeats": repeats,
        "disabled_cpu_s": disabled_cpu,
        "enabled_cpu_s": enabled_cpu,
        "disabled_wall_s": min(r["wall_s"] for r in records[False]),
        "enabled_wall_s": min(r["wall_s"] for r in records[True]),
        "floor_fraction": floor_fraction,
        "pair_fraction": pair_fraction,
        "overhead_fraction": min(floor_fraction, pair_fraction),
    }


def run_ledger_overhead(
    sessions: int = DEFAULT_SESSIONS,
    epochs: int = DEFAULT_EPOCHS,
    repeats: int = 8,
) -> dict:
    """Fractional step-throughput cost of the durable telemetry ledger.

    Same noise-resistant design as :func:`run_metrics_overhead`: both
    arms run in-process, two discarded warmups, ``repeats`` interleaved
    pairs with alternating within-pair order, each arm scored by its
    min CPU time, and the reported fraction is the min of the floor
    ratio and the median per-pair ratio.  The ledgered arm appends
    every epoch frame to a fresh directory under the default
    ``fsync="rotate"`` policy — the configuration ``repro serve
    --ledger-dir`` ships.
    """
    records = {False: [], True: []}
    run_scenario(0, sessions=sessions, epochs=epochs)
    run_scenario(0, sessions=sessions, epochs=epochs)
    for i in range(repeats):
        order = (False, True) if i % 2 == 0 else (True, False)
        for ledgered in order:
            tmp = tempfile.mkdtemp(prefix="bench-ledger-") if ledgered else None
            try:
                records[ledgered].append(
                    run_scenario(
                        0, sessions=sessions, epochs=epochs, ledger_dir=tmp
                    )
                )
            finally:
                if tmp is not None:
                    shutil.rmtree(tmp, ignore_errors=True)
    off_cpu = min(r["cpu_s"] for r in records[False])
    on_cpu = min(r["cpu_s"] for r in records[True])
    floor_fraction = on_cpu / off_cpu - 1.0
    pair_fraction = statistics.median(
        on["cpu_s"] / off["cpu_s"]
        for on, off in zip(records[True], records[False])
    ) - 1.0
    return {
        "sessions": sessions,
        "epochs_per_session": epochs,
        "repeats": repeats,
        "off_cpu_s": off_cpu,
        "on_cpu_s": on_cpu,
        "off_wall_s": min(r["wall_s"] for r in records[False]),
        "on_wall_s": min(r["wall_s"] for r in records[True]),
        "floor_fraction": floor_fraction,
        "pair_fraction": pair_fraction,
        "overhead_fraction": min(floor_fraction, pair_fraction),
    }


def run_ipc_amortization(
    workers: int = 4,
    sessions: int = DEFAULT_SESSIONS,
    epochs: int = DEFAULT_EPOCHS,
) -> dict:
    """Win from multi-epoch ``step`` batching through the worker pool.

    ``step(epochs=k)`` ships one command and one result per ``k``
    epochs instead of per epoch, so the per-request cost (socket
    round-trip, JSON framing, pool dispatch, telemetry drain) is paid
    ``1/k`` as often.  This scenario measures that directly:
    ``chunk=1`` (an RPC per epoch) vs ``chunk=STEP_CHUNK``, same
    total work.
    """
    unbatched = run_scenario(workers, sessions=sessions, epochs=epochs, chunk=1)
    batched = run_scenario(
        workers, sessions=sessions, epochs=epochs, chunk=STEP_CHUNK
    )
    return {
        "workers": workers,
        "chunk_unbatched": 1,
        "chunk_batched": STEP_CHUNK,
        "unbatched": unbatched,
        "batched": batched,
        "speedup": batched["epochs_per_s"] / unbatched["epochs_per_s"],
    }


def _fanout_payload() -> dict:
    """A representative epoch-telemetry dict, numpy scalars included.

    Mirrors ``epoch_metrics_to_dict`` output: the numpy values exercise
    the ``_json_default`` coercion exactly where the real fan-out pays
    it, so the kernel arms measure the production encode cost.
    """
    return {
        "epoch": np.int64(41),
        "hitrate": np.float64(0.8731942719),
        "tier1_hits": np.int64(3492),
        "accesses": np.int64(4000),
        "promoted": np.int64(129),
        "demoted": np.int64(64),
        "sampled": np.int64(250),
        "runtime_s": np.float64(0.004912377),
        "slowdown": np.float64(1.21874),
        "tier1_pages": np.int64(512),
        "profiler_overhead_s": np.float64(0.00022119),
        "latency": {
            "reads_t1": np.int64(3300),
            "reads_t2": np.int64(700),
            "mean_read_ns": np.float64(211.73),
            "stall_s": np.float64(0.00071),
        },
    }


def run_fanout_kernel(
    frames: int = 400,
    subscribers: int = FANOUT_SUBSCRIBERS,
    repeats: int = 5,
) -> dict:
    """Serialize-once splice vs. encode-per-subscriber, 16 subscribers.

    The pre-change fan-out called ``encode_frame`` once *per
    subscriber* per epoch frame; the serialize-once path encodes the
    payload once and splices the per-subscriber envelope around the
    shared bytes.  Both arms produce bit-identical wire lines (asserted
    here and property-tested in ``tests/service/test_fanout_equiv.py``)
    so this is a pure cost comparison, scored by min CPU time over
    ``repeats``.
    """
    data = _fanout_payload()
    session = "s1"
    subs = [f"{session}.sub{j}" for j in range(subscribers)]

    def legacy() -> int:
        total = 0
        for seq in range(frames):
            for sub in subs:
                total += len(
                    encode_frame(event_frame("epoch", session, sub, seq, data))
                )
        return total

    def spliced() -> int:
        total = 0
        for seq in range(frames):
            payload = encode_payload(data)
            for sub in subs:
                total += len(
                    splice_event_frame("epoch", session, sub, seq, 0, payload)
                )
        return total

    sample_payload = encode_payload(data)
    assert splice_event_frame("epoch", session, subs[0], 7, 0, sample_payload) == (
        encode_frame(event_frame("epoch", session, subs[0], 7, data))
    )

    times = {"legacy": [], "spliced": []}
    nbytes = {}
    legacy(), spliced()  # warmup
    for _ in range(repeats):
        for name, fn in (("legacy", legacy), ("spliced", spliced)):
            c0 = time.process_time()
            nbytes[name] = fn()
            times[name].append(time.process_time() - c0)
    legacy_s = min(times["legacy"])
    spliced_s = min(times["spliced"])
    total_frames = frames * subscribers
    return {
        "frames": frames,
        "subscribers": subscribers,
        "repeats": repeats,
        "legacy_cpu_s": legacy_s,
        "spliced_cpu_s": spliced_s,
        "legacy_frames_per_s": total_frames / legacy_s,
        "spliced_frames_per_s": total_frames / spliced_s,
        "legacy_bytes_per_s": nbytes["legacy"] / legacy_s,
        "spliced_bytes_per_s": nbytes["spliced"] / spliced_s,
        "speedup": legacy_s / spliced_s,
    }


def run_fanout_live(
    sessions: int = DEFAULT_SESSIONS,
    subscribers: int = FANOUT_SUBSCRIBERS,
    epochs: int = DEFAULT_EPOCHS,
    chunk: int = STEP_CHUNK,
) -> dict:
    """End-to-end many-subscriber fan-out: 8 sessions x 16 subscribers.

    Each session's connection holds ``subscribers`` subscriptions, so
    every scored epoch fans out into 16 frames that all cross the
    socket (the coalesced pump batches them per write).  Delivered
    frames/s and bytes/s are measured from step start until every
    subscriber received every frame; byte counts re-encode the received
    frames after timing stops, which is wire-exact because spliced
    frames are bit-identical to ``encode_frame`` output.
    """
    start_barrier = threading.Barrier(sessions + 1)
    done_barrier = threading.Barrier(sessions + 1)
    errors: list[BaseException] = []
    received: list[list[dict]] = [[] for _ in range(sessions)]

    with ServerThread(
        port=0,
        workers=0,
        max_sessions=sessions,
        step_workers=sessions,
        reap_interval_s=0,
    ) as srv:

        def drive(index: int) -> None:
            try:
                with ServiceClient(address=srv.address, timeout_s=300) as client:
                    sid = client.create_session(
                        "gups",
                        seed=index,
                        workload_kwargs=dict(WORKLOAD_KWARGS),
                    )["session"]
                    for _ in range(subscribers):
                        client.subscribe(sid, max_queue=epochs + 8)
                    start_barrier.wait()
                    for _ in range(0, epochs, chunk):
                        client.step(sid, epochs=chunk)
                    frames = list(
                        client.iter_events(subscribers * epochs, timeout_s=120)
                    )
                    done_barrier.wait()
                    received[index] = frames
            except BaseException as exc:  # noqa: BLE001 — surface in main thread
                errors.append(exc)
                raise

        threads = [
            threading.Thread(target=drive, args=(index,), daemon=True)
            for index in range(sessions)
        ]
        for thread in threads:
            thread.start()
        start_barrier.wait()
        t0 = time.perf_counter()
        done_barrier.wait()
        wall_s = time.perf_counter() - t0
        for thread in threads:
            thread.join(timeout=60)
    if errors:
        raise errors[0]

    total_frames = sum(len(frames) for frames in received)
    total_bytes = sum(
        len(encode_frame(frame)) for frames in received for frame in frames
    )
    return {
        "sessions": sessions,
        "subscribers_per_session": subscribers,
        "epochs_per_session": epochs,
        "frames_delivered": total_frames,
        "bytes_delivered": total_bytes,
        "wall_s": wall_s,
        "frames_per_s": total_frames / wall_s,
        "bytes_per_s": total_bytes / wall_s,
    }


def run_fanout(
    sessions: int = DEFAULT_SESSIONS,
    subscribers: int = FANOUT_SUBSCRIBERS,
    epochs: int = DEFAULT_EPOCHS,
) -> dict:
    """The fan-out arm of the report: encode kernel + live delivery."""
    return {
        "kernel": run_fanout_kernel(subscribers=subscribers),
        "live": run_fanout_live(
            sessions=sessions, subscribers=subscribers, epochs=epochs
        ),
    }


def run(
    workers_list=(0, 4),
    sessions=DEFAULT_SESSIONS,
    epochs=DEFAULT_EPOCHS,
    include_ipc=False,
    include_ledger=False,
    include_fanout=False,
) -> dict:
    scenarios = []
    for workers in workers_list:
        record = run_scenario(workers, sessions=sessions, epochs=epochs)
        print(
            f"workers={workers}: {record['total_epochs']} epochs in "
            f"{record['wall_s']:.2f}s -> {record['epochs_per_s']:.1f} epochs/s"
        )
        scenarios.append(record)
    by_workers = {s["workers"]: s["epochs_per_s"] for s in scenarios}
    baseline = by_workers.get(0)
    pooled = max(
        (v for k, v in by_workers.items() if k > 0), default=None
    )
    speedup = (pooled / baseline) if baseline and pooled else None
    overhead = run_metrics_overhead(sessions=sessions, epochs=epochs)
    print(
        "metrics overhead: {:.2%} (cpu {:.2f}s enabled vs {:.2f}s disabled)".format(
            overhead["overhead_fraction"],
            overhead["enabled_cpu_s"],
            overhead["disabled_cpu_s"],
        )
    )
    report = {
        "generated_unix": time.time(),
        "cpu_count": os.cpu_count(),
        "sessions": sessions,
        "workload_kwargs": WORKLOAD_KWARGS,
        "scenarios": scenarios,
        "speedup": speedup,
        "metrics_overhead": overhead,
    }
    if include_ledger:
        ledger = run_ledger_overhead(sessions=sessions, epochs=epochs)
        print(
            "ledger overhead: {:.2%} (cpu {:.2f}s on vs {:.2f}s off)".format(
                ledger["overhead_fraction"],
                ledger["on_cpu_s"],
                ledger["off_cpu_s"],
            )
        )
        report["ledger_overhead"] = ledger
    if include_ipc:
        pool_workers = max(workers_list) or 4
        ipc = run_ipc_amortization(
            workers=pool_workers, sessions=sessions, epochs=epochs
        )
        print(
            f"ipc amortization (chunk {ipc['chunk_batched']} vs 1): "
            f"{ipc['speedup']:.2f}x "
            f"({ipc['unbatched']['epochs_per_s']:.1f} -> "
            f"{ipc['batched']['epochs_per_s']:.1f} epochs/s)"
        )
        report["ipc_amortization"] = ipc
    if include_fanout:
        fanout = run_fanout(sessions=sessions, epochs=epochs)
        kernel, live = fanout["kernel"], fanout["live"]
        print(
            "fanout kernel ({} subs): {:.2f}x "
            "({:.0f} -> {:.0f} frames/s encode)".format(
                kernel["subscribers"],
                kernel["speedup"],
                kernel["legacy_frames_per_s"],
                kernel["spliced_frames_per_s"],
            )
        )
        print(
            "fanout live ({} sessions x {} subs): "
            "{:.0f} frames/s, {:.1f} MB/s delivered".format(
                live["sessions"],
                live["subscribers_per_session"],
                live["frames_per_s"],
                live["bytes_per_s"] / 1e6,
            )
        )
        report["fanout"] = fanout
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_service.json", help="output JSON path"
    )
    parser.add_argument(
        "--workers", type=int, nargs="+", default=[0, 4],
        help="worker counts to benchmark (default: 0 4)",
    )
    parser.add_argument("--sessions", type=int, default=DEFAULT_SESSIONS)
    parser.add_argument("--epochs", type=int, default=DEFAULT_EPOCHS)
    args = parser.parse_args(argv)

    report = run(
        workers_list=args.workers,
        sessions=args.sessions,
        epochs=args.epochs,
        include_ipc=True,
        include_ledger=True,
        include_fanout=True,
    )
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    if report["speedup"] is not None:
        print(f"speedup (pool vs in-process): {report['speedup']:.2f}x")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
