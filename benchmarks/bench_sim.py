"""Simulation hot-path benchmark: scalar reference vs vectorized engines.

Times the epoch hot path at three depths and writes ``BENCH_sim.json``:

* ``engine``  — the lookup engines head-to-head on one batched key
  stream: ``SequentialSetAssoc`` vs ``VectorSetAssoc`` on the ways=4
  set-associative config (the acceptance arm: the vectorized engine
  must clear 5x), and ``SequentialSetAssoc(ways=1)`` vs
  ``VectorDirectMapped`` on the default direct-mapped config.
* ``machine`` — the whole ``Machine.run_batch`` pipeline (translate,
  TLB, walks, caches, PMU, samplers, ground truth) with exact ways=4
  engines, vectorized vs ``assoc_reference=True``.
* ``sim``     — end-to-end ``TieredSimulator`` epochs (profiler,
  policy, migration included) on the default direct-mapped config.

One "epoch" is one ~200 K-access batch — the scaled testbed's
simulated second — so every arm reports comparable ``epochs_per_s``.

Usage::

    PYTHONPATH=src python benchmarks/bench_sim.py --out BENCH_sim.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np  # noqa: E402

from repro.memsim import AccessBatch, Machine, MachineConfig  # noqa: E402
from repro.memsim.vecsim import make_engine  # noqa: E402

KEYS_PER_EPOCH = 200_000
ZIPF_A = 1.2
WAYS4 = dict(capacity=4096, ways=4)  # 1024 sets x 4 ways


def _zipf_keys(n: int, seed: int = 0) -> np.ndarray:
    """A skewed key stream: hot head, long tail, like page traffic."""
    rng = np.random.default_rng(seed)
    return (rng.zipf(ZIPF_A, n) % (1 << 16)).astype(np.uint64)


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_engine(
    name: str,
    *,
    capacity: int,
    ways: int,
    reference: bool,
    epochs: int = 3,
    repeats: int = 3,
) -> dict:
    """Time one engine over ``epochs`` batched key-stream epochs."""
    keys = [_zipf_keys(KEYS_PER_EPOCH, seed=e) for e in range(epochs)]
    exact = ways > 1

    def run():
        engine = make_engine(
            capacity, ways, exact_assoc=exact, reference=reference
        )
        for k in keys:
            engine.access(k)

    seconds = _best_of(run, repeats)
    engine = make_engine(capacity, ways, exact_assoc=exact, reference=reference)
    return {
        "arm": name,
        "engine": type(engine).__name__,
        "capacity": capacity,
        "ways": ways,
        "epochs": epochs,
        "keys_per_epoch": KEYS_PER_EPOCH,
        "seconds": seconds,
        "keys_per_s": epochs * KEYS_PER_EPOCH / seconds,
        "epochs_per_s": epochs / seconds,
    }


def bench_machine(*, reference: bool, epochs: int = 2, repeats: int = 2) -> dict:
    """Time the full run_batch pipeline with exact ways=4 engines."""
    cfg = MachineConfig.scaled(
        exact_assoc=True, tlb_ways=4, cache_ways=4, assoc_reference=reference
    )

    def build():
        m = Machine(cfg)
        vma = m.mmap(1, 4096)
        rng = np.random.default_rng(0)
        batches = [
            AccessBatch.from_pages(
                rng.choice(vma.vpns, KEYS_PER_EPOCH),
                pid=1,
                cpu=rng.integers(0, cfg.n_cpus, KEYS_PER_EPOCH).astype(np.int16),
                # Line-granular in-page offsets, like the workload
                # generators — page-aligned streams would alias every
                # access into one cache set.
                offset=(rng.integers(0, 64, KEYS_PER_EPOCH) << 6).astype(np.uint64),
            )
            for _ in range(epochs)
        ]
        return m, batches

    def run():
        m, batches = build()
        for b in batches:
            m.run_batch(b)

    seconds = _best_of(run, repeats)
    return {
        "arm": "machine_ways4",
        "reference": reference,
        "epochs": epochs,
        "accesses_per_epoch": KEYS_PER_EPOCH,
        "seconds": seconds,
        "epochs_per_s": epochs / seconds,
    }


def bench_sim(*, reference: bool, epochs: int = 4, repeats: int = 2) -> dict:
    """Time end-to-end TieredSimulator epochs, default direct-mapped."""
    from repro.tiering import TieredSimulator
    from repro.tiering.policies import POLICIES
    from repro.workloads import make_workload

    def run():
        sim = TieredSimulator(
            make_workload("gups", accesses_per_epoch=50_000),
            POLICIES["history"](),
            machine_config=MachineConfig.scaled(
                ibs_period=64, assoc_reference=reference
            ),
        )
        sim.start()
        sim.step(epochs)

    seconds = _best_of(run, repeats)
    return {
        "arm": "sim_default",
        "reference": reference,
        "epochs": epochs,
        "accesses_per_epoch": 50_000,
        "seconds": seconds,
        "epochs_per_s": epochs / seconds,
    }


def run() -> dict:
    arms = {}

    arms["engine_ways4_scalar"] = bench_engine(
        "engine_ways4_scalar", reference=True, **WAYS4
    )
    arms["engine_ways4_vector"] = bench_engine(
        "engine_ways4_vector", reference=False, **WAYS4
    )
    arms["engine_direct_scalar"] = bench_engine(
        "engine_direct_scalar", capacity=4096, ways=1, reference=True
    )
    arms["engine_direct_vector"] = bench_engine(
        "engine_direct_vector", capacity=4096, ways=1, reference=False
    )
    arms["machine_ways4_scalar"] = bench_machine(reference=True)
    arms["machine_ways4_vector"] = bench_machine(reference=False)
    arms["sim_default_scalar"] = bench_sim(reference=True)
    arms["sim_default_vector"] = bench_sim(reference=False)

    def ratio(vec, ref):
        return arms[vec]["epochs_per_s"] / arms[ref]["epochs_per_s"]

    speedups = {
        # Acceptance number: VectorSetAssoc vs SequentialSetAssoc, ways=4.
        "engine_ways4": ratio("engine_ways4_vector", "engine_ways4_scalar"),
        "engine_direct": ratio("engine_direct_vector", "engine_direct_scalar"),
        "machine_ways4": ratio("machine_ways4_vector", "machine_ways4_scalar"),
        "sim_default": ratio("sim_default_vector", "sim_default_scalar"),
    }
    for name, s in speedups.items():
        print(f"{name}: {s:.2f}x")
    return {
        "generated_unix": time.time(),
        "cpu_count": os.cpu_count(),
        "keys_per_epoch": KEYS_PER_EPOCH,
        "zipf_a": ZIPF_A,
        "arms": arms,
        "speedups": speedups,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_sim.json", help="output JSON path")
    args = parser.parse_args(argv)
    report = run()
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
