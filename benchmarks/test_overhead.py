"""§VI-B — profiling overhead per mechanism.

The paper measures end-to-end workload latency with each profiler
armed: A-bit page-table walks once per second stay under 1 % of
application time; IBS collection stays under 5 % at the 4x rate and
under 2 % at the default rate.  We account the modelled driver costs
(per-PTE walk time, per-sample copy, buffer-full interrupts, PMU reads)
against simulated application time for every workload.
"""

from __future__ import annotations

import numpy as np
from conftest import save_artifact

from repro.analysis import format_table, measure_overhead
from repro.core import TMPConfig
from repro.memsim import MachineConfig
from repro.workloads import WORKLOAD_NAMES, make_workload

EPOCHS = 8


def _measure():
    rows = []
    for name in WORKLOAD_NAMES:
        abit_only = measure_overhead(
            make_workload(name),
            tmp_config=TMPConfig(trace_enabled=False),
            machine_config=MachineConfig.scaled(),
            epochs=EPOCHS,
        )
        ibs_default = measure_overhead(
            make_workload(name),
            tmp_config=TMPConfig(abit_enabled=False),
            machine_config=MachineConfig.scaled(ibs_period=64),
            epochs=EPOCHS,
        )
        ibs_4x = measure_overhead(
            make_workload(name),
            tmp_config=TMPConfig(abit_enabled=False),
            machine_config=MachineConfig.scaled(ibs_period=16),
            epochs=EPOCHS,
        )
        tmp_full = measure_overhead(
            make_workload(name),
            tmp_config=TMPConfig(),
            machine_config=MachineConfig.scaled(ibs_period=16),
            epochs=EPOCHS,
        )
        rows.append(
            [
                name,
                abit_only.abit_fraction,
                ibs_default.trace_fraction,
                ibs_4x.trace_fraction,
                tmp_full.fraction,
            ]
        )
    return rows


def test_overhead(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    text = format_table(
        ["workload", "abit_1hz", "ibs_default", "ibs_4x", "tmp_full"],
        rows,
        title="§VI-B — profiling overhead (fraction of application time)",
        float_fmt="{:.4f}",
    )
    text += (
        "\n\npaper envelopes: A-bit <1%, IBS default <2%, IBS 4x <5%"
    )
    print("\n" + text)
    save_artifact("overhead.txt", text)

    for name, abit, ibs1, ibs4, full in rows:
        assert abit < 0.01, f"{name}: A-bit overhead {abit:.4f} >= 1%"
        assert ibs1 < 0.02, f"{name}: IBS default overhead {ibs1:.4f} >= 2%"
        assert ibs4 < 0.05, f"{name}: IBS 4x overhead {ibs4:.4f} >= 5%"
        # The full hybrid stays within the sum of its parts.
        assert full < 0.06, f"{name}: full TMP overhead {full:.4f}"
        # 4x costs more than default (it's the trade the paper weighs).
        assert ibs4 >= ibs1
