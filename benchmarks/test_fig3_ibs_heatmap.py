"""Fig. 3 — per-workload memory-access heatmaps from IBS (4x rate).

The paper's Fig. 3 plots, per workload, elapsed time (x) against the
physical address space (y) with each cell's temperature the number of
accesses IBS observed to that page-frame band in that interval.  We
rebuild the matrices from the recorded runs' per-epoch trace samples
(one column per epoch — the paper's wall-clock second) and render them
as ASCII art; shape assertions check each workload's signature
structure (GUPS/XSBench's uniform wash, the services' persistent hot
rows, Web-Serving's load-wave troughs).
"""

from __future__ import annotations

import numpy as np
from conftest import save_artifact

from repro.analysis import render_heatmap
from repro.analysis.heatmap import heatmap_from_epoch_samples
from repro.workloads import WORKLOAD_NAMES

N_ADDR = 24


def _heatmaps(recorded_suite):
    out = {}
    for name in WORKLOAD_NAMES:
        rec = recorded_suite[name]
        out[name] = heatmap_from_epoch_samples(
            [r.samples for r in rec.epochs],
            n_addr_bins=N_ADDR,
            n_frames=rec.n_frames,
        )
    return out


def test_fig3_ibs_heatmaps(recorded_suite, benchmark):
    maps = benchmark.pedantic(
        _heatmaps, args=(recorded_suite,), rounds=1, iterations=1
    )
    blocks = [
        render_heatmap(maps[name], title=f"Fig. 3 [{name}] (IBS 4x samples)")
        for name in WORKLOAD_NAMES
    ]
    text = "\n\n".join(blocks)
    print("\n" + text)
    save_artifact("fig3_ibs_heatmaps.txt", text)

    for name, h in maps.items():
        assert h.sum() > 0, f"{name}: empty heatmap"

    # GUPS: uniform wash — most address bands active in most epochs.
    gups = maps["gups"]
    assert (gups > 0).mean() > 0.5

    # Data-caching: a persistent hot structure — some address bands are
    # much hotter than the median band across the whole run.
    dc = maps["data-caching"]
    band_mass = dc.sum(axis=1)
    assert band_mass.max() > 3 * max(np.median(band_mass), 1)

    # Web-serving: load-wave troughs — per-epoch intensity varies a lot.
    ws = maps["web-serving"].sum(axis=0).astype(float)
    assert ws.max() > 2 * max(ws.min(), 1)

    # XSBench: thin uniform coverage over a huge footprint — no single
    # band dominates.
    xs = maps["xsbench"].sum(axis=1).astype(float)
    grid_bands = xs[xs > 0]
    assert grid_bands.max() < 20 * np.median(grid_bands)
