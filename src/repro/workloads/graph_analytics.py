"""Graph-Analytics (CloudSuite) workload model.

CloudSuite's graph-analytics benchmark runs PageRank-style iterative
computation over the Twitter follower graph on a Spark master plus
worker pool.  Each iteration: a sequential sweep over the rank/message
arrays interleaved with power-law random reads of neighbor ranks
(Twitter's in-degree distribution is heavily skewed, so a small set of
celebrity-node pages is extremely hot).

The steady per-iteration repetition makes this the friendliest workload
for the History policy — last epoch's hot set *is* next epoch's.
"""

from __future__ import annotations

import numpy as np

from ..memsim.events import AccessBatch
from ..memsim.machine import Machine
from .base import ProcessContext, Workload
from .synth import BoundedZipf, batch_on_vma, windowed_sweep

__all__ = ["GraphAnalytics"]

_IP_RANKS = 0x7000_0000
_IP_NEIGHBORS = 0x7000_1000


class GraphAnalytics(Workload):
    """Iterative PageRank over a power-law (Twitter-like) graph."""

    name = "graph-analytics"

    def __init__(
        self,
        footprint_pages: int = 45_056,
        n_processes: int = 17,  # 1 master + 16 workers
        accesses_per_epoch: int = 170_000,
        neighbor_alpha: float = 0.8,
        neighbor_fraction: float = 0.55,
        **kw,
    ):
        super().__init__(footprint_pages, n_processes, accesses_per_epoch, **kw)
        self.neighbor_alpha = float(neighbor_alpha)
        self.neighbor_fraction = float(neighbor_fraction)
        self._zipfs: dict[int, BoundedZipf] = {}

    def _map_process(self, machine: Machine, pid: int, index: int):
        per = self.pages_per_process
        graph_pages = max(1, (per * 2) // 3)
        rank_pages = max(1, per - graph_pages)
        self._zipfs[pid] = BoundedZipf(
            graph_pages, alpha=self.neighbor_alpha,
            perm_rng=np.random.default_rng(8100 + index),
        )
        return {
            "graph": machine.mmap(pid, graph_pages, name="graph"),
            "ranks": machine.mmap(pid, rank_pages, name="ranks"),
        }

    def _process_epoch(
        self,
        proc: ProcessContext,
        epoch_idx: int,
        n_accesses: int,
        rng: np.random.Generator,
    ) -> AccessBatch:
        n_neigh = int(n_accesses * self.neighbor_fraction)
        n_sweep = n_accesses - n_neigh

        ranks = proc.vma("ranks")
        sweep = windowed_sweep(ranks.npages, n_sweep, 4)
        # The sweep writes the new rank vector: alternate load/store.
        is_store = np.zeros(n_sweep, dtype=bool)
        is_store[1::2] = True
        sweep_batch = batch_on_vma(
            ranks, sweep, pid=proc.pid, cpu=proc.cpu, is_store=is_store,
            ip=_IP_RANKS, rng=rng,
        )

        graph = proc.vma("graph")
        neigh = self._zipfs[proc.pid].sample(rng, n_neigh)
        neigh_batch = batch_on_vma(
            graph, neigh, pid=proc.pid, cpu=proc.cpu, ip=_IP_NEIGHBORS, rng=rng
        )
        return AccessBatch.concat([sweep_batch, neigh_batch])
