"""Workload registry: name → factory, plus the paper's Table III suite.

Footprints are the paper's inputs scaled down by :data:`DEFAULT_SCALE`
(the simulator runs millions, not trillions, of accesses; all
experiments depend on *ratios* — tier1 : footprint, samples : pages —
which the registry preserves).  Pass a different ``scale`` to the
factories to trade fidelity against runtime.
"""

from __future__ import annotations

from collections.abc import Callable

from .base import Workload
from .data_analytics import DataAnalytics
from .data_caching import DataCaching
from .graph500 import Graph500
from .graph_analytics import GraphAnalytics
from .gups import GUPS
from .lulesh import LULESH
from .web_serving import WebServing
from .xsbench import XSBench

__all__ = [
    "WORKLOADS",
    "WORKLOAD_NAMES",
    "make_workload",
    "paper_suite",
    "DEFAULT_SCALE",
]

#: Linear footprint scale-down applied to the paper's inputs (1/64).
DEFAULT_SCALE = 1.0

#: Minimum pages any scaled footprint may shrink to.
_MIN_PAGES = 256


def _scaled(pages: int, scale: float, n_processes: int) -> int:
    return max(_MIN_PAGES, n_processes, int(pages * scale))


def _gups(scale: float = DEFAULT_SCALE, **kw) -> Workload:
    kw.setdefault("footprint_pages", _scaled(16_384, scale, 8))
    return GUPS(**kw)


def _xsbench(scale: float = DEFAULT_SCALE, **kw) -> Workload:
    kw.setdefault("footprint_pages", _scaled(245_760, scale, 8))
    return XSBench(**kw)


def _graph500(scale: float = DEFAULT_SCALE, **kw) -> Workload:
    kw.setdefault("footprint_pages", _scaled(16_384, scale, 8))
    return Graph500(**kw)


def _graph_analytics(scale: float = DEFAULT_SCALE, **kw) -> Workload:
    kw.setdefault("footprint_pages", _scaled(45_056, scale, 17))
    return GraphAnalytics(**kw)


def _lulesh(scale: float = DEFAULT_SCALE, **kw) -> Workload:
    kw.setdefault("footprint_pages", _scaled(86_016, scale, 8))
    return LULESH(**kw)


def _data_caching(scale: float = DEFAULT_SCALE, **kw) -> Workload:
    kw.setdefault("footprint_pages", _scaled(98_304, scale, 12))
    return DataCaching(**kw)


def _data_analytics(scale: float = DEFAULT_SCALE, **kw) -> Workload:
    kw.setdefault("footprint_pages", _scaled(33_792, scale, 33))
    return DataAnalytics(**kw)


def _web_serving(scale: float = DEFAULT_SCALE, **kw) -> Workload:
    kw.setdefault("footprint_pages", _scaled(4_608, scale, 15))
    return WebServing(**kw)


WORKLOADS: dict[str, Callable[..., Workload]] = {
    "data-analytics": _data_analytics,
    "data-caching": _data_caching,
    "graph500": _graph500,
    "graph-analytics": _graph_analytics,
    "gups": _gups,
    "lulesh": _lulesh,
    "web-serving": _web_serving,
    "xsbench": _xsbench,
}

#: Table III order.
WORKLOAD_NAMES = tuple(WORKLOADS)


def make_workload(name: str, scale: float = DEFAULT_SCALE, **kw) -> Workload:
    """Instantiate a Table III workload by name."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None
    return factory(scale=scale, **kw)


def paper_suite(scale: float = DEFAULT_SCALE, **kw) -> dict[str, Workload]:
    """The full Table III suite at the given scale."""
    return {name: make_workload(name, scale=scale, **kw) for name in WORKLOAD_NAMES}
