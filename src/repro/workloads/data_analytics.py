"""Data-Analytics (CloudSuite) workload model.

CloudSuite's data-analytics benchmark runs machine-learning
(classification) jobs over a Wikipedia dump on a Spark/Hadoop master
with 32 workers.  Per task: a sequential scan over the worker's input
shard, feature extraction into a per-worker scratch region, and very
hot reads of the shared model/dictionary pages (heavily reused →
largely cache-resident).

Profiling character (Table IV): the *largest* A-bit page counts of the
suite — 33 processes each touching their shard every epoch — while IBS
sees comparatively fewer distinct pages because reuse keeps much of the
traffic in the caches.
"""

from __future__ import annotations

import numpy as np

from ..memsim.events import AccessBatch
from ..memsim.machine import Machine
from .base import ProcessContext, Workload
from .synth import BoundedZipf, batch_on_vma, sequential_sweep, windowed_sweep

__all__ = ["DataAnalytics"]

_IP_SCAN = 0xA000_0000
_IP_MODEL = 0xA000_1000
_IP_SCRATCH = 0xA000_2000


class DataAnalytics(Workload):
    """ML-over-text scans with a hot shared model region."""

    name = "data-analytics"

    def __init__(
        self,
        footprint_pages: int = 33_792,
        n_processes: int = 33,  # 1 master + 32 workers
        accesses_per_epoch: int = 170_000,
        model_pages: int = 96,
        model_fraction: float = 0.6,
        scratch_pages: int = 32,
        **kw,
    ):
        super().__init__(footprint_pages, n_processes, accesses_per_epoch, **kw)
        self.model_pages = int(model_pages)
        self.model_fraction = float(model_fraction)
        self.scratch_pages = int(scratch_pages)
        self._model_zipf = BoundedZipf(self.model_pages, alpha=1.2)

    def _map_process(self, machine: Machine, pid: int, index: int):
        return {
            "shard": machine.mmap(pid, self.pages_per_process, name="shard"),
            "model": machine.mmap(pid, self.model_pages, name="model"),
            "scratch": machine.mmap(pid, self.scratch_pages, name="scratch"),
        }

    def _process_epoch(
        self,
        proc: ProcessContext,
        epoch_idx: int,
        n_accesses: int,
        rng: np.random.Generator,
    ) -> AccessBatch:
        n_model = int(n_accesses * self.model_fraction)
        n_scratch = n_accesses // 10
        n_scan = n_accesses - n_model - n_scratch

        shard = proc.vma("shard")
        # Scans resume where the previous epoch's task left off, reading
        # several lines per page (text parsing is streaming).
        dwell = 4
        start = (epoch_idx * (n_scan // dwell)) % shard.npages
        scan = windowed_sweep(shard.npages, n_scan, dwell, start=start)
        scan_batch = batch_on_vma(
            shard, scan, pid=proc.pid, cpu=proc.cpu, ip=_IP_SCAN, rng=rng
        )

        model = proc.vma("model")
        model_batch = batch_on_vma(
            model, self._model_zipf.sample(rng, n_model),
            pid=proc.pid, cpu=proc.cpu, ip=_IP_MODEL, rng=rng,
        )

        scratch = proc.vma("scratch")
        scratch_batch = batch_on_vma(
            scratch, sequential_sweep(scratch.npages, n_scratch),
            pid=proc.pid, cpu=proc.cpu, is_store=True, ip=_IP_SCRATCH, rng=rng,
        )
        return AccessBatch.concat([scan_batch, model_batch, scratch_batch])
