"""Workload colocation: several tenants sharing one machine.

The paper's evaluation runs one workload at a time, but TMP's design —
the resource-usage process filter, per-PID page tables, PMU gating — is
motivated by consolidated cloud servers where many applications share
the memory system (§I).  :class:`MultiWorkload` composes Table III
workloads into one tenant mix: each keeps its own processes and VMAs
(PID bases are spaced automatically), per-epoch streams interleave in
chunks, and the combined footprint competes for the same TLBs, caches,
and memory tiers.
"""

from __future__ import annotations

import numpy as np

from ..memsim.events import AccessBatch
from ..memsim.machine import Machine
from .base import Workload, interleave

__all__ = ["MultiWorkload"]

#: Gap between successive tenants' PID ranges.
_PID_STRIDE = 1000


class MultiWorkload(Workload):
    """A tenant mix behaving as a single composite workload."""

    name = "colocation"

    def __init__(self, tenants: list[Workload]):
        if not tenants:
            raise ValueError("need at least one tenant workload")
        # Space tenants' PID ranges so they never collide.
        for i, tenant in enumerate(tenants):
            tenant.pid_base = 100 + i * _PID_STRIDE
        super().__init__(
            footprint_pages=sum(t.footprint_pages for t in tenants),
            n_processes=sum(t.n_processes for t in tenants),
            accesses_per_epoch=sum(t.accesses_per_epoch for t in tenants),
        )
        self.tenants = list(tenants)
        self.name = "+".join(t.name for t in tenants)

    def attach(self, machine: Machine) -> None:
        """Attach every tenant to the shared machine."""
        if self._machine is not None:
            raise RuntimeError(f"workload {self.name!r} is already attached")
        self._machine = machine
        for tenant in self.tenants:
            tenant.attach(machine)
            self.processes.extend(tenant.processes)

    def epoch(self, epoch_idx: int, rng: np.random.Generator) -> AccessBatch:
        """Interleave all tenants' epoch streams."""
        if self._machine is None:
            raise RuntimeError(f"workload {self.name!r} is not attached to a machine")
        return interleave([t.epoch(epoch_idx, rng) for t in self.tenants], rng)

    def init_stream(self, rng: np.random.Generator, dwell: int = 2) -> AccessBatch:
        """Interleave all tenants' population phases."""
        if self._machine is None:
            raise RuntimeError(f"workload {self.name!r} is not attached to a machine")
        return interleave([t.init_stream(rng, dwell=dwell) for t in self.tenants], rng)

    def _process_epoch(self, proc, epoch_idx, n_accesses, rng):  # pragma: no cover
        raise NotImplementedError("MultiWorkload delegates to its tenants")

    def tenant_pids(self) -> dict[str, list[int]]:
        """PID ranges per tenant name (for daemon registration)."""
        return {t.name: t.pids for t in self.tenants}
