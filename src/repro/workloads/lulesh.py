"""LULESH workload model.

LULESH (Livermore Unstructured Lagrangian Explicit Shock Hydrodynamics)
marches a structured hexahedral mesh through timesteps; each step
sweeps several nodal and element-centered arrays sequentially, with
strided companion accesses for the stencil neighbors in the slower
mesh dimensions.  Locality is high — sweeps are prefetch- and
TLB-friendly — so although the footprint is large (the paper runs a
21 GB problem), the hot set per epoch is a moving sequential window and
the LLC-miss stream is dominated by streaming (low-reuse) pages.
"""

from __future__ import annotations

import numpy as np

from ..memsim.events import AccessBatch
from ..memsim.machine import Machine
from .base import ProcessContext, Workload
from .synth import batch_on_vma, strided_sweep, windowed_sweep

__all__ = ["LULESH"]

_IP_NODAL = 0x8000_0000
_IP_ELEM = 0x8000_1000
_IP_STENCIL = 0x8000_2000


class LULESH(Workload):
    """Structured-mesh stencil sweeps over nodal + element arrays."""

    name = "lulesh"

    def __init__(
        self,
        footprint_pages: int = 86_016,
        n_processes: int = 8,
        accesses_per_epoch: int = 160_000,
        plane_stride: int = 32,
        dwell: int = 8,
        thp: bool = False,
        **kw,
    ):
        super().__init__(footprint_pages, n_processes, accesses_per_epoch, **kw)
        self.plane_stride = int(plane_stride)
        self.dwell = int(dwell)
        #: THP-back the mesh arrays (large anonymous allocations).
        self.thp = bool(thp)

    def _map_process(self, machine: Machine, pid: int, index: int):
        per = self.pages_per_process
        nodal_pages = max(1, per // 2)
        elem_pages = max(1, per - nodal_pages)
        order = 9 if self.thp else 0
        return {
            "nodal": machine.mmap(pid, nodal_pages, name="nodal", page_order=order),
            "elem": machine.mmap(pid, elem_pages, name="elem", page_order=order),
        }

    def _process_epoch(
        self,
        proc: ProcessContext,
        epoch_idx: int,
        n_accesses: int,
        rng: np.random.Generator,
    ) -> AccessBatch:
        n_nodal = n_accesses // 2
        n_elem = n_accesses // 3
        n_stencil = n_accesses - n_nodal - n_elem

        nodal = proc.vma("nodal")
        # The sweep window advances each timestep (epoch): velocity /
        # position updates are load-store pairs, with `dwell` line
        # touches per page before advancing.
        start = (epoch_idx * (n_nodal // self.dwell) // 4) % nodal.npages
        sweep = windowed_sweep(nodal.npages, n_nodal, self.dwell, start=start)
        is_store = np.zeros(n_nodal, dtype=bool)
        is_store[1::2] = True
        nodal_batch = batch_on_vma(
            nodal, sweep, pid=proc.pid, cpu=proc.cpu, is_store=is_store,
            ip=_IP_NODAL, rng=rng,
        )

        elem = proc.vma("elem")
        elem_sweep = windowed_sweep(
            elem.npages, n_elem, self.dwell,
            start=(epoch_idx * (n_elem // self.dwell) // 4) % elem.npages,
        )
        elem_batch = batch_on_vma(
            elem, elem_sweep, pid=proc.pid, cpu=proc.cpu, ip=_IP_ELEM, rng=rng
        )

        # Stencil neighbors in the k-dimension: strided companion reads.
        stencil = strided_sweep(
            nodal.npages, n_stencil, stride=self.plane_stride,
            start=start % self.plane_stride,
        )
        stencil_batch = batch_on_vma(
            nodal, stencil, pid=proc.pid, cpu=proc.cpu, ip=_IP_STENCIL, rng=rng
        )
        return AccessBatch.concat([nodal_batch, elem_batch, stencil_batch])
