"""XSBench workload model.

XSBench distills the macroscopic-cross-section lookup kernel of Monte
Carlo neutron transport (OpenMC): each particle history performs
lookups at random energy grid points across a *huge* unionized grid
(the paper runs the 120 GB input), reading a handful of consecutive
nuclide rows per lookup, plus hot accesses to a small nuclide index.

The result is the thinnest page coverage of any Table III workload:
the footprint dwarfs what any sampler can see, IBS detects ~40-110x
more pages than the budgeted A-bit scan, and virtually every grid
access misses the LLC.
"""

from __future__ import annotations

import numpy as np

from ..memsim.events import AccessBatch
from ..memsim.machine import Machine
from .base import ProcessContext, Workload
from .synth import BoundedZipf, batch_on_vma, uniform_pages

__all__ = ["XSBench"]

_IP_GRID = 0x5000_0000
_IP_INDEX = 0x5000_1000


class XSBench(Workload):
    """Monte Carlo cross-section lookup kernel."""

    name = "xsbench"

    def __init__(
        self,
        footprint_pages: int = 245_760,
        n_processes: int = 8,
        accesses_per_epoch: int = 160_000,
        index_pages: int = 128,
        lookup_width: int = 4,
        index_fraction: float = 0.25,
        thp: bool = False,
        **kw,
    ):
        super().__init__(footprint_pages, n_processes, accesses_per_epoch, **kw)
        self.index_pages = int(index_pages)
        self.lookup_width = int(lookup_width)
        self.index_fraction = float(index_fraction)
        #: THP-back the unionized grid (huge anonymous allocation).
        self.thp = bool(thp)
        self._index_zipf: BoundedZipf | None = None

    def _map_process(self, machine: Machine, pid: int, index: int):
        if self._index_zipf is None:
            self._index_zipf = BoundedZipf(self.index_pages, alpha=1.1)
        order = 9 if self.thp else 0
        return {
            "grid": machine.mmap(
                pid, self.pages_per_process, name="grid", page_order=order
            ),
            "index": machine.mmap(pid, self.index_pages, name="index"),
        }

    def _process_epoch(
        self,
        proc: ProcessContext,
        epoch_idx: int,
        n_accesses: int,
        rng: np.random.Generator,
    ) -> AccessBatch:
        n_index = int(n_accesses * self.index_fraction)
        n_grid = n_accesses - n_index
        n_lookups = max(1, n_grid // self.lookup_width)

        grid = proc.vma("grid")
        # Each lookup reads `lookup_width` consecutive pages at a random
        # grid point (the nuclide rows bracketing the sampled energy).
        points = uniform_pages(rng, grid.npages - self.lookup_width, n_lookups)
        pages = (points[:, None] + np.arange(self.lookup_width)).ravel()
        grid_batch = batch_on_vma(
            grid, pages, pid=proc.pid, cpu=proc.cpu, is_store=False,
            ip=_IP_GRID, rng=rng,
        )

        idx_vma = proc.vma("index")
        idx_pages = self._index_zipf.sample(rng, n_index)
        index_batch = batch_on_vma(
            idx_vma, idx_pages, pid=proc.pid, cpu=proc.cpu, is_store=False,
            ip=_IP_INDEX, rng=rng,
        )
        # Lookups and index probes interleave in reality; concatenation
        # inside one process is fine — cross-process interleaving is
        # handled by the base class.
        return AccessBatch.concat([grid_batch, index_batch])
