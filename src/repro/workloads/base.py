"""Workload abstractions: epoch-structured access-stream generators.

A :class:`Workload` owns one or more simulated processes, maps their
VMAs on a machine via :meth:`attach`, and then emits one
:class:`~repro.memsim.events.AccessBatch` per *epoch* (the paper's
policy/profiling quantum, nominally one second of execution).  All
randomness flows through the caller-supplied ``numpy.random.Generator``
so runs are reproducible end to end.

Multi-process workloads (Table III runs CloudSuite services with many
workers and HPC codes with 8 ranks) split their footprint across
processes and interleave the per-process streams in small chunks, which
is what creates the TLB/cache contention a shared machine would see.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..memsim.events import AccessBatch
from ..memsim.machine import Machine
from ..memsim.page_table import VMA

__all__ = ["Workload", "ProcessContext", "interleave"]


@dataclass
class ProcessContext:
    """One simulated process of a workload: its PID and mapped regions."""

    pid: int
    cpu: int
    vmas: dict[str, VMA]

    def vma(self, name: str) -> VMA:
        """Look up one of the process's regions by name."""
        return self.vmas[name]


def interleave(
    batches: list[AccessBatch], rng: np.random.Generator, chunk: int = 256
) -> AccessBatch:
    """Interleave per-process streams in randomized chunks.

    Each stream is cut into ``chunk``-sized pieces; pieces are merged in
    a random global order that preserves each stream's internal order —
    a round-robin-with-jitter model of concurrent execution.
    """
    batches = [b for b in batches if b.n]
    if not batches:
        return AccessBatch.empty()
    if len(batches) == 1:
        return batches[0]
    pieces: list[tuple[float, int, int, int]] = []
    for bi, b in enumerate(batches):
        n_pieces = (b.n + chunk - 1) // chunk
        # Jittered timeline position for each piece keeps per-stream order
        # (cumulative) while shuffling across streams.
        positions = np.cumsum(rng.uniform(0.5, 1.5, n_pieces))
        for pi in range(n_pieces):
            pieces.append((float(positions[pi]), bi, pi * chunk, min((pi + 1) * chunk, b.n)))
    pieces.sort()
    return AccessBatch.concat([batches[bi].take(slice(lo, hi)) for _, bi, lo, hi in pieces])


class Workload(ABC):
    """Base class for the Table III workload models.

    Parameters
    ----------
    footprint_pages:
        Total data footprint across all processes, in 4 KiB pages.
    n_processes:
        Number of simulated processes (ranks / workers / instances).
    accesses_per_epoch:
        Total accesses emitted per epoch across all processes.
    pid_base:
        First PID; processes get consecutive PIDs.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    def __init__(
        self,
        footprint_pages: int,
        n_processes: int = 1,
        accesses_per_epoch: int = 200_000,
        pid_base: int = 100,
    ):
        if footprint_pages < n_processes:
            raise ValueError(
                f"footprint_pages ({footprint_pages}) must cover at least one "
                f"page per process ({n_processes})"
            )
        if n_processes < 1:
            raise ValueError(f"n_processes must be >= 1, got {n_processes}")
        self.footprint_pages = int(footprint_pages)
        self.n_processes = int(n_processes)
        self.accesses_per_epoch = int(accesses_per_epoch)
        self.pid_base = int(pid_base)
        self.processes: list[ProcessContext] = []
        self._machine: Machine | None = None

    @property
    def pids(self) -> list[int]:
        """PIDs of the workload's processes."""
        return [p.pid for p in self.processes]

    @property
    def pages_per_process(self) -> int:
        """Data pages owned by each process."""
        return self.footprint_pages // self.n_processes

    def attach(self, machine: Machine) -> None:
        """Map the workload's VMAs on ``machine`` (idempotent guard)."""
        if self._machine is not None:
            raise RuntimeError(f"workload {self.name!r} is already attached")
        self._machine = machine
        for i in range(self.n_processes):
            pid = self.pid_base + i
            cpu = i % machine.config.n_cpus
            vmas = self._map_process(machine, pid, i)
            self.processes.append(ProcessContext(pid=pid, cpu=cpu, vmas=vmas))

    def _map_process(self, machine: Machine, pid: int, index: int) -> dict[str, VMA]:
        """Map one process's regions; default: a single data VMA."""
        return {"data": machine.mmap(pid, self.pages_per_process, name="data")}

    def epoch(self, epoch_idx: int, rng: np.random.Generator) -> AccessBatch:
        """Generate the epoch's access stream across all processes."""
        if self._machine is None:
            raise RuntimeError(f"workload {self.name!r} is not attached to a machine")
        per_proc = max(1, self.accesses_per_epoch // self.n_processes)
        streams = [
            self._process_epoch(proc, epoch_idx, per_proc, rng)
            for proc in self.processes
        ]
        return interleave(streams, rng)

    def init_stream(self, rng: np.random.Generator, dwell: int = 2) -> AccessBatch:
        """The population phase: write every page once, in address order.

        Real services initialize before they serve — memcached loads
        its dataset, HPC ranks fill their arrays, JVMs build heaps — so
        a page's *allocation* order carries no hotness information.
        Running this stream before epoch 0 gives first-touch policies
        (the FCFA baseline) their realistic, hotness-blind placement.
        """
        if self._machine is None:
            raise RuntimeError(f"workload {self.name!r} is not attached to a machine")
        streams = []
        for proc in self.processes:
            for vma in proc.vmas.values():
                pages = np.repeat(np.arange(vma.npages, dtype=np.int64), dwell)
                from .synth import batch_on_vma

                streams.append(
                    batch_on_vma(
                        vma, pages, pid=proc.pid, cpu=proc.cpu, is_store=True, rng=rng
                    )
                )
        return interleave(streams, rng)

    @abstractmethod
    def _process_epoch(
        self,
        proc: ProcessContext,
        epoch_idx: int,
        n_accesses: int,
        rng: np.random.Generator,
    ) -> AccessBatch:
        """Generate one process's stream for this epoch."""

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(footprint_pages={self.footprint_pages}, "
            f"n_processes={self.n_processes}, "
            f"accesses_per_epoch={self.accesses_per_epoch})"
        )
