"""Data-Caching (CloudSuite memcached) workload model.

Four memcached server instances serve a Twitter-derived key-value
dataset to eight closed-loop clients.  Server heaps hold slab-allocated
values whose popularity follows the Twitter request skew (Zipf,
α ≈ 1.0); a compact hash index takes a probe per request; ~10 % of
requests are SETs that write a value page.  Clients run tiny
footprints: request buffers reused every request (cache-resident).

Profiling character (Table IV): A-bit and IBS page counts land close to
parity — the per-epoch touched set (what a budgeted scan can see) and
the memory-miss hot set (what IBS samples) are both the Zipf head.
"""

from __future__ import annotations

import numpy as np

from ..memsim.events import AccessBatch
from ..memsim.machine import Machine
from .base import ProcessContext, Workload
from .synth import BoundedZipf, batch_on_vma, sequential_sweep

__all__ = ["DataCaching"]

_IP_VALUES = 0x9000_0000
_IP_INDEX = 0x9000_1000
_IP_CLIENT = 0x9000_2000


class DataCaching(Workload):
    """memcached-style Zipfian GET/SET service."""

    name = "data-caching"

    def __init__(
        self,
        footprint_pages: int = 98_304,
        n_servers: int = 4,
        n_clients: int = 8,
        accesses_per_epoch: int = 180_000,
        zipf_alpha: float = 1.2,
        set_fraction: float = 0.1,
        index_pages: int = 256,
        client_pages: int = 64,
        index_fraction: float = 0.2,
        **kw,
    ):
        super().__init__(
            footprint_pages, n_servers + n_clients, accesses_per_epoch, **kw
        )
        self.n_servers = int(n_servers)
        self.n_clients = int(n_clients)
        self.zipf_alpha = float(zipf_alpha)
        self.set_fraction = float(set_fraction)
        self.index_pages = int(index_pages)
        self.client_pages = int(client_pages)
        self.index_fraction = float(index_fraction)
        self._zipfs: dict[int, BoundedZipf] = {}

    @property
    def heap_pages_per_server(self) -> int:
        """Value-heap pages per memcached instance."""
        return self.footprint_pages // self.n_servers

    def _map_process(self, machine: Machine, pid: int, index: int):
        if index < self.n_servers:
            heap = self.heap_pages_per_server
            self._zipfs[pid] = BoundedZipf(
                heap, alpha=self.zipf_alpha,
                perm_rng=np.random.default_rng(9300 + index),
            )
            return {
                "values": machine.mmap(pid, heap, name="values"),
                "index": machine.mmap(pid, self.index_pages, name="index"),
            }
        return {"reqbuf": machine.mmap(pid, self.client_pages, name="reqbuf")}

    def _process_epoch(
        self,
        proc: ProcessContext,
        epoch_idx: int,
        n_accesses: int,
        rng: np.random.Generator,
    ) -> AccessBatch:
        if "values" in proc.vmas:
            return self._server_epoch(proc, n_accesses, rng)
        return self._client_epoch(proc, n_accesses, rng)

    def _server_epoch(self, proc, n_accesses, rng) -> AccessBatch:
        # Value accesses dominate; the compact hash index takes a much
        # smaller probe share (and stays largely cache-resident).
        n_index = int(n_accesses * self.index_fraction)
        n_values = n_accesses - n_index
        values = proc.vma("values")
        index = proc.vma("index")

        value_pages = self._zipfs[proc.pid].sample(rng, n_values)
        is_set = rng.random(n_values) < self.set_fraction
        value_batch = batch_on_vma(
            values, value_pages, pid=proc.pid, cpu=proc.cpu, is_store=is_set,
            ip=_IP_VALUES, rng=rng,
        )
        # Hash-index probes: uniform over the compact index.
        idx_pages = rng.integers(0, index.npages, n_index)
        idx_batch = batch_on_vma(
            index, idx_pages, pid=proc.pid, cpu=proc.cpu, ip=_IP_INDEX, rng=rng
        )
        return AccessBatch.concat([idx_batch, value_batch])

    def _client_epoch(self, proc, n_accesses, rng) -> AccessBatch:
        # Clients are cheap: reuse a small request buffer continuously.
        # (Light enough to fall below TMP's 5% CPU filter threshold.)
        buf = proc.vma("reqbuf")
        n = max(16, n_accesses // 32)
        sweep = sequential_sweep(buf.npages, n)
        return batch_on_vma(
            buf, sweep, pid=proc.pid, cpu=proc.cpu, ip=_IP_CLIENT, rng=rng
        )
