"""Graph500 (BFS over an RMAT graph) workload model.

Breadth-first search alternates between level phases of wildly varying
frontier sizes (the classic small → explosive → shrinking BFS wave on a
Kronecker/RMAT graph).  Per level: a sequential pass over the frontier
array, degree-skewed random reads of the CSR edge array (RMAT degree
distributions are power-law), and random read-modify-writes to the
visited bitmap.

The phase structure makes Graph500 the workload where epoch-to-epoch
intensity swings are largest, which exercises TMP's HWPC gating and
makes the History policy's one-epoch lag visible.
"""

from __future__ import annotations

import numpy as np

from ..memsim.events import AccessBatch
from ..memsim.machine import Machine
from .base import ProcessContext, Workload
from .synth import BoundedZipf, batch_on_vma, rmw_expand, sequential_sweep

__all__ = ["Graph500"]

_IP_FRONTIER = 0x6000_0000
_IP_EDGES = 0x6000_1000
_IP_VISITED = 0x6000_2000

#: Relative intensity of successive BFS levels (cycled per epoch).
_LEVEL_INTENSITY = (0.1, 0.45, 1.0, 0.7, 0.25)


class Graph500(Workload):
    """BFS over a synthetic power-law graph in CSR form."""

    name = "graph500"

    def __init__(
        self,
        footprint_pages: int = 16_384,
        n_processes: int = 8,
        accesses_per_epoch: int = 160_000,
        edge_alpha: float = 0.7,
        thp: bool = False,
        **kw,
    ):
        super().__init__(footprint_pages, n_processes, accesses_per_epoch, **kw)
        self.edge_alpha = float(edge_alpha)
        #: THP-back the CSR edge array (the big allocation).
        self.thp = bool(thp)
        self._edge_zipf: BoundedZipf | None = None

    def _map_process(self, machine: Machine, pid: int, index: int):
        per = self.pages_per_process
        edge_pages = max(1, (per * 3) // 4)  # edges dominate CSR storage
        frontier_pages = max(1, per // 8)
        visited_pages = max(1, per - edge_pages - frontier_pages)
        if self._edge_zipf is None:
            self._edge_zipf = BoundedZipf(
                edge_pages, alpha=self.edge_alpha,
                perm_rng=np.random.default_rng(4500),
            )
        return {
            "edges": machine.mmap(
                pid, edge_pages, name="edges", page_order=9 if self.thp else 0
            ),
            "frontier": machine.mmap(pid, frontier_pages, name="frontier"),
            "visited": machine.mmap(pid, visited_pages, name="visited"),
        }

    def _process_epoch(
        self,
        proc: ProcessContext,
        epoch_idx: int,
        n_accesses: int,
        rng: np.random.Generator,
    ) -> AccessBatch:
        intensity = _LEVEL_INTENSITY[epoch_idx % len(_LEVEL_INTENSITY)]
        n = max(16, int(n_accesses * intensity))
        n_frontier = n // 4
        n_visited_pairs = n // 8
        n_edges = n - n_frontier - 2 * n_visited_pairs

        frontier = proc.vma("frontier")
        seq = sequential_sweep(
            frontier.npages, n_frontier, start=(epoch_idx * 7) % frontier.npages
        )
        fr_batch = batch_on_vma(
            frontier, seq, pid=proc.pid, cpu=proc.cpu, ip=_IP_FRONTIER, rng=rng
        )

        edges = proc.vma("edges")
        edge_pages = self._edge_zipf.sample(rng, n_edges)
        # The shared zipf is sized for this topology; clamp defensively
        # in case of ragged per-process region sizes.
        edge_pages = np.minimum(edge_pages, edges.npages - 1)
        ed_batch = batch_on_vma(
            edges, edge_pages, pid=proc.pid, cpu=proc.cpu, ip=_IP_EDGES, rng=rng
        )

        visited = proc.vma("visited")
        targets = rng.integers(0, visited.npages, n_visited_pairs)
        pages, is_store = rmw_expand(targets, rng, store_fraction=0.6)
        vi_batch = batch_on_vma(
            visited, pages, pid=proc.pid, cpu=proc.cpu, is_store=is_store,
            ip=_IP_VISITED, rng=rng,
        )
        return AccessBatch.concat([fr_batch, ed_batch, vi_batch])
