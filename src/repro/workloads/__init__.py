"""Synthetic access-stream models of the paper's Table III workloads."""

from .base import ProcessContext, Workload, interleave
from .colocation import MultiWorkload
from .data_analytics import DataAnalytics
from .data_caching import DataCaching
from .graph500 import Graph500
from .graph_analytics import GraphAnalytics
from .gups import GUPS
from .lulesh import LULESH
from .registry import (
    DEFAULT_SCALE,
    WORKLOAD_NAMES,
    WORKLOADS,
    make_workload,
    paper_suite,
)
from .synth import (
    BoundedZipf,
    batch_on_vma,
    rmw_expand,
    sequential_sweep,
    strided_sweep,
    uniform_pages,
)
from .web_serving import WebServing
from .xsbench import XSBench

__all__ = [
    "BoundedZipf",
    "DataAnalytics",
    "DataCaching",
    "DEFAULT_SCALE",
    "GUPS",
    "Graph500",
    "GraphAnalytics",
    "LULESH",
    "MultiWorkload",
    "ProcessContext",
    "WORKLOADS",
    "WORKLOAD_NAMES",
    "WebServing",
    "Workload",
    "XSBench",
    "batch_on_vma",
    "interleave",
    "make_workload",
    "paper_suite",
    "rmw_expand",
    "sequential_sweep",
    "strided_sweep",
    "uniform_pages",
]
