"""Synthetic access-pattern building blocks.

The Table III workloads are composed from a handful of primitives:
bounded Zipfian page popularity (key-value skew, graph-degree skew),
uniform random sparsity (GUPS, Monte Carlo lookups), sequential and
strided sweeps (scans, stencils), and read-modify-write expansion.
"""

from __future__ import annotations

import numpy as np

from ..memsim.address import ADDR_DTYPE, PAGE_OFFSET_MASK
from ..memsim.events import AccessBatch
from ..memsim.page_table import VMA

__all__ = [
    "BoundedZipf",
    "uniform_pages",
    "sequential_sweep",
    "windowed_sweep",
    "strided_sweep",
    "rmw_expand",
    "batch_on_vma",
]


class BoundedZipf:
    """Zipfian sampling over ranks ``0..n-1`` with exponent ``alpha``.

    ``P(rank=k) ∝ 1/(k+1)^alpha``.  Rank 0 is hottest.  A fixed random
    permutation (drawn once from ``perm_rng``) maps ranks to page
    indices so the hot set is scattered through the address space, as
    hash-distributed keys or degree-skewed graph nodes would be.
    """

    def __init__(
        self,
        n: int,
        alpha: float = 1.0,
        perm_rng: np.random.Generator | None = None,
    ):
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.n = int(n)
        self.alpha = float(alpha)
        weights = 1.0 / np.power(np.arange(1, self.n + 1, dtype=np.float64), alpha)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        if perm_rng is None:
            self._perm = None
        else:
            self._perm = perm_rng.permutation(self.n)

    def sample_ranks(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` ranks (0 = hottest)."""
        return np.searchsorted(self._cdf, rng.random(size), side="right")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` page indices in ``[0, n)``."""
        ranks = self.sample_ranks(rng, size)
        if self._perm is None:
            return ranks
        return self._perm[ranks]

    def hot_fraction_pages(self, mass: float = 0.5) -> int:
        """How many hottest ranks carry ``mass`` of the probability."""
        return int(np.searchsorted(self._cdf, mass, side="left")) + 1


def uniform_pages(rng: np.random.Generator, n_pages: int, size: int) -> np.ndarray:
    """Uniform random page indices in ``[0, n_pages)`` (GUPS-style)."""
    return rng.integers(0, n_pages, size=size, dtype=np.int64)


def sequential_sweep(n_pages: int, size: int, start: int = 0) -> np.ndarray:
    """``size`` page indices sweeping ``[0, n_pages)`` circularly.

    Each page is visited in order, possibly multiple consecutive times
    when ``size > n_pages`` (dwell), or as a truncated prefix otherwise.
    """
    if n_pages < 1:
        raise ValueError(f"n_pages must be >= 1, got {n_pages}")
    if size <= n_pages:
        return (np.arange(size, dtype=np.int64) + start) % n_pages
    dwell = size // n_pages
    idx = np.repeat(np.arange(n_pages, dtype=np.int64), dwell)
    rem = size - idx.size
    if rem:
        idx = np.concatenate([idx, np.arange(rem, dtype=np.int64)])
    return (idx + start) % n_pages


def windowed_sweep(
    n_pages: int, size: int, dwell: int, start: int = 0
) -> np.ndarray:
    """Sequential sweep with ``dwell`` consecutive accesses per page.

    Models a scan that reads multiple cache lines from each page before
    advancing (the dominant pattern of streaming/stencil codes): a
    dwell of *d* means only 1-in-*d* accesses can TLB-miss.  The window
    covered is ``size // dwell`` pages starting at ``start`` (circular).
    """
    if dwell < 1:
        raise ValueError(f"dwell must be >= 1, got {dwell}")
    n_window = max(1, size // dwell)
    pages = (start + np.arange(n_window, dtype=np.int64)) % n_pages
    out = np.repeat(pages, dwell)
    if out.size < size:
        out = np.concatenate([out, np.full(size - out.size, pages[-1], dtype=np.int64)])
    return out[:size]


def strided_sweep(n_pages: int, size: int, stride: int, start: int = 0) -> np.ndarray:
    """Strided circular sweep (column-major stencil sweeps, SoA codes)."""
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    return (start + np.arange(size, dtype=np.int64) * stride) % n_pages


def rmw_expand(pages: np.ndarray, rng: np.random.Generator, store_fraction: float = 1.0):
    """Expand update targets into read-modify-write (load, store) pairs.

    Returns ``(pages2, is_store)`` where each input page appears twice
    consecutively: a load then (with probability ``store_fraction``) a
    store.
    """
    pages = np.asarray(pages, dtype=np.int64)
    pages2 = np.repeat(pages, 2)
    is_store = np.zeros(pages2.size, dtype=bool)
    writes = rng.random(pages.size) < store_fraction
    is_store[1::2] = writes
    return pages2, is_store


def batch_on_vma(
    vma: VMA,
    page_idx: np.ndarray,
    *,
    pid: int,
    cpu: int = 0,
    is_store=False,
    ip: int = 0,
    rng: np.random.Generator | None = None,
) -> AccessBatch:
    """Build an AccessBatch over a VMA from in-region page indices.

    ``page_idx`` values are offsets into the VMA (``0..npages-1``).
    In-page byte offsets are randomized (line-granular) when ``rng`` is
    given, else zero.
    """
    page_idx = np.asarray(page_idx, dtype=np.int64)
    if page_idx.size and (page_idx.min() < 0 or page_idx.max() >= vma.npages):
        raise ValueError(
            f"page indices out of range for VMA {vma.name!r} "
            f"({vma.npages} pages)"
        )
    vpns = ADDR_DTYPE(vma.start_vpn) + page_idx.astype(ADDR_DTYPE)
    if rng is None:
        offset = 0
    else:
        offset = (
            rng.integers(0, 64, size=page_idx.size, dtype=np.int64) * 64
        ) & PAGE_OFFSET_MASK
    return AccessBatch.from_pages(
        vpns, is_store=is_store, pid=pid, cpu=cpu, ip=ip, offset=offset
    )
