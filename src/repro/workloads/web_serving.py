"""Web-Serving (CloudSuite) workload model.

CloudSuite's web-serving benchmark drives an Elgg/PHP social-network
stack with the Faban load generator (the paper uses 3 servers and 100
clients).  Memory behaviour: a small, extremely hot code/opcache/DB
working set that stays cache-resident, plus per-request session and
response-buffer pages that are touched a handful of times and then
abandoned (session churn), with request-rate troughs between load
waves.

Profiling character (Table IV): the suite's starkest A-bit win — the
churn pages all get their A bit set (every touch of a fresh page is a
TLB miss), but memory intensity is so low that IBS's op-sampled trace
catches very few of them (25 K A-bit vs 3-4 K IBS).  The idle troughs
are also what exercise TMP's HWPC-based gating.
"""

from __future__ import annotations

import numpy as np

from ..memsim.events import AccessBatch
from ..memsim.machine import Machine
from .base import ProcessContext, Workload
from .synth import BoundedZipf, batch_on_vma, sequential_sweep

__all__ = ["WebServing"]

_IP_CODE = 0xB000_0000
_IP_SESSION = 0xB000_1000

#: Request-rate wave (relative intensity per epoch, cycled).
_LOAD_WAVE = (1.0, 0.85, 0.3, 0.15, 0.6)


class WebServing(Workload):
    """Request-driven service: hot code set + churning session pages."""

    name = "web-serving"

    def __init__(
        self,
        footprint_pages: int = 4_608,
        n_servers: int = 3,
        n_clients: int = 12,
        accesses_per_epoch: int = 120_000,
        code_pages: int = 192,
        session_touches: int = 6,
        hot_fraction: float = 0.9,
        **kw,
    ):
        super().__init__(
            footprint_pages, n_servers + n_clients, accesses_per_epoch, **kw
        )
        self.n_servers = int(n_servers)
        self.n_clients = int(n_clients)
        self.code_pages = int(code_pages)
        self.session_touches = int(session_touches)
        self.hot_fraction = float(hot_fraction)
        self._code_zipf = BoundedZipf(self.code_pages, alpha=1.3)

    @property
    def session_pages_per_server(self) -> int:
        """Session-arena pages per server process."""
        return self.footprint_pages // self.n_servers

    def _map_process(self, machine: Machine, pid: int, index: int):
        if index < self.n_servers:
            return {
                "code": machine.mmap(pid, self.code_pages, name="code"),
                "sessions": machine.mmap(
                    pid, self.session_pages_per_server, name="sessions"
                ),
            }
        return {"client": machine.mmap(pid, 16, name="client")}

    def _process_epoch(
        self,
        proc: ProcessContext,
        epoch_idx: int,
        n_accesses: int,
        rng: np.random.Generator,
    ) -> AccessBatch:
        intensity = _LOAD_WAVE[epoch_idx % len(_LOAD_WAVE)]
        n = max(16, int(n_accesses * intensity))
        if "code" not in proc.vmas:
            client = proc.vma("client")
            sweep = sequential_sweep(client.npages, max(8, n // 8))
            return batch_on_vma(
                client, sweep, pid=proc.pid, cpu=proc.cpu, ip=_IP_SESSION, rng=rng
            )

        n_code = int(n * self.hot_fraction)
        n_session = n - n_code

        code = proc.vma("code")
        code_batch = batch_on_vma(
            code, self._code_zipf.sample(rng, n_code),
            pid=proc.pid, cpu=proc.cpu, ip=_IP_CODE, rng=rng,
        )

        sessions = proc.vma("sessions")
        # Fresh session pages each epoch: a rotating window of the arena,
        # each page touched `session_touches` times then abandoned.
        n_fresh = max(1, n_session // self.session_touches)
        start = (epoch_idx * n_fresh) % sessions.npages
        fresh = (start + np.arange(n_fresh, dtype=np.int64)) % sessions.npages
        pages = np.repeat(fresh, self.session_touches)[:n_session]
        is_store = np.zeros(pages.size, dtype=bool)
        is_store[:: self.session_touches] = True  # first touch writes
        session_batch = batch_on_vma(
            sessions, pages, pid=proc.pid, cpu=proc.cpu, is_store=is_store,
            ip=_IP_SESSION, rng=rng,
        )
        return AccessBatch.concat([code_batch, session_batch])
