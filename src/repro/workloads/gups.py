"""GUPS (Giga-Updates Per Second) workload model.

The HPC Challenge RandomAccess kernel: read-modify-write updates to
uniformly random 8-byte slots of a giant table, plus a small sequential
substitution-stream region.  Maximal page-level sparsity — every access
goes to a cold, random page — which makes GUPS the paper's showcase for
trace-based profiling: IBS detects an order of magnitude more pages
than a budgeted A-bit scan (Table IV: 76 K→468 K IBS vs ~5.5 K A-bit),
and almost every access is both a TLB miss and an LLC miss.
"""

from __future__ import annotations

import numpy as np

from ..memsim.events import AccessBatch
from ..memsim.machine import Machine
from .base import ProcessContext, Workload
from .synth import batch_on_vma, rmw_expand, uniform_pages

__all__ = ["GUPS"]

_IP_UPDATE = 0x4000_0000
_IP_STREAM = 0x4000_1000


class GUPS(Workload):
    """Uniform random-update kernel over a large table."""

    name = "gups"

    def __init__(
        self,
        footprint_pages: int = 16_384,
        n_processes: int = 8,
        accesses_per_epoch: int = 160_000,
        stream_pages: int = 64,
        update_fraction: float = 0.9,
        thp: bool = False,
        **kw,
    ):
        super().__init__(footprint_pages, n_processes, accesses_per_epoch, **kw)
        self.stream_pages = int(stream_pages)
        self.update_fraction = float(update_fraction)
        #: Back the giant table with 2 MiB transparent huge pages, as a
        #: THP-enabled kernel would for a large anonymous allocation.
        self.thp = bool(thp)

    def _map_process(self, machine: Machine, pid: int, index: int):
        order = 9 if self.thp else 0
        return {
            "table": machine.mmap(
                pid, self.pages_per_process, name="table", page_order=order
            ),
            "stream": machine.mmap(pid, self.stream_pages, name="stream"),
        }

    def _process_epoch(
        self,
        proc: ProcessContext,
        epoch_idx: int,
        n_accesses: int,
        rng: np.random.Generator,
    ) -> AccessBatch:
        n_updates = int(n_accesses * self.update_fraction) // 2  # RMW pairs
        n_stream = n_accesses - 2 * n_updates

        table = proc.vma("table")
        targets = uniform_pages(rng, table.npages, n_updates)
        pages, is_store = rmw_expand(targets, rng, store_fraction=1.0)
        updates = batch_on_vma(
            table, pages, pid=proc.pid, cpu=proc.cpu, is_store=is_store,
            ip=_IP_UPDATE, rng=rng,
        )

        stream = proc.vma("stream")
        start = (epoch_idx * n_stream) % stream.npages
        seq = (start + np.arange(n_stream, dtype=np.int64) // 8) % stream.npages
        stream_batch = batch_on_vma(
            stream, seq, pid=proc.pid, cpu=proc.cpu, is_store=False,
            ip=_IP_STREAM, rng=rng,
        )
        return AccessBatch.concat([updates, stream_batch])
