"""The sticky worker-process pool: multi-core session execution.

The asyncio server's step path is CPU-bound Python, so a thread
executor alone caps a whole multi-session server at roughly one core
of simulation throughput.  This module moves the simulation out of
the server process: a :class:`WorkerPool` spawns N worker processes
(``multiprocessing`` spawn context — safe to respawn from a threaded
parent), and every session is *pinned* to one worker for its whole
life.  The worker hosts the real :class:`ProfilingSession` (simulator
+ daemon), so worker-pool runs are bit-identical to the in-process
path; the parent holds a :class:`RemoteSession` facade that owns the
subscriber queues and forwards ``step``/``stats``/``numa_maps``/
``reconfigure``/``close`` over the worker's duplex pipe.

Wire shape on each pipe (pickled tuples):

parent → worker   ``(request_id, op, payload)``
worker → parent   ``("reply", request_id, ok, payload)`` or
                  ``("events", session_id, [(event, payload_bytes), ...])``

Epoch telemetry is *pre-encoded worker-side*: the worker's encoded
sink receives each frame's payload already serialized to compact JSON
bytes (numpy coercion applied where the numpy objects live), batches
up to :data:`EVENT_BATCH_MAX` of them per pipe message, and flushes
before every reply — so event batches still stream *during* a long
step and always land before the step's own reply, while the parent
splices the bytes straight into subscriber frames and ledger records
without ever touching the payload dict on the hot path.

Failure contract: a dead worker (killed pid, broken pipe) fails only
its own sessions — every pending request on that pipe raises
``worker_crashed``, every subscriber of its sessions receives one
structured ``error`` frame (seq/dropped accounting intact), the
sessions are discarded from the manager via the crash callback, and
the slot respawns a fresh worker so subsequent ``create_session``
calls succeed.  An *unpicklable* reply is not a crash: the worker
catches the serialization failure and answers with an ``internal``
error instead.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError

from ..obs import log as obs_log
from ..obs import metrics as obs_metrics
from .protocol import ErrorCode, ServiceError
from .session import SessionBase
from .telemetry import crash_event_data, recovered_event_data

__all__ = ["RemoteSession", "WorkerPool", "resolve_workers"]

_log = obs_log.get_logger("service.workers")

#: How long :meth:`WorkerPool.shutdown` waits for a worker to drain.
DEFAULT_JOIN_TIMEOUT_S = 10.0

#: Epoch events batched per worker → parent pipe message.  Bounded so
#: a long step still streams telemetry while it runs; small enough
#: that one message never approaches the pipe's buffer limits.
EVENT_BATCH_MAX = 32


class _EventBatcher:
    """Worker-side encoded sink: batch pre-encoded events per pipe send.

    Registered via ``session.add_encoded_sink`` so it receives each
    fan-out's single shared payload encode; it owns no serialization of
    its own.  ``flush`` is called by the worker loop before every
    reply, preserving the old ordering guarantee that all of a step's
    epoch events reach the parent before the step's reply does.
    """

    def __init__(self, conn, session_id: str, max_batch: int = EVENT_BATCH_MAX):
        self._conn = conn
        self._session_id = session_id
        self._max_batch = max_batch
        self._buffer: list[tuple[str, bytes]] = []

    def __call__(self, event: str, payload: bytes) -> None:
        self._buffer.append((event, payload))
        if len(self._buffer) >= self._max_batch:
            self.flush()

    def flush(self) -> None:
        if self._buffer:
            batch, self._buffer = self._buffer, []
            self._conn.send(("events", self._session_id, batch))


def resolve_workers(workers: int | None) -> int:
    """``None`` → ``$REPRO_SERVICE_WORKERS`` or ``os.cpu_count()``.

    ``0`` keeps the in-process stepping path (no pool at all).
    """
    if workers is None:
        env = os.environ.get("REPRO_SERVICE_WORKERS")
        workers = int(env) if env else (os.cpu_count() or 1)
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


# --------------------------------------------------------------------------
# Worker-process side
# --------------------------------------------------------------------------


def _worker_main(conn, worker_id: int) -> None:
    """One worker: a blocking command loop over real sessions.

    Single-threaded on purpose — commands for this worker's sessions
    execute one at a time, so per-session ordering is trivial and the
    pipe never sees interleaved sends.  Heavy imports happen here, in
    the child, keeping pool start cheap in the parent.
    """
    from .session import ProfilingSession

    sessions: dict[str, ProfilingSession] = {}
    batchers: dict[str, _EventBatcher] = {}

    def attach_batcher(session, session_id):
        batcher = _EventBatcher(conn, session_id)
        session.add_encoded_sink(batcher)
        batchers[session_id] = batcher

    def get(session_id):
        session = sessions.get(session_id)
        if session is None:
            raise ServiceError(
                ErrorCode.UNKNOWN_SESSION,
                f"worker {worker_id} has no session {session_id!r}",
            )
        return session

    def dispatch(op, payload):
        if op == "create":
            session_id, params = payload
            try:
                session = ProfilingSession(session_id, **params)
            except TypeError as exc:  # mirror SessionManager.create
                raise ServiceError(ErrorCode.BAD_PARAMS, str(exc)) from exc
            # Stream scored epochs back (batched, pre-encoded) while
            # the step executes.
            attach_batcher(session, session_id)
            sessions[session_id] = session
            return session.info()
        if op == "recover":
            # Re-materialize a session lost to a crashed worker: same
            # recorded config, then silently catch back up to the
            # ledger's epoch count.  The simulator is deterministic, so
            # the replayed epochs (and everything after) are
            # bit-identical to the uncrashed run; the event sink is
            # attached only *after* the catch-up so subscribers never
            # see the re-executed epochs twice.
            session_id, params, epochs = payload
            try:
                session = ProfilingSession(session_id, **params)
            except TypeError as exc:
                raise ServiceError(ErrorCode.BAD_PARAMS, str(exc)) from exc
            if epochs > 0:
                session.sim.step(epochs)
            attach_batcher(session, session_id)
            sessions[session_id] = session
            return session.info()
        if op == "step":
            session_id, epochs = payload
            return get(session_id).step(epochs)
        if op == "stats":
            return get(payload).stats()
        if op == "numa_maps":
            session_id, pids = payload
            return {"numa_maps": get(session_id).numa_maps(pids)}
        if op == "reconfigure":
            session_id, changes = payload
            return get(session_id).reconfigure(changes)
        if op == "close":
            session_id, options = payload
            summary = get(session_id).close(**options)
            sessions.pop(session_id, None)
            batchers.pop(session_id, None)
            return summary
        if op == "ping":
            return {"worker": worker_id, "pid": os.getpid(), "sessions": len(sessions)}
        if op == "metrics":
            # Piggybacked observability: the parent merges this
            # snapshot (step latency, epochs, profiler overhead — the
            # real sessions live here) into its own registry's view.
            return obs_metrics.default_registry().snapshot()
        if op == "_debug":
            return _debug_action(payload)
        raise ServiceError(ErrorCode.UNKNOWN_OP, f"unknown worker op {op!r}")

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        request_id, op, payload = message
        if op == "shutdown":
            try:
                conn.send(("reply", request_id, True, {"worker": worker_id}))
            except (OSError, ValueError):
                pass
            break
        try:
            reply = ("reply", request_id, True, dispatch(op, payload))
        except ServiceError as exc:
            reply = ("reply", request_id, False, (exc.code, exc.message))
        except Exception as exc:  # noqa: BLE001 — a bad session must not kill the worker
            reply = ("reply", request_id, False,
                     (ErrorCode.INTERNAL, f"{type(exc).__name__}: {exc}"))
        # Ship any buffered epoch batches before the reply, keeping the
        # old guarantee that a step's events precede its reply.
        for batcher in batchers.values():
            try:
                batcher.flush()
            except (EOFError, BrokenPipeError, OSError):
                pass
        try:
            conn.send(reply)
        except (EOFError, BrokenPipeError, OSError):
            break
        except Exception as exc:  # noqa: BLE001 — unpicklable reply: degrade, don't die
            try:
                conn.send(
                    ("reply", request_id, False,
                     (ErrorCode.INTERNAL,
                      f"unserializable worker reply: {type(exc).__name__}: {exc}"))
                )
            except Exception:  # noqa: BLE001
                break
    try:
        conn.close()
    except OSError:
        pass


def _debug_action(payload) -> dict:
    """Fault injection for the crash-recovery test suites."""
    action = (payload or {}).get("action")
    if action == "unpicklable":
        return {"callback": lambda: None}  # send() will fail to pickle
    if action == "raise":
        raise RuntimeError("injected worker failure")
    if action == "exit":
        os._exit(17)  # simulate a hard crash mid-request
    return {"actions": ["unpicklable", "raise", "exit"]}


# --------------------------------------------------------------------------
# Parent side
# --------------------------------------------------------------------------


class WorkerHandle:
    """One pool slot: a process, its pipe, and a reader thread.

    The slot outlives any individual process: when the worker dies the
    handle fails its pending requests, reports the lost sessions, and
    respawns a fresh process in place (``generation`` advances).
    """

    def __init__(self, index: int, ctx, on_events, on_death):
        self.index = index
        self._ctx = ctx
        self._on_events = on_events
        self._on_death = on_death
        #: Session ids currently pinned to this slot.
        self.sessions: set[str] = set()
        self.generation = 0
        self.closing = False
        self._send_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: dict[int, Future] = {}
        self._request_ids = itertools.count(1)
        self.process = None
        self.conn = None
        self._spawn()

    def _spawn(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        self.process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.index),
            name=f"repro-service-worker-{self.index}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        reader = threading.Thread(
            target=self._read_loop,
            args=(parent_conn, self.generation),
            name=f"repro-service-reader-{self.index}",
            daemon=True,
        )
        reader.start()

    # ---------------------------------------------------------------- I/O

    def request(self, op: str, payload=None, timeout_s: float | None = None):
        """Send one command; block for its reply.

        Raises :class:`ServiceError` with the worker's error code, or
        ``worker_crashed`` when the pipe is (or goes) dead.
        """
        future: Future = Future()
        request_id = next(self._request_ids)
        with self._pending_lock:
            self._pending[request_id] = future
        try:
            with self._send_lock:
                self.conn.send((request_id, op, payload))
        except (OSError, BrokenPipeError, ValueError) as exc:
            with self._pending_lock:
                self._pending.pop(request_id, None)
            raise ServiceError(
                ErrorCode.WORKER_CRASHED,
                f"worker {self.index} unavailable: {exc}",
            ) from exc
        try:
            ok, payload = future.result(timeout_s)
        except FutureTimeoutError:
            with self._pending_lock:
                self._pending.pop(request_id, None)
            raise ServiceError(
                ErrorCode.INTERNAL,
                f"worker {self.index} did not answer {op!r} within {timeout_s}s",
            ) from None
        if ok:
            return payload
        raise ServiceError(*payload)

    def _read_loop(self, conn, generation: int) -> None:
        try:
            while True:
                message = conn.recv()
                kind = message[0]
                if kind == "reply":
                    _, request_id, ok, payload = message
                    with self._pending_lock:
                        future = self._pending.pop(request_id, None)
                    if future is not None:
                        future.set_result((ok, payload))
                elif kind == "events":
                    _, session_id, batch = message
                    self._on_events(session_id, batch)
        except (EOFError, OSError):
            pass
        finally:
            if generation == self.generation and not self.closing:
                self._handle_death()

    def _handle_death(self) -> None:
        """The worker died underneath us: fail, report, respawn."""
        self.process.join(timeout=1.0)  # reap first so exitcode is real
        message = (
            f"worker {self.index} (pid {getattr(self.process, 'pid', '?')}) "
            f"died with exit code {self.process.exitcode}"
        )
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for future in pending:
            future.set_result((False, (ErrorCode.WORKER_CRASHED, message)))
        lost = sorted(self.sessions)
        self.sessions.clear()
        try:
            self.conn.close()
        except OSError:
            pass
        # Report the lost sessions *before* the respawn so their
        # subscribers see the error frame the moment the pipe breaks.
        self._on_death(self.index, lost, message)
        self.generation += 1
        if not self.closing:
            self._spawn()

    # ----------------------------------------------------------- lifecycle

    def close(self, timeout_s: float = DEFAULT_JOIN_TIMEOUT_S) -> None:
        """Graceful stop: ask the worker to exit, then join or kill."""
        self.closing = True
        try:
            self.request("shutdown", timeout_s=timeout_s)
        except ServiceError:
            pass
        try:
            self.conn.close()
        except OSError:
            pass
        self.process.join(timeout=timeout_s)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=timeout_s)


class RemoteSession(SessionBase):
    """The parent-side facade of a session living in a worker process.

    Subscriber queues, activity tracking, and admission/TTL accounting
    stay here (bit-identical ``subscribe`` semantics to the in-process
    path); simulation commands forward to the sticky worker.  ``info``
    answers from parent-side state so ``list_sessions`` never blocks
    on — or dies with — a busy worker.
    """

    def __init__(self, session_id: str, pool: "WorkerPool", worker: WorkerHandle,
                 clock=time.monotonic, tenant: str = "default"):
        super().__init__(session_id, clock=clock, tenant=tenant)
        self.pool = pool
        self.worker = worker
        self.crashed: str | None = None
        #: Set (never cleared) by :meth:`close`: distinguishes a
        #: deliberately closed/evicted session from one merely marked
        #: crashed — both have ``closed=True``, but only a crashed one
        #: may be resurrected by the ledger-recovery path.  Guards the
        #: close-races-recovery window: see
        #: :meth:`WorkerPool.recover_session`.
        self._discarded = False
        self._static_info: dict = {}
        self._epochs_run = 0

    # ------------------------------------------------------------ plumbing

    def _request(self, op, payload=None, timeout_s=None):
        if self.crashed is not None:
            raise ServiceError(ErrorCode.WORKER_CRASHED, self.crashed)
        if self.closed:
            raise ServiceError(
                ErrorCode.UNKNOWN_SESSION, f"session {self.session_id} is closed"
            )
        return self.worker.request(op, payload, timeout_s=timeout_s)

    def mark_crashed(self, message: str) -> None:
        """Fail this session: one structured error frame, then closed."""
        self.crashed = message
        self.closed = True
        self._fanout(
            "error",
            crash_event_data(ErrorCode.WORKER_CRASHED, message, self.worker.index),
        )

    def recover(self, worker: WorkerHandle, epochs_run: int) -> None:
        """Un-crash this session after a ledger re-materialization.

        The replacement session (same config, caught up to
        ``epochs_run``) now lives on ``worker``; subscriber queues and
        the session-global frame seq were parent-side state all along,
        so the ``recovered`` frame and every live epoch frame after it
        continue the pre-crash numbering without a gap.
        """
        self.worker = worker
        self._epochs_run = int(epochs_run)
        self.crashed = None
        self.closed = False
        self._fanout(
            "recovered",
            recovered_event_data(
                worker.index,
                epochs_run,
                f"session {self.session_id} recovered from ledger "
                f"({epochs_run} epochs replayed)",
            ),
        )
        self.touch()

    # ----------------------------------------------------------------- ops

    def info(self) -> dict:
        info = dict(self._static_info)
        info.update(
            session=self.session_id,
            tenant=self.tenant,
            epochs_run=self._epochs_run,
            subscribers=len(self._subscribers),
            idle_s=self.idle_s(),
            worker=self.worker.index,
        )
        if self.crashed is not None:
            info["crashed"] = self.crashed
        return info

    def step(self, epochs: int = 1) -> dict:
        if epochs < 1:
            raise ServiceError(ErrorCode.BAD_PARAMS, "epochs must be >= 1")
        self.begin_op()
        try:
            t0 = time.perf_counter()
            result = self._request("step", (self.session_id, epochs))
            self.metrics.add(
                "step",
                self.session_id,
                time.perf_counter() - t0,
                items=len(result["epochs"]),
            )
            self._epochs_run = result["epochs_run"]
            return result
        finally:
            self.end_op()

    def stats(self) -> dict:
        stats = self._request("stats", self.session_id)
        stats["session"] = self.info()  # parent-side truth (subscribers, idle)
        self.touch()
        return stats

    def numa_maps(self, pids=None) -> str:
        self.touch()
        return self._request("numa_maps", (self.session_id, pids))["numa_maps"]

    def reconfigure(self, changes: dict) -> dict:
        if not isinstance(changes, dict) or not changes:
            raise ServiceError(
                ErrorCode.BAD_PARAMS, "reconfigure needs a non-empty changes object"
            )
        result = self._request("reconfigure", (self.session_id, changes))
        self.touch()
        return result

    def close(
        self,
        include_epochs: bool = False,
        epochs_from: int = 0,
        epochs_to: int | None = None,
    ) -> dict:
        """Finalize in the worker; never raises on a dead worker."""
        options = {
            "include_epochs": include_epochs,
            "epochs_from": epochs_from,
            "epochs_to": epochs_to,
        }
        self._discarded = True
        if self.crashed is not None:
            summary = {"session": self.session_id, "crashed": self.crashed}
        else:
            try:
                summary = self._request(
                    "close",
                    (self.session_id, options),
                    timeout_s=DEFAULT_JOIN_TIMEOUT_S,
                )
            except ServiceError as exc:
                summary = {"session": self.session_id, "crashed": exc.message}
        self.closed = True
        self.pool.release(self)
        with self._sub_lock:
            self._subscribers.clear()
        if self.ledger is not None:
            self.ledger.close()
        return summary


class WorkerPool:
    """N sticky worker processes plus the session → worker registry."""

    def __init__(self, n_workers: int, on_session_crash=None, mp_context="spawn"):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        #: Called with ``(session_ids, message)`` after a worker death,
        #: once the sessions are already marked crashed — the server
        #: uses it to discard them from the manager.
        self.on_session_crash = on_session_crash
        self._ctx = multiprocessing.get_context(mp_context)
        self._lock = threading.Lock()
        self._sessions: dict[str, RemoteSession] = {}
        self.respawns = 0
        self.workers = [
            WorkerHandle(i, self._ctx, self._route_events, self._worker_died)
            for i in range(self.n_workers)
        ]

    # ------------------------------------------------------------- routing

    def _route_events(self, session_id: str, batch) -> None:
        """Fan one worker pipe batch of pre-encoded events out.

        The payload bytes were encoded in the worker; the parent
        splices them into subscriber frames and ledger records without
        decoding (dict sinks, if any, decode lazily per frame).
        """
        with self._lock:
            session = self._sessions.get(session_id)
        if session is not None:
            session._fanout_encoded_batch(batch)

    def _worker_died(self, index: int, lost: list[str], message: str) -> None:
        self.respawns += 1
        obs_metrics.default_registry().counter(
            "repro_service_worker_respawns_total",
            "Worker processes respawned after a crash",
        ).inc()
        _log.warning(
            "worker_respawn", worker=index, lost_sessions=lost, message=message
        )
        crashed: list[RemoteSession] = []
        with self._lock:
            for session_id in lost:
                session = self._sessions.pop(session_id, None)
                if session is not None:
                    crashed.append(session)
        for session in crashed:
            session.mark_crashed(message)
        if self.on_session_crash is not None and lost:
            self.on_session_crash(lost, message)

    # ------------------------------------------------------------ sessions

    def session_factory(self, session_id: str, clock=time.monotonic, **params):
        """Build one session on the least-loaded worker (sticky).

        Drop-in for :class:`ProfilingSession` as the manager's session
        factory: same signature, same :class:`ServiceError` surface.
        """
        tenant = params.get("tenant", "default")
        with self._lock:
            worker = min(
                self.workers, key=lambda w: (len(w.sessions), w.index)
            )
            session = RemoteSession(
                session_id, self, worker, clock=clock, tenant=tenant
            )
            worker.sessions.add(session_id)
            self._sessions[session_id] = session
        try:
            info = worker.request("create", (session_id, params))
        except ServiceError:
            self.release(session)
            raise
        session._static_info = {
            k: v for k, v in info.items() if k not in ("idle_s", "subscribers")
        }
        session._epochs_run = info.get("epochs_run", 0)
        return session

    def release(self, session: RemoteSession) -> None:
        """Forget a session (closed or failed-to-create)."""
        with self._lock:
            self._sessions.pop(session.session_id, None)
            session.worker.sessions.discard(session.session_id)

    def resume_session_factory(
        self,
        session_id: str,
        params: dict,
        epochs: int,
        clock=time.monotonic,
        tenant: str = "default",
    ) -> RemoteSession:
        """Rebuild a checkpointed (evicted-to-disk) session.

        The voluntary-eviction sibling of :meth:`recover_session`: a
        *fresh* :class:`RemoteSession` facade is built (the evicted
        one was popped from the manager and closed), pinned to the
        least-loaded worker, and the worker re-runs the recorded
        config with a silent ``epochs``-deep catch-up — the same
        deterministic ``recover`` worker op the crash path uses, so
        the resumed state is bit-identical to the uninterrupted run.
        """
        with self._lock:
            worker = min(
                self.workers, key=lambda w: (len(w.sessions), w.index)
            )
            session = RemoteSession(
                session_id, self, worker, clock=clock, tenant=tenant
            )
            worker.sessions.add(session_id)
            self._sessions[session_id] = session
        try:
            info = worker.request("recover", (session_id, params, epochs))
        except ServiceError:
            self.release(session)
            raise
        session._static_info = {
            k: v for k, v in info.items() if k not in ("idle_s", "subscribers")
        }
        session._epochs_run = info.get("epochs_run", epochs)
        return session

    def recover_session(
        self,
        session: RemoteSession,
        params: dict,
        epochs: int,
        wait_s: float = 15.0,
    ) -> RemoteSession:
        """Re-materialize a crashed session from its recorded config.

        Waits for a live worker (the dead slot respawns on its reader
        thread), re-pins the session there, and asks the worker to
        rebuild it and silently catch up ``epochs`` scored epochs.
        On success the session object itself is un-crashed in place —
        its subscribers see one ``recovered`` frame and then gap-free
        live epochs.  Raises :class:`ServiceError` when no worker
        comes up or the rebuild fails; the caller then discards the
        session as before.

        A close/evict racing the recovery is honored, not resurrected:
        ``RemoteSession.close`` marks the session discarded, and the
        recovery aborts — before the rebuild when it can, and by
        closing the freshly rebuilt worker-side copy when the close
        landed mid-rebuild — so a closed session can never come back
        as an unmanaged zombie still pinned to a worker (and its
        tenant slot, already released by the close, is never held
        again by a session the manager no longer knows).
        """
        deadline = time.monotonic() + wait_s
        while True:
            if session._discarded:
                raise ServiceError(
                    ErrorCode.UNKNOWN_SESSION,
                    f"session {session.session_id} was closed before "
                    "recovery could run",
                )
            with self._lock:
                alive = [
                    w
                    for w in self.workers
                    if not w.closing and w.process is not None
                    and w.process.is_alive()
                ]
                if alive:
                    worker = min(
                        alive, key=lambda w: (len(w.sessions), w.index)
                    )
                    worker.sessions.add(session.session_id)
                    self._sessions[session.session_id] = session
                    break
            if time.monotonic() >= deadline:
                raise ServiceError(
                    ErrorCode.WORKER_CRASHED,
                    f"no live worker to recover session "
                    f"{session.session_id} onto",
                )
            time.sleep(0.05)
        try:
            info = worker.request("recover", (session.session_id, params, epochs))
        except ServiceError:
            self.release(session)
            raise
        if session._discarded:
            # close() landed while the worker was rebuilding: drop the
            # rebuilt copy instead of resurrecting a session nothing
            # manages anymore.
            try:
                worker.request(
                    "close",
                    (session.session_id, {}),
                    timeout_s=DEFAULT_JOIN_TIMEOUT_S,
                )
            except ServiceError:
                pass
            self.release(session)
            raise ServiceError(
                ErrorCode.UNKNOWN_SESSION,
                f"session {session.session_id} was closed during recovery",
            )
        session._static_info = {
            k: v for k, v in info.items() if k not in ("idle_s", "subscribers")
        }
        session.recover(worker, info.get("epochs_run", epochs))
        obs_metrics.default_registry().counter(
            "repro_service_sessions_recovered_total",
            "Crashed sessions re-materialized from the telemetry ledger",
        ).inc()
        _log.info(
            "session_recovered",
            session=session.session_id,
            worker=worker.index,
            epochs_replayed=epochs,
        )
        return session

    # ------------------------------------------------------------ lifecycle

    def info(self) -> dict:
        with self._lock:
            per_worker = {w.index: len(w.sessions) for w in self.workers}
        return {
            "workers": self.n_workers,
            "alive": sum(w.process.is_alive() for w in self.workers),
            "sessions_per_worker": per_worker,
            "respawns": self.respawns,
        }

    def ping_all(self, timeout_s: float = DEFAULT_JOIN_TIMEOUT_S) -> list[dict]:
        """Round-trip every worker (startup/liveness check)."""
        return [w.request("ping", timeout_s=timeout_s) for w in self.workers]

    def collect_metrics(self, timeout_s: float = DEFAULT_JOIN_TIMEOUT_S) -> list[dict]:
        """Every live worker's metrics snapshot (piggybacked RPC).

        A worker that crashes or stalls mid-collection contributes
        nothing rather than failing the whole scrape.
        """
        snapshots = []
        for worker in self.workers:
            try:
                snapshots.append(worker.request("metrics", timeout_s=timeout_s))
            except ServiceError:
                continue
        return snapshots

    def shutdown(self, timeout_s: float = DEFAULT_JOIN_TIMEOUT_S) -> None:
        """Drain path: stop every worker, joining gracefully first."""
        for worker in self.workers:
            worker.closing = True
        for worker in self.workers:
            worker.close(timeout_s=timeout_s)
        with self._lock:
            self._sessions.clear()
