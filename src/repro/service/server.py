"""The asyncio JSON-lines profiling server.

One connection carries any number of requests (handled sequentially
per connection, concurrently across connections) plus pushed event
frames for that connection's subscriptions.  Blocking work — session
construction, epoch stepping, daemon reads — runs in a worker
executor so the event loop stays responsive while many tenants step
at once; per-session locks in :class:`ProfilingSession` keep each
session single-stepped.

With ``workers > 0`` the executor threads are merely RPC couriers:
simulation lives in a sticky :class:`~repro.service.workers.WorkerPool`
of worker *processes*, so concurrent sessions step on separate cores
instead of contending for the GIL.  ``workers=0`` (the default for
embedded servers) keeps the historical in-process path.

Lifecycle: ``start()`` binds a TCP port or unix socket and installs
SIGTERM/SIGINT handlers when the platform allows; ``drain()`` (also
the signal path) stops accepting, rejects new work with
``shutting_down``, lets in-flight requests finish, flushes subscriber
queues, closes every session, and joins the worker pool before waking
``serve_forever``.

:class:`ServerThread` hosts a server in a daemon thread with its own
event loop — the embedding used by the blocking client's tests and
``examples/service_quickstart.py``.
"""

from __future__ import annotations

import asyncio
import functools
import itertools
import signal
import threading
from concurrent.futures import ThreadPoolExecutor

from ..ledger import Ledger
from ..obs import log as obs_log
from ..obs import metrics as obs_metrics
from ..obs.http import MetricsHTTPServer
from .manager import SessionManager
from .session import ProfilingSession
from .telemetry import resumed_event_data
from .protocol import (
    MAX_LINE_BYTES,
    ErrorCode,
    ServiceError,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    splice_event_frame,
)
from .workers import WorkerPool, resolve_workers

__all__ = ["ServiceServer", "ServerThread"]

_log = obs_log.get_logger("service.server")


class _Connection:
    """Per-connection state: serialized writes + live subscriptions."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        self.write_lock = asyncio.Lock()
        #: subscription_id -> (session, sub_queue, pump_task, wake_event)
        self.subs: dict[str, tuple] = {}

    async def send(self, frame: dict) -> None:
        await self.send_raw(encode_frame(frame))

    async def send_raw(self, blob: bytes) -> None:
        async with self.write_lock:
            self.writer.write(blob)
            await self.writer.drain()

    async def send_many(self, blobs: list[bytes]) -> None:
        """Coalesced write: everything buffered in one lock acquire.

        N frames cost one ``b"".join``, one ``write()``, and one
        ``drain()`` instead of N lock/write/drain round-trips — the
        output-side half of the serialize-once fan-out.
        """
        if not blobs:
            return
        async with self.write_lock:
            self.writer.write(b"".join(blobs))
            await self.writer.drain()

    async def flush_sub(self, subscription_id: str) -> None:
        """Push whatever the subscription has buffered right now.

        Drains the queue object directly so frames pushed right before
        a close (eviction/drain goodbyes) still deliver after the
        session detached its subscriber table.
        """
        entry = self.subs.get(subscription_id)
        if entry is None:
            return
        session, sub, _, _ = entry
        await self.send_many(session.drain_queue_encoded(sub))

    def close(self) -> None:
        for _, (session, sub, task, _) in list(self.subs.items()):
            task.cancel()
            session.unsubscribe(sub.subscription_id)
        self.subs.clear()
        try:
            self.writer.close()
        except Exception:
            pass


class ServiceServer:
    """Hosts many concurrent profiling sessions over JSON lines."""

    def __init__(
        self,
        manager: SessionManager | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_path: str | None = None,
        max_sessions: int = 16,
        idle_ttl_s: float = 600.0,
        tenant_quota: int | None = None,
        max_inflight_steps: int | None = None,
        step_workers: int | None = None,
        workers: int | None = 0,
        reap_interval_s: float = 5.0,
        metrics_port: int | None = None,
        ledger_dir: str | None = None,
        ledger_fsync: str = "rotate",
        ledger_segment_bytes: int | None = None,
        ledger_retention_bytes: int | None = None,
        ledger_retention_age_s: float | None = None,
        evict_to_disk: bool = False,
    ):
        self.manager = manager or SessionManager(
            max_sessions=max_sessions,
            idle_ttl_s=idle_ttl_s,
            tenant_quota=tenant_quota,
        )
        #: Global backpressure on stepping: at most this many ``step``
        #: requests execute (or wait on an executor thread) at once;
        #: excess requests are rejected immediately with a structured
        #: ``overloaded`` error instead of queueing without bound and
        #: dragging every tenant's latency down.  None/0 disables.
        self.max_inflight_steps = max_inflight_steps or None
        self._steps_inflight = 0
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.step_workers = step_workers
        #: Worker *processes* for session execution.  0 = in-process
        #: stepping (the historical path); None = $REPRO_SERVICE_WORKERS
        #: or the core count (what ``repro serve`` passes by default).
        self.workers = resolve_workers(workers)
        self.reap_interval_s = float(reap_interval_s)
        #: Optional Prometheus scrape endpoint (`--metrics-port`); 0
        #: binds an ephemeral port, None disables the endpoint.
        self.metrics_port = metrics_port
        self.metrics_address: tuple[str, int] | None = None
        self._metrics_http: MetricsHTTPServer | None = None
        #: Durable event-sourced telemetry (``--ledger-dir``): every
        #: session's frames append to an on-disk ledger, enabling
        #: ``subscribe(from_seq=...)`` replay and crashed-session
        #: recovery.  None disables all of it (the historical path).
        self._ledger: Ledger | None = None
        if ledger_dir:
            ledger_kwargs = {"fsync": ledger_fsync}
            if ledger_segment_bytes is not None:
                ledger_kwargs["segment_bytes"] = ledger_segment_bytes
            self._ledger = Ledger(
                ledger_dir,
                retention_bytes=ledger_retention_bytes,
                retention_age_s=ledger_retention_age_s,
                **ledger_kwargs,
            )
        #: Checkpoint-to-disk idle eviction (``--evict-to-disk``): the
        #: reaper persists a checkpoint marker before releasing an idle
        #: session's slots, so a later ``resume_session`` re-admits it
        #: bit-identically.  Needs a ledger; silently inert without one.
        self.evict_to_disk = bool(evict_to_disk)
        self.address: tuple[str, int] | str | None = None
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._pool: WorkerPool | None = None
        self._connections: set[_Connection] = set()
        self._reaper: asyncio.Task | None = None
        self._inflight = 0
        self._draining = False
        self._stopped: asyncio.Event | None = None
        self._ops = {
            "ping": self._op_ping,
            "server_info": self._op_server_info,
            "list_sessions": self._op_list_sessions,
            "create_session": self._op_create_session,
            "step": self._op_step,
            "stats": self._op_stats,
            "numa_maps": self._op_numa_maps,
            "reconfigure": self._op_reconfigure,
            "subscribe": self._op_subscribe,
            "unsubscribe": self._op_unsubscribe,
            "close_session": self._op_close_session,
            "resume_session": self._op_resume_session,
            "metrics": self._op_metrics,
        }

    # ------------------------------------------------------------- lifecycle

    async def start(self) -> "ServiceServer":
        """Bind the socket, start the reaper, install signal handlers."""
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        step_threads = self.step_workers
        if self.workers > 0:
            self._pool = WorkerPool(
                self.workers, on_session_crash=self._on_worker_crash
            )
            self.manager.session_factory = self._pool.session_factory
            if step_threads is None:
                # Executor threads only courier RPCs to the pool; give
                # the pool headroom so threads never gate core count.
                step_threads = max(8, 4 * self.workers)
        if self._ledger is not None:
            # Attach each session's ledger inside the factory, before
            # the manager publishes the session — no frame can ever fan
            # out un-persisted, so queue seq and ledger seq stay equal.
            base_factory = self.manager.session_factory

            def _ledgered_factory(session_id, clock=None, **params):
                kwargs = {} if clock is None else {"clock": clock}
                session = base_factory(session_id, **kwargs, **params)
                session_ledger = self._ledger.create_session(
                    session_id, dict(params), info=session.info()
                )
                session.attach_ledger(session_ledger)
                return session

            self.manager.session_factory = _ledgered_factory
            if self.evict_to_disk:
                self.manager.checkpointer = self._checkpoint_session
        self._executor = ThreadPoolExecutor(
            max_workers=step_threads,
            thread_name_prefix="repro-service-step",
        )
        if self.socket_path:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.socket_path, limit=MAX_LINE_BYTES
            )
            self.address = self.socket_path
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port, limit=MAX_LINE_BYTES
            )
            self.address = self._server.sockets[0].getsockname()[:2]
        if self.metrics_port is not None:
            self._metrics_http = MetricsHTTPServer(
                self.collect_metrics, host=self.host, port=self.metrics_port
            )
            self._metrics_http.start()
            self.metrics_address = self._metrics_http.address
        if self.reap_interval_s > 0:
            self._reaper = asyncio.create_task(self._reap_loop())
        _log.info(
            "server_started",
            address=list(self.address)
            if isinstance(self.address, tuple)
            else self.address,
            workers=self.workers,
            metrics_address=list(self.metrics_address)
            if self.metrics_address
            else None,
        )
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(
                    sig, lambda: asyncio.ensure_future(self.drain())
                )
            except (NotImplementedError, RuntimeError, ValueError):
                # Non-main thread or platform without signal support:
                # drain() stays reachable programmatically.
                break
        return self

    async def serve_forever(self) -> None:
        """Block until :meth:`drain` completes (signal or explicit)."""
        if self._stopped is None:
            raise RuntimeError("call start() first")
        await self._stopped.wait()

    async def drain(self, timeout_s: float = 30.0) -> None:
        """Graceful shutdown: finish in-flight work, flush, close all."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = self._loop.time() + timeout_s
        while self._inflight > 0 and self._loop.time() < deadline:
            await asyncio.sleep(0.02)
        # Flush whatever subscribers still have buffered, then detach.
        for conn in list(self._connections):
            for sub_id in list(conn.subs):
                try:
                    await conn.flush_sub(sub_id)
                except (ConnectionError, RuntimeError):
                    break
        if self._reaper is not None:
            self._reaper.cancel()
        # Close sessions while workers are still alive (summaries come
        # back over the pipes), then join the pool itself.
        await self._run_blocking(self.manager.close_all)
        # close_all fanned one structured server_drain goodbye into each
        # queue after the flush above; push those before tearing down.
        for conn in list(self._connections):
            for sub_id in list(conn.subs):
                try:
                    await conn.flush_sub(sub_id)
                except (ConnectionError, RuntimeError):
                    break
        if self._pool is not None:
            await self._run_blocking(self._pool.shutdown)
        for conn in list(self._connections):
            conn.close()
        if self._metrics_http is not None:
            self._metrics_http.close()
            self._metrics_http = None
        if self._executor is not None:
            self._executor.shutdown(wait=False)
        _log.info("server_drained")
        self._stopped.set()

    async def _reap_loop(self) -> None:
        while True:
            await asyncio.sleep(self.reap_interval_s)
            evicted = await self._run_blocking(self.manager.evict_idle)
            for _ in evicted:
                pass  # evictions are surfaced through list_sessions

    async def _run_blocking(self, fn, *args, **kwargs):
        return await self._loop.run_in_executor(
            self._executor, functools.partial(fn, *args, **kwargs)
        )

    def _on_worker_crash(self, session_ids, message) -> None:
        """Pool callback (reader thread): recover or drop dead sessions.

        The sessions are already marked crashed and their subscribers
        already hold the structured ``worker_crashed`` frame.  With a
        ledger each session can be re-materialized: its recorded config
        plus the persisted epoch count re-run the deterministic
        simulator in a fresh worker, after which subscribers see a
        ``recovered`` frame and a gap-free continuation.  Without one,
        all that is left is releasing the admission slots.
        """
        for session_id in session_ids:
            if self._ledger is not None and not self._draining:
                self._loop.call_soon_threadsafe(self._spawn_recovery, session_id)
            else:
                self.manager.discard(session_id)

    def _spawn_recovery(self, session_id) -> None:
        asyncio.create_task(self._recover_session(session_id))

    async def _recover_session(self, session_id) -> None:
        """Re-materialize one crashed session from its ledger."""
        try:
            session = self.manager.get(session_id)
        except ServiceError:
            return  # closed or evicted while the crash was in flight
        meta = self._ledger.load_meta(session_id)
        if (
            self._pool is None
            or meta is None
            or session.ledger is None
            or self._draining
        ):
            self.manager.discard(session_id)
            return
        epochs = session.ledger.epoch_count
        try:
            await self._run_blocking(
                self._pool.recover_session,
                session,
                dict(meta["config"]),
                epochs,
            )
        except Exception as exc:  # noqa: BLE001 — recovery is best-effort
            _log.error(
                "session_recovery_failed", session=session_id, error=str(exc)
            )
            self.manager.discard(session_id)

    # ----------------------------------------------------- checkpoint/resume

    def _checkpoint_session(self, session) -> dict | None:
        """``manager.checkpointer`` hook: persist the eviction marker.

        Runs on the reaper's executor thread after the eviction claim
        and before the goodbye fan-out, so the recorded epoch count is
        exact (no step can land — ``begin_op`` refuses once claimed)
        and the goodbye can truthfully carry ``resumable: true``.  The
        config itself is already durable in the session ledger's
        ``meta.json``; the marker only pins the eviction moment.
        """
        if session.ledger is None or self._ledger is None:
            return None
        meta = self._ledger.load_meta(session.session_id)
        if meta is None:
            return None
        marker = self._ledger.write_checkpoint(
            session.session_id,
            {
                "config_key": meta.get("config_key"),
                "epochs": session.ledger.epoch_count,
                "frame_seq": session.frame_seq,
                "tenant": session.tenant,
            },
        )
        _log.info(
            "session_checkpointed",
            session=session.session_id,
            epochs=marker.get("epochs"),
        )
        return marker

    def _resume_session_blocking(self, session_id, tenant_param):
        """Re-admit one checkpointed session (executor thread).

        Admission goes through :meth:`SessionManager.resume` — the
        same capacity/tenant gate as ``create_session`` — and the
        rebuild reuses the PR-6 recovery machinery: the recorded
        config re-runs deterministically with a silent catch-up to the
        checkpointed epoch count, so the resumed state is bit-identical
        to an uninterrupted run.  The reopened ledger continues the
        seq chain (``attach_ledger(start_seq=next_seq)``), the marker
        is cleared, and one ``resumed`` frame is appended so a
        ``from_seq`` replay shows eviction and resumption gap-free.
        """
        try:
            self.manager.get(session_id)
        except ServiceError:
            pass
        else:
            # Checked again (atomically) inside manager.resume; this
            # early answer just gives pollers the ``bad_request`` that
            # means "not evicted yet" instead of "no checkpoint".
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                f"session {session_id!r} is still live; only evicted "
                "(checkpointed) sessions can be resumed",
            )
        checkpoint = self._ledger.load_checkpoint(session_id)
        meta = self._ledger.load_meta(session_id)
        if checkpoint is None or meta is None:
            raise ServiceError(
                ErrorCode.UNKNOWN_SESSION,
                f"no checkpoint for session {session_id!r}; only sessions "
                "evicted with --evict-to-disk can be resumed",
            )
        tenant = tenant_param or checkpoint.get("tenant") or "default"
        params = dict(meta["config"])
        params["tenant"] = tenant

        def builder():
            session_ledger = self._ledger.open_session(session_id)
            try:
                epochs = int(checkpoint.get("epochs", session_ledger.epoch_count))
                if self._pool is not None:
                    session = self._pool.resume_session_factory(
                        session_id,
                        params,
                        epochs,
                        clock=self.manager._clock,
                        tenant=tenant,
                    )
                else:
                    session = ProfilingSession(
                        session_id,
                        clock=self.manager._clock,
                        catchup_epochs=epochs,
                        **params,
                    )
                session.attach_ledger(
                    session_ledger, start_seq=session_ledger.next_seq
                )
                self._ledger.clear_checkpoint(session_id)
                session._fanout(
                    "resumed",
                    resumed_event_data(
                        epochs,
                        f"session {session_id} resumed from checkpoint "
                        f"({epochs} epochs caught up)",
                        worker=getattr(
                            getattr(session, "worker", None), "index", None
                        ),
                    ),
                )
                return session
            except Exception:
                session_ledger.close()
                raise

        session = self.manager.resume(session_id, tenant, builder)
        return session.info()

    async def _op_resume_session(self, conn, params) -> dict:
        if self._draining:
            raise ServiceError(ErrorCode.SHUTTING_DOWN, "server is draining")
        if self._ledger is None:
            raise ServiceError(
                ErrorCode.BAD_PARAMS,
                "resume_session needs a ledger; start the server with "
                "--ledger-dir and --evict-to-disk",
            )
        session_id = self._session_id(params)
        return await self._run_blocking(
            self._resume_session_blocking, session_id, params.get("tenant")
        )

    # ----------------------------------------------------------- connections

    async def _handle_connection(self, reader, writer) -> None:
        conn = _Connection(reader, writer)
        self._connections.add(conn)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await conn.send(
                        error_response(
                            None, ErrorCode.BAD_REQUEST, "frame too long"
                        )
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                await self._handle_line(conn, line)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(conn)
            conn.close()

    async def _handle_line(self, conn: _Connection, line: bytes) -> None:
        request_id = None
        op = None
        self._inflight += 1
        try:
            frame = decode_frame(line)
            request_id = frame.get("id")
            op = frame.get("op")
            handler = self._ops.get(op)
            if handler is None:
                raise ServiceError(ErrorCode.UNKNOWN_OP, f"unknown op: {op!r}")
            params = frame.get("params") or {}
            if not isinstance(params, dict):
                raise ServiceError(
                    ErrorCode.BAD_REQUEST, "params must be a JSON object"
                )
            result = await handler(conn, params)
            response = ok_response(request_id, result)
            outcome = "ok"
        except ServiceError as exc:
            response = error_response(request_id, exc.code, exc.message)
            outcome = str(exc.code)
        except Exception as exc:  # noqa: BLE001 — survive bad tenants
            response = error_response(
                request_id, ErrorCode.INTERNAL, f"{type(exc).__name__}: {exc}"
            )
            outcome = "internal"
        finally:
            self._inflight -= 1
        obs_metrics.default_registry().counter(
            "repro_service_requests_total",
            "Requests handled by the JSON-lines server",
            labelnames=("op", "outcome"),
        ).inc(op=str(op), outcome=outcome)
        try:
            await conn.send(response)
        except ServiceError as exc:
            # The *response* violated the outbound line limit (e.g. a
            # close_session(include_epochs=...) window too large for one
            # frame).  Substitute a structured error so the client
            # learns why instead of the peer's decoder rejecting the
            # oversized line — or the connection just going quiet.
            try:
                await conn.send(error_response(request_id, exc.code, exc.message))
            except (ServiceError, ConnectionError):
                pass
        except ConnectionError:
            pass

    # ------------------------------------------------------------------- ops

    @staticmethod
    def _session_id(params: dict):
        session_id = params.get("session")
        if session_id is None:
            raise ServiceError(ErrorCode.BAD_PARAMS, "missing 'session' param")
        return session_id

    async def _op_ping(self, conn, params) -> dict:
        return {"pong": True}

    async def _op_server_info(self, conn, params) -> dict:
        address = self.address
        info = {
            "sessions": len(self.manager),
            "max_sessions": self.manager.max_sessions,
            "idle_ttl_s": self.manager.idle_ttl_s,
            "tenant_quota": self.manager.tenant_quota,
            "tenants": self.manager.tenants(),
            "max_inflight_steps": self.max_inflight_steps,
            "steps_inflight": self._steps_inflight,
            "draining": self._draining,
            "address": list(address) if isinstance(address, tuple) else address,
            "workers": self.workers,
            "evict_to_disk": bool(self._ledger is not None and self.evict_to_disk),
            "sessions_checkpointed": self.manager.sessions_checkpointed,
            "sessions_resumed": self.manager.sessions_resumed,
        }
        if self._pool is not None:
            info["worker_pool"] = self._pool.info()
        if self._ledger is not None:
            info["ledger"] = {
                "root": str(self._ledger.root),
                "fsync": self._ledger.fsync,
                "sessions": len(self._ledger.list_sessions()),
            }
        else:
            info["ledger"] = None
        return info

    async def _op_list_sessions(self, conn, params) -> dict:
        return {"sessions": self.manager.list_sessions()}

    async def _op_create_session(self, conn, params) -> dict:
        if self._draining:
            raise ServiceError(ErrorCode.SHUTTING_DOWN, "server is draining")
        resume = params.get("resume")
        if resume is not None:
            # ``create_session`` with ``resume=<id>`` is sugar for
            # ``resume_session``: same admission gate, same rebuild.
            if not isinstance(resume, str):
                raise ServiceError(
                    ErrorCode.BAD_PARAMS, "resume must be a session id string"
                )
            return await self._op_resume_session(
                conn, {"session": resume, "tenant": params.get("tenant")}
            )
        session = await self._run_blocking(self.manager.create, **params)
        return session.info()

    async def _op_step(self, conn, params) -> dict:
        if self._draining:
            raise ServiceError(ErrorCode.SHUTTING_DOWN, "server is draining")
        session = self.manager.get(self._session_id(params))
        epochs = params.get("epochs", 1)
        if not isinstance(epochs, int):
            raise ServiceError(ErrorCode.BAD_PARAMS, "epochs must be an integer")
        limit = self.max_inflight_steps
        registry = obs_metrics.default_registry()
        if limit is not None and self._steps_inflight >= limit:
            # Load-shedding: reject *now* with the same structured
            # {code, message} shape the goodbye frames carry, rather
            # than queueing the step and inflating every tenant's p99.
            registry.counter(
                "repro_service_steps_rejected_total",
                "Step requests shed by the in-flight concurrency limit",
            ).inc()
            raise ServiceError(
                ErrorCode.OVERLOADED,
                f"server overloaded: {self._steps_inflight} steps in flight "
                f"(limit {limit}); retry with backoff",
            )
        # Counter mutations happen on the event loop only (before/after
        # the await), so no lock is needed.
        self._steps_inflight += 1
        registry.gauge(
            "repro_service_steps_inflight", "Step requests currently executing"
        ).set(self._steps_inflight)
        try:
            return await self._run_blocking(session.step, epochs)
        finally:
            self._steps_inflight -= 1
            registry.gauge(
                "repro_service_steps_inflight",
                "Step requests currently executing",
            ).set(self._steps_inflight)

    async def _op_stats(self, conn, params) -> dict:
        session = self.manager.get(self._session_id(params))
        session.touch()
        return await self._run_blocking(session.stats)

    async def _op_numa_maps(self, conn, params) -> dict:
        session = self.manager.get(self._session_id(params))
        session.touch()
        text = await self._run_blocking(session.numa_maps, params.get("pids"))
        return {"session": session.session_id, "numa_maps": text}

    async def _op_reconfigure(self, conn, params) -> dict:
        session = self.manager.get(self._session_id(params))
        return await self._run_blocking(
            session.reconfigure, params.get("changes")
        )

    async def _op_subscribe(self, conn, params) -> dict:
        session = self.manager.get(self._session_id(params))
        max_queue = params.get("max_queue", 64)
        if not isinstance(max_queue, int):
            raise ServiceError(ErrorCode.BAD_PARAMS, "max_queue must be an integer")
        max_rate_hz = params.get("max_rate_hz")
        if max_rate_hz is not None and not isinstance(max_rate_hz, (int, float)):
            raise ServiceError(ErrorCode.BAD_PARAMS, "max_rate_hz must be a number")
        from_seq = params.get("from_seq")
        if from_seq is not None:
            if not isinstance(from_seq, int) or from_seq < 0:
                raise ServiceError(
                    ErrorCode.BAD_PARAMS, "from_seq must be an integer >= 0"
                )
            if session.ledger is None:
                raise ServiceError(
                    ErrorCode.BAD_PARAMS,
                    "from_seq needs a ledger; start the server with --ledger-dir",
                )
        initial_dropped = 0
        if from_seq is not None:
            # Retention may have compacted the oldest records away;
            # surface that gap through the same cumulative ``dropped``
            # counter the live drop-oldest path already uses.
            initial_dropped = max(0, session.ledger.first_seq - from_seq)
        wake = asyncio.Event()
        loop = self._loop
        sub = session.subscribe(
            max_queue=max_queue,
            notify=lambda: loop.call_soon_threadsafe(wake.set),
            max_rate_hz=max_rate_hz,
            initial_dropped=initial_dropped,
        )
        replayed = 0
        live_start = sub.seq
        if from_seq is not None:
            # Replay ``[from_seq, live_start)`` from disk before the
            # live pump starts.  The subscriber attached at
            # ``live_start`` and every earlier frame was appended inside
            # the fan-out's critical section, so the disk→queue handoff
            # is gap-free and exactly-once: replay stops precisely where
            # the queue begins.
            replayed, initial_dropped = await self._replay(
                conn, session, sub, from_seq, live_start, initial_dropped
            )
        task = asyncio.create_task(self._pump(conn, session, sub, wake))
        conn.subs[sub.subscription_id] = (session, sub, task, wake)
        session.touch()
        result = {
            "session": session.session_id,
            "subscription": sub.subscription_id,
            "max_queue": sub.max_queue,
        }
        if from_seq is not None:
            result.update(
                from_seq=from_seq,
                replayed=replayed,
                dropped=initial_dropped,
                live_seq=live_start,
            )
        return result

    #: Ledger records replayed per executor round-trip: bounds both the
    #: event-loop hold time and the memory one huge replay can pin.
    _REPLAY_BATCH = 256

    async def _replay(
        self, conn, session, sub, from_seq, end_seq, dropped
    ) -> tuple[int, int]:
        """Stream ledger records ``[from_seq, end_seq)`` to ``conn``.

        Returns ``(replayed, dropped)`` where ``dropped`` is the final
        cumulative drop count.  Retention compaction can race this
        replay and remove segments out from under ``read_encoded`` —
        mid-batch (a compacted segment yields nothing and the reader
        skips to the next one) as well as between batches — so every
        missing seq is accounted per record: any jump past the cursor
        raises the subscriber's cumulative ``dropped`` (mirrored into
        already-queued live frames) instead of leaking a silent gap.
        """
        ledger = session.ledger
        replayed = 0
        cursor = from_seq
        while cursor < end_seq:
            # read_encoded hands back the payload bytes exactly as the
            # fan-out persisted them, so each replayed frame is one
            # envelope splice — zero payload encodes — and the whole
            # batch goes out as one coalesced write.
            batch = await self._run_blocking(
                lambda start=cursor: list(
                    itertools.islice(
                        ledger.read_encoded(start, end_seq), self._REPLAY_BATCH
                    )
                )
            )
            if not batch:
                # The whole remaining window was compacted away:
                # account it, then fall through to the live queue.
                gap = end_seq - cursor
                dropped += gap
                session.account_replay_gap(sub, gap)
                cursor = end_seq
                break
            frames = []
            for seq, event, payload in batch:
                if seq > cursor:
                    gap = seq - cursor
                    dropped += gap
                    session.account_replay_gap(sub, gap)
                frames.append(
                    splice_event_frame(
                        event,
                        session.session_id,
                        sub.subscription_id,
                        seq,
                        dropped,
                        payload,
                    )
                )
                cursor = seq + 1
            await conn.send_many(frames)
            replayed += len(frames)
        obs_metrics.default_registry().counter(
            "repro_ledger_replay_frames_total",
            "Frames replayed from session ledgers to subscribers",
        ).inc(replayed)
        return replayed, dropped

    async def _op_unsubscribe(self, conn, params) -> dict:
        sub_id = params.get("subscription")
        entry = conn.subs.pop(sub_id, None)
        if entry is None:
            raise ServiceError(
                ErrorCode.BAD_PARAMS, f"unknown subscription: {sub_id!r}"
            )
        session, sub, task, _ = entry
        task.cancel()
        session.unsubscribe(sub.subscription_id)
        return {"subscription": sub_id, "unsubscribed": True}

    async def _op_close_session(self, conn, params) -> dict:
        session_id = self._session_id(params)
        include_epochs = params.get("include_epochs", False)
        if not isinstance(include_epochs, bool):
            raise ServiceError(
                ErrorCode.BAD_PARAMS, "include_epochs must be a boolean"
            )
        epochs_from = params.get("epochs_from", 0)
        if not isinstance(epochs_from, int) or epochs_from < 0:
            raise ServiceError(
                ErrorCode.BAD_PARAMS, "epochs_from must be an integer >= 0"
            )
        epochs_to = params.get("epochs_to")
        if epochs_to is not None and not isinstance(epochs_to, int):
            raise ServiceError(
                ErrorCode.BAD_PARAMS, "epochs_to must be an integer"
            )
        summary = await self._run_blocking(
            self.manager.close,
            session_id,
            include_epochs=include_epochs,
            epochs_from=epochs_from,
            epochs_to=epochs_to,
        )
        return {"session": session_id, "result": summary}

    async def _op_metrics(self, conn, params) -> dict:
        return {"metrics": await self._run_blocking(self.collect_metrics)}

    def collect_metrics(self) -> dict:
        """One merged metrics snapshot: this process plus every worker.

        Blocking (worker round-trips); the async path runs it in the
        executor, and the Prometheus endpoint calls it from its own
        serving thread.
        """
        registry = obs_metrics.default_registry()
        if self._pool is not None:
            registry.gauge(
                "repro_service_workers_alive", "Live worker processes"
            ).set(self._pool.info()["alive"])
        snapshots = [registry.snapshot()]
        if self._pool is not None:
            snapshots.extend(self._pool.collect_metrics())
        return obs_metrics.merge_snapshots(snapshots)

    async def _pump(self, conn: _Connection, session, sub, wake) -> None:
        """Forward one subscription's frames to its connection.

        A slow connection blocks only here — the session's stepping
        path keeps pushing into the bounded queue (dropping oldest),
        never waiting on this writer.
        """
        try:
            while True:
                await wake.wait()
                wake.clear()
                while True:
                    blobs = session.drain_queue_encoded(sub)
                    if not blobs:
                        break
                    if sub.min_interval_s:
                        # Throttled delivery stays frame-at-a-time:
                        # while we sleep, the session keeps pushing
                        # into the bounded queue and sheds the oldest.
                        for blob in blobs:
                            await conn.send_raw(blob)
                            await asyncio.sleep(sub.min_interval_s)
                    else:
                        # Coalesced delivery: the whole backlog in one
                        # write under one lock acquire.
                        await conn.send_many(blobs)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            session.unsubscribe(sub.subscription_id)


class ServerThread:
    """A ServiceServer on a dedicated daemon thread + event loop.

    The embedding for synchronous programs (tests, examples, notebook
    use): ``with ServerThread(...) as srv`` yields a running server
    whose ``address`` a blocking :class:`ServiceClient` can dial.
    """

    def __init__(self, **server_kwargs):
        self._kwargs = server_kwargs
        self._ready = threading.Event()
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._error: BaseException | None = None
        self.server: ServiceServer | None = None
        self.address: tuple[str, int] | str | None = None

    def start(self, timeout_s: float = 15.0):
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout_s):
            raise TimeoutError("service thread did not come up")
        if self._error is not None:
            raise self._error
        return self.address

    def stop(self, timeout_s: float = 15.0) -> None:
        if self._loop is None or self._thread is None:
            return
        if self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.server.drain(), self._loop
            )
            try:
                future.result(timeout_s)
            except Exception:
                pass
        self._thread.join(timeout_s)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        try:
            self.server = ServiceServer(**self._kwargs)
            await self.server.start()
        except BaseException as exc:  # surface bind errors to start()
            self._error = exc
            self._ready.set()
            return
        self._loop = asyncio.get_running_loop()
        self.address = self.server.address
        self._ready.set()
        await self.server.serve_forever()

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
