"""A blocking JSON-lines client for the profiling service.

Single-threaded and socket-based: requests are synchronous (send one
frame, read until the matching response), while event frames that
arrive in between — subscription pushes interleave freely with
responses — are buffered and handed out by :meth:`next_event` /
:meth:`iter_events`.  Works over TCP or a unix socket.
"""

from __future__ import annotations

import socket
from collections import deque

from .protocol import ErrorCode, ServiceError, decode_frame, encode_frame

__all__ = ["ServiceClient"]


class ServiceClient:
    """Blocking request/response + event-stream consumption."""

    def __init__(
        self,
        host: str | None = None,
        port: int | None = None,
        *,
        socket_path: str | None = None,
        address: tuple | list | str | None = None,
        timeout_s: float = 30.0,
    ):
        if address is not None:
            if isinstance(address, str):
                socket_path = address
            else:
                host, port = address[0], int(address[1])
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout_s)
            self._sock.connect(socket_path)
        elif host is not None and port is not None:
            self._sock = socket.create_connection((host, port), timeout=timeout_s)
        else:
            raise ValueError("need host+port, socket_path, or address")
        self.timeout_s = timeout_s
        self._file = self._sock.makefile("rb")
        self._next_id = 0
        self._events: deque = deque()

    # --------------------------------------------------------------- plumbing

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _read_frame(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_frame(line)

    def request(self, op: str, **params) -> dict:
        """Send one request; block for its response.

        Event frames arriving before the response are buffered for
        :meth:`next_event`.  Error responses raise
        :class:`ServiceError` with the server's code.
        """
        self._next_id += 1
        request_id = self._next_id
        payload = {"id": request_id, "op": op}
        if params:
            payload["params"] = params
        self._sock.sendall(encode_frame(payload))
        while True:
            frame = self._read_frame()
            if "event" in frame:
                self._events.append(frame)
                continue
            if frame.get("id") != request_id:
                continue  # stale response (e.g. from a timed-out call)
            if frame.get("ok"):
                return frame.get("result", {})
            error = frame.get("error") or {}
            raise ServiceError(
                error.get("code", ErrorCode.INTERNAL),
                error.get("message", "unknown server error"),
            )

    def next_event(self, timeout_s: float | None = None) -> dict:
        """Return the next buffered or on-the-wire event frame.

        Raises ``TimeoutError`` (via the socket timeout) when nothing
        arrives in time.
        """
        if self._events:
            return self._events.popleft()
        previous = self._sock.gettimeout()
        if timeout_s is not None:
            self._sock.settimeout(timeout_s)
        try:
            while True:
                frame = self._read_frame()
                if "event" in frame:
                    return frame
        finally:
            if timeout_s is not None:
                self._sock.settimeout(previous)

    def iter_events(self, n: int, timeout_s: float | None = None):
        """Yield up to ``n`` event frames."""
        for _ in range(n):
            yield self.next_event(timeout_s)

    def pending_events(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------ convenience

    def ping(self) -> dict:
        return self.request("ping")

    def server_info(self) -> dict:
        return self.request("server_info")

    def list_sessions(self) -> list[dict]:
        return self.request("list_sessions")["sessions"]

    def create_session(
        self, workload: str, tenant: str | None = None, **params
    ) -> dict:
        """Create one profiling session.

        ``tenant`` names the admission principal for per-tenant quota
        accounting; over-quota creates fail with the ``overloaded``
        error code (retry with backoff, or close a session first).
        """
        if tenant is not None:
            params["tenant"] = tenant
        return self.request("create_session", workload=workload, **params)

    def resume_session(self, session: str, tenant: str | None = None) -> dict:
        """Re-admit a checkpointed (idle-evicted) session.

        Only sessions evicted by a ``--evict-to-disk`` server carry a
        checkpoint; anything else fails with ``unknown_session``.  The
        resumed session re-enters through normal admission (capacity
        and tenant quota), catches back up deterministically to its
        checkpointed epoch count, and keeps its original session id
        and seq numbering — ``subscribe(from_seq=...)`` streams
        gap-free across the eviction.
        """
        params = {"session": session}
        if tenant is not None:
            params["tenant"] = tenant
        return self.request("resume_session", **params)

    def step(self, session: str, epochs: int = 1) -> dict:
        return self.request("step", session=session, epochs=epochs)

    def stats(self, session: str) -> dict:
        return self.request("stats", session=session)

    def numa_maps(self, session: str, pids=None) -> str:
        return self.request("numa_maps", session=session, pids=pids)["numa_maps"]

    def reconfigure(self, session: str, **changes) -> dict:
        return self.request("reconfigure", session=session, changes=changes)

    def subscribe(
        self,
        session: str,
        max_queue: int = 64,
        max_rate_hz: float | None = None,
        from_seq: int | None = None,
    ) -> dict:
        """Attach to a session's event stream.

        ``from_seq`` (ledger-backed servers only) replays every
        persisted frame with ``seq >= from_seq`` before the live tail —
        the replayed frames arrive as ordinary events, in order, with
        seq numbering continuous into the live stream.
        """
        params = {"session": session, "max_queue": max_queue}
        if max_rate_hz is not None:
            params["max_rate_hz"] = max_rate_hz
        if from_seq is not None:
            params["from_seq"] = from_seq
        return self.request("subscribe", **params)

    def unsubscribe(self, subscription: str) -> dict:
        return self.request("unsubscribe", subscription=subscription)

    def close_session(
        self,
        session: str,
        include_epochs: bool = False,
        epochs_from: int = 0,
        epochs_to: int | None = None,
    ) -> dict:
        """Close a session; optionally attach a bounded epoch window."""
        params = {"session": session}
        if include_epochs:
            params["include_epochs"] = True
            params["epochs_from"] = epochs_from
            if epochs_to is not None:
                params["epochs_to"] = epochs_to
        return self.request("close_session", **params)

    def metrics(self) -> dict:
        """The server's merged metrics snapshot (all worker processes)."""
        return self.request("metrics")["metrics"]
