"""The session registry: admission, lookup, and idle eviction.

Enforces the server's multi-tenancy envelope: at most ``max_sessions``
live sessions (admission is checked *before* the expensive session
construction, and the slot is reserved so concurrent creates cannot
oversubscribe), at most ``tenant_quota`` of them per tenant (the
``tenant`` param on ``create_session``; over-quota creates are
rejected with the structured ``overloaded`` error code), and sessions
idle longer than ``idle_ttl_s`` are evicted by the server's reaper
task — except sessions with an operation in flight (``session.busy``),
which are never idle no matter how long the step runs.

The ``repro_service_sessions_active`` gauge is published *inside* the
registry lock at every mutation, so it always equals
``len(list_sessions())`` at the instant it was set — concurrent
creates/closes cannot publish stale counts out of order.

Construction is pluggable: ``session_factory`` defaults to the
in-process :class:`ProfilingSession`, and the worker-pool server swaps
in :meth:`~repro.service.workers.WorkerPool.session_factory` so the
same admission/eviction envelope governs worker-backed sessions.
"""

from __future__ import annotations

import threading
import time

from ..obs import log as obs_log
from ..obs import metrics as obs_metrics
from .protocol import ErrorCode, ServiceError
from .session import ProfilingSession
from .telemetry import crash_event_data

__all__ = ["SessionManager"]

_log = obs_log.get_logger("service.manager")


def _metrics():
    return obs_metrics.default_registry()


def _reject(reason: str) -> None:
    _metrics().counter(
        "repro_service_sessions_rejected_total",
        "Session creations refused by admission control",
        labelnames=("reason",),
    ).inc(reason=reason)


class SessionManager:
    """Creates, finds, evicts, and closes profiling sessions."""

    def __init__(
        self,
        max_sessions: int = 16,
        idle_ttl_s: float = 600.0,
        clock=time.monotonic,
        session_factory=ProfilingSession,
        tenant_quota: int | None = None,
    ):
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        if tenant_quota is not None and tenant_quota < 1:
            raise ValueError(f"tenant_quota must be >= 1, got {tenant_quota}")
        self.max_sessions = int(max_sessions)
        #: Per-tenant cap on live sessions (None = unlimited).  Checked
        #: at admission against live + reserved sessions of the tenant.
        self.tenant_quota = None if tenant_quota is None else int(tenant_quota)
        self.idle_ttl_s = float(idle_ttl_s)
        self.session_factory = session_factory
        self._clock = clock
        self._lock = threading.Lock()
        self._sessions: dict[str, ProfilingSession] = {}
        self._reserved = 0
        #: Live + reserved sessions per tenant (quota accounting).
        self._tenant_count: dict[str, int] = {}
        self._next_id = 0
        #: Bumped by every close_all(); a create whose construction
        #: straddles a drain is rejected at insert instead of slipping
        #: a live session past the drain.
        self._drain_gen = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def _publish_active_locked(self) -> None:
        """Set the active-sessions gauge while holding ``_lock``.

        Publishing under the lock makes the gauge *ordered* with the
        registry mutations: it can never report a value from an earlier
        state after a later one (two concurrent closes racing the
        unlocked publish used to leave the gauge one high forever).
        """
        _metrics().gauge(
            "repro_service_sessions_active", "Live sessions in the manager"
        ).set(len(self._sessions))

    def _release_tenant_locked(self, tenant: str) -> None:
        count = self._tenant_count.get(tenant, 0) - 1
        if count > 0:
            self._tenant_count[tenant] = count
        else:
            self._tenant_count.pop(tenant, None)

    def tenants(self) -> dict[str, int]:
        """Live (admitted) session count per tenant."""
        with self._lock:
            counts: dict[str, int] = {}
            for session in self._sessions.values():
                tenant = getattr(session, "tenant", "default")
                counts[tenant] = counts.get(tenant, 0) + 1
            return counts

    def create(self, **params) -> ProfilingSession:
        """Admit and build one session.

        Raises ``at_capacity`` when the server-wide limit is reached
        and ``overloaded`` when the requesting tenant (the ``tenant``
        param, default ``"default"``) is at its quota.  The capacity
        slot is reserved under the lock but the (slow) session
        construction happens outside it, so concurrent creates neither
        oversubscribe nor serialize.
        """
        tenant = params.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise ServiceError(
                ErrorCode.BAD_PARAMS, "tenant must be a non-empty string"
            )
        with self._lock:
            if len(self._sessions) + self._reserved >= self.max_sessions:
                _reject("at_capacity")
                raise ServiceError(
                    ErrorCode.AT_CAPACITY,
                    f"session limit reached ({self.max_sessions})",
                )
            if (
                self.tenant_quota is not None
                and self._tenant_count.get(tenant, 0) >= self.tenant_quota
            ):
                _reject("tenant_quota")
                raise ServiceError(
                    ErrorCode.OVERLOADED,
                    f"tenant {tenant!r} is at its session quota "
                    f"({self.tenant_quota}); close a session or retry later",
                )
            self._reserved += 1
            self._tenant_count[tenant] = self._tenant_count.get(tenant, 0) + 1
            self._next_id += 1
            session_id = f"s{self._next_id}"
            drain_gen = self._drain_gen
        admitted = False
        try:
            session = self.session_factory(session_id, clock=self._clock, **params)
            admitted = True
        except TypeError as exc:
            raise ServiceError(ErrorCode.BAD_PARAMS, str(exc)) from exc
        finally:
            with self._lock:
                self._reserved -= 1
                if not admitted:
                    self._release_tenant_locked(tenant)
        session.tenant = tenant
        with self._lock:
            if self._drain_gen != drain_gen:
                # close_all() ran while we were constructing: the drain
                # already dropped every live session, so this one must
                # not outlive it.  Its tenant slot was reserved before
                # the drain and close_all only releases slots of popped
                # sessions, so release it here.
                self._release_tenant_locked(tenant)
                drained = True
            else:
                self._sessions[session_id] = session
                self._publish_active_locked()
                drained = False
        if drained:
            session.close()
            _reject("server_drain")
            raise ServiceError(
                ErrorCode.SERVER_DRAIN,
                f"server drained while session {session_id} was being built",
            )
        _metrics().counter(
            "repro_service_sessions_created_total", "Sessions admitted and built"
        ).inc()
        _log.info(
            "session_created",
            session=session_id,
            tenant=tenant,
            workload=params.get("workload"),
            worker=getattr(getattr(session, "worker", None), "index", None),
        )
        return session

    def get(self, session_id) -> ProfilingSession:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise ServiceError(
                ErrorCode.UNKNOWN_SESSION, f"no such session: {session_id!r}"
            )
        return session

    def close(self, session_id, **close_kwargs) -> dict:
        """Close and forget one session; returns its final summary.

        ``close_kwargs`` (``include_epochs``/``epochs_from``/
        ``epochs_to``) pass through to the session's bounded
        epoch-series serialization.
        """
        with self._lock:
            session = self._sessions.pop(session_id, None)
            if session is not None:
                self._release_tenant_locked(session.tenant)
                self._publish_active_locked()
        if session is None:
            raise ServiceError(
                ErrorCode.UNKNOWN_SESSION, f"no such session: {session_id!r}"
            )
        _metrics().counter(
            "repro_service_sessions_closed_total", "Sessions closed by request"
        ).inc()
        _log.info("session_closed", session=session_id)
        return session.close(**close_kwargs)

    def discard(self, session_id) -> bool:
        """Forget a session *without* closing it (worker-crash path:
        the session is already dead and its summary unrecoverable)."""
        with self._lock:
            session = self._sessions.pop(session_id, None)
            if session is not None:
                self._release_tenant_locked(session.tenant)
                self._publish_active_locked()
        if session is not None:
            _metrics().counter(
                "repro_service_sessions_crashed_total",
                "Sessions lost to worker crashes",
            ).inc()
            _log.warning("session_crashed", session=session_id)
        return session is not None

    def close_all(self) -> list[str]:
        """Drain path: close every session, newest last.

        Each session's subscribers receive one structured
        ``server_drain`` error frame before the close detaches them,
        so a consumer can tell a deliberate drain from a dead socket.

        Tenant slots are released per popped session (not cleared
        wholesale): a create mid-construction still holds its reserved
        slot, and the drain-generation bump makes that create fail at
        insert with ``server_drain``, releasing the slot itself — so
        per-tenant accounting never drifts and no session slips past
        the drain.
        """
        with self._lock:
            self._drain_gen += 1
            sessions = list(self._sessions.items())
            self._sessions.clear()
            for _, session in sessions:
                self._release_tenant_locked(session.tenant)
            self._publish_active_locked()
        for sid, session in sessions:
            session._fanout(
                "error",
                crash_event_data(
                    ErrorCode.SERVER_DRAIN, f"server draining; session {sid} closing"
                ),
            )
            session.close()
        if sessions:
            _metrics().counter(
                "repro_service_sessions_closed_total", "Sessions closed by request"
            ).inc(len(sessions))
        return [sid for sid, _ in sessions]

    def evict_idle(self, now: float | None = None) -> list[str]:
        """Close sessions idle longer than the TTL; returns their ids.

        Sessions with an operation in flight (``busy``) are skipped: a
        step that runs longer than the TTL is the opposite of idle, and
        evicting it would close the simulator out from under the
        stepping thread.  The busy check and the eviction claim are one
        atomic act (``try_mark_evicting`` under the session's activity
        lock), so a step dispatched concurrently either registers its
        in-flight op first — the claim fails, the session survives — or
        fails ``begin_op`` with a structured ``evicted`` error; it can
        never run against the closed simulator.
        """
        if self.idle_ttl_s <= 0:
            return []
        now = self._clock() if now is None else now
        with self._lock:
            evicted = [
                (sid, s)
                for sid, s in list(self._sessions.items())
                if s.try_mark_evicting(now, self.idle_ttl_s)
            ]
            for sid, session in evicted:
                self._sessions.pop(sid)
                self._release_tenant_locked(session.tenant)
            if evicted:
                self._publish_active_locked()
        for sid, session in evicted:
            # Structured goodbye before discard: consumers can tell an
            # idle-TTL eviction from a network failure.
            session._fanout(
                "error",
                crash_event_data(
                    ErrorCode.EVICTED,
                    f"session {sid} evicted after idling longer than "
                    f"{self.idle_ttl_s:g}s",
                ),
            )
            session.close()
            _log.info("session_evicted", session=sid, idle_ttl_s=self.idle_ttl_s)
        if evicted:
            _metrics().counter(
                "repro_service_sessions_evicted_total",
                "Sessions evicted by the idle TTL",
            ).inc(len(evicted))
        return [sid for sid, _ in evicted]

    def list_sessions(self) -> list[dict]:
        with self._lock:
            sessions = list(self._sessions.values())
        return [s.info() for s in sessions]
