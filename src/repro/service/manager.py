"""The session registry: admission, lookup, and idle eviction.

Enforces the server's multi-tenancy envelope: at most ``max_sessions``
live sessions (admission is checked *before* the expensive session
construction, and the slot is reserved so concurrent creates cannot
oversubscribe), at most ``tenant_quota`` of them per tenant (the
``tenant`` param on ``create_session``; over-quota creates are
rejected with the structured ``overloaded`` error code), and sessions
idle longer than ``idle_ttl_s`` are evicted by the server's reaper
task — except sessions with an operation in flight (``session.busy``),
which are never idle no matter how long the step runs.

The ``repro_service_sessions_active`` gauge is published *inside* the
registry lock at every mutation, so it always equals
``len(list_sessions())`` at the instant it was set — concurrent
creates/closes cannot publish stale counts out of order.

Construction is pluggable: ``session_factory`` defaults to the
in-process :class:`ProfilingSession`, and the worker-pool server swaps
in :meth:`~repro.service.workers.WorkerPool.session_factory` so the
same admission/eviction envelope governs worker-backed sessions.
"""

from __future__ import annotations

import threading
import time

from ..obs import log as obs_log
from ..obs import metrics as obs_metrics
from .protocol import ErrorCode, ServiceError
from .session import ProfilingSession
from .telemetry import crash_event_data

__all__ = ["SessionManager"]

_log = obs_log.get_logger("service.manager")


def _metrics():
    return obs_metrics.default_registry()


def _reject(reason: str) -> None:
    _metrics().counter(
        "repro_service_sessions_rejected_total",
        "Session creations refused by admission control",
        labelnames=("reason",),
    ).inc(reason=reason)


class SessionManager:
    """Creates, finds, evicts, and closes profiling sessions."""

    def __init__(
        self,
        max_sessions: int = 16,
        idle_ttl_s: float = 600.0,
        clock=time.monotonic,
        session_factory=ProfilingSession,
        tenant_quota: int | None = None,
    ):
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        if tenant_quota is not None and tenant_quota < 1:
            raise ValueError(f"tenant_quota must be >= 1, got {tenant_quota}")
        self.max_sessions = int(max_sessions)
        #: Per-tenant cap on live sessions (None = unlimited).  Checked
        #: at admission against live + reserved sessions of the tenant.
        self.tenant_quota = None if tenant_quota is None else int(tenant_quota)
        self.idle_ttl_s = float(idle_ttl_s)
        self.session_factory = session_factory
        #: Optional ``checkpointer(session) -> dict | None`` hook the
        #: server installs for ``--evict-to-disk``: called by
        #: :meth:`evict_idle` after the eviction claim but *before* the
        #: goodbye fan-out and slot release, so the goodbye can carry
        #: ``resumable: true`` only when the checkpoint actually
        #: persisted.  Returning None (or raising) degrades to the
        #: historical discard-on-evict behavior for that session.
        self.checkpointer = None
        #: Lifetime counters surfaced through ``server_info`` so an
        #: external harness (the CI eviction/resume soak) can assert
        #: checkpointed == resumed without scraping metrics.
        self.sessions_checkpointed = 0
        self.sessions_resumed = 0
        self._clock = clock
        self._lock = threading.Lock()
        self._sessions: dict[str, ProfilingSession] = {}
        self._reserved = 0
        #: Live + reserved sessions per tenant (quota accounting).
        self._tenant_count: dict[str, int] = {}
        self._next_id = 0
        #: Bumped by every close_all(); a create whose construction
        #: straddles a drain is rejected at insert instead of slipping
        #: a live session past the drain.
        self._drain_gen = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def _publish_active_locked(self) -> None:
        """Set the active-sessions gauge while holding ``_lock``.

        Publishing under the lock makes the gauge *ordered* with the
        registry mutations: it can never report a value from an earlier
        state after a later one (two concurrent closes racing the
        unlocked publish used to leave the gauge one high forever).
        """
        _metrics().gauge(
            "repro_service_sessions_active", "Live sessions in the manager"
        ).set(len(self._sessions))

    def _release_tenant_locked(self, tenant: str) -> None:
        count = self._tenant_count.get(tenant, 0) - 1
        if count > 0:
            self._tenant_count[tenant] = count
        else:
            self._tenant_count.pop(tenant, None)

    def tenants(self) -> dict[str, int]:
        """Live (admitted) session count per tenant."""
        with self._lock:
            counts: dict[str, int] = {}
            for session in self._sessions.values():
                tenant = getattr(session, "tenant", "default")
                counts[tenant] = counts.get(tenant, 0) + 1
            return counts

    def _admit_locked(self, tenant: str) -> int:
        """Reserve one capacity + tenant slot, or raise (lock held).

        Returns the drain generation observed *atomically* with the
        reservation, so a ``close_all`` landing any time after it is
        detected at insert.
        """
        if len(self._sessions) + self._reserved >= self.max_sessions:
            _reject("at_capacity")
            raise ServiceError(
                ErrorCode.AT_CAPACITY,
                f"session limit reached ({self.max_sessions})",
            )
        if (
            self.tenant_quota is not None
            and self._tenant_count.get(tenant, 0) >= self.tenant_quota
        ):
            _reject("tenant_quota")
            raise ServiceError(
                ErrorCode.OVERLOADED,
                f"tenant {tenant!r} is at its session quota "
                f"({self.tenant_quota}); close a session or retry later",
            )
        self._reserved += 1
        self._tenant_count[tenant] = self._tenant_count.get(tenant, 0) + 1
        return self._drain_gen

    def _build_admitted(self, session_id: str, tenant: str, drain_gen: int, builder):
        """Build outside the lock, then install under it (shared by
        :meth:`create` and :meth:`resume`).

        The capacity slot is reserved before ``builder`` runs and
        released on failure; a drain that lands mid-construction is
        detected by the generation bump and the session is rejected at
        insert (closing it and releasing its slots) instead of slipping
        a live session past the drain.
        """
        admitted = False
        try:
            session = builder()
            admitted = True
        except TypeError as exc:
            raise ServiceError(ErrorCode.BAD_PARAMS, str(exc)) from exc
        finally:
            with self._lock:
                self._reserved -= 1
                if not admitted:
                    self._release_tenant_locked(tenant)
        session.tenant = tenant
        with self._lock:
            if self._drain_gen != drain_gen:
                # close_all() ran while we were constructing: the drain
                # already dropped every live session, so this one must
                # not outlive it.  Its tenant slot was reserved before
                # the drain and close_all only releases slots of popped
                # sessions, so release it here.
                self._release_tenant_locked(tenant)
                drained = True
            else:
                self._sessions[session_id] = session
                self._publish_active_locked()
                drained = False
        if drained:
            session.close()
            _reject("server_drain")
            raise ServiceError(
                ErrorCode.SERVER_DRAIN,
                f"server drained while session {session_id} was being built",
            )
        return session

    def create(self, **params) -> ProfilingSession:
        """Admit and build one session.

        Raises ``at_capacity`` when the server-wide limit is reached
        and ``overloaded`` when the requesting tenant (the ``tenant``
        param, default ``"default"``) is at its quota.  The capacity
        slot is reserved under the lock but the (slow) session
        construction happens outside it, so concurrent creates neither
        oversubscribe nor serialize.
        """
        tenant = params.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise ServiceError(
                ErrorCode.BAD_PARAMS, "tenant must be a non-empty string"
            )
        with self._lock:
            drain_gen = self._admit_locked(tenant)
            self._next_id += 1
            session_id = f"s{self._next_id}"
        session = self._build_admitted(
            session_id,
            tenant,
            drain_gen,
            lambda: self.session_factory(session_id, clock=self._clock, **params),
        )
        _metrics().counter(
            "repro_service_sessions_created_total", "Sessions admitted and built"
        ).inc()
        _log.info(
            "session_created",
            session=session_id,
            tenant=tenant,
            workload=params.get("workload"),
            worker=getattr(getattr(session, "worker", None), "index", None),
        )
        return session

    def resume(self, session_id: str, tenant: str, builder) -> ProfilingSession:
        """Re-admit a checkpointed (evicted-to-disk) session.

        Goes through the *same* admission gate as :meth:`create` — the
        global capacity check and the tenant quota both apply, so a
        resume cannot sneak past the limits its eviction freed up —
        but keeps the original ``session_id`` (the ledger's seq chain
        continues) instead of minting a new one.  ``builder`` rebuilds
        the session outside the lock (worker rebuild + deterministic
        catch-up is slow); a still-live id is rejected with
        ``bad_request`` before any slot is reserved.
        """
        if not isinstance(tenant, str) or not tenant:
            raise ServiceError(
                ErrorCode.BAD_PARAMS, "tenant must be a non-empty string"
            )
        with self._lock:
            if session_id in self._sessions:
                raise ServiceError(
                    ErrorCode.BAD_REQUEST,
                    f"session {session_id!r} is still live; only evicted "
                    "(checkpointed) sessions can be resumed",
                )
            drain_gen = self._admit_locked(tenant)
        session = self._build_admitted(session_id, tenant, drain_gen, builder)
        with self._lock:
            self.sessions_resumed += 1
        _metrics().counter(
            "repro_service_sessions_resumed_total",
            "Checkpointed sessions re-admitted via resume_session",
        ).inc()
        _log.info("session_resumed", session=session_id, tenant=tenant)
        return session

    def get(self, session_id) -> ProfilingSession:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise ServiceError(
                ErrorCode.UNKNOWN_SESSION, f"no such session: {session_id!r}"
            )
        return session

    def close(self, session_id, **close_kwargs) -> dict:
        """Close and forget one session; returns its final summary.

        ``close_kwargs`` (``include_epochs``/``epochs_from``/
        ``epochs_to``) pass through to the session's bounded
        epoch-series serialization.
        """
        with self._lock:
            session = self._sessions.pop(session_id, None)
            if session is not None:
                self._release_tenant_locked(session.tenant)
                self._publish_active_locked()
        if session is None:
            raise ServiceError(
                ErrorCode.UNKNOWN_SESSION, f"no such session: {session_id!r}"
            )
        _metrics().counter(
            "repro_service_sessions_closed_total", "Sessions closed by request"
        ).inc()
        _log.info("session_closed", session=session_id)
        return session.close(**close_kwargs)

    def discard(self, session_id) -> bool:
        """Forget a session *without* closing it (worker-crash path:
        the session is already dead and its summary unrecoverable)."""
        with self._lock:
            session = self._sessions.pop(session_id, None)
            if session is not None:
                self._release_tenant_locked(session.tenant)
                self._publish_active_locked()
        if session is not None:
            _metrics().counter(
                "repro_service_sessions_crashed_total",
                "Sessions lost to worker crashes",
            ).inc()
            _log.warning("session_crashed", session=session_id)
        return session is not None

    def close_all(self) -> list[str]:
        """Drain path: close every session, newest last.

        Each session's subscribers receive one structured
        ``server_drain`` error frame before the close detaches them,
        so a consumer can tell a deliberate drain from a dead socket.

        Tenant slots are released per popped session (not cleared
        wholesale): a create mid-construction still holds its reserved
        slot, and the drain-generation bump makes that create fail at
        insert with ``server_drain``, releasing the slot itself — so
        per-tenant accounting never drifts and no session slips past
        the drain.
        """
        with self._lock:
            self._drain_gen += 1
            sessions = list(self._sessions.items())
            self._sessions.clear()
            for _, session in sessions:
                self._release_tenant_locked(session.tenant)
            self._publish_active_locked()
        for sid, session in sessions:
            session._fanout(
                "error",
                crash_event_data(
                    ErrorCode.SERVER_DRAIN, f"server draining; session {sid} closing"
                ),
            )
            session.close()
        if sessions:
            _metrics().counter(
                "repro_service_sessions_closed_total", "Sessions closed by request"
            ).inc(len(sessions))
        return [sid for sid, _ in sessions]

    def evict_idle(self, now: float | None = None) -> list[str]:
        """Close sessions idle longer than the TTL; returns their ids.

        Sessions with an operation in flight (``busy``) are skipped: a
        step that runs longer than the TTL is the opposite of idle, and
        evicting it would close the simulator out from under the
        stepping thread.  The busy check and the eviction claim are one
        atomic act (``try_mark_evicting`` under the session's activity
        lock), so a step dispatched concurrently either registers its
        in-flight op first — the claim fails, the session survives — or
        fails ``begin_op`` with a structured ``evicted`` error; it can
        never run against the closed simulator.

        Ordering is load-bearing: the session is claimed, then (when a
        :attr:`checkpointer` is installed) checkpointed, then the
        structured goodbye fans out *while the session is still
        registered*, and only then is it popped from the registry and
        its slots released.  A concurrent ``subscribe`` therefore
        either attaches before the goodbye (and receives it — the
        fan-out and the attach share the subscriber lock), is refused
        with a structured ``evicted`` error (the claim set the flag),
        or arrives after the pop and gets ``unknown_session`` — it can
        never attach silently to a half-dead session.
        """
        if self.idle_ttl_s <= 0:
            return []
        now = self._clock() if now is None else now
        with self._lock:
            evicted = [
                (sid, s)
                for sid, s in list(self._sessions.items())
                if s.try_mark_evicting(now, self.idle_ttl_s)
            ]
        checkpointed = 0
        for sid, session in evicted:
            # Checkpoint (best-effort) before the goodbye so the frame
            # can truthfully promise resumability; the marker records
            # the epoch count *before* the goodbye record appends, and
            # the goodbye itself lands in the ledger as the last frame
            # of this session life.
            resumable = None
            if self.checkpointer is not None:
                try:
                    resumable = self.checkpointer(session) is not None
                except Exception:  # noqa: BLE001 — degrade to plain evict
                    _log.warning("session_checkpoint_failed", session=sid)
                    resumable = False
                if resumable:
                    checkpointed += 1
            # Structured goodbye *before* the registry pop: consumers
            # can tell an idle-TTL eviction from a network failure, and
            # every subscriber attached at this instant is guaranteed
            # to receive it.
            session._fanout(
                "error",
                crash_event_data(
                    ErrorCode.EVICTED,
                    f"session {sid} evicted after idling longer than "
                    f"{self.idle_ttl_s:g}s",
                    resumable=resumable,
                ),
            )
        if evicted:
            with self._lock:
                for sid, session in evicted:
                    # A drain (close_all) may have popped the session
                    # in the window since the claim; it released the
                    # tenant slot then, so only release on a real pop.
                    if self._sessions.pop(sid, None) is not None:
                        self._release_tenant_locked(session.tenant)
                self.sessions_checkpointed += checkpointed
                self._publish_active_locked()
        for sid, session in evicted:
            session.close()
            _log.info("session_evicted", session=sid, idle_ttl_s=self.idle_ttl_s)
        if evicted:
            _metrics().counter(
                "repro_service_sessions_evicted_total",
                "Sessions evicted by the idle TTL",
            ).inc(len(evicted))
        if checkpointed:
            _metrics().counter(
                "repro_service_sessions_checkpointed_total",
                "Evicted sessions checkpointed to the ledger (resumable)",
            ).inc(checkpointed)
        return [sid for sid, _ in evicted]

    def list_sessions(self) -> list[dict]:
        with self._lock:
            sessions = list(self._sessions.values())
        return [s.info() for s in sessions]
