"""Converters from simulator dataclasses to JSON-safe telemetry dicts.

The per-epoch dict is the payload of every ``subscribe`` event frame,
of the ``step`` response, and of every ``epoch`` record the telemetry
ledger (:mod:`repro.ledger`) persists; the result dict summarizes a
finished session on ``close_session``.  Shapes are part of the wire
protocol — see ``docs/service.md`` — so changes here are protocol
changes *and* ledger format changes: bump
:data:`repro.ledger.storage.LEDGER_FORMAT_VERSION` when a shape
changes incompatibly, or old ledgers will replay wrong.

The shared shape is also what makes the serialize-once fan-out work:
each epoch dict is JSON-encoded exactly once
(:func:`~repro.service.protocol.encode_payload`) and those bytes are
spliced verbatim into every subscriber's wire frame *and* the ledger
record's ``data`` field, so wire and disk stay bit-identical by
construction rather than by parallel encoders.
"""

from __future__ import annotations

from ..tiering.latency_model import EpochLatency
from ..tiering.simulator import EpochMetrics, SimulationResult

__all__ = [
    "MAX_EPOCHS_PER_RESPONSE",
    "crash_event_data",
    "epoch_metrics_from_dict",
    "epoch_metrics_to_dict",
    "recovered_event_data",
    "resumed_event_data",
    "simulation_result_to_dict",
]

#: Hard cap on epochs serialized into one response (a 100k-epoch
#: session must page through ``epochs_from``/``epochs_to`` windows, not
#: ship its whole history in a single JSON line).
MAX_EPOCHS_PER_RESPONSE = 4096


def crash_event_data(
    code: str,
    message: str,
    worker: int | None = None,
    resumable: bool | None = None,
) -> dict:
    """Payload of the structured ``error`` frame a lost session pushes.

    Delivered through the same :class:`SubscriberQueue` path as epoch
    frames, so ``seq``/``dropped`` accounting stays intact across the
    failure and consumers can tell exactly which frames they lost.
    Besides worker crashes, the same shape announces idle-TTL eviction
    (``code="evicted"``) and server drain (``code="server_drain"``) so
    a consumer can distinguish every deliberate discard from a network
    failure.

    ``resumable`` (eviction goodbyes only) tells the consumer whether
    the session state was checkpointed to the ledger before the slots
    were released — ``true`` means a later ``resume_session`` with the
    same session id re-materializes it bit-identically.
    """
    data = {"code": code, "message": message}
    if worker is not None:
        data["worker"] = int(worker)
    if resumable is not None:
        data["resumable"] = bool(resumable)
    return data


def recovered_event_data(
    worker: int, epochs_replayed: int, message: str
) -> dict:
    """Payload of the ``recovered`` frame after a ledger re-materialize.

    Pushed once the crashed session's replacement has caught back up
    to ``epochs_replayed`` scored epochs; subsequent ``epoch`` frames
    continue the pre-crash series bit-identically.
    """
    return {
        "worker": int(worker),
        "epochs_replayed": int(epochs_replayed),
        "message": message,
    }


def resumed_event_data(
    epochs_resumed: int, message: str, worker: int | None = None
) -> dict:
    """Payload of the ``resumed`` frame after a checkpoint re-admission.

    The voluntary-eviction sibling of :func:`recovered_event_data`:
    pushed (and ledger-appended) once a checkpointed session has been
    re-built and silently caught back up to ``epochs_resumed`` scored
    epochs, so a ``subscribe(from_seq=...)`` stream shows checkpoint,
    ``evicted`` goodbye, and resumption as one gap-free seq sequence.
    """
    data = {
        "epochs_resumed": int(epochs_resumed),
        "message": message,
    }
    if worker is not None:
        data["worker"] = int(worker)
    return data


def epoch_metrics_to_dict(m: EpochMetrics) -> dict:
    """Flatten one :class:`EpochMetrics` (incl. latency breakdown)."""
    return {
        "epoch": int(m.epoch),
        "accesses": int(m.accesses),
        "mem_accesses": int(m.mem_accesses),
        "hitrate": float(m.hitrate),
        "promoted": int(m.promoted),
        "demoted": int(m.demoted),
        "profiler_overhead_s": float(m.profiler_overhead_s),
        "runtime_s": float(m.runtime_s),
        "latency": {
            "base_s": float(m.latency.base_s),
            "slow_fault_s": float(m.latency.slow_fault_s),
            "hot_slow_extra_s": float(m.latency.hot_slow_extra_s),
            "migration_s": float(m.latency.migration_s),
            "total_s": float(m.latency.total_s),
        },
    }


def epoch_metrics_from_dict(data: dict) -> EpochMetrics:
    """Inverse of :func:`epoch_metrics_to_dict` (ledger replay path).

    Floats survive the JSON round-trip exactly (``repr`` round-trips
    every finite double), so a replayed epoch is bit-identical to the
    live one — the property the recovery tests pin.
    """
    latency = data["latency"]
    return EpochMetrics(
        epoch=int(data["epoch"]),
        accesses=int(data["accesses"]),
        mem_accesses=int(data["mem_accesses"]),
        hitrate=float(data["hitrate"]),
        promoted=int(data["promoted"]),
        demoted=int(data["demoted"]),
        latency=EpochLatency(
            base_s=float(latency["base_s"]),
            slow_fault_s=float(latency["slow_fault_s"]),
            hot_slow_extra_s=float(latency["hot_slow_extra_s"]),
            migration_s=float(latency["migration_s"]),
        ),
        profiler_overhead_s=float(data["profiler_overhead_s"]),
    )


def simulation_result_to_dict(
    res: SimulationResult,
    *,
    include_epochs: bool = False,
    epochs_from: int = 0,
    epochs_to: int | None = None,
) -> dict:
    """Summarize a (possibly still-running) simulation result.

    ``include_epochs`` attaches the per-epoch series, but only the
    ``[epochs_from, epochs_to)`` window and never more than
    :data:`MAX_EPOCHS_PER_RESPONSE` entries — the response reports the
    window actually served (``epochs_from``/``epochs_to``) so callers
    can page through a long run with repeated bounded requests.
    """
    out = {
        "workload": res.workload,
        "policy": res.policy,
        "rank_source": res.rank_source,
        "tier1_ratio": float(res.tier1_ratio),
        "tier1_capacity": int(res.tier1_capacity),
        "epochs_run": len(res.epochs),
        "mean_hitrate": float(res.mean_hitrate),
        "total_runtime_s": float(res.total_runtime_s),
        "total_migrations": int(res.total_migrations),
    }
    if include_epochs:
        start = max(int(epochs_from), 0)
        stop = len(res.epochs) if epochs_to is None else int(epochs_to)
        stop = min(max(stop, start), len(res.epochs), start + MAX_EPOCHS_PER_RESPONSE)
        out["epochs_from"] = start
        out["epochs_to"] = stop
        out["epochs"] = [
            epoch_metrics_to_dict(e) for e in res.epochs[start:stop]
        ]
    return out
