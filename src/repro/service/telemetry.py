"""Converters from simulator dataclasses to JSON-safe telemetry dicts.

The per-epoch dict is the payload of every ``subscribe`` event frame
and of the ``step`` response; the result dict summarizes a finished
session on ``close_session``.  Shapes are part of the wire protocol —
see ``docs/service.md`` — so changes here are protocol changes.
"""

from __future__ import annotations

from ..tiering.simulator import EpochMetrics, SimulationResult

__all__ = [
    "crash_event_data",
    "epoch_metrics_to_dict",
    "simulation_result_to_dict",
]


def crash_event_data(code: str, message: str, worker: int | None = None) -> dict:
    """Payload of the structured ``error`` frame a lost session pushes.

    Delivered through the same :class:`SubscriberQueue` path as epoch
    frames, so ``seq``/``dropped`` accounting stays intact across the
    failure and consumers can tell exactly which frames they lost.
    """
    data = {"code": code, "message": message}
    if worker is not None:
        data["worker"] = int(worker)
    return data


def epoch_metrics_to_dict(m: EpochMetrics) -> dict:
    """Flatten one :class:`EpochMetrics` (incl. latency breakdown)."""
    return {
        "epoch": int(m.epoch),
        "accesses": int(m.accesses),
        "mem_accesses": int(m.mem_accesses),
        "hitrate": float(m.hitrate),
        "promoted": int(m.promoted),
        "demoted": int(m.demoted),
        "profiler_overhead_s": float(m.profiler_overhead_s),
        "runtime_s": float(m.runtime_s),
        "latency": {
            "base_s": float(m.latency.base_s),
            "slow_fault_s": float(m.latency.slow_fault_s),
            "hot_slow_extra_s": float(m.latency.hot_slow_extra_s),
            "migration_s": float(m.latency.migration_s),
            "total_s": float(m.latency.total_s),
        },
    }


def simulation_result_to_dict(
    res: SimulationResult, *, include_epochs: bool = False
) -> dict:
    """Summarize a (possibly still-running) simulation result."""
    out = {
        "workload": res.workload,
        "policy": res.policy,
        "rank_source": res.rank_source,
        "tier1_ratio": float(res.tier1_ratio),
        "tier1_capacity": int(res.tier1_capacity),
        "epochs_run": len(res.epochs),
        "mean_hitrate": float(res.mean_hitrate),
        "total_runtime_s": float(res.total_runtime_s),
        "total_migrations": int(res.total_migrations),
    }
    if include_epochs:
        out["epochs"] = [epoch_metrics_to_dict(e) for e in res.epochs]
    return out
