"""repro.service — the online multi-session profiling service.

The paper's TMP is a long-running user-space daemon that watches many
processes at once and surfaces statistics to operators (§III-B.3); the
batch commands (`profile`/`tier`/`record`) only ever exercised it one
run at a time.  This subsystem hosts many concurrent profiling
*sessions* — each a :class:`~repro.tiering.simulator.TieredSimulator`
plus :class:`~repro.core.daemon.TMPDaemon` built from a config supplied
at session creation — behind an asyncio JSON-lines server
(``repro serve``), with streaming per-epoch telemetry, bounded
drop-oldest subscriber queues, idle eviction, an admission limit, and
graceful drain on SIGTERM.

Layering:

``protocol``
    The wire format: one JSON object per line; request/response and
    server-push event frames; error codes.
``telemetry``
    :class:`EpochMetrics`/:class:`SimulationResult` → JSON-safe dicts.
``session``
    One profiling session: simulator + daemon + subscriber queues.
``workers``
    The sticky worker-process pool (`--workers N`): sessions execute
    on separate cores, with crash recovery and structured error
    frames; ``workers=0`` keeps the in-process path.
``manager``
    The session registry: admission, lookup, TTL/idle eviction.
    Deliberate discards (eviction, drain) push structured
    ``evicted``/``server_drain`` goodbye frames before detaching.
``server``
    The asyncio JSON-lines server (TCP or unix socket) and a
    thread-hosted variant for embedding in sync programs and tests.
``client``
    A blocking socket client (`ServiceClient`).

Durability: with ``repro serve --ledger-dir`` every session's event
stream also appends to :mod:`repro.ledger` — an on-disk event-sourced
telemetry ledger enabling ``subscribe(from_seq=...)`` replay and
crashed-session recovery (a dead worker's sessions are re-materialized
from their recorded config instead of discarded).  See
``docs/service.md``.

Observability: every layer records into :mod:`repro.obs` — the
``metrics`` protocol op (and :meth:`ServiceClient.metrics`) returns one
snapshot merged across the parent and every worker process, and
``repro serve --metrics-port`` serves the same aggregate in the
Prometheus text format.  See ``docs/observability.md``.
"""

from .client import ServiceClient
from .manager import SessionManager
from .protocol import ErrorCode, ServiceError
from .server import ServerThread, ServiceServer
from .session import ProfilingSession, SessionBase, SubscriberQueue
from .workers import RemoteSession, WorkerPool, resolve_workers

__all__ = [
    "ErrorCode",
    "ProfilingSession",
    "RemoteSession",
    "ServerThread",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "SessionBase",
    "SessionManager",
    "SubscriberQueue",
    "WorkerPool",
    "resolve_workers",
]
