"""The service wire protocol: one JSON object per line (UTF-8).

Three frame shapes travel over a connection:

Request (client → server)::

    {"id": 1, "op": "create_session", "params": {...}}

Response (server → client, exactly one per request)::

    {"id": 1, "ok": true, "result": {...}}
    {"id": 1, "ok": false, "error": {"code": "unknown_session",
                                     "message": "..."}}

Event (server → client, pushed after a ``subscribe``)::

    {"event": "epoch", "session": "s1", "subscription": "sub1",
     "seq": 4, "dropped": 0, "data": {...}}

``id`` is caller-chosen and echoed verbatim; events carry no ``id``.
A client distinguishes the two by key: frames with ``id`` answer a
request, frames with ``event`` belong to a subscription.  Numpy
scalars are coerced to plain ints/floats on encode so every frame is
vanilla JSON.
"""

from __future__ import annotations

import json

__all__ = [
    "ErrorCode",
    "MAX_LINE_BYTES",
    "ServiceError",
    "decode_frame",
    "encode_frame",
    "encode_payload",
    "error_response",
    "event_frame",
    "ok_response",
    "splice_event_frame",
]

#: Upper bound on one frame's encoded size; longer lines are rejected.
MAX_LINE_BYTES = 1 << 20


class ErrorCode:
    """Stable machine-readable error codes carried in error responses."""

    BAD_REQUEST = "bad_request"      # unparseable / malformed frame
    BAD_PARAMS = "bad_params"        # well-formed but invalid params
    UNKNOWN_OP = "unknown_op"
    UNKNOWN_SESSION = "unknown_session"
    AT_CAPACITY = "at_capacity"      # admission limit reached
    OVERLOADED = "overloaded"        # backpressure: quota or in-flight limit
    SHUTTING_DOWN = "shutting_down"  # server is draining
    WORKER_CRASHED = "worker_crashed"  # session lost to a dead worker
    EVICTED = "evicted"              # session closed by the idle TTL
    SERVER_DRAIN = "server_drain"    # session closed by graceful drain
    INTERNAL = "internal"


class ServiceError(Exception):
    """A protocol-level failure with a stable error code.

    Raised server-side to produce an error response, and client-side
    when a response carries ``ok: false``.
    """

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message

    def to_error(self) -> dict:
        return {"code": self.code, "message": self.message}


def _json_default(obj):
    """Coerce numpy scalars/arrays so frames stay vanilla JSON."""
    tolist = getattr(obj, "tolist", None)
    if callable(tolist):
        return tolist()
    raise TypeError(f"not JSON-serializable: {type(obj).__name__}")


def encode_frame(frame: dict, max_bytes: int | None = None) -> bytes:
    """One frame → one newline-terminated UTF-8 JSON line.

    Outbound frames obey the same size bound the receiving side
    enforces in :func:`decode_frame`: an encoded line longer than
    ``max_bytes`` (default :data:`MAX_LINE_BYTES`, resolved at call
    time) raises a structured ``bad_request`` ``ServiceError`` instead
    of emitting a frame the peer's own decoder would refuse.
    """
    line = (
        json.dumps(frame, separators=(",", ":"), default=_json_default) + "\n"
    ).encode("utf-8")
    limit = MAX_LINE_BYTES if max_bytes is None else max_bytes
    if len(line) > limit:
        raise ServiceError(
            ErrorCode.BAD_REQUEST,
            f"encoded frame is {len(line)} bytes, over the {limit}-byte "
            f"line limit; request a smaller window",
        )
    return line


def encode_payload(data) -> bytes:
    """Encode one frame's ``data`` dict to compact JSON payload bytes.

    Produces exactly the bytes ``encode_frame`` would place after
    ``"data":`` — same separators, same numpy coercion — so the result
    can be spliced into an envelope (:func:`splice_event_frame`) or a
    ledger record and remain bit-identical to a whole-dict encode.
    """
    return json.dumps(data, separators=(",", ":"), default=_json_default).encode(
        "utf-8"
    )


def splice_event_frame(
    event: str,
    session_id: str,
    subscription_id: str,
    seq: int,
    dropped: int,
    payload: bytes,
) -> bytes:
    """Build an encoded event line around pre-encoded payload bytes.

    Bit-identical to ``encode_frame(event_frame(...))`` with the same
    arguments: the envelope keys are written in :func:`event_frame`
    insertion order with compact separators, and ``payload`` must come
    from :func:`encode_payload` (or a ledger record that stored it).
    The whole point is that the payload — the dominant cost — is
    encoded once and shared across every subscriber's envelope.
    """
    return b"".join(
        (
            b'{"event":',
            json.dumps(event).encode("utf-8"),
            b',"session":',
            json.dumps(session_id).encode("utf-8"),
            b',"subscription":',
            json.dumps(subscription_id).encode("utf-8"),
            b',"seq":',
            str(int(seq)).encode("ascii"),
            b',"dropped":',
            str(int(dropped)).encode("ascii"),
            b',"data":',
            payload,
            b"}\n",
        )
    )


def decode_frame(line: bytes | str) -> dict:
    """One received line → frame dict; malformed input is BAD_REQUEST."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ServiceError(
                ErrorCode.BAD_REQUEST, f"frame exceeds {MAX_LINE_BYTES} bytes"
            )
        line = line.decode("utf-8", errors="replace")
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceError(ErrorCode.BAD_REQUEST, f"invalid JSON: {exc}") from exc
    if not isinstance(frame, dict):
        raise ServiceError(
            ErrorCode.BAD_REQUEST, "frame must be a JSON object"
        )
    return frame


def ok_response(request_id, result: dict) -> dict:
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id, code: str, message: str) -> dict:
    return {"id": request_id, "ok": False, "error": {"code": code, "message": message}}


def event_frame(
    event: str,
    session_id: str,
    subscription_id: str,
    seq: int,
    data: dict,
    dropped: int = 0,
) -> dict:
    return {
        "event": event,
        "session": session_id,
        "subscription": subscription_id,
        "seq": seq,
        "dropped": dropped,
        "data": data,
    }
