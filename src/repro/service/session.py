"""One profiling session: a live simulator + daemon + subscribers.

A session is the service-side unit of tenancy.  It owns a
:class:`TieredSimulator` driven incrementally through the epoch-step
hook (``start()`` once, ``step(n)`` on demand), the
:class:`TMPDaemon` front-end over that simulator's profiler (for
``stats``/``numa_maps``/``reconfigure``), per-step timing records
(reusing the runner's :class:`RunnerMetrics`), and any number of
bounded subscriber queues that receive one frame per scored epoch.

Thread model: the server executes stepping and daemon reads in a
worker executor so the event loop stays responsive, while subscriber
drains happen on the loop.  Two locks keep that safe — ``_sim_lock``
serializes simulator/daemon access (one step at a time per session),
``_sub_lock`` guards the subscriber table so frames can be drained
*while* a step is still producing them.

:class:`SessionBase` holds everything that is *tenancy*, not
*simulation* — identity, activity tracking, the subscriber table and
frame fan-out — so the worker-pool's remote sessions
(:class:`~repro.service.workers.RemoteSession`, which forward
simulation to a sticky worker process) share the exact subscriber
semantics of the in-process path.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque

from ..core.config import TMPConfig
from ..core.daemon import TMPDaemon
from ..memsim.machine import MachineConfig
from ..obs import metrics as obs_metrics
from ..runner.metrics import RunnerMetrics
from ..tiering.policies import POLICIES
from ..tiering.simulator import TieredSimulator
from ..workloads import WORKLOAD_NAMES, make_workload
from .protocol import ErrorCode, ServiceError, encode_payload, splice_event_frame
from .telemetry import epoch_metrics_to_dict, simulation_result_to_dict

__all__ = [
    "ProfilingSession",
    "QueuedFrame",
    "SessionBase",
    "SubscriberQueue",
    "DEFAULT_MAX_QUEUE",
]

#: Default per-subscriber frame buffer (drop-oldest beyond this).
DEFAULT_MAX_QUEUE = 64

#: Cached (registry, frames_counter, dropped_counter) for the fan-out
#: hot path: ``SubscriberQueue.push`` runs once per frame per
#: subscriber while ``_sub_lock`` is held, so it must not pay two
#: registry lookups (each taking the registry lock) per frame.  Keyed
#: by registry identity so tests that swap the default registry
#: (:func:`obs_metrics.set_default_registry`) still record into the
#: right one.
_push_counters_cache: tuple | None = None


def _push_counters():
    global _push_counters_cache
    registry = obs_metrics.default_registry()
    cache = _push_counters_cache
    if cache is None or cache[0] is not registry:
        cache = (
            registry,
            registry.counter(
                "repro_service_subscriber_frames_total",
                "Frames pushed into subscriber queues",
            ),
            registry.counter(
                "repro_service_subscriber_dropped_total",
                "Frames shed (drop-oldest) by full subscriber queues",
            ),
        )
        _push_counters_cache = cache
    return cache[1], cache[2]


class QueuedFrame:
    """One buffered event frame: envelope fields + shared payload bytes.

    The ``data`` payload lives as *either* the original dict or its
    pre-encoded JSON bytes (both when already materialized); whichever
    side is missing is produced lazily.  The encoded side is the hot
    path — every subscriber queue holds the *same* payload bytes object
    and :meth:`encode` only splices the tiny per-subscriber envelope
    around it — while dict access (``frame["data"]``) keeps the
    original mapping-style API for tests and non-hot-path consumers.
    """

    __slots__ = (
        "event",
        "session_id",
        "subscription_id",
        "seq",
        "dropped",
        "payload",
        "_data",
    )

    def __init__(
        self,
        event: str,
        session_id: str,
        subscription_id: str,
        seq: int,
        dropped: int,
        payload: bytes | None = None,
        data: dict | None = None,
    ):
        self.event = event
        self.session_id = session_id
        self.subscription_id = subscription_id
        self.seq = seq
        self.dropped = dropped
        self.payload = payload
        self._data = data

    @property
    def data(self) -> dict:
        if self._data is None:
            self._data = json.loads(self.payload)
        return self._data

    def encode(self) -> bytes:
        """The frame's wire bytes, splicing the shared payload."""
        if self.payload is None:
            self.payload = encode_payload(self._data)
        return splice_event_frame(
            self.event,
            self.session_id,
            self.subscription_id,
            self.seq,
            self.dropped,
            self.payload,
        )

    def to_dict(self) -> dict:
        return {
            "event": self.event,
            "session": self.session_id,
            "subscription": self.subscription_id,
            "seq": self.seq,
            "dropped": self.dropped,
            "data": self.data,
        }

    # Mapping-style access mirrors the plain-dict frames this class
    # replaced, so frame["seq"] / frame.get("data") keep working.
    def __getitem__(self, key):
        try:
            return self.to_dict()[key]
        except KeyError:
            raise KeyError(key) from None

    def get(self, key, default=None):
        return self.to_dict().get(key, default)


class SubscriberQueue:
    """A bounded per-subscriber buffer of event frames.

    ``push`` never blocks: when the buffer is full the *oldest* frame
    is discarded and the cumulative ``dropped`` counter advances, so a
    slow subscriber costs itself history but never stalls the stepping
    path.  Frames carry ``seq`` (gap = drops) and the running
    ``dropped`` total so consumers can detect loss.
    """

    def __init__(
        self,
        subscription_id: str,
        session_id: str,
        max_queue: int = DEFAULT_MAX_QUEUE,
        notify=None,
        max_rate_hz: float | None = None,
        start_seq: int = 0,
        initial_dropped: int = 0,
    ):
        if max_queue < 1:
            raise ServiceError(ErrorCode.BAD_PARAMS, "max_queue must be >= 1")
        if max_rate_hz is not None and max_rate_hz <= 0:
            raise ServiceError(ErrorCode.BAD_PARAMS, "max_rate_hz must be > 0")
        self.subscription_id = subscription_id
        self.session_id = session_id
        self.max_queue = int(max_queue)
        self.notify = notify
        #: Delivery throttle (frames/s) honoured by the server's pump;
        #: a throttled subscriber falls behind into drop-oldest rather
        #: than slowing the session.
        self.min_interval_s = 1.0 / max_rate_hz if max_rate_hz else 0.0
        #: ``seq`` is the session-global frame number (the same number
        #: the telemetry ledger records), so a late subscriber starts
        #: at the session's current position rather than 0 and ledger
        #: replay splices seamlessly into the live tail.
        self.seq = int(start_seq)
        self.dropped = int(initial_dropped)
        self._frames: deque = deque()

    def push(
        self, event: str, data: dict | None = None, payload: bytes | None = None
    ) -> QueuedFrame:
        """Append one frame, dropping the oldest when full.

        ``payload`` carries the pre-encoded ``data`` bytes shared with
        every other subscriber of the same fan-out; passing only
        ``data`` keeps the old dict-based call shape (the bytes are
        produced lazily if the frame is ever encoded).
        """
        frames_total, dropped_total = _push_counters()
        frames_total.inc()
        if len(self._frames) >= self.max_queue:
            self._frames.popleft()
            self.dropped += 1
            dropped_total.inc()
        frame = QueuedFrame(
            event,
            self.session_id,
            self.subscription_id,
            self.seq,
            self.dropped,
            payload=payload,
            data=data,
        )
        self.seq += 1
        self._frames.append(frame)
        return frame

    def add_dropped(self, n: int) -> None:
        """Account ``n`` frames lost *outside* the queue (replay gaps).

        The ledger-replay path calls this when retention compaction
        removed records mid-replay: the cumulative ``dropped`` counter
        advances and every frame still buffered is retro-adjusted, so a
        consumer's loss arithmetic (``seq`` gap == ``dropped`` delta)
        stays exact across the replayed/live splice.  Safe only while
        the frames have not been drained yet — the server calls it
        before the subscription's pump starts.
        """
        if n <= 0:
            return
        self.dropped += int(n)
        for frame in self._frames:
            frame.dropped += int(n)

    def drain(self) -> list[QueuedFrame]:
        """Remove and return every buffered frame (oldest first)."""
        out = list(self._frames)
        self._frames.clear()
        return out

    def drain_encoded(self) -> list[bytes]:
        """Remove every buffered frame as spliced wire bytes.

        The coalescing pump's path: each blob is bit-identical to
        ``encode_frame(frame.to_dict())`` but re-uses the fan-out's
        shared payload bytes instead of re-serializing the dict.
        """
        out = [frame.encode() for frame in self._frames]
        self._frames.clear()
        return out

    def __len__(self) -> int:
        return len(self._frames)


class SessionBase:
    """Tenancy bookkeeping shared by local and worker-backed sessions.

    Identity, activity tracking (``touch``/``idle_s`` drive the
    manager's TTL eviction), step timing records, and the subscriber
    table with its drop-oldest fan-out.  Subclasses supply the
    simulation: :class:`ProfilingSession` hosts it in-process,
    :class:`~repro.service.workers.RemoteSession` forwards to a sticky
    worker process and feeds frames back through :meth:`_fanout`.
    """

    def __init__(self, session_id: str, clock=time.monotonic, tenant: str = "default"):
        self.session_id = session_id
        #: Admission principal: per-tenant quotas in the manager count
        #: live sessions by this key.
        self.tenant = str(tenant)
        self._clock = clock
        self.created_s = clock()
        self.last_active_s = self.created_s
        self.closed = False
        self.metrics = RunnerMetrics(jobs=1)
        #: In-flight blocking operations (steps in progress or queued on
        #: the simulator lock).  A busy session is never idle, however
        #: long the operation runs — the idle-TTL reaper must not close
        #: a session out from under a live step.
        self._activity_lock = threading.Lock()
        self._inflight_ops = 0
        #: Set by the reaper's :meth:`try_mark_evicting` under
        #: ``_activity_lock``; once set, :meth:`begin_op` refuses.
        self._evicting = False
        self._sub_lock = threading.Lock()
        self._subscribers: dict[str, SubscriberQueue] = {}
        self._next_sub = 0
        #: Extra frame consumers called on every fan-out (the worker
        #: processes use one to stream epochs back over their pipe).
        self._sinks: list = []
        #: Like ``_sinks`` but fed ``(event, payload_bytes)`` so a
        #: consumer that only forwards bytes (the worker pipe) never
        #: pays a decode/re-encode round trip.
        self._encoded_sinks: list = []
        #: Session-global frame counter: every fan-out consumes one
        #: number, shared by all subscribers and the ledger.
        self._frame_seq = 0
        #: The session's durable event store, when the server enables
        #: one (``--ledger-dir``); appended on every fan-out.
        self.ledger = None

    # ------------------------------------------------------------- lifecycle

    def touch(self) -> None:
        self.last_active_s = self._clock()

    def idle_s(self, now: float | None = None) -> float:
        return (self._clock() if now is None else now) - self.last_active_s

    def begin_op(self) -> None:
        """Mark one blocking operation in flight (and touch).

        Called *before* the operation's lock acquisition, so a step
        queued behind another step already counts as activity.

        Raises a structured ``evicted`` error if the reaper has already
        claimed this session via :meth:`try_mark_evicting`: the claim
        and this check share ``_activity_lock``, so an operation
        racing the reaper either registers first (the claim fails and
        the session survives) or loses cleanly here — it can never run
        against a simulator the reaper is closing.
        """
        with self._activity_lock:
            if self._evicting:
                raise ServiceError(
                    ErrorCode.EVICTED,
                    f"session {self.session_id} is being evicted",
                )
            self._inflight_ops += 1
        self.touch()

    def end_op(self) -> None:
        with self._activity_lock:
            self._inflight_ops -= 1
        self.touch()

    @property
    def busy(self) -> bool:
        """True while any blocking operation is in flight."""
        with self._activity_lock:
            return self._inflight_ops > 0

    def try_mark_evicting(self, now: float, idle_ttl_s: float) -> bool:
        """Atomically claim this session for idle eviction.

        Succeeds only when no operation is in flight *and* the session
        is still past the TTL, checked under the same lock
        :meth:`begin_op` uses — closing the window where a step
        dispatched between the reaper's busy check and its close()
        could run against a dead simulator.
        """
        with self._activity_lock:
            if self._inflight_ops > 0 or now - self.last_active_s <= idle_ttl_s:
                return False
            self._evicting = True
            return True

    # ---------------------------------------------------------- subscribers

    def add_sink(self, sink) -> None:
        """Register ``sink(event, data)`` to see every fan-out frame."""
        self._sinks.append(sink)

    def add_encoded_sink(self, sink) -> None:
        """Register ``sink(event, payload_bytes)`` for every fan-out.

        The payload bytes are the fan-out's single shared encode of the
        frame's ``data`` (see :func:`~repro.service.protocol
        .encode_payload`); a forwarding consumer — the worker pipe —
        ships them verbatim instead of re-serializing the dict.
        """
        self._encoded_sinks.append(sink)

    def attach_ledger(self, session_ledger, start_seq: int | None = None) -> None:
        """Durably record every fan-out frame in ``session_ledger``.

        The append happens inside the fan-out's subscriber-lock
        critical section, so by the time any subscriber attaches at
        frame ``S`` every frame ``< S`` is already readable from the
        ledger — the invariant ``subscribe(from_seq=...)`` replay
        relies on.  A failing append (disk full, closed ledger) is
        logged via the obs counter but never stalls stepping.

        ``start_seq`` (the resume path) fast-forwards the session's
        frame counter to the reopened ledger's ``next_seq``, so frames
        fanned out after a checkpoint re-admission continue the
        pre-eviction numbering instead of restarting at 0.
        """
        with self._sub_lock:
            self.ledger = session_ledger
            if start_seq is not None:
                self._frame_seq = int(start_seq)

    def _fanout(self, event: str, data: dict) -> None:
        """Push one frame to every subscriber queue, ledger, and sink."""
        self._fanout_batch(((event, data, None),))

    def _fanout_encoded_batch(self, batch) -> None:
        """Fan out pre-encoded ``(event, payload_bytes)`` pairs.

        The worker-pool ingest path: payloads were encoded worker-side
        (numpy coercion included), so the parent splices them straight
        into subscriber frames and ledger records without ever
        materializing the dict — unless a plain dict sink asks for it.
        """
        self._fanout_batch((event, None, payload) for event, payload in batch)

    def _fanout_batch(self, items) -> None:
        """Serialize-once fan-out of ``(event, data, payload)`` triples.

        Each item's payload is encoded exactly once — here, inside the
        subscriber-lock critical section, unless the caller already
        supplies the bytes — and that single bytes object is shared by
        every subscriber queue and the ledger record.  ``data`` may be
        ``None`` when only the bytes exist (worker ingest); dict sinks
        then decode it lazily, off the hot path.
        """
        shared: list = []  # (event, data_or_None, payload)
        with self._sub_lock:
            subs = list(self._subscribers.values())
            for event, data, payload in items:
                if payload is None:
                    payload = encode_payload(data)
                self._frame_seq += 1
                for sub in subs:
                    sub.push(event, data, payload=payload)
                shared.append((event, data, payload))
            if self.ledger is not None and shared:
                try:
                    self.ledger.append_many(
                        [(event, payload) for event, _, payload in shared]
                    )
                except (OSError, ValueError):
                    obs_metrics.default_registry().counter(
                        "repro_ledger_append_errors_total",
                        "Ledger appends that failed (frame not persisted)",
                    ).inc()
        for sub in subs:
            if sub.notify is not None:
                sub.notify()
        if self._encoded_sinks or self._sinks:
            for event, data, payload in shared:
                for sink in self._encoded_sinks:
                    sink(event, payload)
                if self._sinks:
                    if data is None:
                        data = json.loads(payload)
                    for sink in self._sinks:
                        sink(event, data)

    def subscribe(
        self,
        max_queue: int = DEFAULT_MAX_QUEUE,
        notify=None,
        max_rate_hz: float | None = None,
        initial_dropped: int = 0,
    ) -> SubscriberQueue:
        """Attach a bounded drop-oldest subscriber queue.

        The queue's ``seq`` starts at the session's current global
        frame count: earlier frames are never re-delivered live (the
        ledger replay path serves those), so the numbering is shared
        by every subscriber and by the on-disk records.

        A closed or eviction-claimed session refuses new subscribers
        with a structured error: once the reaper owns the session its
        goodbye fan-out has (or is about to) run, so a late subscriber
        attaching here would receive neither the goodbye nor any
        further frame — a silent half-dead subscription.  The refusal
        is checked under ``_sub_lock``, the same lock the goodbye
        fan-out holds, so every subscriber that *does* attach is
        guaranteed to be in the table when the goodbye frames push.
        """
        with self._sub_lock:
            # A crashed-awaiting-recovery session (``crashed`` set) is
            # still subscribable: its subscribers are owed the
            # ``recovered`` frame when the ledger re-materializes it.
            if self.closed and getattr(self, "crashed", None) is None:
                raise ServiceError(
                    ErrorCode.UNKNOWN_SESSION,
                    f"session {self.session_id} is closed",
                )
            if self._evicting:
                raise ServiceError(
                    ErrorCode.EVICTED,
                    f"session {self.session_id} is being evicted",
                )
            self._next_sub += 1
            sub = SubscriberQueue(
                f"{self.session_id}.sub{self._next_sub}",
                self.session_id,
                max_queue=max_queue,
                notify=notify,
                max_rate_hz=max_rate_hz,
                start_seq=self._frame_seq,
                initial_dropped=initial_dropped,
            )
            self._subscribers[sub.subscription_id] = sub
            return sub

    @property
    def frame_seq(self) -> int:
        """Frames fanned out so far (== the next frame's seq)."""
        with self._sub_lock:
            return self._frame_seq

    def account_replay_gap(self, sub: SubscriberQueue, n: int) -> None:
        """Charge ``n`` retention-lost frames to one subscriber.

        Taken under ``_sub_lock`` so the retro-adjustment of buffered
        live frames cannot interleave with a concurrent fan-out push.
        """
        with self._sub_lock:
            sub.add_dropped(n)

    def unsubscribe(self, subscription_id: str) -> bool:
        with self._sub_lock:
            return self._subscribers.pop(subscription_id, None) is not None

    def drain_subscriber(self, subscription_id: str) -> list[QueuedFrame]:
        """Pop buffered frames for one subscription (loop-side path)."""
        with self._sub_lock:
            sub = self._subscribers.get(subscription_id)
            return sub.drain() if sub is not None else []

    def drain_queue(self, sub: SubscriberQueue) -> list[QueuedFrame]:
        """Drain a queue object directly, even after it was detached.

        The server's pump holds the queue object, so goodbye frames
        (``evicted``/``server_drain``) pushed immediately before a
        close — which clears the subscriber table — still deliver.
        """
        with self._sub_lock:
            return sub.drain()

    def drain_queue_encoded(self, sub: SubscriberQueue) -> list[bytes]:
        """Drain a queue straight to wire bytes (the pump's hot path)."""
        with self._sub_lock:
            return sub.drain_encoded()


class ProfilingSession(SessionBase):
    """One tenant: simulator, daemon, timings, and subscribers."""

    def __init__(
        self,
        session_id: str,
        *,
        workload: str,
        policy: str = "history",
        tier1_ratio: float = 1 / 8,
        rank_source: str = "combined",
        seed: int = 0,
        epoch_slices: int = 1,
        ibs_period: int = 16,
        init: bool = True,
        workload_kwargs: dict | None = None,
        policy_kwargs: dict | None = None,
        tmp: dict | None = None,
        tenant: str = "default",
        clock=time.monotonic,
        catchup_epochs: int = 0,
    ):
        if workload not in WORKLOAD_NAMES:
            raise ServiceError(
                ErrorCode.BAD_PARAMS,
                f"unknown workload {workload!r}; available: "
                f"{', '.join(WORKLOAD_NAMES)}",
            )
        if policy not in POLICIES:
            raise ServiceError(
                ErrorCode.BAD_PARAMS,
                f"unknown policy {policy!r}; available: {', '.join(POLICIES)}",
            )
        super().__init__(session_id, clock=clock, tenant=tenant)
        self._sim_lock = threading.Lock()

        try:
            wl = make_workload(workload, **(workload_kwargs or {}))
            pol = POLICIES[policy](**(policy_kwargs or {}))
            tmp_config = TMPConfig(**tmp) if tmp else None
            self.sim = TieredSimulator(
                wl,
                pol,
                tier1_ratio=tier1_ratio,
                rank_source=rank_source,
                machine_config=MachineConfig.scaled(ibs_period=ibs_period),
                tmp_config=tmp_config,
                seed=seed,
                epoch_slices=epoch_slices,
            )
        except ServiceError:
            raise
        except (TypeError, ValueError, AttributeError) as exc:
            raise ServiceError(ErrorCode.BAD_PARAMS, str(exc)) from exc
        self.sim.obs_label = session_id
        self.daemon = TMPDaemon(self.sim.profiler)
        self.daemon.add_workload(wl)
        self.sim.start(init=init)
        if catchup_epochs > 0:
            # Checkpoint-resume catch-up: silently re-run the epochs the
            # evicted session had already scored *before* attaching the
            # fan-out hook, so subscribers (and the ledger) never see
            # them twice.  The simulator is deterministic, so the state
            # after the catch-up is bit-identical to the pre-eviction
            # state.
            self.sim.step(int(catchup_epochs))
        self.sim.add_epoch_hook(self._on_epoch)

    # ------------------------------------------------------------- lifecycle

    def info(self) -> dict:
        """Static configuration plus progress counters."""
        return {
            "session": self.session_id,
            "tenant": self.tenant,
            "workload": self.sim.workload.name,
            "policy": self.sim.policy.name,
            "rank_source": self.sim.rank_source.value,
            "tier1_ratio": float(self.sim.tier1_ratio),
            "tier1_capacity": int(self.sim.tier1_capacity),
            "seed": self.sim.seed,
            "epochs_run": self.sim.epochs_run,
            "subscribers": len(self._subscribers),
            "idle_s": self.idle_s(),
        }

    def close(
        self,
        include_epochs: bool = False,
        epochs_from: int = 0,
        epochs_to: int | None = None,
    ) -> dict:
        """Finalize: detach subscribers, return the run summary.

        ``include_epochs`` attaches the per-epoch telemetry series,
        bounded to the requested window (and never more than
        ``MAX_EPOCHS_PER_RESPONSE`` entries) so closing a 100k-epoch
        session cannot serialize an unbounded list into one response.
        """
        with self._sim_lock:
            self.closed = True
            summary = simulation_result_to_dict(
                self.sim.result,
                include_epochs=include_epochs,
                epochs_from=epochs_from,
                epochs_to=epochs_to,
            )
        with self._sub_lock:
            self._subscribers.clear()
        if self.ledger is not None:
            self.ledger.close()
        return summary

    # -------------------------------------------------------------- stepping

    def step(self, epochs: int = 1) -> dict:
        """Advance ``epochs`` scored epochs; returns their telemetry.

        Runs under the simulator lock (one step at a time per session)
        and records a ``step`` timing event in :attr:`metrics`.
        Subscriber frames are pushed as each epoch completes, so a
        subscriber sees epoch ``k`` while ``k+1`` is still executing.

        The whole call is bracketed by :meth:`begin_op`/:meth:`end_op`
        so a step running longer than the idle TTL never makes the
        session look idle — the reaper skips busy sessions.
        """
        if epochs < 1:
            raise ServiceError(ErrorCode.BAD_PARAMS, "epochs must be >= 1")
        self.begin_op()
        try:
            with self._sim_lock:
                if self.closed:
                    raise ServiceError(
                        ErrorCode.UNKNOWN_SESSION,
                        f"session {self.session_id} is closed",
                    )
                t0 = time.perf_counter()
                stepped = self.sim.step(epochs)
                seconds = time.perf_counter() - t0
                event = self.metrics.add(
                    "step", self.session_id, seconds, items=len(stepped)
                )
                registry = obs_metrics.default_registry()
                registry.histogram(
                    "repro_session_step_seconds",
                    "Wall-clock latency of one step request",
                ).observe(seconds)
                registry.counter(
                    "repro_session_epochs_total", "Scored epochs stepped"
                ).inc(len(stepped))
                return {
                    "session": self.session_id,
                    "epochs": [epoch_metrics_to_dict(m) for m in stepped],
                    "epochs_run": self.sim.epochs_run,
                    "step_seconds": event.seconds,
                }
        finally:
            self.end_op()

    def _on_epoch(self, metrics) -> None:
        """Epoch-step hook: fan one frame out to every subscriber."""
        self._fanout("epoch", epoch_metrics_to_dict(metrics))

    # ------------------------------------------------------------- reporting

    def stats(self) -> dict:
        """Operator statistics: daemon summary + session + timings."""
        with self._sim_lock:
            return {
                "session": self.info(),
                "daemon": self.daemon.statistics(),
                "result": simulation_result_to_dict(self.sim.result),
                "timings": self.metrics.summary()["stages"],
            }

    def numa_maps(self, pids=None) -> str:
        with self._sim_lock:
            try:
                return self.daemon.numa_maps(pids)
            except KeyError as exc:
                raise ServiceError(
                    ErrorCode.BAD_PARAMS, f"unknown pid {exc}"
                ) from exc

    def reconfigure(self, changes: dict) -> dict:
        """Apply live TMP config changes through the daemon."""
        if not isinstance(changes, dict) or not changes:
            raise ServiceError(
                ErrorCode.BAD_PARAMS, "reconfigure needs a non-empty changes object"
            )
        with self._sim_lock:
            try:
                self.daemon.reconfigure(**changes)
            except (AttributeError, ValueError, TypeError) as exc:
                raise ServiceError(ErrorCode.BAD_PARAMS, str(exc)) from exc
            self.touch()
            return {"session": self.session_id, "applied": sorted(changes)}
