"""Latency recording and the ``BENCH_load.json`` report.

Two recording paths, deliberately redundant: every operation latency
is appended to an in-memory per-op list (exact quantiles — a load test
lives or dies by its p99, and bucketed histograms quantize exactly
where the SLO gate needs precision) *and* observed into the process
:mod:`repro.obs` registry (``repro_loadgen_op_seconds`` /
``repro_loadgen_ops_total``), so a loadtest run shows up in the same
metrics plane as the server it is hammering.  The report embeds the
``repro_loadgen_*`` slice of the registry snapshot next to the exact
quantiles.

The report writer is atomic (temp file + rename via
:func:`repro.ioutil.atomic_write_bytes`): CI uploads
``BENCH_load.json`` as an artifact and must never see a torn file.
"""

from __future__ import annotations

import json
import time

from ..ioutil import atomic_write_bytes
from ..obs import metrics as obs_metrics

__all__ = [
    "LatencyRecorder",
    "build_report",
    "evaluate_slo",
    "percentile",
    "write_report",
]

#: Buckets tuned for service-op latencies on a loaded box: 1 ms.. 30 s.
OP_SECONDS_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def percentile(values: list[float], q: float) -> float:
    """Exact linear-interpolation percentile of an unsorted list.

    ``q`` in [0, 100].  Raises ``ValueError`` on an empty list — a
    missing distribution should fail loudly, not read as 0 latency.
    """
    if not values:
        raise ValueError("percentile of empty list")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class LatencyRecorder:
    """Per-op latency lists + obs mirroring + outcome counts.

    Single event-loop use: no locking.  ``record`` logs a successful
    op's latency; ``count_error`` tallies a failed op by error code
    (failed ops do not pollute the latency distributions — an
    ``overloaded`` rejection is fast precisely because the server shed
    it, and folding it in would flatter the percentiles).
    """

    def __init__(self, registry: obs_metrics.MetricsRegistry | None = None):
        registry = registry if registry is not None else obs_metrics.default_registry()
        self._latencies: dict[str, list[float]] = {}
        self._errors: dict[str, dict[str, int]] = {}
        self._hist = registry.histogram(
            "repro_loadgen_op_seconds",
            "Load-generator observed latency per service op",
            labelnames=("op",),
            buckets=OP_SECONDS_BUCKETS,
        )
        self._ops = registry.counter(
            "repro_loadgen_ops_total",
            "Load-generator operations by outcome",
            labelnames=("op", "outcome"),
        )

    def record(self, op: str, seconds: float) -> None:
        self._latencies.setdefault(op, []).append(seconds)
        self._hist.observe(seconds, op=op)
        self._ops.inc(op=op, outcome="ok")

    def count_error(self, op: str, code: str) -> None:
        per_op = self._errors.setdefault(op, {})
        per_op[code] = per_op.get(code, 0) + 1
        self._ops.inc(op=op, outcome=code)

    def count(self, op: str) -> int:
        return len(self._latencies.get(op, ()))

    def latencies(self, op: str) -> list[float]:
        return list(self._latencies.get(op, ()))

    def ops(self) -> list[str]:
        return sorted(set(self._latencies) | set(self._errors))

    def summary(self) -> dict:
        """Per-op stats: count, errors, mean and exact quantiles."""
        out: dict[str, dict] = {}
        for op in self.ops():
            values = self._latencies.get(op, [])
            entry: dict = {
                "count": len(values),
                "errors": dict(sorted(self._errors.get(op, {}).items())),
            }
            if values:
                entry.update(
                    mean_s=sum(values) / len(values),
                    p50_s=percentile(values, 50),
                    p90_s=percentile(values, 90),
                    p99_s=percentile(values, 99),
                    max_s=max(values),
                )
            out[op] = entry
        return out


def evaluate_slo(summary: dict, step_p99_s: float | None) -> dict:
    """Judge the step-latency SLO against a run's op summary.

    Returns ``{"step_p99_s": observed|None, "threshold_s": ..,
    "ok": bool|None}``; ``ok`` is ``None`` when no threshold was set,
    and ``False`` when a threshold was set but no step completed (a
    run that finished zero steps has not met any latency promise).
    """
    observed = summary.get("step", {}).get("p99_s")
    if step_p99_s is None:
        return {"step_p99_s": observed, "threshold_s": None, "ok": None}
    ok = observed is not None and observed <= step_p99_s
    return {"step_p99_s": observed, "threshold_s": float(step_p99_s), "ok": ok}


def build_report(
    config: dict,
    recorder: LatencyRecorder,
    *,
    wall_s: float,
    sessions: dict,
    events: dict,
    slo_step_p99_s: float | None = None,
    server_info: dict | None = None,
    registry: obs_metrics.MetricsRegistry | None = None,
) -> dict:
    """Assemble the ``BENCH_load.json`` payload."""
    summary = recorder.summary()
    ok_ops = sum(e["count"] for e in summary.values())
    report = {
        "bench": "loadtest",
        "generated_unix": time.time(),
        "config": dict(config),
        "wall_s": wall_s,
        "sessions": dict(sessions),
        "ops": summary,
        "throughput": {
            "ops_per_s": (ok_ops / wall_s) if wall_s > 0 else 0.0,
            "ops_ok_total": ok_ops,
        },
        "events": dict(events),
        "slo": evaluate_slo(summary, slo_step_p99_s),
    }
    if server_info is not None:
        report["server"] = dict(server_info)
    registry = registry if registry is not None else obs_metrics.default_registry()
    report["metrics"] = {
        name: entry
        for name, entry in registry.snapshot().items()
        if name.startswith("repro_loadgen_")
    }
    return report


def write_report(path, report: dict) -> None:
    """Atomically write the report as pretty JSON."""
    payload = (json.dumps(report, indent=2, sort_keys=False) + "\n").encode()
    atomic_write_bytes(path, payload)
