"""A multiplexing asyncio JSON-lines client for the profiling service.

The blocking :class:`~repro.service.client.ServiceClient` holds one
request in flight per connection — fine for a REPL, useless for a load
generator that needs thousands of concurrent operations on a box with
a bounded fd budget.  This client multiplexes: any number of
coroutines share one connection, each ``request()`` gets a fresh frame
id and parks on a future, and a single reader task routes every
response line back to its waiter by id.  Event frames (subscription
pushes and goodbye frames, which carry ``event`` instead of ``id``)
are handed to an ``on_event`` callback as they arrive, so latency
measurement never blocks behind event consumption.

Connection death is propagated: when the read loop hits EOF or an
error, every pending future fails with :class:`ConnectionError` and
subsequent requests fail fast.
"""

from __future__ import annotations

import asyncio

from ..service.protocol import ErrorCode, ServiceError, decode_frame, encode_frame

__all__ = ["AsyncServiceClient"]


class AsyncServiceClient:
    """Many in-flight requests over one connection, response routing by id."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        on_event=None,
    ):
        self._reader = reader
        self._writer = writer
        self._on_event = on_event
        self._write_lock = asyncio.Lock()
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._closed = False
        #: Event-stream wire accounting: frames and raw line bytes
        #: received on this connection's subscriptions (the report sums
        #: these across the pool to state delivered telemetry volume).
        self.event_frames = 0
        self.event_bytes = 0
        self._read_task = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str | None = None,
        port: int | None = None,
        *,
        socket_path: str | None = None,
        address: tuple | list | str | None = None,
        on_event=None,
    ) -> "AsyncServiceClient":
        """Open a TCP or unix-socket connection (same address forms as
        the blocking client)."""
        if address is not None:
            if isinstance(address, str):
                socket_path = address
            else:
                host, port = address[0], int(address[1])
        if socket_path is not None:
            reader, writer = await asyncio.open_unix_connection(socket_path)
        elif host is not None and port is not None:
            reader, writer = await asyncio.open_connection(host, port)
        else:
            raise ValueError("need host+port, socket_path, or address")
        return cls(reader, writer, on_event=on_event)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def pending(self) -> int:
        """Requests awaiting a response right now."""
        return len(self._pending)

    async def _read_loop(self) -> None:
        error: BaseException | None = None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                frame = decode_frame(line)
                if "event" in frame:
                    self.event_frames += 1
                    self.event_bytes += len(line)
                    if self._on_event is not None:
                        self._on_event(frame)
                    continue
                future = self._pending.pop(frame.get("id"), None)
                if future is None or future.done():
                    continue
                if frame.get("ok"):
                    future.set_result(frame.get("result", {}))
                else:
                    err = frame.get("error") or {}
                    future.set_exception(
                        ServiceError(
                            err.get("code", ErrorCode.INTERNAL),
                            err.get("message", "unknown server error"),
                        )
                    )
        except asyncio.CancelledError:
            error = ConnectionError("client closed")
        except Exception as exc:  # malformed frame, transport error
            error = exc
        finally:
            self._closed = True
            if error is None:
                error = ConnectionError("server closed the connection")
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(error)
            self._pending.clear()

    async def request(self, op: str, **params) -> dict:
        """Send one request; await its response.

        Raises :class:`ServiceError` on an error response and
        :class:`ConnectionError` when the connection dies first.
        """
        if self._closed:
            raise ConnectionError("connection is closed")
        self._next_id += 1
        request_id = self._next_id
        payload = {"id": request_id, "op": op}
        if params:
            payload["params"] = params
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            async with self._write_lock:
                self._writer.write(encode_frame(payload))
                await self._writer.drain()
        except Exception:
            self._pending.pop(request_id, None)
            raise
        return await future

    async def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._read_task.cancel()
        try:
            await asyncio.gather(self._read_task, return_exceptions=True)
        finally:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except Exception:
                pass

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()
