"""repro.loadgen — open-loop load generation for the profiling service.

The paper's thesis is that profiling discipline only matters *under
load*: overhead and reactivity numbers measured on an idle box say
nothing about a saturated one.  This package is the reproduction's
proof harness for that claim at the service layer — an asyncio
open-loop load generator (``repro loadtest``) that drives thousands of
concurrent profiling sessions of mixed ``create``/``step``/``stats``/
``subscribe``/``close`` traffic against a live ``repro serve``,
records per-op latency (exact quantiles plus :mod:`repro.obs`
histograms), counts every rejection, eviction, and dropped frame, and
writes the whole run as a ``BENCH_load.json`` trajectory that CI
uploads and gates on a step-latency SLO.

Open-loop means arrivals do not wait for completions: sessions are
launched on a Poisson schedule at ``arrival_rate`` regardless of how
the server is coping, so overload shows up as latency and structured
``overloaded`` rejections — the real failure modes — instead of the
generator politely slowing down (closed-loop coordination omission).

Layering:

``aioclient``
    A multiplexing asyncio JSON-lines client: many in-flight requests
    share one connection, event frames route to a callback.
``generator``
    :class:`LoadTestConfig` + :func:`run_load_test`: the session
    lifecycle mix, the open-loop spawner, and overload handling
    (``overloaded`` → counted, backed off, retried).
``report``
    :class:`LatencyRecorder` (exact per-op quantiles, obs-histogram
    mirroring) and the ``BENCH_load.json`` writer / SLO evaluation.

See ``docs/performance.md`` ("Load testing") for the report format and
``docs/service.md`` for the admission features this harness exercises
(per-tenant quotas, the in-flight step limit, idle eviction goodbyes).
"""

from .aioclient import AsyncServiceClient
from .generator import LoadTestConfig, run_load_test, run_load_test_async
from .report import LatencyRecorder, evaluate_slo, write_report

__all__ = [
    "AsyncServiceClient",
    "LatencyRecorder",
    "LoadTestConfig",
    "evaluate_slo",
    "run_load_test",
    "run_load_test_async",
    "write_report",
]
