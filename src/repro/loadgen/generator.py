"""The open-loop load generator: session mix, arrivals, overload handling.

:func:`run_load_test` drives one ``repro serve`` instance with a
population of short-lived profiling sessions.  Arrival is **open
loop**: session tasks launch on a Poisson schedule at
``arrival_rate`` sessions/s regardless of how many are still running,
so a struggling server accumulates concurrency and latency instead of
silently slowing the generator down.  Each session task walks the real
client lifecycle — ``create_session`` (with a tenant drawn round-robin
from ``tenants``), optionally ``subscribe``, a loop of ``step`` ops
interleaved with occasional ``stats``, then ``close_session`` — and
every op's latency and outcome lands in a
:class:`~repro.loadgen.report.LatencyRecorder`.

Backpressure is handled the way a production client would: an
``overloaded`` rejection (tenant quota on create, in-flight step limit
on step) is counted, backed off with jitter, and retried a bounded
number of times; ``unknown_session`` mid-life means the server evicted
us and the task ends.  Event frames stream through the shared
connections' reader tasks into per-subscription accounting, so the
report can state exactly how many frames were delivered, how many the
server shed (drop-oldest), and how many structured goodbyes
(``evicted`` / ``server_drain`` / ``worker_crashed``) arrived.

Connections are a small shared pool (``connections``), sized
independently of the session population: thousands of sessions
multiplex over a handful of sockets via
:class:`~repro.loadgen.aioclient.AsyncServiceClient`.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import asdict, dataclass, field

from ..obs import log as obs_log
from ..obs import metrics as obs_metrics
from ..service.protocol import ErrorCode, ServiceError
from .aioclient import AsyncServiceClient
from .report import LatencyRecorder, build_report

__all__ = ["LoadTestConfig", "run_load_test", "run_load_test_async"]

_log = obs_log.get_logger("loadgen")

#: Small default footprint so a single box can host hundreds of
#: concurrent simulator sessions without swapping.
DEFAULT_WORKLOAD_KWARGS = {"footprint_pages": 256, "accesses_per_epoch": 1000}


@dataclass
class LoadTestConfig:
    """Everything that shapes one load-test run (embedded in the report)."""

    sessions: int = 200
    #: Mean session arrivals per second (Poisson; open loop).
    arrival_rate: float = 100.0
    steps_per_session: int = 3
    epochs_per_step: int = 1
    workload: str = "gups"
    workload_kwargs: dict = field(default_factory=lambda: dict(DEFAULT_WORKLOAD_KWARGS))
    #: Shared client connections the session population multiplexes over.
    connections: int = 4
    #: Fraction of sessions that subscribe to their event stream.
    subscribe_fraction: float = 0.25
    #: Probability of a stats call after each step.
    stats_fraction: float = 0.25
    #: Distinct tenant names to spread creates across (t0, t1, ...).
    tenants: int = 1
    #: Idle pause between a session's steps, seconds.
    think_s: float = 0.0
    seed: int = 0
    #: Bounded retries after an ``overloaded`` step rejection.
    max_step_retries: int = 8
    overload_backoff_s: float = 0.05
    #: Hard wall-clock cap on the whole run.
    timeout_s: float = 300.0
    #: Fraction of sessions exercising the checkpoint/resume lifecycle:
    #: run half their steps, go idle until the reaper evicts (and, with
    #: ``--evict-to-disk``, checkpoints) them, then ``resume_session``
    #: and finish.  Needs a server with a ledger and a short idle TTL.
    evict_resume_fraction: float = 0.0
    #: Max wall-clock an evict/resume session waits to be evicted.
    evict_wait_s: float = 10.0

    def __post_init__(self):
        if self.sessions < 1:
            raise ValueError(f"sessions must be >= 1, got {self.sessions}")
        if self.arrival_rate <= 0:
            raise ValueError(f"arrival_rate must be > 0, got {self.arrival_rate}")
        if self.connections < 1:
            raise ValueError(f"connections must be >= 1, got {self.connections}")
        if self.tenants < 1:
            raise ValueError(f"tenants must be >= 1, got {self.tenants}")

    def to_dict(self) -> dict:
        return asdict(self)


class _RunState:
    """Mutable counters shared by every session task (single loop, no locks)."""

    def __init__(self):
        self.launched = 0
        self.created = 0
        self.completed = 0
        self.live = 0
        self.peak_concurrent = 0
        self.rejected: dict[str, int] = {}
        self.evicted_midlife = 0
        self.step_overload_retries = 0
        self.steps_abandoned = 0
        self.resumed = 0
        self.resume_failed = 0
        self.cancelled = 0
        # Event-stream accounting, fed by connection reader callbacks.
        self.epoch_frames = 0
        self.goodbyes: dict[str, int] = {}
        self.other_events = 0
        self._sub_last: dict[str, tuple[int, int]] = {}  # sub_id -> (seq, dropped)

    def session_started(self):
        self.created += 1
        self.live += 1
        self.peak_concurrent = max(self.peak_concurrent, self.live)

    def session_finished(self, completed: bool = True):
        self.live -= 1
        if completed:
            self.completed += 1
        else:
            # Reaped by the run's wall-clock cap mid-life: neither
            # completed nor rejected — a timed-out run must not report
            # its cancelled stragglers as successes.
            self.cancelled += 1

    def reject(self, code: str):
        self.rejected[code] = self.rejected.get(code, 0) + 1

    def on_event(self, frame: dict) -> None:
        kind = frame.get("event")
        sub = frame.get("subscription")
        if sub is not None:
            self._sub_last[sub] = (
                int(frame.get("seq", 0)),
                int(frame.get("dropped", 0)),
            )
        if kind == "epoch":
            self.epoch_frames += 1
        elif kind == "error":
            code = (frame.get("data") or {}).get("code", "unknown")
            self.goodbyes[code] = self.goodbyes.get(code, 0) + 1
        else:
            self.other_events += 1

    def events_summary(self) -> dict:
        received = self.epoch_frames + sum(self.goodbyes.values()) + self.other_events
        return {
            "epoch_frames": self.epoch_frames,
            "goodbyes": dict(sorted(self.goodbyes.items())),
            "other": self.other_events,
            "received_total": received,
            # Server-side sheds, summed from each subscription's final
            # cumulative ``dropped`` counter.
            "subscriber_dropped": sum(d for _, d in self._sub_last.values()),
            "subscriptions_seen": len(self._sub_last),
        }

    def sessions_summary(self, target: int) -> dict:
        return {
            "target": target,
            "launched": self.launched,
            "created": self.created,
            "completed": self.completed,
            "rejected": dict(sorted(self.rejected.items())),
            "evicted_midlife": self.evicted_midlife,
            "peak_concurrent": self.peak_concurrent,
            "step_overload_retries": self.step_overload_retries,
            "steps_abandoned": self.steps_abandoned,
            "resumed": self.resumed,
            "resume_failed": self.resume_failed,
            "cancelled": self.cancelled,
        }


async def _timed(recorder: LatencyRecorder, op: str, coro):
    """Await ``coro``; record its latency on success, its code on error."""
    t0 = time.perf_counter()
    try:
        result = await coro
    except ServiceError as exc:
        recorder.count_error(op, exc.code)
        raise
    recorder.record(op, time.perf_counter() - t0)
    return result


async def _session_task(
    index: int,
    client: AsyncServiceClient,
    cfg: LoadTestConfig,
    recorder: LatencyRecorder,
    state: _RunState,
    rng: random.Random,
) -> None:
    tenant = f"t{index % cfg.tenants}"
    try:
        created = await _timed(
            recorder,
            "create",
            client.request(
                "create_session",
                workload=cfg.workload,
                workload_kwargs=dict(cfg.workload_kwargs),
                seed=cfg.seed + index,
                tenant=tenant,
            ),
        )
    except ServiceError as exc:
        # Admission rejection (tenant quota -> overloaded, or global
        # at_capacity): the session never existed.  Open loop: no retry,
        # the rejection IS the datapoint.
        state.reject(exc.code)
        return
    session_id = created["session"]
    state.session_started()
    evicted = False

    async def _run_steps(count: int) -> bool:
        """Run ``count`` step ops; return False once the session is gone."""
        nonlocal evicted
        for _ in range(count):
            for attempt in range(cfg.max_step_retries + 1):
                try:
                    await _timed(
                        recorder,
                        "step",
                        client.request(
                            "step", session=session_id, epochs=cfg.epochs_per_step
                        ),
                    )
                    break
                except ServiceError as exc:
                    if exc.code == ErrorCode.OVERLOADED:
                        state.step_overload_retries += 1
                        if attempt >= cfg.max_step_retries:
                            state.steps_abandoned += 1
                            break
                        # Jittered exponential-ish backoff.
                        await asyncio.sleep(
                            cfg.overload_backoff_s * (1 + attempt) * rng.uniform(0.5, 1.5)
                        )
                        continue
                    if exc.code in (ErrorCode.UNKNOWN_SESSION, ErrorCode.EVICTED):
                        # ``evicted`` is the structured loser's error
                        # when a step races the reaper's atomic claim;
                        # either way the session is gone mid-life.
                        state.evicted_midlife += 1
                        evicted = True
                        return False
                    raise
            if cfg.stats_fraction and rng.random() < cfg.stats_fraction:
                try:
                    await _timed(
                        recorder, "stats", client.request("stats", session=session_id)
                    )
                except ServiceError as exc:
                    if exc.code in (ErrorCode.UNKNOWN_SESSION, ErrorCode.EVICTED):
                        state.evicted_midlife += 1
                        evicted = True
                        return False
                    raise
            if cfg.think_s > 0:
                await asyncio.sleep(cfg.think_s)
        return True

    async def _wait_for_eviction_and_resume() -> str:
        """Go idle until the reaper checkpoints us, then re-admit.

        Returns ``"resumed"``, ``"gone"`` (evicted without a resumable
        checkpoint), or ``"live"`` (never evicted within the wait —
        close normally).  The poll itself rides ``resume_session``: a
        still-live session answers ``bad_request`` without touching the
        session's idle clock, so polling never postpones the eviction
        it is waiting for.
        """
        nonlocal evicted
        deadline = time.perf_counter() + cfg.evict_wait_s
        while True:
            try:
                await _timed(
                    recorder,
                    "resume",
                    client.request(
                        "resume_session", session=session_id, tenant=tenant
                    ),
                )
                state.resumed += 1
                return "resumed"
            except ServiceError as exc:
                retriable = exc.code in (
                    ErrorCode.BAD_REQUEST,  # still live: not evicted yet
                    ErrorCode.OVERLOADED,  # admission race on re-entry
                    ErrorCode.AT_CAPACITY,
                )
                if retriable and time.perf_counter() < deadline:
                    await asyncio.sleep(0.2 * rng.uniform(0.5, 1.5))
                    continue
                if exc.code == ErrorCode.UNKNOWN_SESSION:
                    # Evicted but nothing to resume (no --evict-to-disk
                    # on the server, or the checkpoint was lost).
                    state.resume_failed += 1
                    state.evicted_midlife += 1
                    evicted = True
                    return "gone"
                state.resume_failed += 1
                return "live"

    evict_resume = (
        cfg.evict_resume_fraction > 0
        and rng.random() < cfg.evict_resume_fraction
    )
    cancelled = False
    try:
        if rng.random() < cfg.subscribe_fraction:
            try:
                await _timed(
                    recorder,
                    "subscribe",
                    client.request("subscribe", session=session_id, max_queue=32),
                )
            except ServiceError:
                pass  # counted by _timed; session continues unsubscribed
        steps_before = cfg.steps_per_session
        steps_after = 0
        if evict_resume:
            steps_before = max(1, cfg.steps_per_session // 2)
            steps_after = cfg.steps_per_session - steps_before
        if not await _run_steps(steps_before):
            return
        if evict_resume:
            outcome = await _wait_for_eviction_and_resume()
            if outcome == "gone":
                return
            if outcome == "resumed" and steps_after:
                if not await _run_steps(steps_after):
                    return
    except asyncio.CancelledError:
        cancelled = True
        raise
    finally:
        try:
            if not evicted and not cancelled:
                try:
                    await _timed(
                        recorder,
                        "close",
                        client.request("close_session", session=session_id),
                    )
                except ServiceError as exc:
                    if exc.code == ErrorCode.UNKNOWN_SESSION:
                        state.evicted_midlife += 1
                    else:
                        _log.warning(
                            "close_failed", session=session_id, code=exc.code
                        )
                except ConnectionError:
                    pass
        finally:
            state.session_finished(completed=not cancelled)


async def run_load_test_async(
    address,
    config: LoadTestConfig,
    *,
    slo_step_p99_s: float | None = None,
    registry: obs_metrics.MetricsRegistry | None = None,
) -> dict:
    """Run one load test against a live server; return the report dict.

    ``address`` uses the same forms as the clients: a ``(host, port)``
    pair/list for TCP or a string path for a unix socket.
    """
    cfg = config
    recorder = LatencyRecorder(registry=registry)
    state = _RunState()
    rng = random.Random(cfg.seed)
    clients = [
        await AsyncServiceClient.connect(address=address, on_event=state.on_event)
        for _ in range(cfg.connections)
    ]
    t0 = time.perf_counter()
    tasks: list[asyncio.Task] = []

    async def _drive():
        for i in range(cfg.sessions):
            state.launched += 1
            tasks.append(
                asyncio.ensure_future(
                    _session_task(
                        i, clients[i % len(clients)], cfg, recorder, state, rng
                    )
                )
            )
            # Poisson inter-arrival: open loop — never await the
            # session tasks here.
            await asyncio.sleep(rng.expovariate(cfg.arrival_rate))
        return await asyncio.gather(*tasks, return_exceptions=True)

    timed_out = False
    server_info = None
    results: list = []
    try:
        try:
            # asyncio.wait_for, not asyncio.timeout(): the latter is
            # 3.11+ and this package supports 3.10.
            results = await asyncio.wait_for(_drive(), cfg.timeout_s)
        except asyncio.TimeoutError:
            # A run that blows its wall-clock cap (everything shed, a
            # wedged server) is a *result*, not a crash: the report
            # still gets written with whatever ops did complete and
            # ``timed_out: true`` so the SLO gate can judge it.
            timed_out = True
            _log.warning("loadtest_timed_out", timeout_s=cfg.timeout_s)
        for result in results:
            if isinstance(result, BaseException) and not isinstance(
                result, (ServiceError, ConnectionError)
            ):
                raise result
        try:
            server_info = await asyncio.wait_for(
                clients[0].request("server_info"), 10.0
            )
        except (ServiceError, ConnectionError, asyncio.TimeoutError):
            pass
    finally:
        # On timeout, wait_for cancels _drive(); session tasks spawned
        # before the deadline still need reaping.
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        wall_s = time.perf_counter() - t0
        for client in clients:
            await client.close()
    events = state.events_summary()
    # Wire-level truth from the connection pool: how many event frames
    # (and raw bytes) actually crossed the sockets, regardless of what
    # the per-frame accounting classified them as.
    events["wire_frames"] = sum(c.event_frames for c in clients)
    events["wire_bytes"] = sum(c.event_bytes for c in clients)
    report = build_report(
        cfg.to_dict(),
        recorder,
        wall_s=wall_s,
        sessions=state.sessions_summary(cfg.sessions),
        events=events,
        slo_step_p99_s=slo_step_p99_s,
        server_info=server_info,
        registry=registry,
    )
    report["timed_out"] = timed_out
    _log.info(
        "loadtest_done",
        wall_s=round(wall_s, 3),
        created=state.created,
        completed=state.completed,
        peak=state.peak_concurrent,
        rejected=sum(state.rejected.values()),
    )
    return report


def run_load_test(
    address,
    config: LoadTestConfig,
    *,
    slo_step_p99_s: float | None = None,
    registry: obs_metrics.MetricsRegistry | None = None,
) -> dict:
    """Synchronous wrapper: run the load test in a fresh event loop."""
    return asyncio.run(
        run_load_test_async(
            address, config, slo_step_p99_s=slo_step_p99_s, registry=registry
        )
    )
