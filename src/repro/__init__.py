"""repro — a reproduction of *Dancing in the Dark: Profiling for
Tiered Memory* (Choi, Blagodurov, Tseng; IPDPS 2021).

The package builds the paper's full stack on a simulated memory-system
substrate:

``repro.memsim``
    The hardware: page tables with A/D bits, per-CPU TLBs + hardware
    walker, a cache hierarchy, a multiplexing PMU, IBS/PEBS trace
    samplers, Intel PML, and BadgerTrap.
``repro.workloads``
    Synthetic access-stream models of the eight Table III workloads.
``repro.core``
    TMP itself — the hybrid tiered-memory profiler (A-bit driver,
    trace driver, HWPC gating, process filtering, hotness fusion,
    daemon and numa_maps interface).
``repro.tiering``
    Tiered memory: placement, epoch-batched migration, Oracle/History/
    FCFA policies (plus extensions), the paper's emulation latency
    model, and the end-to-end simulator.
``repro.analysis``
    The evaluation artifacts as data: Table IV, Figs. 2-6, overheads.
``repro.runner``
    Parallel experiment execution: process-pool fan-out of record /
    evaluate stages, a content-addressed recorded-run cache, and
    per-stage benchmark instrumentation.
``repro.service``
    The online profiling service: an asyncio JSON-lines server
    (``repro serve``) hosting many concurrent simulator+daemon
    sessions with streaming per-epoch telemetry, plus the blocking
    ``ServiceClient``.
``repro.obs``
    Observability: the in-process metrics registry (counters, gauges,
    histograms; atomic snapshots; Prometheus rendering) and structured
    JSON logging used by the service, runner, and profiler core.

Quickstart::

    from repro import Machine, MachineConfig, TMProfiler, TMPConfig
    from repro.workloads import make_workload

    machine = Machine(MachineConfig.scaled())
    workload = make_workload("gups")
    workload.attach(machine)
    profiler = TMProfiler(machine, TMPConfig())
    profiler.register_workload(workload)

    import numpy as np
    rng = np.random.default_rng(0)
    for epoch in range(5):
        batch = workload.epoch(epoch, rng)
        result = machine.run_batch(batch)
        profiler.observe_batch(batch, result)
        report = profiler.end_epoch()
        print(epoch, report.rank().max())
"""

from .core import (
    RankSource,
    TMPConfig,
    TMPDaemon,
    TMPEpochReport,
    TMProfiler,
)
from .memsim import AccessBatch, DataSource, Machine, MachineConfig
from .runner import RecordSpec, RunCache, record_suite
from .tiering import (
    FCFAPolicy,
    HistoryPolicy,
    LatencyModel,
    OraclePolicy,
    SimulationResult,
    TieredSimulator,
    TrueOraclePolicy,
    evaluate_recorded,
    record_run,
)
from .workloads import WORKLOAD_NAMES, make_workload, paper_suite

__version__ = "0.10.0"

__all__ = [
    "AccessBatch",
    "DataSource",
    "FCFAPolicy",
    "HistoryPolicy",
    "LatencyModel",
    "Machine",
    "MachineConfig",
    "OraclePolicy",
    "RankSource",
    "RecordSpec",
    "RunCache",
    "record_suite",
    "SimulationResult",
    "TMPConfig",
    "TMPDaemon",
    "TMPEpochReport",
    "TMProfiler",
    "TieredSimulator",
    "TrueOraclePolicy",
    "WORKLOAD_NAMES",
    "__version__",
    "evaluate_recorded",
    "make_workload",
    "paper_suite",
    "record_run",
]
