"""repro.obs — unified observability: metrics + structured logging.

The paper's §V argues a production profiler must account for its own
cost; this subsystem is that argument applied to the reproduction
itself.  Every layer records into one lightweight substrate:

``metrics``
    Counters, gauges, and histograms with Prometheus-style labels in
    a :class:`MetricsRegistry` with atomic snapshot semantics; plain
    snapshots merge across processes (:func:`merge_snapshots`) and
    render to the Prometheus text format (:func:`render_prometheus`).
``log``
    Structured JSON logging (one event per line) with bound
    session/worker correlation IDs; off by default, enabled by
    ``repro serve --log-json`` or ``REPRO_LOG_JSON=1``.
``http``
    The optional scrape endpoint behind ``repro serve
    --metrics-port`` / ``REPRO_METRICS_PORT``.

Instrumented layers (metric catalog in ``docs/observability.md``):
the service (sessions, requests, step latency, subscriber drops,
worker respawns — per-worker registries piggyback over the pool's
duplex pipes and merge in the parent), the experiment runner (job
fan-out, run-cache hits/misses/errors), and the profiler core
(per-component :class:`~repro.core.profiler.OverheadBreakdown`
re-exported as counters).

``REPRO_OBS_DISABLED=1`` turns every metric mutation into a no-op —
the benchmark suite uses it to prove instrumentation overhead stays
under 3 %.
"""

from .http import MetricsHTTPServer, PROMETHEUS_CONTENT_TYPE
from .log import JsonLogger, configure as configure_logging, get_logger
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    configure as configure_metrics,
    default_registry,
    merge_snapshots,
    render_prometheus,
    set_default_registry,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonLogger",
    "MetricsHTTPServer",
    "MetricsRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "configure_logging",
    "configure_metrics",
    "default_registry",
    "get_logger",
    "merge_snapshots",
    "render_prometheus",
    "set_default_registry",
]
