"""Structured JSON logging with correlation IDs.

One event is one JSON object on one line — the same framing the
service speaks on its wire — so service logs are machine-parseable by
construction and a stream of them can be joined against the metrics
the same process exports.  Correlation happens through *bound
context*: a logger carries a dict of fields (``session=...``,
``worker=...``) merged into every event it emits, and :meth:`bind`
derives a child logger with more context without mutating the parent.

Log schema (see ``docs/observability.md``)::

    {"ts": 1712345678.123, "level": "info", "component": "service.server",
     "event": "session_created", "session": "s3", "worker": 1, ...}

Logging is off by default (a disabled logger costs one attribute
check per call): enable it with :func:`configure` or by exporting
``REPRO_LOG_JSON=1`` (as ``repro serve --log-json`` does), which sends
events to stderr.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time

__all__ = ["JsonLogger", "configure", "get_logger", "is_enabled"]

_LEVELS = ("debug", "info", "warning", "error")

_state = {
    "enabled": bool(os.environ.get("REPRO_LOG_JSON")),
    "stream": None,  # None = sys.stderr at emit time (test-friendly)
}
_write_lock = threading.Lock()


def configure(enabled: bool = True, stream=None) -> None:
    """Turn structured logging on/off and choose the output stream."""
    _state["enabled"] = bool(enabled)
    _state["stream"] = stream


def is_enabled() -> bool:
    return _state["enabled"]


def _json_default(obj):
    tolist = getattr(obj, "tolist", None)
    if callable(tolist):
        return tolist()
    return str(obj)


class JsonLogger:
    """Emits one JSON line per event, with bound correlation context."""

    def __init__(self, component: str, context: dict | None = None):
        self.component = component
        self.context = dict(context or {})

    def bind(self, **context) -> "JsonLogger":
        """A child logger with extra correlation fields bound in."""
        merged = dict(self.context)
        merged.update(context)
        return JsonLogger(self.component, merged)

    def log(self, level: str, event: str, **fields) -> None:
        if not _state["enabled"]:
            return
        if level not in _LEVELS:
            raise ValueError(f"unknown log level {level!r}")
        record = {
            "ts": time.time(),
            "level": level,
            "component": self.component,
            "event": event,
        }
        record.update(self.context)
        record.update(fields)
        line = json.dumps(record, separators=(",", ":"), default=_json_default)
        stream = _state["stream"] or sys.stderr
        with _write_lock:
            stream.write(line + "\n")
            flush = getattr(stream, "flush", None)
            if flush is not None:
                try:
                    flush()
                except (OSError, ValueError):
                    pass

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)


def get_logger(component: str, **context) -> JsonLogger:
    """A logger for one component, with optional bound context."""
    return JsonLogger(component, context)
