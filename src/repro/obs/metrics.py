"""A lightweight in-process metrics registry.

TMP's operating premise (§V of the paper) is that a production
profiler must *observe itself*: per-component overhead accounting is a
first-class output, not an afterthought.  This module gives every
layer of the reproduction — the service, the experiment runner, the
profiler core — one shared vocabulary for that self-observation:

``Counter``
    A monotonically increasing total (requests served, epochs stepped,
    frames dropped).
``Gauge``
    A point-in-time level (active sessions, live workers).
``Histogram``
    A bucketed distribution plus sum/count (step latency).

All three support Prometheus-style labels.  A :class:`MetricsRegistry`
owns a set of metrics behind one lock, so :meth:`MetricsRegistry
.snapshot` is *atomic*: the returned plain-dict snapshot is a
consistent cut across every metric, never a torn read taken while a
step was updating two counters.

Snapshots — not registries — travel between processes: each service
worker process answers a ``metrics`` command with its registry's
snapshot, and :func:`merge_snapshots` folds any number of them into
one aggregate (counters and histograms sum; gauges sum too, which is
the right semantics for the additive per-process gauges used here).
:func:`render_prometheus` turns a snapshot into the Prometheus text
exposition format (0.0.4) served by ``repro serve --metrics-port``.

Registration is get-or-create and cheap, so instrumentation sites
fetch their handles at call time from :func:`default_registry`; the
whole subsystem can be switched off (every mutation a no-op) with
``REPRO_OBS_DISABLED=1`` or :func:`configure`.
"""

from __future__ import annotations

import os
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "configure",
    "default_registry",
    "merge_snapshots",
    "render_prometheus",
    "set_default_registry",
]

#: Default histogram buckets (seconds): spans sub-millisecond metric
#: reads up to multi-second multi-epoch steps.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

_VALID_TYPES = ("counter", "gauge", "histogram")


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Shared base: name/help/labelnames plus the registry's lock."""

    type = "untyped"

    def __init__(self, name: str, help: str, labelnames: tuple, registry):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._registry = registry
        self._lock = registry._lock
        self._series: dict[tuple, object] = {}

    def _check_labels(self, labels: dict) -> dict:
        if tuple(sorted(labels)) != tuple(sorted(self.labelnames)):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return labels

    def _samples(self) -> list[dict]:
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing total."""

    type = "counter"

    def inc(self, amount: float = 1, **labels) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = _label_key(self._check_labels(labels))
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0)

    def _samples(self) -> list[dict]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._series.items())
        ]


class Gauge(_Metric):
    """A point-in-time level that can move both ways."""

    type = "gauge"

    def set(self, value: float, **labels) -> None:
        if not self._registry.enabled:
            return
        key = _label_key(self._check_labels(labels))
        with self._lock:
            self._series[key] = value

    def inc(self, amount: float = 1, **labels) -> None:
        if not self._registry.enabled:
            return
        key = _label_key(self._check_labels(labels))
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0)

    def _samples(self) -> list[dict]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._series.items())
        ]


class Histogram(_Metric):
    """Bucketed observations plus running sum and count."""

    type = "histogram"

    def __init__(self, name, help, labelnames, registry, buckets=DEFAULT_BUCKETS):
        super().__init__(name, help, labelnames, registry)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")

    def observe(self, value: float, **labels) -> None:
        if not self._registry.enabled:
            return
        key = _label_key(self._check_labels(labels))
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = {"buckets": [0] * len(self.buckets), "sum": 0.0, "count": 0}
                self._series[key] = series
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series["buckets"][i] += 1
            series["sum"] += value
            series["count"] += 1

    def count(self, **labels) -> int:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series["count"] if series else 0

    def _samples(self) -> list[dict]:
        return [
            {
                "labels": dict(key),
                "buckets": {
                    repr(bound): count
                    for bound, count in zip(self.buckets, series["buckets"])
                },
                "sum": series["sum"],
                "count": series["count"],
            }
            for key, series in sorted(self._series.items())
        ]


class MetricsRegistry:
    """A named set of metrics with atomic snapshot semantics."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name, help, labelnames, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, tuple(labelnames), self, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.type}"
                )
            return metric

    def counter(self, name: str, help: str = "", labelnames=()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames=()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self, name: str, help: str = "", labelnames=(), buckets=DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def snapshot(self) -> dict:
        """One consistent cut across every metric, as plain JSON data."""
        with self._lock:
            out = {}
            for name, metric in sorted(self._metrics.items()):
                entry = {
                    "type": metric.type,
                    "help": metric.help,
                    "labelnames": list(metric.labelnames),
                    "samples": metric._samples(),
                }
                if metric.type == "histogram":
                    entry["buckets"] = [repr(b) for b in metric.buckets]
                out[name] = entry
            return out

    def clear(self) -> None:
        """Drop every metric (test isolation helper)."""
        with self._lock:
            self._metrics.clear()


# --------------------------------------------------------------------------
# The process-default registry
# --------------------------------------------------------------------------

_default = MetricsRegistry(
    enabled=not os.environ.get("REPRO_OBS_DISABLED")
)


def default_registry() -> MetricsRegistry:
    """The process-wide registry instrumentation sites record into."""
    return _default


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-default registry (returns the previous one)."""
    global _default
    previous = _default
    _default = registry
    return previous


def configure(enabled: bool) -> None:
    """Turn the default registry's collection on or off in place."""
    _default.enabled = bool(enabled)


# --------------------------------------------------------------------------
# Snapshot algebra + rendering
# --------------------------------------------------------------------------


def _merge_histogram_sample(into: dict, sample: dict) -> None:
    for bound, count in sample["buckets"].items():
        into["buckets"][bound] = into["buckets"].get(bound, 0) + count
    into["sum"] += sample["sum"]
    into["count"] += sample["count"]


def merge_snapshots(snapshots) -> dict:
    """Fold many per-process snapshots into one aggregate snapshot.

    Counters, gauges, and histograms all *sum* across processes —
    every gauge in this codebase is additive per process (sessions on
    this worker, workers alive from the parent's viewpoint), so the
    sum is the fleet-wide level.
    """
    merged: dict = {}
    for snap in snapshots:
        for name, entry in snap.items():
            target = merged.get(name)
            if target is None:
                target = {
                    "type": entry["type"],
                    "help": entry["help"],
                    "labelnames": list(entry["labelnames"]),
                    "samples": [],
                }
                if "buckets" in entry:
                    target["buckets"] = list(entry["buckets"])
                merged[name] = target
            elif target["type"] != entry["type"]:
                raise ValueError(
                    f"metric {name!r} is {target['type']} in one snapshot "
                    f"and {entry['type']} in another"
                )
            by_labels = {
                _label_key(s["labels"]): s for s in target["samples"]
            }
            for sample in entry["samples"]:
                key = _label_key(sample["labels"])
                existing = by_labels.get(key)
                if existing is None:
                    if entry["type"] == "histogram":
                        copy = {
                            "labels": dict(sample["labels"]),
                            "buckets": dict(sample["buckets"]),
                            "sum": sample["sum"],
                            "count": sample["count"],
                        }
                    else:
                        copy = {
                            "labels": dict(sample["labels"]),
                            "value": sample["value"],
                        }
                    target["samples"].append(copy)
                    by_labels[key] = copy
                elif entry["type"] == "histogram":
                    _merge_histogram_sample(existing, sample)
                else:
                    existing["value"] += sample["value"]
    for entry in merged.values():
        entry["samples"].sort(key=lambda s: _label_key(s["labels"]))
    return dict(sorted(merged.items()))


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r'\"')
    )


def _format_labels(labels: dict, extra: dict | None = None) -> str:
    pairs = dict(labels)
    if extra:
        pairs.update(extra)
    if not pairs:
        return ""
    body = ",".join(
        f'{k}="{_escape_label(v)}"' for k, v in sorted(pairs.items())
    )
    return "{" + body + "}"


def _format_value(value) -> str:
    f = float(value)
    if f.is_integer():
        return str(int(f))
    return repr(f)


def render_prometheus(snapshot: dict) -> str:
    """Render a snapshot in the Prometheus text format (0.0.4)."""
    lines: list[str] = []
    for name, entry in sorted(snapshot.items()):
        if entry["help"]:
            lines.append(f"# HELP {name} {entry['help']}")
        lines.append(f"# TYPE {name} {entry['type']}")
        if entry["type"] == "histogram":
            for sample in entry["samples"]:
                # Stored bucket counts are already cumulative (observe
                # increments every bucket whose bound >= value).
                for bound in sorted(sample["buckets"], key=float):
                    labels = _format_labels(
                        sample["labels"], {"le": _format_value(float(bound))}
                    )
                    lines.append(f"{name}_bucket{labels} {sample['buckets'][bound]}")
                inf_labels = _format_labels(sample["labels"], {"le": "+Inf"})
                lines.append(f"{name}_bucket{inf_labels} {sample['count']}")
                labels = _format_labels(sample["labels"])
                lines.append(f"{name}_sum{labels} {repr(float(sample['sum']))}")
                lines.append(f"{name}_count{labels} {sample['count']}")
        else:
            for sample in entry["samples"]:
                labels = _format_labels(sample["labels"])
                lines.append(f"{name}{labels} {_format_value(sample['value'])}")
    return "\n".join(lines) + ("\n" if lines else "")
