"""The optional Prometheus scrape endpoint.

A tiny threaded HTTP server exposing two read-only views of one
``collect()`` callback (which must return a metrics *snapshot* — see
:mod:`repro.obs.metrics`):

``GET /metrics``
    Prometheus text exposition format 0.0.4 — point a scraper at it.
``GET /metrics.json``
    The raw snapshot as JSON, for humans and ad-hoc tooling.

The server runs on a daemon thread (``start()``/``close()``); the
service starts one when ``repro serve --metrics-port`` (or
``REPRO_METRICS_PORT``) is given, with ``collect`` wired to the
server's parent+workers aggregation.  Port 0 binds an ephemeral port,
readable from :attr:`MetricsHTTPServer.port` — the form every test
uses.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .metrics import render_prometheus

__all__ = ["MetricsHTTPServer", "PROMETHEUS_CONTENT_TYPE"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        collect = self.server.collect  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        if path not in ("/metrics", "/metrics.json"):
            self.send_error(404, "only /metrics and /metrics.json exist")
            return
        try:
            snapshot = collect()
        except Exception as exc:  # noqa: BLE001 — a scrape must not kill the server
            self.send_error(500, f"{type(exc).__name__}: {exc}")
            return
        if path == "/metrics.json":
            body = json.dumps(snapshot, indent=2).encode("utf-8")
            content_type = "application/json"
        else:
            body = render_prometheus(snapshot).encode("utf-8")
            content_type = PROMETHEUS_CONTENT_TYPE
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args) -> None:  # noqa: A002
        pass  # scrapes are high-frequency; keep stderr quiet


class MetricsHTTPServer:
    """Serves one ``collect()`` callback over HTTP on a daemon thread."""

    def __init__(self, collect, host: str = "127.0.0.1", port: int = 0):
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.collect = collect  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def start(self) -> "MetricsHTTPServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self, timeout_s: float = 5.0) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout_s)

    def __enter__(self) -> "MetricsHTTPServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
