"""Record once, evaluate policies offline — the paper's Fig. 6 method.

"The results are based on the profiling data from the real hardware"
(§VI-C): the paper collects each workload's profiles once, then
computes policy hitrates offline for every (policy, monitoring source,
tier ratio) combination.  We do the same: :func:`record_run` executes
the workload on the machine once, capturing per-epoch TMP profiles and
ground truth; :func:`evaluate_recorded` then replays placement
decisions against the recording — two orders of magnitude cheaper than
re-simulating the machine per configuration, and guaranteed to compare
policies on *identical* access streams.

The one fidelity loss versus :class:`~repro.tiering.simulator
.TieredSimulator` (the online loop): migrations cannot feed back into
TLB state.  In the model that feedback only perturbs A-bit staleness
slightly, and Fig. 6's metric ignores it by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import TMPConfig
from ..core.hotness import RankSource, top_k_pages
from ..core.page_stats import EpochProfile
from ..core.profiler import TMProfiler
from ..memsim.machine import Machine, MachineConfig
from ..workloads.base import Workload
from .latency_model import LatencyModel
from .migration import PageMover
from .placement import fcfa_place_new
from .policies.base import Policy, PolicyContext
from .simulator import EpochMetrics, SimulationResult
from .tiers import TIER2, make_tiers

__all__ = ["EpochRecord", "RecordedRun", "record_run", "evaluate_recorded"]


@dataclass
class EpochRecord:
    """One epoch's captured profile and ground truth."""

    epoch: int
    accesses: int
    profile: EpochProfile
    counts: np.ndarray       # per-PFN total accesses this epoch
    mem_counts: np.ndarray   # per-PFN memory (LLC-miss) accesses
    tlb_counts: np.ndarray   # per-PFN TLB misses (BadgerTrap-visible)
    dirty_pages: np.ndarray  # PML write set this epoch (PFNs)
    overhead_s: float        # TMP profiling time this epoch
    #: The epoch's drained trace records (for Fig. 3-style heatmaps).
    samples: object = None


@dataclass
class RecordedRun:
    """A workload's full recorded execution."""

    workload: str
    footprint_pages: int
    n_frames: int
    #: PFN → index of the epoch that first touched it (-1 for the init
    #: phase, large for never-touched).
    first_touch_epoch: np.ndarray
    #: PFN → global op stamp of the first touch.
    first_touch_op: np.ndarray
    epochs: list[EpochRecord] = field(default_factory=list)
    #: Whole-run raw machine event totals (retired ops, misses, walks).
    event_totals: dict = field(default_factory=dict)
    #: (epoch index, capacity) → ground-truth hot mask.  Every
    #: policy × source cell of a sweep shares the same truth, so the
    #: top-k selection is computed once per (recording, capacity).
    _hot_mask_cache: dict = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def n_epochs(self) -> int:
        return len(self.epochs)

    def hot_mask(self, epoch_index: int, capacity: int) -> np.ndarray:
        """Boolean per-PFN mask of the epoch's ``capacity`` hottest pages.

        Memoized; callers must treat the returned array as read-only.
        """
        key = (epoch_index, capacity)
        mask = self._hot_mask_cache.get(key)
        if mask is None:
            rec = self.epochs[epoch_index]
            hot = top_k_pages(rec.counts.astype(np.float64), capacity)
            mask = np.zeros(self.n_frames, dtype=bool)
            mask[hot] = True
            self._hot_mask_cache[key] = mask
        return mask


def record_run(
    workload: Workload,
    *,
    machine_config: MachineConfig | None = None,
    tmp_config: TMPConfig | None = None,
    epochs: int = 10,
    seed: int = 0,
    init: bool = True,
    epoch_slices: int = 1,
) -> RecordedRun:
    """Execute ``workload`` once and capture everything policies need.

    ``epoch_slices`` splits each epoch into sub-batches with a profiler
    ``tick`` between them, giving graded per-epoch A-bit counts (see
    :meth:`TMProfiler.tick`).
    """
    if epoch_slices < 1:
        raise ValueError(f"epoch_slices must be >= 1, got {epoch_slices}")
    machine = Machine(machine_config or MachineConfig.scaled())
    workload.attach(machine)
    cfg = tmp_config or TMPConfig()
    profiler = TMProfiler(machine, cfg)
    profiler.register_workload(workload)
    if not machine.pml.enabled:
        machine.pml.enabled = True  # capture write sets for extensions
    rng = np.random.default_rng(seed)

    epoch_op_bounds: list[int] = []
    event_totals: dict[str, int] = {}

    def _execute(batch):
        n = batch.n
        bounds = np.linspace(0, n, epoch_slices + 1).astype(int)
        counts = None
        mem = None
        tlb = None
        for i in range(epoch_slices):
            part = batch.take(slice(int(bounds[i]), int(bounds[i + 1])))
            res = machine.run_batch(part)
            for k, v in res.raw_events.items():
                event_totals[k] = event_totals.get(k, 0) + v
            profiler.observe_batch(part, res)
            c = res.page_access_counts(machine.n_frames)
            m = res.page_mem_access_counts(machine.n_frames)
            t = np.bincount(
                res.pfn[~res.tlb_hit].astype(np.intp), minlength=machine.n_frames
            )
            if counts is None or counts.size < c.size:
                counts = _grow(counts, c.size)
                mem = _grow(mem, m.size)
                tlb = _grow(tlb, t.size)
            counts[: c.size] += c
            mem[: m.size] += m
            tlb[: t.size] += t
            if i < epoch_slices - 1:
                profiler.tick()
        return counts, mem, tlb

    if init:
        _execute(workload.init_stream(rng))  # returns ignored
        profiler.end_epoch()
        machine.pml.drain()
        for pt in machine.page_tables.values():
            machine.pml.clear_dirty(pt)  # re-arm after the population writes
        epoch_op_bounds.append(machine.op_counter)
    else:
        epoch_op_bounds.append(0)

    records: list[EpochRecord] = []
    for e in range(epochs):
        batch = workload.epoch(e, rng)
        counts, mem, tlb = _execute(batch)
        report = profiler.end_epoch()
        dirty = machine.pml.drain()
        # Re-arm write tracking: the hypervisor pattern clears D bits
        # after reading the log, so the next epoch's log is the next
        # epoch's write set (not just first-ever writes).
        for pt in machine.page_tables.values():
            machine.pml.clear_dirty(pt)
        n_frames = machine.n_frames
        records.append(
            EpochRecord(
                epoch=e,
                accesses=batch.n,
                profile=report.profile,
                counts=_grow(counts, n_frames),
                mem_counts=_grow(mem, n_frames),
                tlb_counts=_grow(tlb, n_frames),
                dirty_pages=dirty.astype(np.int64),
                overhead_s=report.overhead.total_s,
                samples=report.samples,
            )
        )
        epoch_op_bounds.append(machine.op_counter)

    first_op = machine.frame_stats.first_touch_op.copy()
    # Map each frame's first touch to the epoch that produced it; init
    # touches map to -1, untouched frames to n_epochs.
    bounds = np.asarray(epoch_op_bounds, dtype=np.uint64)
    first_epoch = np.searchsorted(bounds, first_op, side="right").astype(np.int64) - 1
    first_epoch[~machine.frame_stats.touched_mask()] = epochs
    if not init:
        first_epoch = np.maximum(first_epoch, 0)

    return RecordedRun(
        workload=workload.name,
        footprint_pages=workload.footprint_pages,
        n_frames=machine.n_frames,
        first_touch_epoch=first_epoch,
        first_touch_op=first_op,
        epochs=records,
        event_totals=event_totals,
    )


def _grow(arr: np.ndarray | None, n: int) -> np.ndarray:
    if arr is None:
        return np.zeros(n, dtype=np.int64)
    if arr.size >= n:
        return arr
    out = np.zeros(n, dtype=np.int64)
    out[: arr.size] = arr
    return out


def evaluate_recorded(
    recorded: RecordedRun,
    policy: Policy,
    *,
    tier1_ratio: float = 1 / 8,
    rank_source: RankSource | str = RankSource.COMBINED,
    latency_model: LatencyModel | None = None,
    base_epoch_s: float = 1.0,
) -> SimulationResult:
    """Replay placement decisions for one configuration.

    Policies carrying internal state (History's EMA, AutoNUMA's cursor)
    must be fresh instances per evaluation.
    """
    if not 0 < tier1_ratio <= 1:
        raise ValueError(f"tier1_ratio must be in (0, 1], got {tier1_ratio}")
    rank_source = RankSource(rank_source)
    lm = latency_model or LatencyModel()
    capacity = max(1, int(round(recorded.footprint_pages * tier1_ratio)))
    tiers = make_tiers(recorded.n_frames, capacity)
    mover = PageMover(tiers)  # no machine: no shootdown feedback

    result = SimulationResult(
        workload=recorded.workload,
        policy=policy.name,
        rank_source=rank_source.value,
        tier1_ratio=float(tier1_ratio),
        tier1_capacity=capacity,
    )

    prev_profile = None
    for epoch_index, rec in enumerate(recorded.epochs):
        # First-touch placement of frames that appeared by this epoch.
        newly = recorded.first_touch_epoch <= rec.epoch
        fcfa_place_new(tiers, recorded.first_touch_op, newly)

        ctx = PolicyContext(
            epoch=rec.epoch,
            tier1_capacity=capacity,
            n_frames=recorded.n_frames,
            prev_profile=prev_profile,
            next_profile=rec.profile,
            true_counts=rec.counts,
            true_mem_counts=rec.mem_counts,
            current_tier1=tiers.tier1_pages(),
            rank_source=rank_source,
            dirty_pages=rec.dirty_pages,
            tlb_miss_counts=rec.tlb_counts,
        )
        moved = mover.apply_target(policy.target_tier1(ctx))

        tier1_mem = rec.mem_counts[tiers.tier1_pages()].sum()
        total_mem = rec.mem_counts.sum()
        hitrate = float(tier1_mem / total_mem) if total_mem else 1.0

        hot_mask = recorded.hot_mask(epoch_index, capacity)
        latency = lm.epoch_latency(
            base_s=base_epoch_s,
            access_counts=rec.counts,
            slow_mask=tiers.tier_of == TIER2,
            hot_mask=hot_mask,
            migrations=moved.moved,
        )
        result.epochs.append(
            EpochMetrics(
                epoch=rec.epoch,
                accesses=rec.accesses,
                mem_accesses=int(total_mem),
                hitrate=hitrate,
                promoted=moved.promoted,
                demoted=moved.demoted,
                latency=latency,
                profiler_overhead_s=rec.overhead_s,
            )
        )
        prev_profile = rec.profile
    return result
