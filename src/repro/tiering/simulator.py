"""The end-to-end tiered-memory simulation loop.

Drives the full pipeline the paper evaluates: workload access streams
execute on the machine; TMP profiles them; at each epoch boundary a
policy re-ranks pages and the mover migrates; the tier-1 hitrate and
the emulation latency model score the outcome.

Per epoch (≈ one simulated second, the paper's horizon):

1. execute the epoch's access batch on the machine,
2. close TMP's profiling epoch (scan + drain + snapshot),
3. place newly touched frames first-come-first-allocate,
4. ask the policy for the fast tier's contents — History sees the
   *previous* epoch's profile, the Oracle peeks at the epoch's truth —
   and migrate (conceptually, at the epoch's start),
5. score: tier-1 hitrate over memory accesses, and the protection-fault
   latency model with the paper's 50/10/13 µs calibration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.config import TMPConfig
from ..core.hotness import RankSource, top_k_pages
from ..core.profiler import TMProfiler
from ..memsim.machine import Machine, MachineConfig
from ..workloads.base import Workload
from ..obs.metrics import default_registry
from .latency_model import EpochLatency, LatencyModel
from .migration import PageMover
from .placement import fcfa_place_new
from .policies.base import Policy, PolicyContext
from .tiers import TIER2, TieredMemory, make_tiers

__all__ = ["TieredSimulator", "EpochMetrics", "SimulationResult"]


def _grown(arr: np.ndarray, size: int) -> np.ndarray:
    """``arr`` zero-padded to ``size`` (returned as-is when big enough)."""
    if arr.size >= size:
        return arr
    out = np.zeros(size, dtype=arr.dtype)
    out[: arr.size] = arr
    return out


def _accumulate(total: np.ndarray, part: np.ndarray) -> np.ndarray:
    """Add ``part`` into ``total``, growing ``total`` once if needed.

    The epoch's per-frame accumulators use this instead of an ad-hoc
    pad-then-slice dance: the frame space only ever grows across
    slices, so one grow per slice suffices.
    """
    total = _grown(total, part.size)
    total[: part.size] += part
    return total


@dataclass
class EpochMetrics:
    """Per-epoch outcome of the tiered simulation."""

    epoch: int
    accesses: int
    mem_accesses: int
    #: Fraction of memory accesses served by tier 1 (Fig. 6's metric).
    hitrate: float
    promoted: int
    demoted: int
    latency: EpochLatency
    profiler_overhead_s: float

    @property
    def runtime_s(self) -> float:
        """Epoch wall-clock under the emulation model, incl. profiling."""
        return self.latency.total_s + self.profiler_overhead_s


@dataclass
class SimulationResult:
    """Whole-run outcome."""

    workload: str
    policy: str
    rank_source: str
    tier1_ratio: float
    tier1_capacity: int
    epochs: list[EpochMetrics] = field(default_factory=list)

    @property
    def mean_hitrate(self) -> float:
        """Access-weighted mean tier-1 hitrate over all epochs."""
        num = sum(e.hitrate * e.mem_accesses for e in self.epochs)
        den = sum(e.mem_accesses for e in self.epochs)
        return num / den if den else 0.0

    @property
    def total_runtime_s(self) -> float:
        return sum(e.runtime_s for e in self.epochs)

    @property
    def total_migrations(self) -> int:
        return sum(e.promoted + e.demoted for e in self.epochs)

    def speedup_over(self, other: "SimulationResult") -> float:
        """other.runtime / self.runtime (how much faster self is)."""
        return other.total_runtime_s / self.total_runtime_s


class TieredSimulator:
    """Runs one (workload, policy, rank source, tier ratio) experiment.

    Two driving styles share one code path:

    * batch — :meth:`run` executes N epochs and returns the result;
    * incremental — :meth:`start` once, then :meth:`step` any number of
      times (the ``repro.service`` sessions drive it this way, streaming
      each :class:`EpochMetrics` to subscribers as it is produced).

    Both styles draw from the same seeded RNG in the same order, so a
    stepped run is bit-identical to ``run()`` with the same seed.
    """

    def __init__(
        self,
        workload: Workload,
        policy: Policy,
        *,
        tier1_ratio: float = 1 / 8,
        rank_source: RankSource | str = RankSource.COMBINED,
        machine_config: MachineConfig | None = None,
        tmp_config: TMPConfig | None = None,
        latency_model: LatencyModel | None = None,
        seed: int = 0,
        epoch_slices: int = 1,
    ):
        if not 0 < tier1_ratio <= 1:
            raise ValueError(f"tier1_ratio must be in (0, 1], got {tier1_ratio}")
        if epoch_slices < 1:
            raise ValueError(f"epoch_slices must be >= 1, got {epoch_slices}")
        self.epoch_slices = int(epoch_slices)
        self.workload = workload
        self.policy = policy
        self.tier1_ratio = float(tier1_ratio)
        self.rank_source = RankSource(rank_source)
        self.latency_model = latency_model or LatencyModel()
        self.seed = seed

        self.machine = Machine(machine_config or MachineConfig.scaled())
        workload.attach(self.machine)
        self.profiler = TMProfiler(self.machine, tmp_config or TMPConfig())
        self.profiler.register_workload(workload)

        self.tier1_capacity = max(1, int(round(workload.footprint_pages * tier1_ratio)))
        self.tiers: TieredMemory = make_tiers(
            self.machine.n_frames, self.tier1_capacity
        )
        self.mover = PageMover(self.tiers, self.machine)
        self._prev_profile = None
        self._prev_counts_len = 0
        self._rng: np.random.Generator | None = None
        self._result: SimulationResult | None = None
        self._next_epoch = 0
        self._epoch_hooks: list = []
        #: Label for this simulator's throughput gauge — the service
        #: overwrites it with the session id so Prometheus scrapes show
        #: per-session epoch throughput.
        self.obs_label = workload.name

    # -------------------------------------------------------------- stepping

    @property
    def result(self) -> SimulationResult | None:
        """The accumulating result of a started run (None before start)."""
        return self._result

    @property
    def epochs_run(self) -> int:
        """How many scored epochs have executed since :meth:`start`."""
        return self._next_epoch

    def add_epoch_hook(self, hook) -> None:
        """Register ``hook(metrics)`` to fire after every scored epoch.

        Hooks fire inside :meth:`step`, one call per epoch, in
        registration order — this is the streaming-telemetry tap the
        service's ``subscribe`` frames come from.
        """
        self._epoch_hooks.append(hook)

    def start(self, init: bool = True) -> SimulationResult:
        """Arm an incremental run: seed the RNG, optionally populate.

        ``init`` first runs the workload's population stream (every
        page written once, in address order) so first-touch placement
        is hotness-blind, as on a real service.  The init phase is not
        scored.
        """
        if self._result is not None:
            raise RuntimeError("simulation already started")
        self._rng = np.random.default_rng(self.seed)
        self._result = SimulationResult(
            workload=self.workload.name,
            policy=self.policy.name,
            rank_source=self.rank_source.value,
            tier1_ratio=self.tier1_ratio,
            tier1_capacity=self.tier1_capacity,
        )
        self._next_epoch = 0
        if init:
            self._run_init(self._rng)
        return self._result

    def step(self, epochs: int = 1) -> list[EpochMetrics]:
        """Advance ``epochs`` scored epochs; return their metrics.

        Requires a prior :meth:`start`.  Epoch numbering continues from
        the last step, and the per-epoch hooks fire as each epoch
        completes.
        """
        if self._result is None or self._rng is None:
            raise RuntimeError("call start() before step()")
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        out: list[EpochMetrics] = []
        t0 = time.perf_counter()
        for _ in range(epochs):
            metrics = self._run_epoch(self._next_epoch, self._rng)
            self._result.epochs.append(metrics)
            self._next_epoch += 1
            out.append(metrics)
            for hook in self._epoch_hooks:
                hook(metrics)
        elapsed = time.perf_counter() - t0
        if elapsed > 0:
            default_registry().gauge(
                "repro_sim_epochs_per_s",
                "Simulated epochs per wall-clock second, last step() call",
                labelnames=("session",),
            ).set(len(out) / elapsed, session=self.obs_label)
        return out

    def run(self, epochs: int = 10, init: bool = True) -> SimulationResult:
        """Execute ``epochs`` epochs; return the scored result.

        Equivalent to :meth:`start` followed by one :meth:`step` — the
        batch entry point the one-shot commands use.
        """
        result = self.start(init=init)
        if epochs > 0:
            self.step(epochs)
        return result

    def _run_init(self, rng: np.random.Generator) -> None:
        """Population phase: execute, profile (discarded), place FCFA."""
        batch = self.workload.init_stream(rng)
        res = self.machine.run_batch(batch)
        self.profiler.observe_batch(batch, res)
        self.profiler.end_epoch()  # discard the init profile
        if self.machine.pml.enabled:
            self.machine.pml.drain()
            for pt in self.machine.page_tables.values():
                self.machine.pml.clear_dirty(pt)
        self.tiers.resize(self.machine.n_frames)
        fcfa_place_new(
            self.tiers,
            self.machine.frame_stats.first_touch_op,
            self.machine.frame_stats.touched_mask(),
        )

    # ------------------------------------------------------------- internals

    def _run_epoch(self, e: int, rng: np.random.Generator) -> EpochMetrics:
        machine = self.machine

        # 1. Execute the epoch on the machine, in slices with profiler
        #    service points between them (graded A-bit counts).
        batch = self.workload.epoch(e, rng)
        bounds = np.linspace(0, batch.n, self.epoch_slices + 1).astype(int)
        counts = np.zeros(0, dtype=np.int64)
        mem_counts = np.zeros(0, dtype=np.int64)
        tlb_counts = np.zeros(0, dtype=np.int64)
        for i in range(self.epoch_slices):
            part = batch.take(slice(int(bounds[i]), int(bounds[i + 1])))
            res = machine.run_batch(part)
            self.profiler.observe_batch(part, res)
            counts = _accumulate(counts, res.page_access_counts(machine.n_frames))
            mem_counts = _accumulate(
                mem_counts, res.page_mem_access_counts(machine.n_frames)
            )
            tlb_counts = _accumulate(
                tlb_counts, res.page_tlb_miss_counts(machine.n_frames)
            )
            if i < self.epoch_slices - 1:
                self.profiler.tick()

        # 2. Close the profiling epoch.
        report = self.profiler.end_epoch()

        # 3. First-touch placement of newly allocated frames.
        self.tiers.resize(machine.n_frames)
        fcfa_place_new(
            self.tiers,
            machine.frame_stats.first_touch_op,
            machine.frame_stats.touched_mask(),
        )

        # 4. Policy decision + migration (conceptually at epoch start).
        if machine.pml.enabled:
            # Re-arm per-epoch write tracking (hypervisor D-bit clear).
            for pt in machine.page_tables.values():
                machine.pml.clear_dirty(pt)
        n_frames = machine.n_frames
        counts = _grown(counts, n_frames)
        mem_counts = _grown(mem_counts, n_frames)
        tlb_counts = _grown(tlb_counts, n_frames)
        dirty = machine.pml.drain() if machine.pml.enabled else None
        ctx = PolicyContext(
            epoch=e,
            tier1_capacity=self.tier1_capacity,
            n_frames=n_frames,
            prev_profile=self._prev_profile,
            next_profile=report.profile,
            true_counts=counts,
            true_mem_counts=mem_counts,
            current_tier1=self.tiers.tier1_pages(),
            rank_source=self.rank_source,
            dirty_pages=dirty,
            tlb_miss_counts=tlb_counts,
        )
        target = self.policy.target_tier1(ctx)
        moved = self.mover.apply_target(target)

        # 5. Score the epoch.
        tier1_mem = mem_counts[self.tiers.tier1_pages()].sum()
        total_mem = mem_counts.sum()
        hitrate = float(tier1_mem / total_mem) if total_mem else 1.0

        base_s = batch.n / machine.config.ops_per_second
        slow_mask = self.tiers.tier_of == TIER2
        hot = top_k_pages(counts.astype(np.float64), self.tier1_capacity)
        hot_mask = np.zeros(n_frames, dtype=bool)
        hot_mask[hot] = True
        latency = self.latency_model.epoch_latency(
            base_s=base_s,
            access_counts=counts,
            slow_mask=slow_mask,
            hot_mask=hot_mask,
            migrations=moved.moved,
        )

        self._prev_profile = report.profile
        return EpochMetrics(
            epoch=e,
            accesses=batch.n,
            mem_accesses=int(total_mem),
            hitrate=hitrate,
            promoted=moved.promoted,
            demoted=moved.demoted,
            latency=latency,
            profiler_overhead_s=report.overhead.total_s,
        )
