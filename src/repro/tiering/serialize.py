"""Persist recorded runs to ``.npz`` archives.

A :class:`~repro.tiering.recorded.RecordedRun` is the expensive half of
every offline experiment; saving it lets a sweep be re-scored later (or
on another machine) without re-simulating.  The format is a single
compressed numpy archive: run-level metadata and arrays, plus per-epoch
profile/ground-truth arrays and (optionally) the raw trace samples.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..core.page_stats import EpochProfile
from ..memsim.events import SampleBatch
from .recorded import EpochRecord, RecordedRun

__all__ = ["save_recorded", "load_recorded", "FORMAT_VERSION"]

#: Bump whenever the on-disk layout or its semantics change.  The
#: runner's content-addressed cache hashes this into every key, so a
#: bump invalidates all cached recordings at once (see
#: :func:`repro.runner.cache.cache_key`).
_FORMAT_VERSION = 2

#: Public alias for cache-key composition and tests.
FORMAT_VERSION = _FORMAT_VERSION

_SAMPLE_FIELDS = (
    "op_idx",
    "cpu",
    "pid",
    "ip",
    "vaddr",
    "paddr",
    "is_store",
    "tlb_hit",
    "data_source",
)


def save_recorded(
    recorded: RecordedRun, path: str | Path, *, include_samples: bool = True
) -> Path:
    """Write a recorded run to ``path`` (``.npz``); returns the path."""
    path = Path(path)
    meta = {
        "format_version": _FORMAT_VERSION,
        "workload": recorded.workload,
        "footprint_pages": recorded.footprint_pages,
        "n_frames": recorded.n_frames,
        "n_epochs": recorded.n_epochs,
        # Machine counters may be numpy integers; coerce so the JSON
        # header round-trips them as plain ints.
        "event_totals": {str(k): int(v) for k, v in recorded.event_totals.items()},
        "epoch_meta": [
            {
                "epoch": int(r.epoch),
                "accesses": int(r.accesses),
                "overhead_s": float(r.overhead_s),
                "has_samples": bool(include_samples and r.samples is not None),
            }
            for r in recorded.epochs
        ],
    }
    arrays: dict[str, np.ndarray] = {
        "first_touch_epoch": recorded.first_touch_epoch,
        "first_touch_op": recorded.first_touch_op,
    }
    for i, r in enumerate(recorded.epochs):
        arrays[f"e{i}_abit"] = r.profile.abit
        arrays[f"e{i}_trace"] = r.profile.trace
        arrays[f"e{i}_counts"] = r.counts
        arrays[f"e{i}_mem_counts"] = r.mem_counts
        arrays[f"e{i}_tlb_counts"] = r.tlb_counts
        arrays[f"e{i}_dirty"] = r.dirty_pages
        if include_samples and r.samples is not None:
            for field in _SAMPLE_FIELDS:
                arrays[f"e{i}_s_{field}"] = getattr(r.samples, field)
    np.savez_compressed(path, _meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8), **arrays)
    # np.savez appends .npz if missing.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_recorded(path: str | Path) -> RecordedRun:
    """Read a recorded run written by :func:`save_recorded`."""
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["_meta"]).decode())
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported recording format {meta.get('format_version')!r}"
            )
        epochs = []
        for i, em in enumerate(meta["epoch_meta"]):
            samples = None
            if em["has_samples"]:
                samples = SampleBatch(
                    **{f: data[f"e{i}_s_{f}"] for f in _SAMPLE_FIELDS}
                )
            epochs.append(
                EpochRecord(
                    epoch=em["epoch"],
                    accesses=em["accesses"],
                    profile=EpochProfile(
                        epoch=em["epoch"],
                        abit=data[f"e{i}_abit"],
                        trace=data[f"e{i}_trace"],
                    ),
                    counts=data[f"e{i}_counts"],
                    mem_counts=data[f"e{i}_mem_counts"],
                    tlb_counts=data[f"e{i}_tlb_counts"],
                    dirty_pages=data[f"e{i}_dirty"],
                    overhead_s=em["overhead_s"],
                    samples=samples,
                )
            )
        return RecordedRun(
            workload=meta["workload"],
            footprint_pages=meta["footprint_pages"],
            n_frames=meta["n_frames"],
            first_touch_epoch=data["first_touch_epoch"],
            first_touch_op=data["first_touch_op"],
            epochs=epochs,
            event_totals={k: int(v) for k, v in meta["event_totals"].items()},
        )
