"""Tiered-memory management: tiers, placement, migration, policies,
the emulation latency model, and the end-to-end epoch simulator."""

from .latency_model import EpochLatency, LatencyModel
from .migration import MigrationResult, PageMover
from .placement import fcfa_full_placement, fcfa_place_new
from .policies import (
    AutoNUMAPolicy,
    FCFAPolicy,
    HistoryPolicy,
    OraclePolicy,
    TrueOraclePolicy,
    POLICIES,
    Policy,
    PolicyContext,
    RandomPolicy,
    ThermostatPolicy,
    WriteAwarePolicy,
)
from .recorded import EpochRecord, RecordedRun, evaluate_recorded, record_run
from .serialize import load_recorded, save_recorded
from .simulator import EpochMetrics, SimulationResult, TieredSimulator
from .tiers import TIER1, TIER2, UNPLACED, TieredMemory, TierSpec, make_tiers

__all__ = [
    "AutoNUMAPolicy",
    "EpochLatency",
    "EpochMetrics",
    "EpochRecord",
    "RecordedRun",
    "evaluate_recorded",
    "load_recorded",
    "record_run",
    "save_recorded",
    "FCFAPolicy",
    "HistoryPolicy",
    "LatencyModel",
    "MigrationResult",
    "OraclePolicy",
    "TrueOraclePolicy",
    "POLICIES",
    "PageMover",
    "Policy",
    "PolicyContext",
    "RandomPolicy",
    "ThermostatPolicy",
    "SimulationResult",
    "TIER1",
    "TIER2",
    "TieredMemory",
    "TieredSimulator",
    "TierSpec",
    "UNPLACED",
    "WriteAwarePolicy",
    "fcfa_full_placement",
    "fcfa_place_new",
    "make_tiers",
]
