"""The paper's slow-memory emulation timing model.

§VI-C: lacking NVM hardware, the paper emulates tier 2 with a
BadgerTrap-style framework — protection bits are set periodically on
slow-tier pages, each trapped access pays added latency before the page
is granted, and the calibration constants are:

* 50 µs per page migration,
* 10 µs per slow-memory access after a protection fault,
* an additional 13 µs when the page in slow memory is *hot*.

Because protection re-arms periodically, a slow page pays the fault
penalty once per protection round, not on every raw access; with ``R``
rounds per epoch a page touched ``a`` times pays ``min(a, R)`` faults.
Epoch runtime = base application time + fault penalties + migration
cost, which is exactly the quantity the paper's speedups (avg 1.04x,
best 1.13x over FCFA) are computed from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LatencyModel", "EpochLatency"]


@dataclass
class EpochLatency:
    """Timing breakdown for one epoch."""

    base_s: float
    slow_fault_s: float
    hot_slow_extra_s: float
    migration_s: float

    @property
    def total_s(self) -> float:
        return self.base_s + self.slow_fault_s + self.hot_slow_extra_s + self.migration_s


@dataclass
class LatencyModel:
    """Paper-calibrated emulation constants."""

    #: Cost of migrating one page between tiers.
    migration_s: float = 50e-6
    #: Added latency per slow-memory access trapped by the emulation.
    slow_access_s: float = 10e-6
    #: Extra latency when the trapped page is hot.
    hot_slow_extra_s: float = 13e-6
    #: Protection re-arm rounds per epoch (how often slow pages
    #: re-fault).  Calibrated so the TMP-vs-FCFA speedups land in the
    #: paper's envelope (avg ~1.04x, best ~1.13x) on the scaled
    #: testbed; see EXPERIMENTS.md.
    protect_rounds_per_epoch: int = 32

    def epoch_latency(
        self,
        base_s: float,
        access_counts: np.ndarray,
        slow_mask: np.ndarray,
        hot_mask: np.ndarray,
        migrations: int,
    ) -> EpochLatency:
        """Score one epoch.

        Parameters
        ----------
        base_s:
            Unpenalized application time for the epoch.
        access_counts:
            Per-PFN access counts for the epoch (ground truth).
        slow_mask:
            Per-PFN boolean: page resided in tier 2 this epoch.
        hot_mask:
            Per-PFN boolean: page counted as hot this epoch (the
            emulation's hot-page list).
        migrations:
            Pages moved at the epoch boundary.
        """
        counts = np.asarray(access_counts)
        slow_touched = slow_mask & (counts > 0)
        faults = np.minimum(counts[slow_touched], self.protect_rounds_per_epoch)
        n_faults = float(faults.sum())
        hot_faults = float(
            np.minimum(
                counts[slow_touched & hot_mask], self.protect_rounds_per_epoch
            ).sum()
        )
        return EpochLatency(
            base_s=base_s,
            slow_fault_s=n_faults * self.slow_access_s,
            hot_slow_extra_s=hot_faults * self.hot_slow_extra_s,
            migration_s=migrations * self.migration_s,
        )
