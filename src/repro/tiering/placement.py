"""Initial page placement: the first-come-first-allocate baseline.

The paper's speedup baseline (§VI-C) is "a NUMA-like,
first-come-first-allocate tiered-memory policy": pages land in fast
memory in first-touch order until tier 1 fills, then everything else
goes to tier 2, and nothing ever moves.  This module provides that
allocation and the helper that keeps newly touched frames placed as a
simulation proceeds.
"""

from __future__ import annotations

import numpy as np

from .tiers import TIER1, TIER2, UNPLACED, TieredMemory

__all__ = ["fcfa_place_new", "fcfa_full_placement"]


def fcfa_place_new(
    tm: TieredMemory, first_touch_op: np.ndarray, touched_mask: np.ndarray
) -> int:
    """Place newly touched, unplaced frames in first-touch order.

    Fast tier first while it has room, slow tier afterwards — called
    once per epoch with the machine's ground-truth first-touch stamps.
    Returns the number of frames placed.
    """
    tm.resize(first_touch_op.size)
    tier_of = tm.tier_of
    new = np.flatnonzero((tier_of[: touched_mask.size] == UNPLACED) & touched_mask)
    if new.size == 0:
        return 0
    order = new[np.argsort(first_touch_op[new], kind="stable")]
    room = tm.free_pages(TIER1)
    to_fast = order[:room]
    to_slow = order[room:]
    if to_fast.size:
        tm.place(to_fast, TIER1)
    if to_slow.size:
        tm.place(to_slow, TIER2)
    return int(order.size)


def fcfa_full_placement(
    n_frames: int, tier1_capacity: int, first_touch_op: np.ndarray
) -> np.ndarray:
    """Pure-function FCFA: tier labels from first-touch stamps alone.

    Untouched frames stay unplaced.  Useful for offline policy
    comparisons on recorded traces.
    """
    from .tiers import make_tiers

    tm = make_tiers(n_frames, tier1_capacity)
    touched = first_touch_op != np.iinfo(np.uint64).max
    fcfa_place_new(tm, first_touch_op, touched)
    return tm.tier_of.copy()
