"""Tier definitions and the page→tier placement map.

The TMA model of §II-A: all byte-addressable memory is mapped into one
physical address space, categorized into tiers — tier 1 (DRAM: low
latency / high bandwidth, small) and tier 2 (NVM: slower, big).  Pages
live in exactly one tier (no caching, no duplicate copies); the system
remaps pages between tiers to raise the fraction of memory accesses the
fast tier serves.

``TieredMemory`` tracks per-PFN tier assignment.  PFNs stay stable
across migration (host virtual addresses never change — §IV step 3; we
additionally keep the *physical* id stable and move the tier label,
which is equivalent for every metric the experiments compute).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TierSpec", "TieredMemory", "TIER1", "TIER2", "UNPLACED"]

#: Tier label for fast memory (DRAM).
TIER1 = 0
#: Tier label for slow memory (NVM).
TIER2 = 1
#: Label for frames not yet placed (never touched / never allocated).
UNPLACED = -1


@dataclass(frozen=True)
class TierSpec:
    """Static description of one memory tier."""

    name: str
    capacity_pages: int
    #: Nominal load-use latency (ns); informational, the experiment
    #: timing uses :mod:`repro.tiering.latency_model`.
    latency_ns: float

    def __post_init__(self):
        if self.capacity_pages < 0:
            raise ValueError(f"capacity must be >= 0, got {self.capacity_pages}")


class TieredMemory:
    """Per-PFN tier placement with capacity accounting."""

    def __init__(self, tier1: TierSpec, tier2: TierSpec, n_frames: int):
        self.tier1 = tier1
        self.tier2 = tier2
        self._tier_of = np.full(n_frames, UNPLACED, dtype=np.int8)

    @property
    def n_frames(self) -> int:
        return int(self._tier_of.size)

    def resize(self, n_frames: int) -> None:
        """Grow the placement map for newly allocated frames."""
        if n_frames <= self.n_frames:
            return
        grown = np.full(n_frames, UNPLACED, dtype=np.int8)
        grown[: self.n_frames] = self._tier_of
        self._tier_of = grown

    @property
    def tier_of(self) -> np.ndarray:
        """Per-PFN tier labels (read-only view by convention)."""
        return self._tier_of

    def tier1_pages(self) -> np.ndarray:
        """PFNs currently in the fast tier."""
        return np.flatnonzero(self._tier_of == TIER1)

    def tier2_pages(self) -> np.ndarray:
        """PFNs currently in the slow tier."""
        return np.flatnonzero(self._tier_of == TIER2)

    def occupancy(self, tier: int) -> int:
        """Pages currently placed in ``tier``."""
        return int(np.count_nonzero(self._tier_of == tier))

    def free_pages(self, tier: int) -> int:
        """Remaining capacity of ``tier``."""
        cap = self.tier1.capacity_pages if tier == TIER1 else self.tier2.capacity_pages
        return cap - self.occupancy(tier)

    def place(self, pfns: np.ndarray, tier: int) -> None:
        """Assign ``pfns`` to ``tier``, enforcing capacity."""
        pfns = np.asarray(pfns, dtype=np.int64)
        if pfns.size == 0:
            return
        currently_there = np.count_nonzero(self._tier_of[pfns] == tier)
        needed = pfns.size - currently_there
        if needed > self.free_pages(tier):
            name = self.tier1.name if tier == TIER1 else self.tier2.name
            raise MemoryError(
                f"tier {name!r} over capacity: need {needed}, "
                f"free {self.free_pages(tier)}"
            )
        self._tier_of[pfns] = tier

    def is_tier1(self, pfns: np.ndarray) -> np.ndarray:
        """Boolean mask: which of ``pfns`` are in the fast tier."""
        return self._tier_of[np.asarray(pfns, dtype=np.int64)] == TIER1

    def summary(self) -> dict:
        """Occupancy snapshot."""
        return {
            "tier1_used": self.occupancy(TIER1),
            "tier1_capacity": self.tier1.capacity_pages,
            "tier2_used": self.occupancy(TIER2),
            "tier2_capacity": self.tier2.capacity_pages,
            "unplaced": self.occupancy(UNPLACED),
        }


def make_tiers(
    n_frames: int,
    tier1_capacity: int,
    tier2_capacity: int | None = None,
    tier1_latency_ns: float = 80.0,
    tier2_latency_ns: float = 400.0,
) -> TieredMemory:
    """Convenience constructor for a standard DRAM+NVM pair.

    ``tier2_capacity`` defaults to "everything fits" — the paper's 4 GB
    DRAM + 60 GB NVM box never runs out of slow memory.
    """
    if tier2_capacity is None:
        tier2_capacity = max(n_frames, 1)
    return TieredMemory(
        TierSpec("dram", tier1_capacity, tier1_latency_ns),
        TierSpec("nvm", tier2_capacity, tier2_latency_ns),
        n_frames,
    )
