"""The page mover: epoch-batched migration between tiers.

§IV steps 2-3: policies hand the mover a *target* fast-tier page set;
the mover diffs it against the current placement, demotes evicted pages
and promotes the newcomers, with all of an epoch's moves sharing a
single system-wide TLB shootdown (the reason the paper gives for
epoch-based policies in the first place: per-page shootdowns are
prohibitively expensive).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..memsim.machine import Machine
from .tiers import TIER1, TIER2, UNPLACED, TieredMemory

__all__ = ["PageMover", "MigrationResult"]


@dataclass
class MigrationResult:
    """Outcome of one epoch's migration batch."""

    promoted: int  # pages moved tier2 → tier1
    demoted: int  # pages moved tier1 → tier2
    shootdowns: int  # TLB shootdown rounds issued (0 or 1 per epoch)

    @property
    def moved(self) -> int:
        return self.promoted + self.demoted


class PageMover:
    """Applies policy placement decisions at epoch boundaries."""

    def __init__(
        self,
        tm: TieredMemory,
        machine: Machine | None = None,
        max_moves_per_epoch: int | None = None,
    ):
        self.tm = tm
        #: When a machine is supplied, migrations issue a real batched
        #: shootdown so the A-bit stale-entry window resets like the
        #: kernel's migration path would.
        self.machine = machine
        #: Migration budget: at most this many promotions per epoch
        #: (hottest first); matching demotions are counted against the
        #: same budget.  ``None`` is unbounded.  Bounds the 50 µs/page
        #: migration bill when a noisy ranking churns the boundary.
        self.max_moves_per_epoch = max_moves_per_epoch
        self.total = MigrationResult(promoted=0, demoted=0, shootdowns=0)

    def apply_target(self, target_tier1: np.ndarray) -> MigrationResult:
        """Re-place pages so the fast tier holds exactly ``target_tier1``.

        The target is clamped to tier-1 capacity (hottest-first callers
        should pass a pre-ranked array: the overflow that gets dropped
        is the coldest tail).  Pages leaving tier 1 demote to tier 2;
        unplaced targets are placed directly.
        """
        tm = self.tm
        target = np.asarray(target_tier1, dtype=np.int64)
        cap = tm.tier1.capacity_pages
        if target.size > cap:
            target = target[:cap]

        current = tm.tier1_pages()
        target_mask = np.zeros(tm.n_frames, dtype=bool)
        target_mask[target] = True

        demote = current[~target_mask[current]]
        in_tier1 = np.zeros(tm.n_frames, dtype=bool)
        in_tier1[current] = True
        promote = target[~in_tier1[target]]

        if (
            self.max_moves_per_epoch is not None
            and promote.size > self.max_moves_per_epoch // 2
        ):
            # Budget: take the hottest promotions (target is ranked),
            # and only demote enough residents to make room.
            keep_n = max(self.max_moves_per_epoch // 2, 0)
            promote = promote[:keep_n]
            needed_demotions = max(promote.size - tm.free_pages(TIER1), 0)
            demote = demote[-needed_demotions:] if needed_demotions else demote[:0]

        if demote.size:
            tm.tier_of[demote] = TIER2
        if promote.size:
            tm.place(promote, TIER1)

        shootdowns = 0
        if (demote.size or promote.size) and self.machine is not None:
            # One system-wide shootdown covers the whole batch.
            self._shootdown_moved(np.concatenate([demote, promote]))
            shootdowns = 1

        result = MigrationResult(
            promoted=int(promote.size), demoted=int(demote.size), shootdowns=shootdowns
        )
        self.total.promoted += result.promoted
        self.total.demoted += result.demoted
        self.total.shootdowns += result.shootdowns
        return result

    def _shootdown_moved(self, pfns: np.ndarray) -> None:
        """Invalidate moved pages' translations on every CPU."""
        pids = []
        vpns = []
        for pid, pt in self.machine.page_tables.items():
            for vma in pt.vmas:
                lo, hi = vma.pfn_base, vma.pfn_base + vma.npages
                hit = pfns[(pfns >= lo) & (pfns < hi)]
                if hit.size:
                    # TLB tags are mapping-unit heads (2 MiB-aligned
                    # for THP regions).
                    unit = (hit - lo) >> vma.page_order << vma.page_order
                    vpns.append(vma.start_vpn + np.unique(unit))
                    pids.append(np.full(vpns[-1].size, pid, dtype=np.int32))
        if vpns:
            self.machine.tlb.shootdown_pages(
                np.concatenate(pids), np.concatenate(vpns)
            )
