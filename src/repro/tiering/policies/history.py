"""The History policy (Table II).

Simple and practical: at the start of each epoch, bring the *previous*
epoch's hottest pages into tier 1.  Hotness comes from the profiler's
rank — which monitoring sources feed it is the experiment axis of
Fig. 6 (A-bit only / trace only / TMP combined).  History lags the
Oracle whenever access patterns shift between epochs (Monte Carlo /
randomized workloads), which is precisely the gap Fig. 6 shows.

Because trace sampling is sparse, a single epoch's rank is noisy at the
placement boundary; §IV step 2 motivates "hotness rankings accumulated
over a period of time", so the policy optionally keeps an exponential
moving average of epoch ranks (``smoothing`` = weight of the
accumulated history).  The default of 0 is the faithful, memoryless
Table II History; ``smoothing > 0`` is the rank-accumulation extension
evaluated in the ablation bench.
"""

from __future__ import annotations

import numpy as np

from ...core.hotness import hotness_rank, top_k_pages
from .base import Policy, PolicyContext, fill_with_residents

__all__ = ["HistoryPolicy"]


class HistoryPolicy(Policy):
    """Last epoch's hottest pages, by (smoothed) profiled rank."""

    name = "history"

    def __init__(
        self,
        abit_weight: float = 1.0,
        trace_weight: float = 1.0,
        smoothing: float = 0.0,
        resident_bonus: float = 0.0,
        min_rank: float = 0.0,
    ):
        if not 0.0 <= smoothing < 1.0:
            raise ValueError(f"smoothing must be in [0, 1), got {smoothing}")
        if resident_bonus < 0.0:
            raise ValueError(f"resident_bonus must be >= 0, got {resident_bonus}")
        if min_rank < 0.0:
            raise ValueError(f"min_rank must be >= 0, got {min_rank}")
        self.abit_weight = abit_weight
        self.trace_weight = trace_weight
        self.smoothing = smoothing
        #: Hysteresis: tier-1 residents' ranks are boosted by this
        #: factor, so a challenger must beat a resident by the margin
        #: before a migration is worth its 50 µs (anti-thrash; §IV step
        #: 2's "justify the migration cost" requirement).
        self.resident_bonus = resident_bonus
        #: Promotion threshold: pages ranking below this are not worth
        #: a migration (a one-sample page's expected fault savings do
        #: not cover the 50 µs move).  Residents are unaffected.
        self.min_rank = min_rank
        self._ema: np.ndarray | None = None

    def target_tier1(self, ctx: PolicyContext) -> np.ndarray:
        if ctx.prev_profile is None:
            # Nothing profiled yet: keep the first-touch placement.
            return ctx.current_tier1[: ctx.tier1_capacity]
        rank = hotness_rank(
            ctx.prev_profile,
            ctx.rank_source,
            abit_weight=self.abit_weight,
            trace_weight=self.trace_weight,
        )
        if rank.size < ctx.n_frames:
            rank = np.pad(rank, (0, ctx.n_frames - rank.size))
        if self.smoothing > 0.0:
            if self._ema is None:
                self._ema = rank.astype(np.float64)
            else:
                if self._ema.size < rank.size:
                    self._ema = np.pad(self._ema, (0, rank.size - self._ema.size))
                self._ema = self.smoothing * self._ema + (1 - self.smoothing) * rank
            rank = self._ema
        if self.min_rank > 0.0:
            rank = np.where(rank >= self.min_rank, rank, 0.0)
        if self.resident_bonus > 0.0 and ctx.current_tier1.size:
            rank = rank.copy()
            rank[ctx.current_tier1] *= 1.0 + self.resident_bonus
        hot = top_k_pages(rank, ctx.tier1_capacity, eligible=ctx.eligible)
        return fill_with_residents(hot, ctx)
