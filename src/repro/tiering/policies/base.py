"""Policy interface: rank-driven epoch placement.

§IV step 2: a tiered-memory policy consumes the profiler's page ranking
(after filtering non-migratable pages) and decides which pages the fast
tier should hold for the coming epoch.  Policies are epoch-batched by
construction — Table II's reasons: one shootdown per epoch, and only
hotness accumulated over a period justifies the migration cost.

Contract: :meth:`target_tier1` returns PFNs hottest-first; the caller
(the page mover) truncates to capacity from the tail.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ...core.hotness import RankSource
from ...core.page_stats import EpochProfile

__all__ = ["Policy", "PolicyContext", "fill_with_residents"]


@dataclass
class PolicyContext:
    """Everything a policy may consult at an epoch boundary."""

    epoch: int
    tier1_capacity: int
    n_frames: int
    #: The TMP profile of the *previous* epoch (None at epoch 0) — what
    #: reactive policies like History see.
    prev_profile: EpochProfile | None
    #: The TMP profile of the epoch being placed — what the Oracle sees
    #: (perfect knowledge of the coming epoch's *profiled* hotness,
    #: Table II).
    next_profile: EpochProfile | None
    #: Ground-truth per-PFN access counts of the *coming* epoch — what
    #: only the Oracle may touch.
    true_counts: np.ndarray | None
    #: Ground-truth memory-access (LLC-miss) counts of the coming epoch.
    true_mem_counts: np.ndarray | None
    #: PFNs currently resident in tier 1 (post first-touch placement).
    current_tier1: np.ndarray
    #: Which profiling source(s) feed reactive policies' rank.
    rank_source: RankSource = RankSource.COMBINED
    #: Migratability mask (None = everything migratable).
    eligible: np.ndarray | None = None
    #: PFNs whose D bit transitioned this epoch (PML write set), for
    #: write-aware policy variants.
    dirty_pages: np.ndarray | None = None
    #: Per-PFN TLB-miss counts of the epoch being placed — what a
    #: BadgerTrap/Thermostat-style fault interceptor observes exactly.
    tlb_miss_counts: np.ndarray | None = None


def fill_with_residents(target: np.ndarray, ctx: PolicyContext) -> np.ndarray:
    """Pad a hot-page target with current residents up to capacity.

    Demoting a page nobody ranked is pure migration cost, so unused
    capacity keeps its current occupants (stable placement).
    """
    target = np.asarray(target, dtype=np.int64)
    room = ctx.tier1_capacity - target.size
    if room <= 0:
        return target[: ctx.tier1_capacity]
    in_target = np.zeros(ctx.n_frames, dtype=bool)
    in_target[target] = True
    keep = ctx.current_tier1[~in_target[ctx.current_tier1]][:room]
    return np.concatenate([target, keep])


class Policy(ABC):
    """Base class for placement policies."""

    #: Registry/display name; subclasses override.
    name: str = "abstract"

    @abstractmethod
    def target_tier1(self, ctx: PolicyContext) -> np.ndarray:
        """PFNs the fast tier should hold next, hottest first."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
