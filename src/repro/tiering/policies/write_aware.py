"""Write-aware History variant (CLOCK-DWF-inspired extension).

Lee et al.'s CLOCK-DWF [32] showed write history matters for hybrid
PCM/DRAM placement: NVM writes are slower and wear the medium, so
write-hot pages deserve DRAM even at equal read hotness.  This variant
boosts the History rank of pages whose D bit transitioned during the
last epoch — the write set that Intel PML (or a D-bit scan) reports —
by a configurable factor.
"""

from __future__ import annotations

import numpy as np

from ...core.hotness import hotness_rank, top_k_pages
from .base import Policy, PolicyContext, fill_with_residents

__all__ = ["WriteAwarePolicy"]


class WriteAwarePolicy(Policy):
    """History rank with a multiplicative bonus for written pages."""

    name = "write-aware"

    def __init__(self, write_boost: float = 2.0):
        if write_boost < 1.0:
            raise ValueError(f"write_boost must be >= 1, got {write_boost}")
        self.write_boost = write_boost

    def target_tier1(self, ctx: PolicyContext) -> np.ndarray:
        if ctx.prev_profile is None:
            return ctx.current_tier1[: ctx.tier1_capacity]
        rank = hotness_rank(ctx.prev_profile, ctx.rank_source)
        if rank.size < ctx.n_frames:
            rank = np.pad(rank, (0, ctx.n_frames - rank.size))
        if ctx.dirty_pages is not None and ctx.dirty_pages.size:
            written = np.zeros(ctx.n_frames, dtype=bool)
            written[np.asarray(ctx.dirty_pages, dtype=np.int64)] = True
            rank = np.where(written, rank * self.write_boost, rank)
        hot = top_k_pages(rank, ctx.tier1_capacity, eligible=ctx.eligible)
        return fill_with_residents(hot, ctx)
