"""First-come-first-allocate: the do-nothing baseline.

The paper's speedup comparison baseline (§VI-C): a NUMA-like policy
that fills fast memory in first-touch order and never migrates.
Placement of new pages is handled by
:func:`repro.tiering.placement.fcfa_place_new`; at epoch boundaries the
policy simply keeps whatever tier 1 currently holds.
"""

from __future__ import annotations

import numpy as np

from .base import Policy, PolicyContext

__all__ = ["FCFAPolicy"]


class FCFAPolicy(Policy):
    """First-touch fill, no migration, ever."""

    name = "fcfa"

    def target_tier1(self, ctx: PolicyContext) -> np.ndarray:
        return np.asarray(ctx.current_tier1, dtype=np.int64)
