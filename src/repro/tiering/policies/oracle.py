"""The Oracle policy (Table II).

"Assumes knowledge of how many times each page will be accessed in the
coming epoch and brings in the hottest pages at the start of the epoch
— the upper limit for policy design."

Crucially, the paper's Fig. 6 evaluates the Oracle *per profiling
source*: its knowledge is the coming epoch's **profiled** hotness
(A-bit alone, IBS alone, or TMP's combination), which is how better
monitoring data improves even the Oracle — the paper's central result
(up to ~70 % hitrate gain for combined data).  :class:`OraclePolicy`
implements exactly that.

:class:`TrueOraclePolicy` is the stronger extension that peeks at the
machine's ground-truth access counts — an upper bound on *any*
profiler, useful for quantifying how much visibility profiling still
leaves on the table.
"""

from __future__ import annotations

import numpy as np

from ...core.hotness import hotness_rank, top_k_pages
from .base import Policy, PolicyContext, fill_with_residents

__all__ = ["OraclePolicy", "TrueOraclePolicy"]


class OraclePolicy(Policy):
    """Perfect knowledge of the coming epoch's *profiled* hotness."""

    name = "oracle"

    def target_tier1(self, ctx: PolicyContext) -> np.ndarray:
        if ctx.next_profile is None:
            raise ValueError(
                "OraclePolicy requires the coming epoch's profile in the context"
            )
        rank = hotness_rank(ctx.next_profile, ctx.rank_source)
        if rank.size < ctx.n_frames:
            rank = np.pad(rank, (0, ctx.n_frames - rank.size))
        hot = top_k_pages(rank, ctx.tier1_capacity, eligible=ctx.eligible)
        return fill_with_residents(hot, ctx)


class TrueOraclePolicy(Policy):
    """Ground-truth upper bound: ranks by the machine's real counts.

    Stronger than any profiler-fed policy; the gap between this and
    :class:`OraclePolicy` measures the visibility a monitoring source
    still loses.
    """

    name = "true-oracle"

    def __init__(self, use_mem_counts: bool = True):
        self.use_mem_counts = use_mem_counts

    def target_tier1(self, ctx: PolicyContext) -> np.ndarray:
        counts = ctx.true_mem_counts if self.use_mem_counts else ctx.true_counts
        if counts is None:
            counts = ctx.true_counts
        if counts is None:
            raise ValueError(
                "TrueOraclePolicy requires ground-truth counts in the context"
            )
        hot = top_k_pages(
            counts.astype(np.float64), ctx.tier1_capacity, eligible=ctx.eligible
        )
        return fill_with_residents(hot, ctx)
