"""Thermostat-style placement: rank pages by intercepted TLB misses.

Thermostat (Agarwal & Wenisch, ASPLOS'17) classifies pages hot or cold
by intercepting TLB misses with BadgerTrap and treating the per-page
fault count as an access-count proxy.  The paper's §II-B critique —
which this policy lets you *measure* — is that TLB misses and cache
misses to a page need not agree: a page whose translation thrashes the
TLB but whose data sits in the LLC gains nothing from fast memory, and
a page with huge in-page locality (one translation, endless cache
misses) is invisible to the fault counter.

Like History, the policy is reactive: it places the pages that
TLB-missed most in the *previous* epoch.
"""

from __future__ import annotations

import numpy as np

from ...core.hotness import top_k_pages
from .base import Policy, PolicyContext, fill_with_residents

__all__ = ["ThermostatPolicy"]


class ThermostatPolicy(Policy):
    """Previous epoch's most TLB-missing pages go to tier 1."""

    name = "thermostat"

    def __init__(self):
        self._prev_tlb: np.ndarray | None = None

    def target_tier1(self, ctx: PolicyContext) -> np.ndarray:
        prev = self._prev_tlb
        if ctx.tlb_miss_counts is not None:
            cur = np.asarray(ctx.tlb_miss_counts, dtype=np.float64)
            if cur.size < ctx.n_frames:
                cur = np.pad(cur, (0, ctx.n_frames - cur.size))
            self._prev_tlb = cur
        if prev is None:
            return ctx.current_tier1[: ctx.tier1_capacity]
        if prev.size < ctx.n_frames:
            prev = np.pad(prev, (0, ctx.n_frames - prev.size))
        hot = top_k_pages(prev, ctx.tier1_capacity, eligible=ctx.eligible)
        return fill_with_residents(hot, ctx)
