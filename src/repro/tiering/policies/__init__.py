"""Tiered-memory placement policies (Table II plus extensions)."""

from .autonuma import AutoNUMAPolicy
from .base import Policy, PolicyContext, fill_with_residents
from .fcfa import FCFAPolicy
from .history import HistoryPolicy
from .oracle import OraclePolicy, TrueOraclePolicy
from .random_policy import RandomPolicy
from .thermostat import ThermostatPolicy
from .write_aware import WriteAwarePolicy

#: Name → class registry for benches and examples.
POLICIES = {
    p.name: p
    for p in (
        OraclePolicy,
        TrueOraclePolicy,
        HistoryPolicy,
        FCFAPolicy,
        AutoNUMAPolicy,
        WriteAwarePolicy,
        ThermostatPolicy,
        RandomPolicy,
    )
}

__all__ = [
    "AutoNUMAPolicy",
    "FCFAPolicy",
    "HistoryPolicy",
    "OraclePolicy",
    "TrueOraclePolicy",
    "POLICIES",
    "Policy",
    "PolicyContext",
    "RandomPolicy",
    "ThermostatPolicy",
    "WriteAwarePolicy",
    "fill_with_residents",
]
