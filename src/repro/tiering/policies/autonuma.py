"""AutoNUMA-style fault-sampled placement (extension).

§II-A describes Linux AutoNUMA balancing: PTE permissions on a portion
of memory (e.g. 256 MB windows) are periodically cleared so the next
access faults, and the fault tells the kernel who touched the page.
Applied to tiering, this is a *sampled, binary* hotness signal with
fault overhead — a useful comparison point for TMP's monitors.

The model: each epoch a rotating window of the address space is
"unmapped"; pages of the window that the previous epoch's A-bit profile
shows as touched count as fault-detected.  Rank is binary (touched in
window), so the policy promotes window-detected pages and otherwise
keeps residents — mirroring AutoNUMA's incremental behaviour.  The
per-fault cost the paper cites as AutoNUMA's weakness is surfaced via
``faults_incurred`` for overhead comparisons.
"""

from __future__ import annotations

import numpy as np

from .base import Policy, PolicyContext, fill_with_residents

__all__ = ["AutoNUMAPolicy"]


class AutoNUMAPolicy(Policy):
    """Rotating-window fault sampling, binary hotness."""

    name = "autonuma"

    def __init__(self, window_pages: int = 4096):
        if window_pages < 1:
            raise ValueError(f"window_pages must be >= 1, got {window_pages}")
        self.window_pages = window_pages
        self._cursor = 0
        #: Cumulative emulated page faults (one per detected page).
        self.faults_incurred = 0

    def target_tier1(self, ctx: PolicyContext) -> np.ndarray:
        if ctx.prev_profile is None or ctx.n_frames == 0:
            return ctx.current_tier1[: ctx.tier1_capacity]
        lo = self._cursor % ctx.n_frames
        span = min(self.window_pages, ctx.n_frames)
        window = (lo + np.arange(span, dtype=np.int64)) % ctx.n_frames
        self._cursor = (lo + span) % ctx.n_frames

        touched = ctx.prev_profile.abit
        if touched.size < ctx.n_frames:
            touched = np.pad(touched, (0, ctx.n_frames - touched.size))
        detected = window[touched[window] > 0]
        if ctx.eligible is not None:
            detected = detected[ctx.eligible[detected]]
        self.faults_incurred += int(detected.size)
        return fill_with_residents(detected[: ctx.tier1_capacity], ctx)
