"""Random placement: the floor baseline for sanity checks.

Fills tier 1 with a uniformly random sample of *all* frames each epoch
— no profiling signal whatsoever.  Any profiling-driven policy should
comfortably beat this; tests use it to confirm rankings carry real
signal.
"""

from __future__ import annotations

import numpy as np

from .base import Policy, PolicyContext

__all__ = ["RandomPolicy"]


class RandomPolicy(Policy):
    """Uniformly random tier-1 contents (seeded)."""

    name = "random"

    def target_tier1(self, ctx: PolicyContext) -> np.ndarray:
        candidates = np.arange(ctx.n_frames, dtype=np.int64)
        if ctx.eligible is not None:
            candidates = candidates[ctx.eligible]
        if candidates.size <= ctx.tier1_capacity:
            return candidates
        pick = self._rng.choice(candidates, size=ctx.tier1_capacity, replace=False)
        return np.sort(pick)

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)
