"""Per-stage wall-clock/throughput instrumentation for the runner.

Every record and evaluate step reports one :class:`StageEvent`;
:meth:`RunnerMetrics.write` emits the whole session as machine-readable
JSON (``BENCH_runner.json`` / ``BENCH_suite.json``) so successive PRs
have a performance trajectory to compare against.

Two clocks are kept on purpose: per-event ``seconds`` sum to the CPU
work done (across all pool workers), while :meth:`RunnerMetrics.stage`
brackets measure the wall-clock of a whole fan-out — their ratio is the
achieved parallel speedup.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from pathlib import Path

__all__ = ["StageEvent", "RunnerMetrics"]


@dataclass
class StageEvent:
    """One timed unit of runner work."""

    stage: str          # "record" | "evaluate" | caller-defined
    name: str           # workload or grid-cell label
    seconds: float      # time spent on this unit (in its worker)
    items: int = 1      # work items (epochs recorded, cells scored)
    cached: bool = False  # served from the run cache, not computed


class RunnerMetrics:
    """Collects stage events and renders a JSON benchmark report."""

    def __init__(self, jobs: int = 1):
        self.jobs = jobs
        self.events: list[StageEvent] = []
        self.stage_wall_s: dict[str, float] = {}

    def add(
        self,
        stage: str,
        name: str,
        seconds: float,
        *,
        items: int = 1,
        cached: bool = False,
    ) -> StageEvent:
        event = StageEvent(stage, name, seconds, items, cached)
        self.events.append(event)
        return event

    @contextmanager
    def stage(self, stage: str):
        """Bracket a whole fan-out to capture its wall-clock."""
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - t0
            self.stage_wall_s[stage] = self.stage_wall_s.get(stage, 0.0) + elapsed

    def summary(self) -> dict:
        stages: dict[str, dict] = {}
        for ev in self.events:
            s = stages.setdefault(
                ev.stage,
                {"events": 0, "items": 0, "work_seconds": 0.0, "cached": 0},
            )
            s["events"] += 1
            s["items"] += ev.items
            s["work_seconds"] += ev.seconds
            s["cached"] += bool(ev.cached)
        for name, s in stages.items():
            wall = self.stage_wall_s.get(name)
            if wall:
                s["wall_seconds"] = wall
                s["events_per_s"] = s["events"] / wall
                s["items_per_s"] = s["items"] / wall
                if s["work_seconds"] > 0:
                    s["parallel_speedup"] = s["work_seconds"] / wall
        return {
            "generated_unix": time.time(),
            "jobs": self.jobs,
            "stages": stages,
            "events": [asdict(ev) for ev in self.events],
        }

    def write(self, path: str | Path) -> Path:
        """Write the summary as JSON; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.summary(), indent=2) + "\n")
        return path
