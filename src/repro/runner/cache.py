"""Content-addressed on-disk cache of recorded runs.

Recording is the expensive half of every offline experiment (one full
machine simulation per workload); evaluation is the cheap half.  The
cache makes recording *amortized*: a run is stored once under a key
derived from everything that determines its content — workload identity
and kwargs, the full :class:`~repro.memsim.machine.MachineConfig` and
:class:`~repro.core.config.TMPConfig`, epoch count, seed, and the
serialization format version — so any configuration change is an
automatic miss and stale entries can never be served.

Entries are the existing :mod:`repro.tiering.serialize` ``.npz``
archives, written atomically (temp file + ``os.replace``) so concurrent
writers and killed processes cannot leave a torn entry under a live
key.  A corrupted entry is treated as a miss: it is deleted and the
caller re-records.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path

import numpy as np

from ..core.config import TMPConfig
from ..ioutil import atomic_output
from ..memsim.machine import MachineConfig
from ..obs import metrics as obs_metrics
from ..tiering import serialize as _serialize
from ..tiering.recorded import RecordedRun

__all__ = ["RunCache", "cache_key"]


def _count(outcome: str) -> None:
    obs_metrics.default_registry().counter(
        "repro_cache_lookups_total",
        "Recorded-run cache lookups by outcome",
        labelnames=("outcome",),
    ).inc(outcome=outcome)


def _canonical(obj):
    """Reduce ``obj`` to a deterministic JSON-encodable form.

    Raises ``TypeError`` for anything it cannot canonicalize.  The old
    ``repr()`` fallback was a correctness trap: default ``repr`` embeds
    the object's memory address (``<object at 0x7f...>``), so a spec
    carrying such a value in ``workload_kw`` hashed differently in
    every process and the cache silently never hit.  A loud failure at
    key time beats a cache that lies about being cold.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(k): _canonical(obj[k]) for k in sorted(obj, key=str)}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.generic):
        return obj.item()
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    raise TypeError(
        f"cannot build a stable cache key from {type(obj).__name__!s}: "
        "RecordSpec values must be JSON-like (None/str/int/float/bool), "
        "numpy scalars/arrays, dataclasses, or containers of those"
    )


def cache_key(spec) -> str:
    """Stable content hash for a :class:`~repro.runner.executor.RecordSpec`.

    ``None`` configs hash as the defaults :func:`~repro.tiering.recorded
    .record_run` would substitute, so ``RecordSpec("gups")`` and
    ``RecordSpec("gups", machine_config=MachineConfig.scaled())`` share
    an entry.  The serializer's format version participates so a format
    bump invalidates every existing entry at once.
    """
    payload = {
        "format_version": _serialize._FORMAT_VERSION,
        "workload": spec.workload,
        "workload_kw": _canonical(dict(spec.workload_kw)),
        "machine_config": _canonical(spec.machine_config or MachineConfig.scaled()),
        "tmp_config": _canonical(spec.tmp_config or TMPConfig()),
        "epochs": spec.epochs,
        "seed": spec.seed,
        "init": spec.init,
        "epoch_slices": spec.epoch_slices,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class RunCache:
    """Directory of ``<sha256>.npz`` recorded-run entries."""

    def __init__(self, root: str | Path, *, include_samples: bool = True):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.include_samples = include_samples
        self.hits = 0
        self.misses = 0
        self.errors = 0

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def get(self, key: str) -> RecordedRun | None:
        """Load an entry, or ``None`` on miss *or* corruption.

        A corrupted/unreadable entry (torn write, wrong format version,
        truncated archive) is deleted so the re-recorded run can take
        its slot — callers never crash on cache state.
        """
        path = self.path_for(key)
        if not path.exists():
            self.misses += 1
            _count("miss")
            return None
        try:
            run = _serialize.load_recorded(path)
        except Exception:
            self.errors += 1
            self.misses += 1
            _count("error")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        _count("hit")
        return run

    def put(self, key: str, recorded: RecordedRun) -> Path:
        """Atomically store ``recorded`` under ``key``."""
        path = self.path_for(key)
        with atomic_output(path) as tmp:
            _serialize.save_recorded(
                recorded, tmp, include_samples=self.include_samples
            )
        return path

    def stats(self) -> dict:
        return {
            "root": str(self.root),
            "hits": self.hits,
            "misses": self.misses,
            "errors": self.errors,
            "entries": sum(1 for _ in self.root.glob("*.npz")),
        }
