"""Process-pool execution of record/evaluate experiment stages.

The record-once / evaluate-offline split (:mod:`repro.tiering
.recorded`) makes the two stages embarrassingly parallel in different
dimensions: recordings are independent across *workloads*, evaluations
across *grid cells*.  This module fans both out over a
:class:`~concurrent.futures.ProcessPoolExecutor`:

* :func:`record_suite` — one task per workload, each consulting the
  shared :class:`~repro.runner.cache.RunCache` first;
* :func:`evaluate_grids` — grid cells strided into per-worker chunks,
  each chunk loading its recording once (from the cache path when one
  exists, so the multi-megabyte arrays cross the process boundary via
  the page cache instead of a pickle pipe).

``jobs=1`` bypasses the pool entirely and runs the exact in-process
code path the library has always used, so determinism is trivially
preserved; ``tests/runner`` asserts ``jobs=1`` and ``jobs=4`` produce
bit-identical grids.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path

from ..core.config import TMPConfig
from ..memsim.machine import MachineConfig
from ..obs import metrics as obs_metrics
from ..tiering.policies import POLICIES
from ..tiering.recorded import RecordedRun, evaluate_recorded, record_run
from ..tiering.serialize import load_recorded
from ..tiering.simulator import SimulationResult
from ..workloads.registry import make_workload
from .cache import RunCache, cache_key
from .metrics import RunnerMetrics

__all__ = [
    "GridCell",
    "RecordSpec",
    "evaluate_grid",
    "evaluate_grids",
    "get_or_record",
    "record_suite",
    "resolve_jobs",
]


def _count_jobs(stage: str, n: int = 1) -> None:
    if n:
        obs_metrics.default_registry().counter(
            "repro_runner_jobs_total",
            "Experiment-runner tasks dispatched by stage",
            labelnames=("stage",),
        ).inc(n, stage=stage)


def resolve_jobs(jobs: int | None) -> int:
    """``None`` → ``$REPRO_JOBS`` or ``os.cpu_count()``."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        jobs = int(env) if env else (os.cpu_count() or 1)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


@dataclass
class RecordSpec:
    """Everything that determines a recorded run's content.

    The same fields feed :func:`~repro.runner.cache.cache_key`, so two
    specs collide in the cache exactly when they would produce the same
    recording.
    """

    workload: str
    workload_kw: dict = field(default_factory=dict)
    machine_config: MachineConfig | None = None
    tmp_config: TMPConfig | None = None
    epochs: int = 8
    seed: int = 0
    init: bool = True
    epoch_slices: int = 1

    def record(self) -> RecordedRun:
        """Execute the recording this spec describes."""
        return record_run(
            make_workload(self.workload, **self.workload_kw),
            machine_config=self.machine_config,
            tmp_config=self.tmp_config,
            epochs=self.epochs,
            seed=self.seed,
            init=self.init,
            epoch_slices=self.epoch_slices,
        )


@dataclass(frozen=True)
class GridCell:
    """One (policy, monitoring source, tier ratio) evaluation cell."""

    policy: str
    source: str
    ratio: float

    def label(self) -> str:
        return f"{self.policy}/{self.source}/{self.ratio:g}"


def _record_task(spec: RecordSpec, cache_root, include_samples: bool):
    """Worker: record one spec, persisting it to the cache if given."""
    t0 = time.perf_counter()
    run = spec.record()
    seconds = time.perf_counter() - t0
    if cache_root is not None:
        RunCache(cache_root, include_samples=include_samples).put(
            cache_key(spec), run
        )
    return run, seconds


def record_suite(
    specs: list[RecordSpec],
    *,
    jobs: int | None = None,
    cache: RunCache | None = None,
    metrics: RunnerMetrics | None = None,
) -> list[RecordedRun]:
    """Record every spec, in parallel, reusing cached runs.

    Returns runs aligned with ``specs``.  Cache hits are loaded in the
    parent process (no pool dispatch); only misses are fanned out.
    """
    jobs = resolve_jobs(jobs)
    runs: list[RecordedRun | None] = [None] * len(specs)
    pending: list[int] = []
    for i, spec in enumerate(specs):
        if cache is not None:
            t0 = time.perf_counter()
            run = cache.get(cache_key(spec))
            if run is not None:
                runs[i] = run
                if metrics:
                    metrics.add(
                        "record",
                        spec.workload,
                        time.perf_counter() - t0,
                        items=run.n_epochs,
                        cached=True,
                    )
                continue
        pending.append(i)

    if not pending:
        return runs
    _count_jobs("record", len(pending))
    if jobs == 1 or len(pending) == 1:
        for i in pending:
            t0 = time.perf_counter()
            run = specs[i].record()
            seconds = time.perf_counter() - t0
            if cache is not None:
                cache.put(cache_key(specs[i]), run)
            runs[i] = run
            if metrics:
                metrics.add(
                    "record", specs[i].workload, seconds, items=run.n_epochs
                )
        return runs

    cache_root = cache.root if cache is not None else None
    include_samples = cache.include_samples if cache is not None else True
    with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
        futures = {
            pool.submit(_record_task, specs[i], cache_root, include_samples): i
            for i in pending
        }
        for fut in as_completed(futures):
            i = futures[fut]
            run, seconds = fut.result()
            runs[i] = run
            if metrics:
                metrics.add(
                    "record", specs[i].workload, seconds, items=run.n_epochs
                )
    return runs


def get_or_record(
    spec: RecordSpec,
    *,
    cache: RunCache | None = None,
    metrics: RunnerMetrics | None = None,
) -> RecordedRun:
    """One-spec convenience wrapper over :func:`record_suite`."""
    return record_suite([spec], jobs=1, cache=cache, metrics=metrics)[0]


def _make_policy(name: str):
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; available: {', '.join(POLICIES)}"
        ) from None


#: Per-worker memo of recordings loaded from cache paths, so a worker
#: scoring many chunks of the same recording parses the .npz once.
_WORKER_RUNS: dict[str, RecordedRun] = {}


def _resolve_recording(ref) -> RecordedRun:
    if isinstance(ref, RecordedRun):
        return ref
    key = str(ref)
    run = _WORKER_RUNS.get(key)
    if run is None:
        run = load_recorded(key)
        if len(_WORKER_RUNS) >= 8:  # bound worker memory across sweeps
            _WORKER_RUNS.clear()
        _WORKER_RUNS[key] = run
    return run


def _evaluate_chunk(ref, chunk, eval_kw):
    """Worker: score ``[(index, GridCell), ...]`` against one recording."""
    recorded = _resolve_recording(ref)
    out = []
    for idx, cell in chunk:
        t0 = time.perf_counter()
        res = evaluate_recorded(
            recorded,
            _make_policy(cell.policy),  # fresh instance: stateful policies
            tier1_ratio=cell.ratio,
            rank_source=cell.source,
            **eval_kw,
        )
        out.append((idx, res, time.perf_counter() - t0))
    return out


def evaluate_grids(
    grids: list[tuple],
    *,
    jobs: int | None = None,
    metrics: RunnerMetrics | None = None,
    eval_kw: dict | None = None,
) -> list[list[SimulationResult]]:
    """Score many (recording, cells) grids with one shared pool.

    ``grids`` entries are ``(ref, cells, label)`` where ``ref`` is a
    :class:`RecordedRun` or a path to a serialized one.  Results come
    back aligned with each grid's cell order regardless of completion
    order, so parallel runs are indistinguishable from serial ones.
    """
    jobs = resolve_jobs(jobs)
    eval_kw = eval_kw or {}
    grids = [(ref, list(cells), label) for ref, cells, label in grids]
    for _, cells, _ in grids:
        for cell in cells:
            if cell.policy not in POLICIES:
                raise ValueError(
                    f"unknown policy {cell.policy!r}; "
                    f"available: {', '.join(POLICIES)}"
                )
    out: list[list] = [[None] * len(cells) for _, cells, _ in grids]
    _count_jobs("evaluate", sum(len(cells) for _, cells, _ in grids))

    if jobs == 1:
        for g, (ref, cells, label) in enumerate(grids):
            recorded = _resolve_recording(ref) if not isinstance(
                ref, RecordedRun
            ) else ref
            for (idx, res, seconds) in _evaluate_chunk(
                recorded, list(enumerate(cells)), eval_kw
            ):
                out[g][idx] = res
                if metrics:
                    metrics.add(
                        "evaluate", f"{label}:{cells[idx].label()}", seconds
                    )
        return out

    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {}
        for g, (ref, cells, label) in enumerate(grids):
            indexed = list(enumerate(cells))
            n_chunks = max(1, min(jobs, len(indexed)))
            for c in range(n_chunks):
                chunk = indexed[c::n_chunks]  # strided: balances cell costs
                if chunk:
                    futures[pool.submit(_evaluate_chunk, ref, chunk, eval_kw)] = g
        for fut in as_completed(futures):
            g = futures[fut]
            _, cells, label = grids[g]
            for idx, res, seconds in fut.result():
                out[g][idx] = res
                if metrics:
                    metrics.add(
                        "evaluate", f"{label}:{cells[idx].label()}", seconds
                    )
    return out


def evaluate_grid(
    recorded,
    cells,
    *,
    jobs: int | None = None,
    metrics: RunnerMetrics | None = None,
    label: str | None = None,
    **eval_kw,
) -> list[SimulationResult]:
    """Score one grid of cells against one recording (or its path)."""
    if label is None:
        label = (
            recorded.workload
            if isinstance(recorded, RecordedRun)
            else Path(str(recorded)).stem
        )
    return evaluate_grids(
        [(recorded, cells, label)], jobs=jobs, metrics=metrics, eval_kw=eval_kw
    )[0]
