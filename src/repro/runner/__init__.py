"""Parallel experiment runner with a content-addressed run cache.

The record-once / evaluate-offline harness (:mod:`repro.tiering
.recorded`) splits every experiment into an expensive collection stage
and a cheap scoring stage.  This package exploits that split:

* :class:`RunCache` (:mod:`~repro.runner.cache`) amortizes collection —
  recordings are stored content-addressed by everything that determines
  them, so a warm cache makes the recording stage free and any config
  change an automatic miss;
* :func:`record_suite` / :func:`evaluate_grids`
  (:mod:`~repro.runner.executor`) fan the stages out over a process
  pool (``jobs=1`` keeps the classic in-process path, bit-identical);
* :class:`RunnerMetrics` (:mod:`~repro.runner.metrics`) times every
  stage and emits machine-readable ``BENCH_*.json`` reports.

See ``docs/performance.md`` for cache-key composition, invalidation
rules, and the ``REPRO_CACHE_DIR`` / ``REPRO_JOBS`` knobs.
"""

from .cache import RunCache, cache_key
from .executor import (
    GridCell,
    RecordSpec,
    evaluate_grid,
    evaluate_grids,
    get_or_record,
    record_suite,
    resolve_jobs,
)
from .metrics import RunnerMetrics, StageEvent

__all__ = [
    "GridCell",
    "RecordSpec",
    "RunCache",
    "RunnerMetrics",
    "StageEvent",
    "cache_key",
    "evaluate_grid",
    "evaluate_grids",
    "get_or_record",
    "record_suite",
    "resolve_jobs",
]
