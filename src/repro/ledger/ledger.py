"""The ledger root: a directory of session ledgers plus provenance.

One :class:`Ledger` owns ``<root>/<session_id>/`` directories, each a
:class:`~repro.ledger.storage.SessionLedger` with a ``meta.json``
recording the exact session-creation config and its content-addressed
:func:`config_key` — the same canonical-JSON/SHA-256 discipline as the
recorded-run cache, so provenance survives the server process and a
recovered session can prove it was rebuilt from the right recipe.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path

from ..ioutil import atomic_write_bytes
from .storage import DEFAULT_SEGMENT_BYTES, LEDGER_FORMAT_VERSION, SessionLedger

__all__ = ["Ledger", "config_key"]


def _canonical(obj):
    """JSON-encodable deterministic form (loud on anything exotic)."""
    if isinstance(obj, dict):
        return {str(k): _canonical(obj[k]) for k in sorted(obj, key=str)}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    tolist = getattr(obj, "tolist", None)
    if callable(tolist):  # numpy scalars/arrays
        return tolist()
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    raise TypeError(
        f"cannot build a stable ledger key from {type(obj).__name__!s}: "
        "session params must be JSON-like values"
    )


def config_key(config: dict) -> str:
    """Content hash of a session-creation config (provenance key)."""
    payload = {
        "ledger_format": LEDGER_FORMAT_VERSION,
        "config": _canonical(config),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class Ledger:
    """Directory of per-session ledgers sharing one durability policy."""

    def __init__(
        self,
        root: str | Path,
        *,
        fsync: str = "rotate",
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        retention_bytes: int | None = None,
        retention_age_s: float | None = None,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.segment_bytes = int(segment_bytes)
        self.retention_bytes = retention_bytes
        self.retention_age_s = retention_age_s

    # ------------------------------------------------------------ sessions

    def session_dir(self, session_id: str) -> Path:
        return self.root / str(session_id)

    def _make(self, directory: Path) -> SessionLedger:
        return SessionLedger(
            directory,
            fsync=self.fsync,
            segment_bytes=self.segment_bytes,
            retention_bytes=self.retention_bytes,
            retention_age_s=self.retention_age_s,
        )

    def create_session(
        self, session_id: str, config: dict, info: dict | None = None
    ) -> SessionLedger:
        """Open a *fresh* ledger for ``session_id``, recording its config.

        ``config`` is the exact ``create_session`` params (the recipe a
        recovery re-runs); ``info`` is optional derived context (e.g.
        ``tier1_capacity``) kept for offline replay summaries.

        Session ids restart at ``s1`` across server launches, so a
        leftover directory from a previous run is archived aside
        (``<id>.<stamp>``) rather than appended to — seq numbering
        must stay continuous within exactly one session life.
        """
        directory = self.session_dir(session_id)
        if directory.exists():
            stamp = int(time.time() * 1000)
            directory.rename(directory.with_name(f"{session_id}.{stamp}"))
        directory.mkdir(parents=True)
        meta = {
            "format": LEDGER_FORMAT_VERSION,
            "session": str(session_id),
            "config": _canonical(config),
            "config_key": config_key(config),
            "info": _canonical(info or {}),
            "created_unix": time.time(),
        }
        atomic_write_bytes(
            directory / "meta.json",
            json.dumps(meta, indent=2, sort_keys=True).encode(),
            durable=self.fsync != "never",
        )
        return self._make(directory)

    def open_session(self, session_id: str) -> SessionLedger:
        """Attach to an existing session ledger (recovery/replay path)."""
        directory = self.session_dir(session_id)
        if not directory.is_dir():
            raise FileNotFoundError(f"no ledger for session {session_id!r}")
        return self._make(directory)

    # --------------------------------------------------------- checkpoints

    def checkpoint_path(self, session_id: str) -> Path:
        return self.session_dir(session_id) / "checkpoint.json"

    def write_checkpoint(self, session_id: str, data: dict) -> dict:
        """Persist an idle-eviction checkpoint marker for ``session_id``.

        The marker is tiny on purpose: the ledger's ``meta.json``
        already records the full creation config (and its
        ``config_key``) and the segment chain already holds the epoch
        history, so the checkpoint only pins the *moment* of eviction —
        epoch count, frame seq, tenant — that a later ``resume_session``
        re-admits from.  Written atomically so a crash mid-eviction
        leaves either no marker (session not resumable, nothing lost
        but the voluntary eviction) or a complete one.
        """
        directory = self.session_dir(session_id)
        if not directory.is_dir():
            raise FileNotFoundError(f"no ledger for session {session_id!r}")
        marker = {
            "format": LEDGER_FORMAT_VERSION,
            "session": str(session_id),
            "checkpoint_unix": time.time(),
            **_canonical(data),
        }
        atomic_write_bytes(
            self.checkpoint_path(session_id),
            json.dumps(marker, indent=2, sort_keys=True).encode(),
            durable=self.fsync != "never",
        )
        return marker

    def load_checkpoint(self, session_id: str) -> dict | None:
        """The eviction checkpoint marker, or None when absent/corrupt."""
        try:
            marker = json.loads(self.checkpoint_path(session_id).read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(marker, dict) or "session" not in marker:
            return None
        return marker

    def clear_checkpoint(self, session_id: str) -> bool:
        """Drop the marker (the session resumed); True when one existed."""
        try:
            self.checkpoint_path(session_id).unlink()
            return True
        except OSError:
            return False

    def load_meta(self, session_id: str) -> dict | None:
        """The recorded creation config, or None when absent/corrupt."""
        try:
            meta = json.loads(
                (self.session_dir(session_id) / "meta.json").read_text()
            )
        except (OSError, ValueError):
            return None
        if not isinstance(meta, dict) or "config" not in meta:
            return None
        return meta

    def list_sessions(self) -> list[dict]:
        """Every session ledger under the root, with summary stats."""
        out = []
        for directory in sorted(self.root.iterdir()):
            if not directory.is_dir():
                continue
            meta = self.load_meta(directory.name)
            if meta is None:
                continue
            ledger = self._make(directory)
            try:
                stats = ledger.stats()
            finally:
                ledger.close()
            out.append(
                {
                    "session": directory.name,
                    "workload": meta["config"].get("workload"),
                    "config_key": meta.get("config_key"),
                    "created_unix": meta.get("created_unix"),
                    **{
                        k: stats[k]
                        for k in ("segments", "bytes", "first_seq",
                                  "next_seq", "epochs")
                    },
                }
            )
        return out
