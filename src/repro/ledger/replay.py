"""Offline replay: ledger records → simulation results.

The per-epoch record payloads are exactly the wire-contract dicts of
:mod:`repro.service.telemetry`, so a full ledger replays into the same
:class:`~repro.tiering.simulator.SimulationResult` an uncrashed
in-process run would have produced — `repro ledger replay` and the
bit-identity tests both go through here.
"""

from __future__ import annotations

from ..tiering.simulator import SimulationResult

__all__ = ["iter_epoch_dicts", "replay_result"]


def iter_epoch_dicts(records):
    """The ``data`` payloads of the ``epoch`` records, in seq order."""
    for record in records:
        if record.get("event") == "epoch":
            yield record["data"]


def replay_result(session_ledger, meta: dict | None = None) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` from one session's ledger.

    ``meta`` is the session's recorded config (from
    :meth:`~repro.ledger.ledger.Ledger.load_meta`); when omitted the
    result's config fields fall back to empty placeholders but the
    epoch series is still exact.
    """
    # Local import: telemetry sits in repro.service, which imports the
    # server (which imports this package) — resolving it lazily keeps
    # the module graph acyclic at import time.
    from ..service.telemetry import epoch_metrics_from_dict

    config = (meta or {}).get("config", {})
    info = (meta or {}).get("info", {})
    result = SimulationResult(
        workload=str(config.get("workload", "")),
        policy=str(config.get("policy", "history")),
        rank_source=str(config.get("rank_source", "combined")),
        tier1_ratio=float(config.get("tier1_ratio", 1 / 8)),
        tier1_capacity=int(info.get("tier1_capacity", 0)),
    )
    for data in iter_epoch_dicts(session_ledger.read()):
        result.epochs.append(epoch_metrics_from_dict(data))
    return result
