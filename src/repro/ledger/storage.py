"""One session's append-only segment chain.

A :class:`SessionLedger` owns a directory of JSONL segment files::

    meta.json                    # recorded config + provenance key
    seg-0000000000.jsonl         # records seq 0..k-1   (sealed)
    seg-0000000000.idx           # byte offsets sidecar  (sealed)
    seg-0000000137.jsonl         # the active tail segment

Each record is one JSON line ``{"seq": n, "event": "...", "data":
{...}, "unix": t}``.  Segments are named by the first seq they hold,
so seek-by-seq is a bisect over the sorted segment list (O(log n))
followed by an O(1) offset lookup in the sealed segment's ``.idx``
sidecar; only the bounded active segment is ever scanned linearly.

Durability follows the recorded-run cache's discipline via
:mod:`repro.ioutil`: sidecars and meta are written atomically, and a
torn tail (process killed mid-append) is detected on reopen and
truncated away — corruption is a miss, never an error.  The fsync
policy is configurable: ``"rotate"`` (default) syncs a segment once
when it seals, ``"always"`` syncs every append, ``"never"`` leaves
durability to the OS.

Retention is size/age based: :meth:`compact` (called opportunistically
on rotation) unlinks the oldest *sealed* segments while the session
exceeds ``retention_bytes`` or segments are older than
``retention_age_s``; :attr:`first_seq` then reports the oldest record
still replayable so readers can account the gap as drops.
"""

from __future__ import annotations

import bisect
import io
import json
import os
import threading
import time
from pathlib import Path

from ..ioutil import atomic_write_bytes, fsync_dir
from ..obs import metrics as obs_metrics

__all__ = ["LEDGER_FORMAT_VERSION", "SessionLedger"]

#: Bump to invalidate every on-disk ledger at once (recorded in meta).
LEDGER_FORMAT_VERSION = 1

#: Rotate the active segment once it holds this many bytes.
DEFAULT_SEGMENT_BYTES = 1 << 18

_FSYNC_POLICIES = ("always", "rotate", "never")


def _registry():
    return obs_metrics.default_registry()


def _json_default(obj):
    """Coerce numpy scalars/arrays so records stay vanilla JSON."""
    tolist = getattr(obj, "tolist", None)
    if callable(tolist):
        return tolist()
    raise TypeError(f"not JSON-serializable: {type(obj).__name__}")


def _segment_name(first_seq: int) -> str:
    return f"seg-{first_seq:010d}.jsonl"


class _Segment:
    """Bookkeeping for one sealed or active segment file."""

    def __init__(self, path: Path, first_seq: int, count: int, nbytes: int):
        self.path = path
        self.first_seq = first_seq
        self.count = count
        self.nbytes = nbytes

    @property
    def end_seq(self) -> int:
        """One past the last seq held (== first_seq when empty)."""
        return self.first_seq + self.count


class SessionLedger:
    """Append-only, seq-numbered event store for one session.

    Thread model: one writer (appends are serialized by an internal
    lock; the service fans out under its subscriber lock anyway) and
    any number of concurrent readers.  The active segment is flushed
    after every append so readers — which open their own file handles
    — always see every published record.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync: str = "rotate",
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        retention_bytes: int | None = None,
        retention_age_s: float | None = None,
    ):
        if fsync not in _FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {_FSYNC_POLICIES}, got {fsync!r}"
            )
        if segment_bytes < 1:
            raise ValueError(f"segment_bytes must be >= 1, got {segment_bytes}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.segment_bytes = int(segment_bytes)
        self.retention_bytes = retention_bytes
        self.retention_age_s = retention_age_s
        self._lock = threading.Lock()
        self._sealed: list[_Segment] = []
        self._active: _Segment | None = None
        #: Opened lazily on first append, so read-only uses (listing,
        #: replay) never touch the filesystem beyond recovery scans.
        self._fh: io.BufferedWriter | None = None
        self._closed = False
        self.next_seq = 0
        #: Count of ``epoch`` records ever appended (survives reopen) —
        #: the catch-up distance for crashed-session recovery.
        self.epoch_count = 0
        self._recover()

    # ----------------------------------------------------------- recovery

    def _recover(self) -> None:
        """Rebuild in-memory state from disk, truncating any torn tail."""
        paths = sorted(self.directory.glob("seg-*.jsonl"))
        for i, path in enumerate(paths):
            try:
                first_seq = int(path.stem.split("-", 1)[1])
            except (IndexError, ValueError):
                continue
            sidecar = self._load_sidecar(path, first_seq)
            if sidecar is not None and i < len(paths) - 1:
                # Sealed segment with a healthy index: trust it.
                seg = _Segment(
                    path, first_seq, sidecar["count"], sidecar["bytes"]
                )
                self._sealed.append(seg)
                self.epoch_count += sidecar.get("epochs", 0)
                self.next_seq = seg.end_seq
                continue
            # Tail segment (or sealed one missing its sidecar): scan it
            # line by line and truncate at the first torn/misnumbered
            # record — everything before the tear is still good.
            good_bytes = 0
            count = 0
            epochs = 0
            with open(path, "rb") as fh:
                for line in fh:
                    if not line.endswith(b"\n"):
                        break
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        break
                    if record.get("seq") != first_seq + count:
                        break
                    good_bytes += len(line)
                    count += 1
                    if record.get("event") == "epoch":
                        epochs += 1
            if good_bytes < path.stat().st_size:
                with open(path, "rb+") as fh:
                    fh.truncate(good_bytes)
            seg = _Segment(path, first_seq, count, good_bytes)
            self.epoch_count += epochs
            self.next_seq = seg.end_seq
            if i < len(paths) - 1:
                # An interior segment without an index: reseal it so
                # later seeks stay O(1).
                self._write_sidecar(seg, self._scan_offsets(seg))
                self._sealed.append(seg)
            else:
                self._active = seg
        if self._active is None:
            self._active = _Segment(
                self.directory / _segment_name(self.next_seq),
                self.next_seq,
                0,
                0,
            )

    # ------------------------------------------------------------ sidecars

    @staticmethod
    def _sidecar_path(path: Path) -> Path:
        return path.with_suffix(".idx")

    def _load_sidecar(self, path: Path, first_seq: int) -> dict | None:
        """The segment's index, or None when absent/corrupt (a miss)."""
        sidecar = self._sidecar_path(path)
        try:
            index = json.loads(sidecar.read_text())
            if (
                index["first_seq"] == first_seq
                and len(index["offsets"]) == index["count"]
            ):
                return index
        except (OSError, ValueError, KeyError, TypeError):
            pass
        return None

    def _scan_offsets(self, seg: _Segment) -> list[int]:
        offsets = []
        pos = 0
        with open(seg.path, "rb") as fh:
            for _ in range(seg.count):
                offsets.append(pos)
                pos += len(fh.readline())
        return offsets

    def _write_sidecar(self, seg: _Segment, offsets: list[int]) -> None:
        epochs = sum(
            1
            for record in self._iter_segment(seg, seg.first_seq)
            if record.get("event") == "epoch"
        )
        blob = json.dumps(
            {
                "first_seq": seg.first_seq,
                "count": seg.count,
                "bytes": seg.nbytes,
                "epochs": epochs,
                "offsets": offsets,
            },
            separators=(",", ":"),
        ).encode()
        atomic_write_bytes(
            self._sidecar_path(seg.path), blob, durable=self.fsync != "never"
        )

    # ------------------------------------------------------------- writing

    def append(self, event: str, data: dict) -> int:
        """Durably append one record; returns the seq it was assigned."""
        line = None
        with self._lock:
            if self._closed:
                raise ValueError("ledger is closed")
            if self._fh is None:
                self._fh = open(self._active.path, "ab")
            seq = self.next_seq
            record = {
                "seq": seq,
                "event": event,
                "data": data,
                "unix": time.time(),
            }
            line = (
                json.dumps(
                    record, separators=(",", ":"), default=_json_default
                )
                + "\n"
            ).encode("utf-8")
            self._fh.write(line)
            # Flush unconditionally so same-process readers (the replay
            # path) see the record; fsync is the configurable part.
            self._fh.flush()
            if self.fsync == "always":
                self._fsync_active()
            self._active.count += 1
            self._active.nbytes += len(line)
            self.next_seq = seq + 1
            if event == "epoch":
                self.epoch_count += 1
            if self._active.nbytes >= self.segment_bytes:
                self._rotate()
        registry = _registry()
        registry.counter(
            "repro_ledger_appends_total", "Records appended to session ledgers"
        ).inc()
        registry.counter(
            "repro_ledger_bytes_total", "Bytes appended to session ledgers"
        ).inc(len(line))
        return seq

    def _fsync_active(self) -> None:
        t0 = time.perf_counter()
        os.fsync(self._fh.fileno())
        _registry().histogram(
            "repro_ledger_fsync_seconds", "Latency of ledger fsync calls"
        ).observe(time.perf_counter() - t0)

    def _rotate(self) -> None:
        """Seal the active segment and open a fresh one (lock held)."""
        seg = self._active
        if self.fsync != "never":
            self._fsync_active()
        self._fh.close()
        self._write_sidecar(seg, self._scan_offsets(seg))
        self._sealed.append(seg)
        self._active = _Segment(
            self.directory / _segment_name(self.next_seq),
            self.next_seq,
            0,
            0,
        )
        self._fh = open(self._active.path, "ab")
        if self.fsync != "never":
            fsync_dir(self.directory)
        self._compact_locked()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            if self._fh is None:
                return
            if self.fsync != "never" and self._active.count:
                self._fsync_active()
            self._fh.close()
            self._fh = None

    # ----------------------------------------------------------- retention

    def compact(self) -> int:
        """Apply the retention policy now; returns segments removed."""
        with self._lock:
            return self._compact_locked()

    def _compact_locked(self) -> int:
        if self.retention_bytes is None and self.retention_age_s is None:
            return 0
        removed = 0
        now = time.time()
        total = sum(s.nbytes for s in self._sealed) + self._active.nbytes
        while self._sealed:
            seg = self._sealed[0]
            over_size = (
                self.retention_bytes is not None
                and total > self.retention_bytes
            )
            too_old = False
            if self.retention_age_s is not None:
                try:
                    too_old = (
                        now - seg.path.stat().st_mtime > self.retention_age_s
                    )
                except OSError:
                    too_old = True
            if not over_size and not too_old:
                break
            self._sealed.pop(0)
            total -= seg.nbytes
            seg.path.unlink(missing_ok=True)
            self._sidecar_path(seg.path).unlink(missing_ok=True)
            removed += 1
        return removed

    # ------------------------------------------------------------- reading

    @property
    def first_seq(self) -> int:
        """Oldest seq still on disk (retention may have dropped earlier)."""
        with self._lock:
            if self._sealed:
                return self._sealed[0].first_seq
            return self._active.first_seq

    def __len__(self) -> int:
        with self._lock:
            return self.next_seq - (
                self._sealed[0].first_seq
                if self._sealed
                else self._active.first_seq
            )

    def _iter_segment(self, seg: _Segment, from_seq: int, end_seq=None):
        """Yield ``seg``'s records with ``from_seq <= seq < end_seq``."""
        start = max(from_seq - seg.first_seq, 0)
        if start >= seg.count:
            return
        offset = 0
        if start:
            sidecar = self._load_sidecar(seg.path, seg.first_seq)
            if sidecar is not None:
                offset = sidecar["offsets"][start]
        try:
            with open(seg.path, "rb") as fh:
                if offset:
                    fh.seek(offset)
                    skip = 0
                else:
                    skip = start
                for _ in range(skip):
                    fh.readline()
                for _ in range(seg.count - start):
                    line = fh.readline()
                    if not line.endswith(b"\n"):
                        return
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        return
                    if end_seq is not None and record["seq"] >= end_seq:
                        return
                    yield record
        except OSError:
            return

    def read(self, from_seq: int = 0, end_seq: int | None = None):
        """Yield records with ``from_seq <= seq < end_seq``, in order.

        Safe against a concurrent writer: the segment list and record
        counts are snapshotted under the lock, so the iteration sees a
        consistent prefix of the ledger (records appended afterwards
        are simply not part of this read).
        """
        with self._lock:
            segments = list(self._sealed)
            segments.append(
                _Segment(
                    self._active.path,
                    self._active.first_seq,
                    self._active.count,
                    self._active.nbytes,
                )
            )
        firsts = [seg.first_seq for seg in segments]
        start = max(bisect.bisect_right(firsts, from_seq) - 1, 0)
        for seg in segments[start:]:
            if end_seq is not None and seg.first_seq >= end_seq:
                return
            yield from self._iter_segment(seg, from_seq, end_seq)

    def stats(self) -> dict:
        with self._lock:
            sealed_bytes = sum(s.nbytes for s in self._sealed)
            return {
                "directory": str(self.directory),
                "segments": len(self._sealed) + 1,
                "bytes": sealed_bytes + self._active.nbytes,
                "first_seq": self._sealed[0].first_seq
                if self._sealed
                else self._active.first_seq,
                "next_seq": self.next_seq,
                "epochs": self.epoch_count,
            }
