"""One session's append-only segment chain.

A :class:`SessionLedger` owns a directory of JSONL segment files::

    meta.json                    # recorded config + provenance key
    seg-0000000000.jsonl         # records seq 0..k-1   (sealed)
    seg-0000000000.idx           # byte offsets sidecar  (sealed)
    seg-0000000137.jsonl         # the active tail segment

Each record is one JSON line ``{"seq": n, "event": "...", "data":
{...}, "unix": t}``.  Segments are named by the first seq they hold,
so seek-by-seq is a bisect over the sorted segment list (O(log n))
followed by an O(1) offset lookup in the sealed segment's ``.idx``
sidecar; only the bounded active segment is ever scanned linearly.

Durability follows the recorded-run cache's discipline via
:mod:`repro.ioutil`: sidecars and meta are written atomically, and a
torn tail (process killed mid-append) is detected on reopen and
truncated away — corruption is a miss, never an error.  The fsync
policy is configurable: ``"rotate"`` (default) syncs a segment once
when it seals, ``"always"`` syncs every append, ``"never"`` leaves
durability to the OS.

Retention is size/age based: :meth:`compact` (called opportunistically
on rotation) unlinks the oldest *sealed* segments while the session
exceeds ``retention_bytes`` or segments are older than
``retention_age_s``; :attr:`first_seq` then reports the oldest record
still replayable so readers can account the gap as drops.
"""

from __future__ import annotations

import bisect
import io
import json
import os
import threading
import time
from pathlib import Path

from ..ioutil import atomic_write_bytes, fsync_dir
from ..obs import metrics as obs_metrics

__all__ = ["LEDGER_FORMAT_VERSION", "SessionLedger"]

#: Bump to invalidate every on-disk ledger at once (recorded in meta).
LEDGER_FORMAT_VERSION = 1

#: Rotate the active segment once it holds this many bytes.
DEFAULT_SEGMENT_BYTES = 1 << 18

_FSYNC_POLICIES = ("always", "rotate", "never")


def _registry():
    return obs_metrics.default_registry()


def _json_default(obj):
    """Coerce numpy scalars/arrays so records stay vanilla JSON."""
    tolist = getattr(obj, "tolist", None)
    if callable(tolist):
        return tolist()
    raise TypeError(f"not JSON-serializable: {type(obj).__name__}")


def _encode_data(data) -> bytes:
    """One record's ``data`` as compact JSON bytes (numpy coerced)."""
    return json.dumps(data, separators=(",", ":"), default=_json_default).encode(
        "utf-8"
    )


def _segment_name(first_seq: int) -> str:
    return f"seg-{first_seq:010d}.jsonl"


def _split_record(line: bytes):
    """Parse one record line's envelope without decoding the payload.

    Record lines are written by :meth:`SessionLedger.append_many` in a
    fixed shape — ``{"seq":N,"event":E,"data":P,"unix":T}`` — so the
    payload bytes can be sliced back out between the ``"data":`` marker
    and the trailing ``,"unix":`` (``rindex``: the real ``unix`` field
    always follows the payload, so the *last* occurrence is the field
    boundary even if the payload contains the marker text).  Returns
    ``(seq, event, payload_bytes)`` or ``None`` when the line doesn't
    match the shape (foreign writer, corruption) and needs a full JSON
    decode instead.
    """
    try:
        if not line.startswith(b'{"seq":'):
            return None
        event_at = line.index(b',"event":', 7)
        seq = int(line[7:event_at])
        data_at = line.index(b',"data":', event_at)
        event = json.loads(line[event_at + 9 : data_at])
        end = line.rindex(b',"unix":')
        payload = line[data_at + 8 : end]
        if not isinstance(event, str):
            return None
        return seq, event, payload
    except ValueError:
        return None


class _Segment:
    """Bookkeeping for one sealed or active segment file.

    ``epochs`` and ``offsets`` are tracked incrementally as records
    append, so sealing a segment writes its sidecar from memory instead
    of re-reading the whole file to count/locate records.  Sealed
    segments recovered from a healthy sidecar keep ``offsets`` empty —
    the on-disk index already holds them.
    """

    def __init__(
        self,
        path: Path,
        first_seq: int,
        count: int,
        nbytes: int,
        epochs: int = 0,
        offsets: list[int] | None = None,
    ):
        self.path = path
        self.first_seq = first_seq
        self.count = count
        self.nbytes = nbytes
        self.epochs = epochs
        self.offsets: list[int] = [] if offsets is None else offsets

    @property
    def end_seq(self) -> int:
        """One past the last seq held (== first_seq when empty)."""
        return self.first_seq + self.count


class SessionLedger:
    """Append-only, seq-numbered event store for one session.

    Thread model: one writer (appends are serialized by an internal
    lock; the service fans out under its subscriber lock anyway) and
    any number of concurrent readers.  The active segment is flushed
    after every append so readers — which open their own file handles
    — always see every published record.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync: str = "rotate",
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        retention_bytes: int | None = None,
        retention_age_s: float | None = None,
    ):
        if fsync not in _FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {_FSYNC_POLICIES}, got {fsync!r}"
            )
        if segment_bytes < 1:
            raise ValueError(f"segment_bytes must be >= 1, got {segment_bytes}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.segment_bytes = int(segment_bytes)
        self.retention_bytes = retention_bytes
        self.retention_age_s = retention_age_s
        self._lock = threading.Lock()
        self._sealed: list[_Segment] = []
        self._active: _Segment | None = None
        #: Opened lazily on first append, so read-only uses (listing,
        #: replay) never touch the filesystem beyond recovery scans.
        self._fh: io.BufferedWriter | None = None
        self._closed = False
        self.next_seq = 0
        #: Count of ``epoch`` records ever appended (survives reopen) —
        #: the catch-up distance for crashed-session recovery.
        self.epoch_count = 0
        self._recover()

    # ----------------------------------------------------------- recovery

    def _recover(self) -> None:
        """Rebuild in-memory state from disk, truncating any torn tail."""
        paths = sorted(self.directory.glob("seg-*.jsonl"))
        for i, path in enumerate(paths):
            try:
                first_seq = int(path.stem.split("-", 1)[1])
            except (IndexError, ValueError):
                continue
            sidecar = self._load_sidecar(path, first_seq)
            if sidecar is not None and i < len(paths) - 1:
                # Sealed segment with a healthy index: trust it.
                seg = _Segment(
                    path,
                    first_seq,
                    sidecar["count"],
                    sidecar["bytes"],
                    epochs=sidecar.get("epochs", 0),
                )
                self._sealed.append(seg)
                self.epoch_count += seg.epochs
                self.next_seq = seg.end_seq
                continue
            # Tail segment (or sealed one missing its sidecar): scan it
            # line by line and truncate at the first torn/misnumbered
            # record — everything before the tear is still good.
            good_bytes = 0
            count = 0
            epochs = 0
            offsets: list[int] = []
            with open(path, "rb") as fh:
                for line in fh:
                    if not line.endswith(b"\n"):
                        break
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        break
                    if record.get("seq") != first_seq + count:
                        break
                    offsets.append(good_bytes)
                    good_bytes += len(line)
                    count += 1
                    if record.get("event") == "epoch":
                        epochs += 1
            if good_bytes < path.stat().st_size:
                with open(path, "rb+") as fh:
                    fh.truncate(good_bytes)
            seg = _Segment(
                path, first_seq, count, good_bytes, epochs=epochs, offsets=offsets
            )
            self.epoch_count += epochs
            self.next_seq = seg.end_seq
            if i < len(paths) - 1:
                # An interior segment without an index: reseal it so
                # later seeks stay O(1).
                self._write_sidecar(seg)
                self._sealed.append(seg)
            else:
                self._active = seg
        if self._active is None:
            self._active = _Segment(
                self.directory / _segment_name(self.next_seq),
                self.next_seq,
                0,
                0,
            )

    # ------------------------------------------------------------ sidecars

    @staticmethod
    def _sidecar_path(path: Path) -> Path:
        return path.with_suffix(".idx")

    def _load_sidecar(self, path: Path, first_seq: int) -> dict | None:
        """The segment's index, or None when absent/corrupt (a miss)."""
        sidecar = self._sidecar_path(path)
        try:
            index = json.loads(sidecar.read_text())
            if (
                index["first_seq"] == first_seq
                and len(index["offsets"]) == index["count"]
            ):
                return index
        except (OSError, ValueError, KeyError, TypeError):
            pass
        return None

    def _write_sidecar(self, seg: _Segment) -> None:
        """Seal ``seg``'s index from its in-memory bookkeeping.

        Counts and offsets are tracked incrementally on every append
        (and rebuilt by the recovery scan), so sealing never re-reads
        the segment file.
        """
        blob = json.dumps(
            {
                "first_seq": seg.first_seq,
                "count": seg.count,
                "bytes": seg.nbytes,
                "epochs": seg.epochs,
                "offsets": seg.offsets,
            },
            separators=(",", ":"),
        ).encode()
        atomic_write_bytes(
            self._sidecar_path(seg.path), blob, durable=self.fsync != "never"
        )

    # ------------------------------------------------------------- writing

    def append(self, event: str, data: dict) -> int:
        """Durably append one record; returns the seq it was assigned."""
        return self.append_many(((event, _encode_data(data)),))

    def append_encoded(self, event: str, payload: bytes) -> int:
        """Append one record whose ``data`` is already JSON bytes.

        ``payload`` must be compact JSON (the fan-out's
        ``encode_payload`` output); it is spliced into the record line
        verbatim, so the wire frame and the durable record share one
        encode of the payload.
        """
        return self.append_many(((event, payload),))

    def append_many(self, items) -> int:
        """Durably append a batch of ``(event, payload_bytes)`` records.

        The whole batch shares one timestamp, one ``write()``, one
        flush, and — under the ``always`` policy — one fsync at the
        batch boundary, amortizing the per-record overheads the
        telemetry hot path used to pay per subscriber frame.  Returns
        the seq assigned to the first record of the batch (``next_seq``
        for an empty batch).
        """
        items = list(items)
        with self._lock:
            if self._closed:
                raise ValueError("ledger is closed")
            if not items:
                return self.next_seq
            if self._fh is None:
                self._fh = open(self._active.path, "ab")
            unix = json.dumps(time.time()).encode("ascii")
            first_seq = self.next_seq
            lines = []
            offset = self._active.nbytes
            nbytes = 0
            for event, payload in items:
                line = b"".join(
                    (
                        b'{"seq":',
                        str(self.next_seq).encode("ascii"),
                        b',"event":',
                        json.dumps(event).encode("utf-8"),
                        b',"data":',
                        payload,
                        b',"unix":',
                        unix,
                        b"}\n",
                    )
                )
                lines.append(line)
                self._active.offsets.append(offset + nbytes)
                nbytes += len(line)
                self.next_seq += 1
                if event == "epoch":
                    self.epoch_count += 1
                    self._active.epochs += 1
            self._fh.write(b"".join(lines))
            # Flush unconditionally so same-process readers (the replay
            # path) see the records; fsync is the configurable part.
            self._fh.flush()
            if self.fsync == "always":
                self._fsync_active()
            self._active.count += len(items)
            self._active.nbytes += nbytes
            if self._active.nbytes >= self.segment_bytes:
                self._rotate()
        registry = _registry()
        registry.counter(
            "repro_ledger_appends_total", "Records appended to session ledgers"
        ).inc(len(items))
        registry.counter(
            "repro_ledger_bytes_total", "Bytes appended to session ledgers"
        ).inc(nbytes)
        return first_seq

    def _fsync_active(self) -> None:
        t0 = time.perf_counter()
        os.fsync(self._fh.fileno())
        _registry().histogram(
            "repro_ledger_fsync_seconds", "Latency of ledger fsync calls"
        ).observe(time.perf_counter() - t0)

    def _rotate(self) -> None:
        """Seal the active segment and open a fresh one (lock held)."""
        seg = self._active
        if self.fsync != "never":
            self._fsync_active()
        self._fh.close()
        self._write_sidecar(seg)
        self._sealed.append(seg)
        self._active = _Segment(
            self.directory / _segment_name(self.next_seq),
            self.next_seq,
            0,
            0,
        )
        self._fh = open(self._active.path, "ab")
        if self.fsync != "never":
            fsync_dir(self.directory)
        self._compact_locked()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            if self._fh is None:
                return
            if self.fsync != "never" and self._active.count:
                self._fsync_active()
            self._fh.close()
            self._fh = None

    # ----------------------------------------------------------- retention

    def compact(self) -> int:
        """Apply the retention policy now; returns segments removed."""
        with self._lock:
            return self._compact_locked()

    def _compact_locked(self) -> int:
        if self.retention_bytes is None and self.retention_age_s is None:
            return 0
        removed = 0
        now = time.time()
        total = sum(s.nbytes for s in self._sealed) + self._active.nbytes
        while self._sealed:
            seg = self._sealed[0]
            over_size = (
                self.retention_bytes is not None
                and total > self.retention_bytes
            )
            too_old = False
            if self.retention_age_s is not None:
                try:
                    too_old = (
                        now - seg.path.stat().st_mtime > self.retention_age_s
                    )
                except OSError:
                    too_old = True
            if not over_size and not too_old:
                break
            self._sealed.pop(0)
            total -= seg.nbytes
            seg.path.unlink(missing_ok=True)
            self._sidecar_path(seg.path).unlink(missing_ok=True)
            removed += 1
        return removed

    # ------------------------------------------------------------- reading

    @property
    def first_seq(self) -> int:
        """Oldest seq still on disk (retention may have dropped earlier)."""
        with self._lock:
            if self._sealed:
                return self._sealed[0].first_seq
            return self._active.first_seq

    def __len__(self) -> int:
        with self._lock:
            return self.next_seq - (
                self._sealed[0].first_seq
                if self._sealed
                else self._active.first_seq
            )

    def _iter_segment_lines(self, seg: _Segment, from_seq: int):
        """Yield ``seg``'s raw record lines starting at ``from_seq``."""
        start = max(from_seq - seg.first_seq, 0)
        if start >= seg.count:
            return
        offset = 0
        if start:
            sidecar = self._load_sidecar(seg.path, seg.first_seq)
            if sidecar is not None:
                offset = sidecar["offsets"][start]
        try:
            with open(seg.path, "rb") as fh:
                if offset:
                    fh.seek(offset)
                    skip = 0
                else:
                    skip = start
                for _ in range(skip):
                    fh.readline()
                for _ in range(seg.count - start):
                    line = fh.readline()
                    if not line.endswith(b"\n"):
                        return
                    yield line
        except OSError:
            return

    def _iter_segment(self, seg: _Segment, from_seq: int, end_seq=None):
        """Yield ``seg``'s records with ``from_seq <= seq < end_seq``."""
        for line in self._iter_segment_lines(seg, from_seq):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                return
            if end_seq is not None and record["seq"] >= end_seq:
                return
            yield record

    def _snapshot_segments(self, from_seq: int) -> list[_Segment]:
        """Consistent segment list (active copied) covering ``from_seq``."""
        with self._lock:
            segments = list(self._sealed)
            segments.append(
                _Segment(
                    self._active.path,
                    self._active.first_seq,
                    self._active.count,
                    self._active.nbytes,
                )
            )
        firsts = [seg.first_seq for seg in segments]
        start = max(bisect.bisect_right(firsts, from_seq) - 1, 0)
        return segments[start:]

    def read(self, from_seq: int = 0, end_seq: int | None = None):
        """Yield records with ``from_seq <= seq < end_seq``, in order.

        Safe against a concurrent writer: the segment list and record
        counts are snapshotted under the lock, so the iteration sees a
        consistent prefix of the ledger (records appended afterwards
        are simply not part of this read).
        """
        for seg in self._snapshot_segments(from_seq):
            if end_seq is not None and seg.first_seq >= end_seq:
                return
            yield from self._iter_segment(seg, from_seq, end_seq)

    def read_encoded(self, from_seq: int = 0, end_seq: int | None = None):
        """Yield ``(seq, event, payload_bytes)`` without decoding payloads.

        The replay hot path: payload bytes are sliced straight out of
        the record line (see :func:`_split_record`) and spliced into
        subscriber frames, so replaying N records costs zero JSON
        encodes of the payload.  Lines that don't match the canonical
        record shape fall back to a full decode + re-encode; the same
        snapshot/consistency guarantees as :meth:`read` apply.
        """
        for seg in self._snapshot_segments(from_seq):
            if end_seq is not None and seg.first_seq >= end_seq:
                return
            for line in self._iter_segment_lines(seg, from_seq):
                parsed = _split_record(line)
                if parsed is None:
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        return
                    parsed = (
                        record["seq"],
                        record["event"],
                        _encode_data(record["data"]),
                    )
                if end_seq is not None and parsed[0] >= end_seq:
                    return
                yield parsed

    def stats(self) -> dict:
        with self._lock:
            sealed_bytes = sum(s.nbytes for s in self._sealed)
            return {
                "directory": str(self.directory),
                "segments": len(self._sealed) + 1,
                "bytes": sealed_bytes + self._active.nbytes,
                "first_seq": self._sealed[0].first_seq
                if self._sealed
                else self._active.first_seq,
                "next_seq": self.next_seq,
                "epochs": self.epoch_count,
            }
