"""repro.ledger — the durable event-sourced telemetry ledger.

The service streams per-epoch telemetry only to live subscribers: a
frame that misses every queue is gone, and a session that dies with
its worker loses its whole history.  This subsystem makes the frame
stream *durable*: every fan-out appends one seq-numbered record to an
append-only, segmented-JSONL ledger on disk, so

* a reconnecting subscriber can ``subscribe(from_seq=N)`` and replay
  every missed frame before switching to the live tail,
* a ``worker_crashed`` session can be re-materialized from its
  recorded config plus the ledger's epoch count (the simulator is
  deterministic, so the catch-up run is bit-identical), and
* offline analysis (``repro ledger list/cat/replay``) can rebuild a
  full :class:`~repro.tiering.simulator.SimulationResult` from disk
  long after the server exited.

Layering:

``storage``
    :class:`SessionLedger` — one session's append-only segment chain:
    atomic rotation, fsync policy, index sidecars for O(log n)
    seek-by-seq, torn-tail recovery, size/age retention.
``ledger``
    :class:`Ledger` — the root directory of session ledgers plus
    content-addressed config provenance (:func:`config_key`).
``replay``
    Records → :class:`SimulationResult` / epoch dicts for offline use.

Durability reuses :mod:`repro.ioutil` (the same write-temp/fsync/
rename discipline as the recorded-run cache) and the reader side
treats anything unparseable as absent, never as an error.
"""

from .ledger import Ledger, config_key
from .replay import iter_epoch_dicts, replay_result
from .storage import LEDGER_FORMAT_VERSION, SessionLedger

__all__ = [
    "LEDGER_FORMAT_VERSION",
    "Ledger",
    "SessionLedger",
    "config_key",
    "iter_epoch_dicts",
    "replay_result",
]
