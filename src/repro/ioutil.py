"""Shared durable-file primitives: write-temp, fsync, rename.

Both on-disk subsystems — the content-addressed recorded-run cache
(:mod:`repro.runner.cache`) and the event-sourced telemetry ledger
(:mod:`repro.ledger`) — need the same discipline: a file must either
appear complete under its final name or not appear at all, regardless
of concurrent writers or a process killed mid-write.  The recipe is
the classic one (write to a same-directory temp file, flush+fsync,
``os.replace``), and it lives here exactly once so both subsystems
stay tested against the same implementation.

Readers complete the contract with *corruption-is-a-miss*: anything
that fails to parse under its final name is treated as absent (and
usually deleted), never as an error surfaced to the caller.
"""

from __future__ import annotations

import contextlib
import os
from pathlib import Path

__all__ = ["atomic_output", "atomic_write_bytes", "fsync_dir", "fsync_file"]


def fsync_file(path: str | Path) -> None:
    """fsync an existing file by path (open read-only, sync, close)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path: str | Path) -> None:
    """fsync a directory so a rename/create inside it is durable.

    Silently skipped on platforms that refuse to open directories
    (Windows) — the rename itself is still atomic there.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@contextlib.contextmanager
def atomic_output(path: str | Path, *, durable: bool = False):
    """Yield a same-directory temp path that becomes ``path`` on success.

    The caller writes the temp file however it likes (binary, text,
    ``np.savez`` …).  On normal exit the temp file is atomically
    renamed over ``path``; on exception it is removed and ``path`` is
    untouched.  ``durable=True`` additionally fsyncs the temp file
    before the rename and the parent directory after it, so the
    replacement survives power loss, not just process death.

    The temp name keeps ``path``'s suffix (``.<stem>.<pid>.tmp<suffix>``)
    so suffix-sniffing writers like ``np.savez`` don't append their own.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.stem}.{os.getpid()}.tmp{path.suffix}")
    try:
        yield tmp
        if durable and tmp.exists():
            fsync_file(tmp)
        os.replace(tmp, path)
        if durable:
            fsync_dir(path.parent)
    finally:
        tmp.unlink(missing_ok=True)


def atomic_write_bytes(
    path: str | Path, data: bytes, *, durable: bool = False
) -> Path:
    """Atomically publish ``data`` as the complete contents of ``path``."""
    path = Path(path)
    with atomic_output(path, durable=durable) as tmp:
        tmp.write_bytes(data)
    return path
