"""Time × physical-address heatmaps (Figs. 3 and 4).

The paper visualizes each workload as a heatmap whose horizontal axis
is elapsed time, vertical axis is the physical address space, and each
cell is the number of accesses a page frame received in that interval —
one figure built from IBS samples (Fig. 3) and one from A-bit profiling
(Fig. 4).  These builders produce the same matrices from a
:class:`~repro.memsim.events.SampleBatch` or from per-epoch
:class:`~repro.core.page_stats.EpochProfile` sequences, plus an ASCII
renderer so benches can print the figure.
"""

from __future__ import annotations

import numpy as np

from ..core.page_stats import EpochProfile
from ..memsim.events import SampleBatch

__all__ = [
    "heatmap_from_samples",
    "heatmap_from_epoch_samples",
    "heatmap_from_profiles",
    "render_heatmap",
]


def heatmap_from_samples(
    samples: SampleBatch,
    *,
    n_time_bins: int = 48,
    n_addr_bins: int = 32,
    op_range: tuple[int, int] | None = None,
    pfn_range: tuple[int, int] | None = None,
) -> np.ndarray:
    """Bin trace samples into a (addr_bins, time_bins) intensity matrix.

    Row 0 is the lowest physical address; column 0 the earliest time —
    matching the paper's axes.
    """
    if samples.n == 0:
        return np.zeros((n_addr_bins, n_time_bins), dtype=np.int64)
    ops = samples.op_idx.astype(np.float64)
    pfns = samples.pfn.astype(np.float64)
    o_lo, o_hi = op_range if op_range else (ops.min(), ops.max() + 1)
    p_lo, p_hi = pfn_range if pfn_range else (pfns.min(), pfns.max() + 1)
    h, _, _ = np.histogram2d(
        pfns,
        ops,
        bins=(n_addr_bins, n_time_bins),
        range=((p_lo, p_hi), (o_lo, o_hi)),
    )
    return h.astype(np.int64)


def heatmap_from_epoch_samples(
    epoch_samples: list[SampleBatch],
    *,
    n_addr_bins: int = 32,
    n_frames: int | None = None,
) -> np.ndarray:
    """One heatmap column per epoch from per-epoch sample batches.

    Epochs are the paper's wall-clock seconds; binning time by epoch
    (rather than by op index) makes load waves visible — an idle second
    yields few samples even though it advances few ops.
    """
    if not epoch_samples:
        return np.zeros((n_addr_bins, 0), dtype=np.int64)
    if n_frames is None:
        n_frames = 1 + max(
            (int(s.pfn.max()) for s in epoch_samples if s is not None and s.n),
            default=0,
        )
    out = np.zeros((n_addr_bins, len(epoch_samples)), dtype=np.int64)
    edges = np.linspace(0, n_frames, n_addr_bins + 1)
    for t, s in enumerate(epoch_samples):
        if s is None or s.n == 0:
            continue
        hist, _ = np.histogram(s.pfn.astype(np.float64), bins=edges)
        out[:, t] = hist
    return out


def heatmap_from_profiles(
    profiles: list[EpochProfile],
    *,
    field: str = "abit",
    n_addr_bins: int = 32,
    n_frames: int | None = None,
) -> np.ndarray:
    """Bin per-epoch profiles into a (addr_bins, epochs) matrix.

    ``field`` selects the mechanism: "abit" (Fig. 4), "trace" (a
    sample-count variant of Fig. 3), or "rank" (their fused sum).
    """
    if field not in ("abit", "trace", "rank"):
        raise ValueError(f"unknown field {field!r}")
    if not profiles:
        return np.zeros((n_addr_bins, 0), dtype=np.float64)
    if n_frames is None:
        n_frames = max(p.abit.size for p in profiles)
    out = np.zeros((n_addr_bins, len(profiles)), dtype=np.float64)
    edges = np.linspace(0, n_frames, n_addr_bins + 1).astype(np.int64)
    for t, p in enumerate(profiles):
        if field == "abit":
            vec = p.abit
        elif field == "trace":
            vec = p.trace
        else:
            vec = p.rank()
        padded = np.zeros(n_frames, dtype=np.float64)
        padded[: vec.size] = vec[:n_frames] if vec.size > n_frames else vec
        sums = np.add.reduceat(padded, edges[:-1])
        out[:, t] = sums
    return out


_SHADES = " .:-=+*#%@"


def render_heatmap(
    matrix: np.ndarray,
    *,
    title: str = "",
    log_scale: bool = True,
    charset: str = _SHADES,
) -> str:
    """Render an intensity matrix as ASCII art (high addresses on top)."""
    m = np.asarray(matrix, dtype=np.float64)
    if m.size == 0:
        return title
    v = np.log1p(m) if log_scale else m
    vmax = v.max()
    if vmax <= 0:
        scaled = np.zeros_like(v, dtype=np.intp)
    else:
        scaled = np.minimum(
            (v / vmax * (len(charset) - 1)).astype(np.intp), len(charset) - 1
        )
    lines = [] if not title else [title]
    for row in scaled[::-1]:  # top row = highest address
        lines.append("|" + "".join(charset[c] for c in row) + "|")
    lines.append("+" + "-" * m.shape[1] + "+  (x: time, y: physical address)")
    return "\n".join(lines)
