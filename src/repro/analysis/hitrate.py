"""Fig. 6 sweep helpers: tier-1 hitrate across policies × sources × ratios.

Uses the record-once / evaluate-offline method (``repro.tiering
.recorded``): one machine run per workload feeds every (policy,
monitoring source, tier ratio) evaluation, exactly as the paper
computed its policy results from recorded hardware profiles.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import TMPConfig
from ..memsim.machine import MachineConfig
from ..tiering.policies import HistoryPolicy, OraclePolicy
from ..tiering.recorded import RecordedRun, evaluate_recorded, record_run
from ..workloads.registry import make_workload

__all__ = ["HitratePoint", "sweep_recorded", "fig6_sweep", "DEFAULT_RATIOS"]

#: The paper's tier-1 : footprint ratios (Fig. 6): 1/8 .. 1/128.
DEFAULT_RATIOS = (1 / 8, 1 / 16, 1 / 32, 1 / 64, 1 / 128)

#: The monitoring-source axis of Fig. 6.
SOURCES = ("abit", "trace", "combined")


@dataclass
class HitratePoint:
    """One Fig. 6 data point."""

    workload: str
    policy: str
    source: str
    ratio: float
    hitrate: float


def _policy(name: str):
    if name == "oracle":
        return OraclePolicy()
    if name == "history":
        return HistoryPolicy()
    raise ValueError(f"unknown Fig. 6 policy {name!r}")


def sweep_recorded(
    recorded: RecordedRun,
    *,
    policies=("oracle", "history"),
    sources=SOURCES,
    ratios=DEFAULT_RATIOS,
) -> list[HitratePoint]:
    """Evaluate every (policy, source, ratio) cell on one recording."""
    points = []
    for policy_name in policies:
        for source in sources:
            for ratio in ratios:
                res = evaluate_recorded(
                    recorded,
                    _policy(policy_name),  # fresh instance: stateful policies
                    tier1_ratio=ratio,
                    rank_source=source,
                )
                points.append(
                    HitratePoint(
                        workload=recorded.workload,
                        policy=policy_name,
                        source=source,
                        ratio=ratio,
                        hitrate=res.mean_hitrate,
                    )
                )
    return points


def fig6_sweep(
    workload_names,
    *,
    epochs: int = 8,
    seed: int = 0,
    ratios=DEFAULT_RATIOS,
    ibs_period: int = 16,  # the paper's adopted 4x rate, scaled
    workload_kw: dict | None = None,
) -> list[HitratePoint]:
    """Record each workload once and sweep the full Fig. 6 grid."""
    points = []
    for name in workload_names:
        recorded = record_run(
            make_workload(name, **(workload_kw or {})),
            machine_config=MachineConfig.scaled(ibs_period=ibs_period),
            tmp_config=TMPConfig(),
            epochs=epochs,
            seed=seed,
        )
        points.extend(sweep_recorded(recorded, ratios=ratios))
    return points
