"""Fig. 6 sweep helpers: tier-1 hitrate across policies × sources × ratios.

Uses the record-once / evaluate-offline method (``repro.tiering
.recorded``): one machine run per workload feeds every (policy,
monitoring source, tier ratio) evaluation, exactly as the paper
computed its policy results from recorded hardware profiles.

Both stages go through :mod:`repro.runner`: recordings fan out across
workloads (and are reused from the content-addressed run cache when
one is given), evaluations fan out across independent grid cells.
``jobs=1`` is the classic serial path; any ``jobs`` produces the
bit-identical grid, just faster.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import TMPConfig
from ..memsim.machine import MachineConfig
from ..runner import (
    GridCell,
    RecordSpec,
    RunCache,
    RunnerMetrics,
    cache_key,
    evaluate_grids,
    record_suite,
)

__all__ = ["HitratePoint", "sweep_recorded", "fig6_sweep", "DEFAULT_RATIOS"]

#: The paper's tier-1 : footprint ratios (Fig. 6): 1/8 .. 1/128.
DEFAULT_RATIOS = (1 / 8, 1 / 16, 1 / 32, 1 / 64, 1 / 128)

#: The monitoring-source axis of Fig. 6.
SOURCES = ("abit", "trace", "combined")

#: The policy axis of Fig. 6.
FIG6_POLICIES = ("oracle", "history")


@dataclass
class HitratePoint:
    """One Fig. 6 data point."""

    workload: str
    policy: str
    source: str
    ratio: float
    hitrate: float


def _cells(policies, sources, ratios) -> list[GridCell]:
    return [
        GridCell(policy, source, ratio)
        for policy in policies
        for source in sources
        for ratio in ratios
    ]


def sweep_recorded(
    recorded,
    *,
    policies=FIG6_POLICIES,
    sources=SOURCES,
    ratios=DEFAULT_RATIOS,
    jobs: int | None = 1,
    metrics: RunnerMetrics | None = None,
) -> list[HitratePoint]:
    """Evaluate every (policy, source, ratio) cell on one recording."""
    cells = _cells(policies, sources, ratios)
    results = evaluate_grids(
        [(recorded, cells, recorded.workload)], jobs=jobs, metrics=metrics
    )[0]
    return [
        HitratePoint(
            workload=recorded.workload,
            policy=cell.policy,
            source=cell.source,
            ratio=cell.ratio,
            hitrate=res.mean_hitrate,
        )
        for cell, res in zip(cells, results)
    ]


def fig6_sweep(
    workload_names,
    *,
    epochs: int = 8,
    seed: int = 0,
    ratios=DEFAULT_RATIOS,
    ibs_period: int = 16,  # the paper's adopted 4x rate, scaled
    workload_kw: dict | None = None,
    policies=FIG6_POLICIES,
    sources=SOURCES,
    jobs: int | None = 1,
    cache: RunCache | None = None,
    cache_dir=None,
    metrics: RunnerMetrics | None = None,
    bench_path=None,
) -> list[HitratePoint]:
    """Record each workload once and sweep the full Fig. 6 grid.

    ``jobs`` fans recording out across workloads and evaluation across
    grid cells; ``cache``/``cache_dir`` reuse recordings across calls
    (content-addressed, so changing any config re-records).  When
    ``bench_path`` is given, per-stage timings are written there as
    machine-readable JSON (``BENCH_runner.json`` convention).
    """
    if cache is None and cache_dir is not None:
        cache = RunCache(cache_dir)
    if metrics is None:
        metrics = RunnerMetrics(jobs=jobs or 0)
    specs = [
        RecordSpec(
            name,
            workload_kw=dict(workload_kw or {}),
            machine_config=MachineConfig.scaled(ibs_period=ibs_period),
            tmp_config=TMPConfig(),
            epochs=epochs,
            seed=seed,
        )
        for name in workload_names
    ]
    with metrics.stage("record"):
        runs = record_suite(specs, jobs=jobs, cache=cache, metrics=metrics)

    cells = _cells(policies, sources, ratios)
    grids = []
    for spec, run in zip(specs, runs):
        ref = run
        if jobs != 1 and cache is not None:
            # Ship the cache path instead of pickling the arrays into
            # every worker; workers memoize the load per process.
            path = cache.path_for(cache_key(spec))
            if path.exists():
                ref = path
        grids.append((ref, cells, spec.workload))
    with metrics.stage("evaluate"):
        results = evaluate_grids(grids, jobs=jobs, metrics=metrics)

    points = [
        HitratePoint(
            workload=spec.workload,
            policy=cell.policy,
            source=cell.source,
            ratio=cell.ratio,
            hitrate=res.mean_hitrate,
        )
        for spec, grid_results in zip(specs, results)
        for cell, res in zip(cells, grid_results)
    ]
    if bench_path is not None:
        metrics.write(bench_path)
    return points
