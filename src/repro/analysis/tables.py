"""Table IV reproduction: detected-page counts per method and rate.

Runs each workload once per IBS sampling rate (default / 4x / 8x),
profiles it with TMP, and reports how many distinct pages the A-bit
scan and the trace sampler each detected, plus the overlap ("Both") —
the rows of Table IV.  The derived statistics the paper quotes
(the ~2.58x average visibility gain of 4x over default; the <40 %
marginal gain of 8x over 4x) come out of :func:`rate_improvements`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import TMPConfig
from ..core.profiler import TMProfiler
from ..memsim.machine import Machine, MachineConfig
from ..workloads.registry import make_workload

__all__ = ["DetectionRow", "detected_pages_for", "table4_rows", "rate_improvements"]

#: Scaled sampling periods: the paper's default is 1 sample / 256 Ki
#: ops on a ~1e9 op/s machine; the scaled machine preserves
#: samples-per-second (see ``MachineConfig.scaled``), so default=64.
RATE_PERIODS = {"default": 64, "4x": 16, "8x": 8}


@dataclass
class DetectionRow:
    """Detected-page counts for one workload at one sampling rate."""

    workload: str
    rate: str
    abit: int
    trace: int
    both: int


def detected_pages_for(
    workload_name: str,
    *,
    rate: str = "4x",
    epochs: int = 10,
    seed: int = 0,
    tmp_config: TMPConfig | None = None,
    workload_kw: dict | None = None,
) -> DetectionRow:
    """Profile one workload at one rate; count pages per mechanism."""
    period = RATE_PERIODS[rate]
    machine = Machine(MachineConfig.scaled(ibs_period=period))
    workload = make_workload(workload_name, **(workload_kw or {}))
    workload.attach(machine)
    profiler = TMProfiler(machine, tmp_config or TMPConfig())
    profiler.register_workload(workload)
    rng = np.random.default_rng(seed)
    for e in range(epochs):
        batch = workload.epoch(e, rng)
        res = machine.run_batch(batch)
        profiler.observe_batch(batch, res)
        profiler.end_epoch()
    store = profiler.store
    return DetectionRow(
        workload=workload_name,
        rate=rate,
        abit=store.detected_pages("abit"),
        trace=store.detected_pages("trace"),
        both=store.detected_pages("both"),
    )


def table4_rows(
    workload_names,
    *,
    rates=("default", "4x", "8x"),
    epochs: int = 10,
    seed: int = 0,
) -> list[DetectionRow]:
    """All Table IV cells for the given workloads."""
    return [
        detected_pages_for(name, rate=rate, epochs=epochs, seed=seed)
        for name in workload_names
        for rate in rates
    ]


def rate_improvements(rows: list[DetectionRow]) -> dict[str, float]:
    """The paper's two derived claims from Table IV.

    Returns ``{"gain_4x_over_default": ..., "gain_8x_over_4x": ...}`` —
    mean per-workload ratios of trace-detected pages.
    """
    by_wl: dict[str, dict[str, int]] = {}
    for r in rows:
        by_wl.setdefault(r.workload, {})[r.rate] = r.trace
    g4, g8 = [], []
    for counts in by_wl.values():
        if "default" in counts and "4x" in counts and counts["default"]:
            g4.append(counts["4x"] / counts["default"])
        if "4x" in counts and "8x" in counts and counts["4x"]:
            g8.append(counts["8x"] / counts["4x"])
    return {
        "gain_4x_over_default": float(np.mean(g4)) if g4 else 0.0,
        "gain_8x_over_4x": float(np.mean(g8)) if g8 else 0.0,
    }
