"""Profiler accuracy metrics: how well a ranking matches the truth.

The paper's first contribution claims a "low-overhead, high-accuracy
profiling mechanism"; overhead has §VI-B, and these metrics give
accuracy an operational meaning.  A profiling source is scored against
the machine's ground-truth memory-access counts on three axes:

* **precision@K / recall@K** of the hot-set classification (K = tier-1
  capacity: exactly the decision placement must get right),
* **weighted coverage**: the fraction of true memory-access mass the
  predicted hot set captures — hitrate if the prediction were applied
  with a same-epoch oracle mover,
* **rank correlation** (Spearman) over pages either side detected.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.hotness import top_k_pages

__all__ = ["RankAccuracy", "rank_accuracy", "spearman"]


@dataclass
class RankAccuracy:
    """One ranking's accuracy against ground truth at capacity K."""

    k: int
    precision: float
    recall: float
    weighted_coverage: float
    spearman: float

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def spearman(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation (average-rank ties), NaN-safe."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.size != b.size:
        raise ValueError(f"length mismatch: {a.size} vs {b.size}")
    if a.size < 2:
        return 0.0
    ra = _average_ranks(a)
    rb = _average_ranks(b)
    sa = ra.std()
    sb = rb.std()
    if sa == 0 or sb == 0:
        return 0.0
    return float(((ra - ra.mean()) * (rb - rb.mean())).mean() / (sa * sb))


def _average_ranks(x: np.ndarray) -> np.ndarray:
    order = np.argsort(x, kind="stable")
    ranks = np.empty(x.size, dtype=np.float64)
    ranks[order] = np.arange(x.size, dtype=np.float64)
    # Average ranks over ties.
    sorted_x = x[order]
    boundaries = np.flatnonzero(np.diff(sorted_x) != 0) + 1
    groups = np.split(np.arange(x.size), boundaries)
    for g in groups:
        if g.size > 1:
            ranks[order[g]] = ranks[order[g]].mean()
    return ranks


def rank_accuracy(
    predicted: np.ndarray, truth: np.ndarray, k: int
) -> RankAccuracy:
    """Score a predicted per-page ranking against true access counts.

    ``predicted`` and ``truth`` are per-PFN non-negative scores; ``k``
    is the hot-set size (tier-1 capacity).  The true hot set is the
    top-``k`` of ``truth``.
    """
    predicted = np.asarray(predicted, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    n = max(predicted.size, truth.size)
    if predicted.size < n:
        predicted = np.pad(predicted, (0, n - predicted.size))
    if truth.size < n:
        truth = np.pad(truth, (0, n - truth.size))

    true_hot = top_k_pages(truth, k)
    pred_hot = top_k_pages(predicted, k)
    true_set = set(true_hot.tolist())
    inter = sum(1 for p in pred_hot if p in true_set)
    precision = inter / pred_hot.size if pred_hot.size else 0.0
    recall = inter / true_hot.size if true_hot.size else 0.0

    total = truth.sum()
    coverage = float(truth[pred_hot].sum() / total) if total > 0 else 0.0

    detected = (predicted > 0) | (truth > 0)
    rho = spearman(predicted[detected], truth[detected]) if detected.any() else 0.0
    return RankAccuracy(
        k=k,
        precision=precision,
        recall=recall,
        weighted_coverage=coverage,
        spearman=rho,
    )
