"""Plain-text rendering of tables and series for the benches.

Every benchmark prints the rows/series its paper artifact reports;
these helpers keep the formatting consistent and terminal-friendly.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "format_series", "format_ratio", "format_csv"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    title: str = "",
    float_fmt: str = "{:.3f}",
) -> str:
    """Render rows as an aligned monospace table."""
    def fmt(cell):
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(c.rjust(w) if i else c.ljust(w)
                         for i, (c, w) in enumerate(zip(cells, widths)))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def format_series(
    name: str, xs: Sequence, ys: Sequence[float], *, y_fmt: str = "{:.3f}"
) -> str:
    """Render one figure series as ``name: x=y`` pairs."""
    pairs = "  ".join(f"{x}={y_fmt.format(y)}" for x, y in zip(xs, ys))
    return f"{name:24s} {pairs}"


def format_csv(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render rows as CSV (for machine-readable bench artifacts)."""
    def fmt(cell):
        if isinstance(cell, float):
            return repr(cell)
        text = str(cell)
        if "," in text or '"' in text:
            text = '"' + text.replace('"', '""') + '"'
        return text

    lines = [",".join(headers)]
    lines.extend(",".join(fmt(c) for c in row) for row in rows)
    return "\n".join(lines)


def format_ratio(value: float, reference: float) -> str:
    """Render ``value`` as a multiple of ``reference`` (e.g. '1.13x')."""
    if reference == 0:
        return "inf"
    return f"{value / reference:.2f}x"
