"""Profiling overhead accounting (§VI-B).

The paper measures end-to-end workload latency with each profiling
mechanism armed: A-bit walks every second cost <1 % of application
time; IBS collection stays <5 % at the 4x rate and <2 % at the default
rate.  :func:`measure_overhead` runs a workload under a given TMP
configuration and reports the modelled profiling time as a fraction of
application time, broken down by component.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import TMPConfig
from ..core.profiler import TMProfiler
from ..memsim.machine import Machine, MachineConfig
from ..workloads.base import Workload

__all__ = ["OverheadReport", "measure_overhead"]


@dataclass
class OverheadReport:
    """Overhead of one profiling configuration on one workload."""

    workload: str
    label: str
    app_time_s: float
    abit_s: float
    trace_s: float
    hwpc_s: float
    filter_s: float
    abit_scans: int
    trace_samples: int

    @property
    def total_s(self) -> float:
        return self.abit_s + self.trace_s + self.hwpc_s + self.filter_s

    @property
    def fraction(self) -> float:
        """Profiling time / application time."""
        return self.total_s / self.app_time_s if self.app_time_s else 0.0

    @property
    def abit_fraction(self) -> float:
        return self.abit_s / self.app_time_s if self.app_time_s else 0.0

    @property
    def trace_fraction(self) -> float:
        return self.trace_s / self.app_time_s if self.app_time_s else 0.0


def measure_overhead(
    workload: Workload,
    *,
    label: str = "",
    machine_config: MachineConfig | None = None,
    tmp_config: TMPConfig | None = None,
    epochs: int = 10,
    seed: int = 0,
) -> OverheadReport:
    """Run ``workload`` under TMP and account profiling time."""
    machine = Machine(machine_config or MachineConfig.scaled())
    workload.attach(machine)
    profiler = TMProfiler(machine, tmp_config or TMPConfig())
    profiler.register_workload(workload)
    rng = np.random.default_rng(seed)
    for e in range(epochs):
        batch = workload.epoch(e, rng)
        res = machine.run_batch(batch)
        profiler.observe_batch(batch, res)
        profiler.end_epoch()
    total = profiler.total_overhead()
    return OverheadReport(
        workload=workload.name,
        label=label,
        app_time_s=machine.time_s,
        abit_s=total.abit_s,
        trace_s=total.trace_s,
        hwpc_s=total.hwpc_s,
        filter_s=total.filter_s,
        abit_scans=profiler.abit.stats.scans,
        trace_samples=profiler.trace.stats.samples_collected,
    )
