"""Result post-processing: the paper's figures and tables as data."""

from .accuracy import RankAccuracy, rank_accuracy, spearman
from .cdf import (
    access_cdf,
    hot_classification_fraction,
    pages_for_mass,
    sample_cdf_at,
)
from .heatmap import heatmap_from_profiles, heatmap_from_samples, render_heatmap
from .hitrate import (
    DEFAULT_RATIOS,
    HitratePoint,
    fig6_sweep,
    sweep_recorded,
)
from .overhead import OverheadReport, measure_overhead
from .report import format_csv, format_ratio, format_series, format_table
from .tables import (
    DetectionRow,
    RATE_PERIODS,
    detected_pages_for,
    rate_improvements,
    table4_rows,
)

__all__ = [
    "DEFAULT_RATIOS",
    "DetectionRow",
    "HitratePoint",
    "OverheadReport",
    "RankAccuracy",
    "RATE_PERIODS",
    "access_cdf",
    "detected_pages_for",
    "fig6_sweep",
    "format_csv",
    "format_ratio",
    "format_series",
    "format_table",
    "heatmap_from_profiles",
    "heatmap_from_samples",
    "hot_classification_fraction",
    "measure_overhead",
    "pages_for_mass",
    "rank_accuracy",
    "rate_improvements",
    "render_heatmap",
    "sample_cdf_at",
    "spearman",
    "sweep_recorded",
]
