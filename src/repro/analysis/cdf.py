"""Access-count distribution analyses (Fig. 5).

The paper plots CDFs of per-page access counts per profiling technique
and sampling rate, and draws the headline observation that A-bit
profiling alone classifies fewer than 10 % of the pages that incur TLB
misses as hot.  These helpers compute the underlying curves and
statistics from per-page count vectors.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "access_cdf",
    "pages_for_mass",
    "hot_classification_fraction",
    "sample_cdf_at",
]


def access_cdf(counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """CDF of per-page access counts over detected pages.

    Returns ``(values, cum_fraction)``: cum_fraction[i] is the fraction
    of detected pages with count <= values[i].  Pages with zero counts
    (undetected) are excluded, as in the paper's per-technique curves.
    """
    detected = np.sort(np.asarray(counts)[np.asarray(counts) > 0])
    if detected.size == 0:
        return np.zeros(0), np.zeros(0)
    values, idx = np.unique(detected, return_index=True)
    # Cumulative count of pages up to each unique value.
    cum = np.append(idx[1:], detected.size).astype(np.float64)
    return values.astype(np.float64), cum / detected.size


def sample_cdf_at(counts: np.ndarray, value: float) -> float:
    """Fraction of detected pages with count <= ``value``."""
    detected = np.asarray(counts)[np.asarray(counts) > 0]
    if detected.size == 0:
        return 0.0
    return float(np.count_nonzero(detected <= value) / detected.size)


def pages_for_mass(counts: np.ndarray, mass: float = 0.8) -> int:
    """Smallest number of hottest pages carrying ``mass`` of all accesses."""
    if not 0 < mass <= 1:
        raise ValueError(f"mass must be in (0, 1], got {mass}")
    c = np.sort(np.asarray(counts, dtype=np.float64))[::-1]
    total = c.sum()
    if total <= 0:
        return 0
    cum = np.cumsum(c)
    return int(np.searchsorted(cum, mass * total, side="left")) + 1


def hot_classification_fraction(
    classifier_counts: np.ndarray,
    reference_mask: np.ndarray,
    capacity: int,
) -> float:
    """Fraction of reference pages a classifier's top-``capacity`` covers.

    The paper's formulation: of the pages that incur TLB misses
    (``reference_mask``), how many would the classifier (e.g. the A-bit
    profile) rank into the hot set?  Under 10 % for A-bit alone on the
    big workloads (§VI-B).
    """
    ref = np.asarray(reference_mask, dtype=bool)
    n_ref = int(ref.sum())
    if n_ref == 0:
        return 0.0
    counts = np.asarray(classifier_counts, dtype=np.float64)
    order = np.argsort(counts)[::-1]
    hot = order[:capacity]
    hot = hot[counts[hot] > 0]
    return float(ref[hot].sum() / n_ref)
