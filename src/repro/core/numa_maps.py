"""A ``/proc/<pid>/numa_maps``-style text interface to TMP statistics.

§III-B.3: TMP extends ``numa_maps`` in the proc pseudo-filesystem so
user space can read collected per-VMA profiling statistics.  Each
mapped region renders as one line::

    7f0000001000 default heap anon=4096 dirty=120 accessed=310 \
        abit=502 trace=117 rank=619.0 hottest=0x7f0000001230

Fields: cumulative A-bit detections and trace samples summed over the
region's pages, the fused rank mass, and the region's hottest page.
"""

from __future__ import annotations

import numpy as np

from ..memsim.machine import Machine
from ..memsim.pte import PTE_ACCESSED, PTE_DIRTY
from .page_stats import PageStatsStore

__all__ = ["format_numa_maps", "format_all_numa_maps"]


def format_numa_maps(
    machine: Machine,
    store: PageStatsStore,
    pid: int,
    abit_weight: float = 1.0,
    trace_weight: float = 1.0,
) -> str:
    """Render one process's extended numa_maps."""
    pt = machine.page_tables.get(pid)
    if pt is None:
        raise KeyError(f"no such pid: {pid}")
    store.resize(machine.n_frames)
    abit = store.abit_total
    trace = store.trace_total
    lines = []
    for vma, flags in pt.walk():
        lo = int(vma.pfn_base)
        hi = lo + vma.npages
        a = abit[lo:hi]
        t = trace[lo:hi]
        rank = abit_weight * a + trace_weight * t
        dirty = int(np.count_nonzero(flags & PTE_DIRTY))
        accessed = int(np.count_nonzero(flags & PTE_ACCESSED))
        hottest = int(rank.argmax()) if vma.npages else 0
        lines.append(
            f"{vma.start_vpn << 12:012x} default {vma.name} "
            f"anon={vma.npages} dirty={dirty} accessed={accessed} "
            f"abit={int(a.sum())} trace={int(t.sum())} "
            f"rank={float(rank.sum()):.1f} "
            f"hottest={(vma.start_vpn + hottest) << 12:#x}"
        )
    return "\n".join(lines)


def format_all_numa_maps(
    machine: Machine, store: PageStatsStore, pids=None
) -> str:
    """Render numa_maps for many PIDs, separated by headers."""
    if pids is None:
        pids = sorted(machine.page_tables)
    blocks = []
    for pid in pids:
        blocks.append(f"# pid {pid}")
        blocks.append(format_numa_maps(machine, store, pid))
    return "\n".join(blocks)
