"""HWPC-based activity gating.

§III-B.4, first optimization: the two heavyweight mechanisms are
complemented with near-free performance counters so they can be
disabled during quiet phases.  TMP counts LLC-miss and dTLB-miss events
each interval, tracks the running maximum per event, and considers a
mechanism *active* while its current count exceeds 20 % of that
maximum.  The monitor only produces decisions; the profiler applies
them to the drivers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memsim.machine import Machine
from .config import TMPConfig

__all__ = ["HWPCMonitor", "GatingDecision"]


@dataclass
class GatingDecision:
    """One interval's gating outcome."""

    trace_active: bool
    abit_active: bool
    llc_miss_rate: float
    dtlb_miss_rate: float


@dataclass
class _EventTrack:
    maximum: float = 0.0
    current: float = 0.0

    def update(self, value: float) -> None:
        self.current = value
        if value > self.maximum:
            self.maximum = value

    def active(self, threshold: float) -> bool:
        if self.maximum <= 0:
            return True  # nothing observed yet: stay armed
        return self.current > threshold * self.maximum


class HWPCMonitor:
    """Tracks gate-event rates and produces enable/disable decisions."""

    def __init__(self, machine: Machine, config: TMPConfig):
        self.machine = machine
        self.config = config
        self.reads = 0
        self.time_s = 0.0
        self._tracks: dict[str, _EventTrack] = {
            config.trace_gate_event: _EventTrack(),
            config.abit_gate_event: _EventTrack(),
        }
        machine.pmu.configure(sorted(self._tracks))
        self.decisions: list[GatingDecision] = []

    def observe_interval(self) -> GatingDecision:
        """Read-and-reset the PMU; update maxima; decide gating."""
        readings = self.machine.pmu.read_and_reset()
        self.reads += 1
        self.time_s += len(readings) * self.config.costs.pmu_read_s
        for event, track in self._tracks.items():
            track.update(readings[event].estimate if event in readings else 0.0)

        threshold = self.config.gating_threshold
        cfg = self.config
        decision = GatingDecision(
            trace_active=self._tracks[cfg.trace_gate_event].active(threshold),
            abit_active=self._tracks[cfg.abit_gate_event].active(threshold),
            llc_miss_rate=self._tracks[cfg.trace_gate_event].current,
            dtlb_miss_rate=self._tracks[cfg.abit_gate_event].current,
        )
        self.decisions.append(decision)
        return decision

    def maxima(self) -> dict[str, float]:
        """Running per-event maxima (for diagnostics)."""
        return {e: t.maximum for e, t in self._tracks.items()}
