"""Resource-usage process filtering.

§III-B.4, second optimization: A-bit walk overhead is proportional to
the number of page tables traversed, so TMP only tracks processes
consuming at least 5 % CPU or 10 % memory, re-evaluated once per
second.  A stricter mode caps the number of tracked PIDs outright to
keep overhead stable under process churn.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import TMPConfig

__all__ = ["ProcessFilter", "ProcessUsage"]


@dataclass(frozen=True)
class ProcessUsage:
    """One process's resource shares over the last interval."""

    pid: int
    cpu_share: float  # fraction of executed ops attributed to the PID
    mem_share: float  # fraction of allocated frames owned by the PID


class ProcessFilter:
    """Selects which PIDs the heavyweight mechanisms cover."""

    def __init__(self, config: TMPConfig, max_tracked: int | None = None):
        self.config = config
        #: Restrictive mode: hard cap on tracked PIDs (highest usage wins).
        self.max_tracked = max_tracked
        self.evaluations = 0
        self.time_s = 0.0
        self._tracked: list[int] = []

    @property
    def tracked(self) -> list[int]:
        """PIDs selected by the most recent evaluation."""
        return list(self._tracked)

    def discard(self, pids) -> None:
        """Drop PIDs from the tracked set without a full re-evaluation.

        Used when the daemon unregisters a program: its PIDs must stop
        being walked immediately, not at the next filter interval.
        """
        drop = {int(p) for p in pids}
        self._tracked = [p for p in self._tracked if p not in drop]

    def evaluate(self, usage: list[ProcessUsage]) -> list[int]:
        """Re-evaluate the tracked set from fresh usage numbers."""
        self.evaluations += 1
        self.time_s += len(usage) * self.config.costs.filter_eval_s
        if not self.config.process_filter:
            selected = list(usage)
        else:
            selected = [
                u
                for u in usage
                if u.cpu_share >= self.config.min_cpu_share
                or u.mem_share >= self.config.min_mem_share
            ]
        if self.max_tracked is not None and len(selected) > self.max_tracked:
            selected = sorted(
                selected, key=lambda u: (u.cpu_share + u.mem_share), reverse=True
            )[: self.max_tracked]
        self._tracked = sorted(u.pid for u in selected)
        return self.tracked
