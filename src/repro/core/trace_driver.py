"""TMP's trace driver: IBS/PEBS sample collection and aggregation.

Mirrors §III-B.1: the kernel module periodically drains the hardware
sample buffer, records each sample's addresses and cache status, and
accumulates per-page counts in the page descriptor via the physical
address (``phys_to_page``).  Per §III-A, hotness accumulation defaults
to *memory-sourced* samples only — a page that is hot but always hits
in the caches gains nothing from migrating to fast memory — while all
drained samples remain available to callers (e.g. heatmaps of raw
activity).

The driver is vendor-agnostic: it consumes whichever
:class:`~repro.memsim.sampling.TraceSampler` the config selects (IBS op
sampling or PEBS event sampling), which is the interface-stability
point the paper argues for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..memsim.events import SampleBatch
from ..memsim.machine import Machine
from .config import TMPConfig
from .page_stats import PageStatsStore

__all__ = ["TraceDriver", "TraceDriverStats"]


@dataclass
class TraceDriverStats:
    """Cumulative trace-driver counters."""

    drains: int = 0
    samples_collected: int = 0
    memory_samples: int = 0
    interrupts_serviced: int = 0
    time_s: float = 0.0


class TraceDriver:
    """Drains the armed sampler and aggregates samples per page."""

    def __init__(self, machine: Machine, config: TMPConfig, store: PageStatsStore):
        self.machine = machine
        self.config = config
        self.store = store
        self.stats = TraceDriverStats()
        self._interrupts_seen = self.sampler.stats.interrupts
        self._enabled = config.trace_enabled
        self.sampler.enabled = self._enabled

    @property
    def sampler(self):
        """The hardware sampler this driver is bound to."""
        return {
            "ibs": self.machine.ibs,
            "pebs": self.machine.pebs,
            "lwp": self.machine.lwp,
        }[self.config.trace_source]

    @property
    def enabled(self) -> bool:
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        """Arming/disarming stops the hardware counter itself."""
        self._enabled = bool(value)
        self.sampler.enabled = self._enabled

    def set_period(self, period: int) -> None:
        """Reprogram the sampling period (§VI-A's rate sweep)."""
        self.sampler.set_period(period)

    def drain(self) -> SampleBatch:
        """Collect pending samples, aggregate hotness, return the batch."""
        sampler = self.sampler
        samples = sampler.drain()
        self.stats.drains += 1
        self.stats.samples_collected += samples.n

        costs = self.config.costs
        self.stats.time_s += samples.n * costs.trace_per_sample_s
        # Interrupts raised since the last drain; their servicing cost
        # is attributed when the driver handles the buffer.
        new_interrupts = sampler.stats.interrupts - self._interrupts_seen
        self._interrupts_seen = sampler.stats.interrupts
        self.stats.interrupts_serviced += max(new_interrupts, 0)
        self.stats.time_s += max(new_interrupts, 0) * costs.trace_per_interrupt_s

        if samples.n:
            hot = samples.memory_samples() if self.config.trace_memory_only else samples
            self.stats.memory_samples += hot.n
            if hot.n:
                self.store.record_trace(hot.pfn)
        return samples
