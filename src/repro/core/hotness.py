"""Hotness ranking: the profiler-policy interface.

§IV step 1: TMP abstracts its monitoring sources behind a single
per-page hotness rank — the stable, vendor-agnostic interface policies
consume.  Rank = Σ weight × samples over the enabled sources; Fig. 2
shows A-bit (PTW) events and trace (cache-miss) events arrive at the
same order of magnitude, so the default weights are 1:1 and neither
source drowns the other.

``RankSource`` selects which mechanisms feed the rank — the ablation
axis of Fig. 6 (*A-bit only*, *IBS only*, or *TMP combined*).
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from .page_stats import EpochProfile

__all__ = ["RankSource", "hotness_rank", "top_k_pages"]


class RankSource(str, Enum):
    """Which monitoring data feeds the hotness rank."""

    ABIT = "abit"
    TRACE = "trace"
    COMBINED = "combined"


def hotness_rank(
    profile: EpochProfile,
    source: RankSource | str = RankSource.COMBINED,
    abit_weight: float = 1.0,
    trace_weight: float = 1.0,
) -> np.ndarray:
    """Per-PFN hotness rank from one epoch's profile.

    Higher rank ⇒ more expected accesses next epoch ⇒ stronger claim on
    tier 1 (§IV step 1).
    """
    source = RankSource(source)
    if source is RankSource.ABIT:
        return abit_weight * profile.abit.astype(np.float64)
    if source is RankSource.TRACE:
        return trace_weight * profile.trace.astype(np.float64)
    # Equal-weight sum per Fig. 2, with an infinitesimal tie-break
    # toward trace-supported pages: among equally-ranked candidates,
    # prefer those with observed demand misses (§III-A's critical-path
    # focus) over pages only the touched-bit vouches for.
    trace = profile.trace.astype(np.float64)
    return (
        abit_weight * profile.abit.astype(np.float64)
        + trace_weight * trace
        + 1e-9 * trace
    )


def top_k_pages(rank: np.ndarray, k: int, eligible: np.ndarray | None = None) -> np.ndarray:
    """PFNs of the ``k`` hottest pages with non-zero rank.

    ``eligible`` masks out non-migratable pages (§IV step 2's
    filtering).  Ties break toward lower PFN for determinism.  Returns
    fewer than ``k`` PFNs when fewer pages have rank > 0.
    """
    if k <= 0:
        return np.zeros(0, dtype=np.int64)
    rank = np.asarray(rank, dtype=np.float64)
    if eligible is not None:
        rank = np.where(eligible, rank, 0.0)
    nonzero = np.flatnonzero(rank > 0)
    if nonzero.size == 0:
        return np.zeros(0, dtype=np.int64)
    # Deterministic order: rank descending, then PFN ascending (lexsort
    # keys are listed minor-first).
    order = np.lexsort((nonzero, -rank[nonzero]))
    return nonzero[order[:k]].astype(np.int64)
