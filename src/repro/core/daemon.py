"""The user-space TMP daemon.

§III-B.3: a profiling daemon runs alongside the target applications,
supplies PIDs to the kernel driver (every process forked by a
registered program is tracked), pushes configuration parameters down,
and surfaces statistics back to operators.  In the simulation, the
daemon is the convenience front-end over :class:`TMProfiler`: programs
map to PID groups, epochs are polled, and summary statistics /
numa_maps text come out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .config import TMPConfig
from .numa_maps import format_all_numa_maps
from .profiler import TMPEpochReport, TMProfiler

__all__ = ["TMPDaemon", "ProgramEntry"]


@dataclass
class ProgramEntry:
    """A registered program and the PIDs it has forked."""

    name: str
    pids: list[int] = field(default_factory=list)


class TMPDaemon:
    """User-space front-end: program registry, polling, reporting."""

    def __init__(self, profiler: TMProfiler):
        self.profiler = profiler
        self.programs: dict[str, ProgramEntry] = {}

    # ---------------------------------------------------------- registration

    def add_program(self, name: str, pids) -> ProgramEntry:
        """Register a program; all its PIDs become profiling candidates."""
        entry = self.programs.setdefault(name, ProgramEntry(name=name))
        new = [int(p) for p in pids if int(p) not in entry.pids]
        entry.pids.extend(new)
        self.profiler.register_pids(new)
        return entry

    def add_workload(self, workload) -> ProgramEntry:
        """Register an attached workload under its own name."""
        return self.add_program(workload.name, workload.pids)

    def remove_program(self, name: str) -> None:
        """Forget a program and stop profiling its PIDs.

        The program's PIDs are unregistered from the profiler and
        dropped from the process filter's tracked set — unless another
        registered program still owns them — so a removed program is
        neither walked nor charged overhead any more.  Its pages'
        history is retained.
        """
        entry = self.programs.pop(name, None)
        if entry is None:
            return
        still_owned = {p for e in self.programs.values() for p in e.pids}
        self.profiler.unregister_pids(
            [p for p in entry.pids if p not in still_owned]
        )

    # --------------------------------------------------------------- polling

    def poll_epoch(self) -> TMPEpochReport:
        """Close the current profiling epoch and collect its report."""
        return self.profiler.end_epoch()

    def reconfigure(self, **changes) -> TMPConfig:
        """Apply config changes (e.g. sampling period) at run time.

        Plain ``TMPConfig`` fields are mutated in place (the drivers
        re-read them at every epoch boundary, so the change is live).
        Knobs that live in a driver rather than the config are routed
        to the driver: ``trace_sample_period`` reprograms the trace
        sampler through :meth:`set_trace_period`.  The whole call is
        atomic: every key *and* the sampling period are validated up
        front, so a rejected reconfigure leaves no field half-applied.
        """
        if "trace_source" in changes:
            raise ValueError("trace_source cannot be changed after start")
        cfg = self.profiler.config
        trace_period = changes.pop("trace_sample_period", None)
        if trace_period is not None:
            # Validate before any plain field is mutated — the sampler
            # enforces period >= 1, and hitting that error *after*
            # setattr would leave a half-applied config behind.
            trace_period = int(trace_period)
            if trace_period < 1:
                raise ValueError(
                    f"trace_sample_period must be >= 1, got {trace_period}"
                )
        for key in changes:
            if not hasattr(cfg, key):
                raise AttributeError(f"TMPConfig has no parameter {key!r}")
        for key, value in changes.items():
            setattr(cfg, key, value)
        if trace_period is not None:
            self.set_trace_period(trace_period)
        return cfg

    def set_trace_period(self, period: int) -> None:
        """Reprogram the trace sampler's period (§VI-A rate sweep)."""
        self.profiler.trace.set_period(period)

    # -------------------------------------------------------------- reporting

    def statistics(self) -> dict:
        """Aggregate run statistics for operators."""
        prof = self.profiler
        store = prof.store
        return {
            "epochs": len(prof.reports),
            "programs": sorted(self.programs),
            "registered_pids": prof.registered_pids,
            "tracked_pids": prof.filter.tracked,
            "pages_detected_abit": store.detected_pages("abit"),
            "pages_detected_trace": store.detected_pages("trace"),
            "pages_detected_both": store.detected_pages("both"),
            "abit_scans": prof.abit.stats.scans,
            "trace_samples": prof.trace.stats.samples_collected,
            "overhead_fraction": prof.overhead_fraction(),
        }

    def numa_maps(self, pids=None) -> str:
        """The extended /proc numa_maps text for the given PIDs."""
        return format_all_numa_maps(self.profiler.machine, self.profiler.store, pids)
