"""TMP configuration.

One dataclass gathers every knob the paper exposes or sweeps: which
mechanisms are armed, the A-bit scan cadence/budget/shootdown mode
(§III-B.4), trace-sampler choice and period (§VI-A), the HWPC gating
threshold (the 20 %-of-max rule), the resource-usage process filter
(≥5 % CPU or ≥10 % memory), hotness fusion weights (§IV step 1), and
the driver cost model used for overhead accounting (§VI-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TMPConfig", "CostModel"]


@dataclass
class CostModel:
    """Per-operation driver costs (seconds) for overhead accounting.

    Calibrated to land in the paper's measured envelopes on the scaled
    testbed: A-bit walks under 1 % of application time at 1 Hz scans,
    IBS collection under 5 % at the 4x rate and under 2 % at the
    default rate.
    """

    #: Visiting one PTE during an A-bit walk (test-and-clear + callback).
    abit_per_pte_s: float = 25e-9
    #: Fixed cost of initiating one scan pass over one process.
    abit_per_scan_s: float = 10e-6
    #: TLB shootdown IPI round (only paid in shootdown mode).
    shootdown_s: float = 8e-6
    #: Copying/aggregating one trace sample out of the kernel buffer.
    trace_per_sample_s: float = 2e-6
    #: Servicing one buffer-full interrupt.
    trace_per_interrupt_s: float = 5e-6
    #: One PMU read-and-reset (a handful of MSR reads).
    pmu_read_s: float = 2e-7
    #: Re-evaluating the process filter once.
    filter_eval_s: float = 1e-6


@dataclass
class TMPConfig:
    """Tunable parameters of the TMP profiler."""

    # --- mechanism arming -------------------------------------------------
    abit_enabled: bool = True
    trace_enabled: bool = True
    #: Which trace sampler feeds the trace driver: "ibs", "pebs",
    #: or "lwp" (the per-process ring-buffer extension).
    trace_source: str = "ibs"
    #: Restrict trace hotness to memory-sourced (LLC-miss) samples, the
    #: paper's demand-load focus (§III-A).
    trace_memory_only: bool = True

    # --- A-bit driver ------------------------------------------------------
    #: Seconds between page-table scan passes.  The paper walks once per
    #: second; at one-second epochs the default of 0 ("scan at every
    #: epoch poll") is exactly that cadence.
    abit_scan_interval_s: float = 0.0
    #: Max PTEs visited per process per scan pass; bounds walk overhead
    #: for huge-footprint processes.  ``None`` scans everything.  The
    #: default is the scaled-testbed equivalent of a ~32 Ki-PTE budget
    #: on the full-size machine — the cap that makes Table IV's A-bit
    #: counts flat across the 1-120 GB HPC footprints.
    abit_scan_budget_pages: int | None = 1024
    #: When budgeted, resume the next pass where the last one stopped
    #: (cursor) instead of restarting from the table head.  The paper's
    #: flat per-workload A-bit counts indicate head-restart behaviour;
    #: the resumable mode is an extension that trades per-scan staleness
    #: for eventual full coverage.
    abit_scan_resumable: bool = False
    #: Issue a TLB shootdown after clearing A bits (paper default: no;
    #: §III-B.4 third optimization).
    abit_shootdown: bool = False

    # --- HWPC gating (first optimization, §III-B.4) -------------------------
    hwpc_gating: bool = False
    #: A mechanism stays active while its event rate exceeds this
    #: fraction of the maximum rate observed.
    gating_threshold: float = 0.2
    #: PMU events gating the trace and A-bit paths respectively.
    trace_gate_event: str = "llc_miss"
    abit_gate_event: str = "dtlb_miss"

    # --- process filter (second optimization) -------------------------------
    process_filter: bool = True
    min_cpu_share: float = 0.05
    min_mem_share: float = 0.10
    filter_interval_s: float = 1.0

    # --- hotness fusion (§IV step 1) ----------------------------------------
    #: Rank = abit_weight * A-bit samples + trace_weight * trace samples.
    #: Fig. 2 justifies 1:1 — the event populations are the same order
    #: of magnitude.
    abit_weight: float = 1.0
    trace_weight: float = 1.0

    costs: CostModel = field(default_factory=CostModel)

    def __post_init__(self):
        if self.trace_source not in ("ibs", "pebs", "lwp"):
            raise ValueError(
                "trace_source must be 'ibs', 'pebs' or 'lwp', "
                f"got {self.trace_source!r}"
            )
        if not 0.0 <= self.gating_threshold <= 1.0:
            raise ValueError(
                f"gating_threshold must be in [0, 1], got {self.gating_threshold}"
            )
        if self.abit_scan_budget_pages is not None and self.abit_scan_budget_pages < 1:
            raise ValueError("abit_scan_budget_pages must be >= 1 or None")
