"""TMP's A-bit driver: periodic page-table scans.

Mirrors §III-B.2: an ``mm_walk``-registered callback
(``gather_a_history``) visits valid PTEs, test-and-clears the accessed
bit (``TestClearPageReferenced``), and credits set bits to the page
descriptor.  Two design points the paper calls out are modeled
faithfully:

* **No TLB shootdown after clearing** (default).  Translations still
  resident in a TLB keep servicing accesses without page walks, so the
  A bit's next setting is delayed until natural eviction — cheap but
  slightly lossy.  A config flag restores the shootdown for software
  that needs precision (at IPI cost).
* **Bounded scan budget.**  Walk overhead is proportional to the number
  of PTEs traversed (Table I), so each scan pass visits at most
  ``abit_scan_budget_pages`` PTEs per process, resuming from a cursor
  on the next pass.  This keeps overhead flat for huge-footprint
  processes — and explains why a budgeted scan detects a near-constant
  page count for the 4-120 GB HPC runs in Table IV while IBS keeps
  finding more.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..memsim.machine import Machine
from ..memsim.pte import PTE_ACCESSED
from .config import TMPConfig
from .page_stats import PageStatsStore

__all__ = ["ABitDriver", "ABitScanStats"]


@dataclass
class ABitScanStats:
    """Cumulative A-bit driver counters."""

    scans: int = 0
    processes_scanned: int = 0
    ptes_visited: int = 0
    bits_found_set: int = 0
    shootdowns: int = 0
    time_s: float = 0.0


class ABitDriver:
    """Scans tracked processes' page tables for accessed bits."""

    def __init__(self, machine: Machine, config: TMPConfig, store: PageStatsStore):
        self.machine = machine
        self.config = config
        self.store = store
        self.enabled = config.abit_enabled
        self.stats = ABitScanStats()
        #: Resumable per-PID scan cursor (slot index).
        self._cursors: dict[int, int] = {}

    def scan(self, pids) -> int:
        """Run one scan pass over ``pids``; return pages found accessed.

        Each process contributes at most the configured budget of PTEs;
        the cursor wraps so successive passes cover the whole table.
        """
        if not self.enabled:
            return 0
        costs = self.config.costs
        budget = self.config.abit_scan_budget_pages
        found_total = 0
        self.stats.scans += 1
        for pid in pids:
            pt = self.machine.page_tables.get(int(pid))
            if pt is None or pt.n_pages == 0:
                continue
            self.stats.processes_scanned += 1
            self.stats.time_s += costs.abit_per_scan_s

            n = pt.n_pages
            if self.config.abit_scan_resumable:
                start = self._cursors.get(pid, 0) % n
            else:
                start = 0  # head-restart: the same bounded window each pass
            span = n if budget is None else min(budget, n)
            idx = (start + np.arange(span, dtype=np.int64)) % n
            self._cursors[pid] = (start + span) % n

            flags = pt.flags
            # gather_a_history: test-and-clear the accessed bit.
            visited = flags[idx]
            had = (visited & PTE_ACCESSED) != 0
            flags[idx] = visited & ~PTE_ACCESSED

            self.stats.ptes_visited += span
            self.stats.time_s += span * costs.abit_per_pte_s

            set_slots = idx[had]
            n_found = int(set_slots.size)
            if n_found:
                self.store.record_abit(pt.slot_to_pfn(set_slots))
                found_total += n_found
                self.stats.bits_found_set += n_found

            if self.config.abit_shootdown and n_found:
                # Precise mode: flush the cleared translations so the
                # very next access walks again (one IPI round per PID).
                vpns = pt.slot_to_vpn(set_slots)
                self.machine.tlb.shootdown_pages(
                    np.full(vpns.size, pid, dtype=np.int32), vpns
                )
                self.stats.shootdowns += 1
                self.stats.time_s += costs.shootdown_s
        return found_total

    def reset_cursors(self) -> None:
        """Restart all scan cursors from slot 0."""
        self._cursors.clear()
