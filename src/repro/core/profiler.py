"""The TMP orchestrator.

Ties the drivers together exactly as Fig. 1 sketches: the kernel-side
drivers (A-bit walker, IBS/PEBS trace collector) feed the extended page
descriptors; the HWPC monitor gates them; the user-space daemon
supplies PIDs through the resource filter; and at each epoch boundary
the profiler freezes a per-page profile and hands policies a single
hotness ranking.

Driving convention: the simulation loop calls :meth:`observe_batch`
for every executed batch (so the profiler can attribute CPU usage to
PIDs) and :meth:`end_epoch` once per epoch (≈ one simulated second).
All scheduling is in *simulated* time from ``machine.time_s``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..memsim.events import AccessBatch
from ..memsim.machine import BatchResult, Machine
from ..obs import metrics as obs_metrics
from .abit_driver import ABitDriver
from .config import TMPConfig
from .hotness import RankSource, hotness_rank
from .hwpc_monitor import GatingDecision, HWPCMonitor
from .page_stats import EpochProfile, PageStatsStore
from .process_filter import ProcessFilter, ProcessUsage
from .trace_driver import TraceDriver

__all__ = ["TMProfiler", "TMPEpochReport", "OverheadBreakdown"]


@dataclass
class OverheadBreakdown:
    """Profiling time by component (seconds of simulated CPU time)."""

    abit_s: float = 0.0
    trace_s: float = 0.0
    hwpc_s: float = 0.0
    filter_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.abit_s + self.trace_s + self.hwpc_s + self.filter_s

    def fraction_of(self, app_time_s: float) -> float:
        """Profiling overhead as a fraction of application time."""
        return self.total_s / app_time_s if app_time_s > 0 else 0.0


@dataclass
class TMPEpochReport:
    """Everything TMP produced for one finished epoch."""

    epoch: int
    profile: EpochProfile
    gating: GatingDecision | None
    tracked_pids: list[int]
    abit_pages_found: int
    trace_samples: int
    app_time_s: float
    overhead: OverheadBreakdown = field(default_factory=OverheadBreakdown)
    #: The raw trace records drained this epoch (for heatmaps and
    #: sample-level analyses; hotness aggregation already happened).
    samples: object = None

    def rank(self, source: RankSource | str = RankSource.COMBINED) -> np.ndarray:
        """The epoch's hotness ranking from the chosen source(s)."""
        return hotness_rank(self.profile, source)


class TMProfiler:
    """TMP: the tiered-memory profiler."""

    def __init__(self, machine: Machine, config: TMPConfig | None = None):
        self.machine = machine
        self.config = config or TMPConfig()
        self.store = PageStatsStore()
        self.abit = ABitDriver(machine, self.config, self.store)
        self.trace = TraceDriver(machine, self.config, self.store)
        self.hwpc = HWPCMonitor(machine, self.config)
        self.filter = ProcessFilter(self.config)
        self.reports: list[TMPEpochReport] = []

        self._registered: set[int] = set()
        #: Per-epoch op attribution as parallel sorted arrays (pid →
        #: executed ops); array-merged so observe_batch stays loop-free.
        self._epoch_pids = np.zeros(0, dtype=np.int64)
        self._epoch_ops = np.zeros(0, dtype=np.int64)
        self._last_scan_s = float("-inf")
        self._last_filter_s = float("-inf")
        self._overhead_snapshot = (0.0, 0.0, 0.0, 0.0)

    # ----------------------------------------------------------- registration

    def register_pids(self, pids) -> None:
        """Add PIDs to the daemon-supplied tracking universe."""
        self._registered.update(int(p) for p in pids)

    def register_workload(self, workload) -> None:
        """Register every process of an attached workload."""
        self.register_pids(workload.pids)

    def unregister_pids(self, pids) -> None:
        """Drop PIDs from the tracking universe (daemon removal path).

        The PIDs leave the registered set, their accumulated epoch ops
        (pending filter input), and the filter's currently tracked set,
        so neither the A-bit walker nor overhead accounting touches
        them again.  Their pages' history is retained in the store.
        """
        drop = {int(p) for p in pids}
        self._registered.difference_update(drop)
        keep = ~np.isin(self._epoch_pids, np.fromiter(drop, dtype=np.int64))
        self._epoch_pids = self._epoch_pids[keep]
        self._epoch_ops = self._epoch_ops[keep]
        self.filter.discard(drop)

    @property
    def registered_pids(self) -> list[int]:
        """All PIDs the daemon has registered (pre-filter)."""
        return sorted(self._registered)

    # ------------------------------------------------------------- observation

    def observe_batch(self, batch: AccessBatch, result: BatchResult) -> None:
        """Attribute executed ops to PIDs (feeds the resource filter).

        One vectorized sorted-array merge per batch — no Python loop
        over PIDs, so attribution cost is flat in the process count.
        """
        if batch.n == 0:
            return
        self.store.resize(self.machine.n_frames)
        pids, counts = np.unique(batch.pid, return_counts=True)
        pids = pids.astype(np.int64, copy=False)
        counts = counts.astype(np.int64, copy=False)
        if self._epoch_pids.size == 0:
            self._epoch_pids, self._epoch_ops = pids, counts
            return
        merged = np.union1d(self._epoch_pids, pids)
        ops = np.zeros(merged.size, dtype=np.int64)
        ops[np.searchsorted(merged, self._epoch_pids)] += self._epoch_ops
        ops[np.searchsorted(merged, pids)] += counts
        self._epoch_pids, self._epoch_ops = merged, ops

    def _ops_for(self, pid: int) -> int:
        """This epoch's attributed op count for one PID."""
        i = int(np.searchsorted(self._epoch_pids, pid))
        if i < self._epoch_pids.size and self._epoch_pids[i] == pid:
            return int(self._epoch_ops[i])
        return 0

    def _usage(self) -> list[ProcessUsage]:
        total_ops = int(self._epoch_ops.sum())
        total_frames = max(self.machine.n_frames, 1)
        n_cpus = self.machine.config.n_cpus
        usage = []
        for pid in sorted(self._registered):
            pt = self.machine.page_tables.get(pid)
            mem = (pt.total_frames / total_frames) if pt else 0.0
            # CPU share in single-core units (as `top` reports it): a
            # process saturating one of N cores shows 100 %, not 1/N.
            cpu = self._ops_for(pid) / total_ops * n_cpus if total_ops else 0.0
            usage.append(ProcessUsage(pid=pid, cpu_share=cpu, mem_share=mem))
        return usage

    def tick(self) -> bool:
        """Mid-epoch service point: run the A-bit scan if it is due.

        The simulation loop may slice an epoch into several machine
        batches and call ``tick`` between them; with the default scan
        interval of 0 ("scan at every service point") this yields
        graded per-epoch A-bit counts — a page re-walked between scans
        accumulates more than a page touched once — which is the
        gradation the rank fusion of §IV step 1 sums with trace
        samples.  Returns True when a scan ran.
        """
        if not self.config.abit_enabled or not self.abit.enabled:
            return False
        now = self.machine.time_s
        if now - self._last_scan_s < self.config.abit_scan_interval_s:
            return False
        self.store.resize(self.machine.n_frames)
        # Strict filter semantics, identical to end_epoch: when the
        # process filter is armed, only its tracked set is walked —
        # an empty tracked set means *no* scan coverage, never a
        # fall-back to every registered PID (which would charge
        # filtered-out processes the walk the filter exists to avoid).
        tracked = self.filter.tracked if self.config.process_filter else self.registered_pids
        self.abit.scan(tracked)
        self._last_scan_s = now
        return True

    # ------------------------------------------------------------------ epochs

    def end_epoch(self) -> TMPEpochReport:
        """Close the current epoch: gate, scan, drain, snapshot."""
        self.store.resize(self.machine.n_frames)
        now = self.machine.time_s
        cfg = self.config

        # 1. HWPC interval read + gating decisions for this boundary.
        decision: GatingDecision | None = None
        if cfg.hwpc_gating:
            decision = self.hwpc.observe_interval()
            self.abit.enabled = cfg.abit_enabled and decision.abit_active
            self.trace.enabled = cfg.trace_enabled and decision.trace_active
        else:
            self.abit.enabled = cfg.abit_enabled
            self.trace.enabled = cfg.trace_enabled

        # 2. Resource-filter re-evaluation (once per filter interval).
        if now - self._last_filter_s >= cfg.filter_interval_s:
            self.filter.evaluate(self._usage())
            self._last_filter_s = now
        tracked = self.filter.tracked if cfg.process_filter else self.registered_pids

        # 3. A-bit scan pass (once per scan interval).
        abit_found = 0
        if now - self._last_scan_s >= cfg.abit_scan_interval_s:
            abit_found = self.abit.scan(tracked)
            self._last_scan_s = now

        # 4. Drain the trace buffer.
        samples = self.trace.drain()

        # 5. Freeze the epoch profile.
        profile = self.store.end_epoch()
        report = TMPEpochReport(
            epoch=profile.epoch,
            profile=profile,
            gating=decision,
            tracked_pids=list(tracked),
            abit_pages_found=abit_found,
            trace_samples=samples.n,
            app_time_s=now,
            overhead=self._overhead_delta(),
            samples=samples,
        )
        self.reports.append(report)
        self._epoch_pids = np.zeros(0, dtype=np.int64)
        self._epoch_ops = np.zeros(0, dtype=np.int64)
        registry = obs_metrics.default_registry()
        registry.counter(
            "repro_profiler_epochs_total", "Epochs closed by TMProfiler"
        ).inc()
        overhead_total = registry.counter(
            "repro_profiler_overhead_seconds_total",
            "Simulated profiling CPU time by component",
            labelnames=("component",),
        )
        ov = report.overhead
        for component, seconds in (
            ("abit", ov.abit_s),
            ("trace", ov.trace_s),
            ("hwpc", ov.hwpc_s),
            ("filter", ov.filter_s),
        ):
            if seconds:
                overhead_total.inc(seconds, component=component)
        return report

    def _overhead_delta(self) -> OverheadBreakdown:
        prev = self._overhead_snapshot
        cur = (
            self.abit.stats.time_s,
            self.trace.stats.time_s,
            self.hwpc.time_s,
            self.filter.time_s,
        )
        self._overhead_snapshot = cur
        return OverheadBreakdown(
            abit_s=cur[0] - prev[0],
            trace_s=cur[1] - prev[1],
            hwpc_s=cur[2] - prev[2],
            filter_s=cur[3] - prev[3],
        )

    # --------------------------------------------------------------- summaries

    def total_overhead(self) -> OverheadBreakdown:
        """Whole-run profiling time by component."""
        return OverheadBreakdown(
            abit_s=self.abit.stats.time_s,
            trace_s=self.trace.stats.time_s,
            hwpc_s=self.hwpc.time_s,
            filter_s=self.filter.time_s,
        )

    def overhead_fraction(self) -> float:
        """Whole-run profiling overhead relative to application time."""
        return self.total_overhead().fraction_of(self.machine.time_s)
