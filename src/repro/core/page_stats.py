"""Per-page profile accumulation — the extended page descriptor.

The paper stores TMP's per-page counters by extending the kernel's page
descriptor (``struct page``) and reaching it via ``phys_to_page()``
(§III-B.1).  Our analogue: PFN-indexed numpy arrays, with both
*cumulative* (whole-run) and *epoch-local* accumulators per mechanism.
The epoch-local view is what policies consume (Table II's policies are
epoch-based); the cumulative view feeds the CDFs and Table IV counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..memsim.frames import GrowableArray

__all__ = ["PageStatsStore", "EpochProfile"]


@dataclass
class EpochProfile:
    """Frozen per-page profile for one finished epoch."""

    epoch: int
    #: Pages detected by the A-bit scan this epoch (count of scans that
    #: found the bit set), PFN-indexed.
    abit: np.ndarray
    #: Trace (IBS/PEBS) samples attributed to each page this epoch.
    trace: np.ndarray

    def rank(self, abit_weight: float = 1.0, trace_weight: float = 1.0) -> np.ndarray:
        """Fused hotness rank for the epoch (§IV step 1)."""
        return abit_weight * self.abit + trace_weight * self.trace

    def detected_mask(self) -> np.ndarray:
        """Pages seen by at least one mechanism this epoch."""
        return (self.abit > 0) | (self.trace > 0)


class PageStatsStore:
    """PFN-indexed accumulation of profiling observations."""

    def __init__(self):
        self._abit_total = GrowableArray(np.int64)
        self._trace_total = GrowableArray(np.int64)
        self._abit_epoch = GrowableArray(np.int64)
        self._trace_epoch = GrowableArray(np.int64)
        self._epoch = 0

    def resize(self, n_frames: int) -> None:
        """Ensure counters exist for PFNs ``[0, n_frames)``."""
        for a in (
            self._abit_total,
            self._trace_total,
            self._abit_epoch,
            self._trace_epoch,
        ):
            a.resize(n_frames)

    def __len__(self) -> int:
        return len(self._abit_total)

    # ------------------------------------------------------------- recording

    def record_abit(self, pfns: np.ndarray) -> None:
        """Credit one A-bit observation to each PFN (duplicates allowed)."""
        self._bump(pfns, self._abit_total, self._abit_epoch)

    def record_trace(self, pfns: np.ndarray, weights: np.ndarray | None = None) -> None:
        """Credit trace samples to PFNs (``weights`` defaults to 1 each)."""
        self._bump(pfns, self._trace_total, self._trace_epoch, weights)

    def _bump(self, pfns, total, epoch, weights=None) -> None:
        pfns = np.asarray(pfns)
        if pfns.size == 0:
            return
        pf = pfns.astype(np.intp, copy=False)
        n = len(total)
        if pf.max() >= n:
            self.resize(int(pf.max()) + 1)
            n = len(total)
        counts = np.bincount(pf, weights=weights, minlength=n)
        if counts.dtype != np.int64:
            counts = counts.astype(np.int64)
        total.data()[:] += counts
        epoch.data()[:] += counts

    # ----------------------------------------------------------------- views

    @property
    def abit_total(self) -> np.ndarray:
        """Cumulative A-bit detections per PFN."""
        return self._abit_total.data()

    @property
    def trace_total(self) -> np.ndarray:
        """Cumulative trace samples per PFN."""
        return self._trace_total.data()

    @property
    def abit_epoch(self) -> np.ndarray:
        """Current-epoch A-bit detections per PFN."""
        return self._abit_epoch.data()

    @property
    def trace_epoch(self) -> np.ndarray:
        """Current-epoch trace samples per PFN."""
        return self._trace_epoch.data()

    @property
    def epoch(self) -> int:
        """Index of the epoch currently accumulating."""
        return self._epoch

    def detected_pages(self, method: str = "both") -> int:
        """Cumulative count of distinct pages seen by a mechanism.

        ``method`` ∈ {"abit", "trace", "both", "either"} — "both" is
        Table IV's overlap column (pages with at least one sample from
        *each* method).
        """
        a = self.abit_total > 0
        t = self.trace_total > 0
        if method == "abit":
            mask = a
        elif method == "trace":
            mask = t
        elif method == "both":
            mask = a & t
        elif method == "either":
            mask = a | t
        else:
            raise ValueError(f"unknown method {method!r}")
        return int(np.count_nonzero(mask))

    # ---------------------------------------------------------------- epochs

    def end_epoch(self) -> EpochProfile:
        """Freeze and return this epoch's profile; start the next."""
        profile = EpochProfile(
            epoch=self._epoch,
            abit=self._abit_epoch.data().copy(),
            trace=self._trace_epoch.data().copy(),
        )
        self._abit_epoch.fill(0)
        self._trace_epoch.fill(0)
        self._epoch += 1
        return profile
