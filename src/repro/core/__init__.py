"""TMP — the tiered-memory profiler (the paper's primary contribution).

Public surface: configure a :class:`TMPConfig`, build a
:class:`TMProfiler` over a machine, register workload PIDs (directly or
through the :class:`TMPDaemon`), feed executed batches, and read
per-epoch :class:`TMPEpochReport` profiles whose hotness rankings drive
the tiered-memory policies in :mod:`repro.tiering`.
"""

from .abit_driver import ABitDriver, ABitScanStats
from .config import CostModel, TMPConfig
from .daemon import ProgramEntry, TMPDaemon
from .hotness import RankSource, hotness_rank, top_k_pages
from .hwpc_monitor import GatingDecision, HWPCMonitor
from .numa_maps import format_all_numa_maps, format_numa_maps
from .page_stats import EpochProfile, PageStatsStore
from .process_filter import ProcessFilter, ProcessUsage
from .profiler import OverheadBreakdown, TMPEpochReport, TMProfiler
from .trace_driver import TraceDriver, TraceDriverStats

__all__ = [
    "ABitDriver",
    "ABitScanStats",
    "CostModel",
    "EpochProfile",
    "GatingDecision",
    "HWPCMonitor",
    "OverheadBreakdown",
    "PageStatsStore",
    "ProcessFilter",
    "ProcessUsage",
    "ProgramEntry",
    "RankSource",
    "TMPConfig",
    "TMPDaemon",
    "TMPEpochReport",
    "TMProfiler",
    "TraceDriver",
    "TraceDriverStats",
    "format_all_numa_maps",
    "format_numa_maps",
    "hotness_rank",
    "top_k_pages",
]
