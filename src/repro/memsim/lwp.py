"""AMD Lightweight Profiling (LWP).

§II-B: LWP (an AMD64 extension on Family 15h parts) differs from IBS in
*where the data goes and when software hears about it*: the hardware
monitors events during user-mode execution and appends records to a
ring buffer **in the profiled process's own address space**; only when
the buffer fills beyond a user-specified threshold does it raise an
interrupt so the OS can signal the process to drain.  Collection is
therefore batched — large record volumes per interrupt — at the price
of per-process buffers and of the *process* (or a runtime in it) doing
the draining.

The model: per-PID op-sampling counters and ring buffers with a
threshold interrupt, sharing record format with IBS/PEBS so TMP's
vendor-agnostic trace driver can consume it as a third source.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .events import AccessBatch, SampleBatch, concat_samples

__all__ = ["LWPSampler", "LWPStats"]


@dataclass
class LWPStats:
    """Cumulative LWP counters (aggregated over processes)."""

    population: int = 0
    samples: int = 0
    threshold_interrupts: int = 0
    #: Records discarded because a ring filled completely before the
    #: process drained it (the cost of batched collection).
    dropped: int = 0

    @property
    def interrupts(self) -> int:
        """Alias so the vendor-agnostic trace driver reads all samplers
        uniformly (LWP's interrupts are the threshold signals)."""
        return self.threshold_interrupts


@dataclass
class _Ring:
    countdown: int
    pending: list[SampleBatch] = field(default_factory=list)
    pending_n: int = 0
    interrupt_raised: bool = False


class LWPSampler:
    """Per-process op sampling into per-process ring buffers.

    Parameters
    ----------
    period:
        Sample one out of every ``period`` of a process's accesses.
    buffer_records:
        Ring capacity per process; records beyond it are dropped until
        the ring is drained.
    threshold:
        Fill fraction at which the one-shot interrupt fires.
    """

    vendor = "amd"
    name = "lwp"

    def __init__(
        self,
        period: int = 64,
        buffer_records: int = 2048,
        threshold: float = 0.75,
    ):
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        if buffer_records < 1:
            raise ValueError(f"buffer_records must be >= 1, got {buffer_records}")
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.period = int(period)
        self.buffer_records = int(buffer_records)
        self.threshold = float(threshold)
        self.enabled = True
        self.stats = LWPStats()
        self._rings: dict[int, _Ring] = {}

    def set_period(self, period: int) -> None:
        """Reprogram the sampling period for all processes."""
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        self.period = int(period)
        for ring in self._rings.values():
            ring.countdown = min(ring.countdown, self.period)

    def _ring(self, pid: int) -> _Ring:
        ring = self._rings.get(pid)
        if ring is None:
            ring = _Ring(countdown=self.period)
            self._rings[pid] = ring
        return ring

    def observe(
        self,
        batch: AccessBatch,
        *,
        op_base: int,
        paddr: np.ndarray,
        tlb_hit: np.ndarray,
        data_source: np.ndarray,
    ) -> None:
        """Feed one executed batch; sampling counts per process."""
        self.stats.population += batch.n
        if not self.enabled or batch.n == 0:
            return
        for pid in np.unique(batch.pid):
            idx = np.flatnonzero(batch.pid == pid)
            ring = self._ring(int(pid))
            n = idx.size
            first = ring.countdown - 1
            if first >= n:
                ring.countdown -= n
                continue
            picks_local = np.arange(first, n, self.period, dtype=np.intp)
            ring.countdown = self.period - (n - 1 - int(picks_local[-1]))
            picks = idx[picks_local]

            room = self.buffer_records - ring.pending_n
            if picks.size > room:
                self.stats.dropped += picks.size - room
                picks = picks[:room]
            if picks.size == 0:
                continue
            ring.pending.append(
                SampleBatch(
                    op_idx=np.uint64(op_base) + picks.astype(np.uint64),
                    cpu=batch.cpu[picks],
                    pid=batch.pid[picks],
                    ip=batch.ip[picks],
                    vaddr=batch.vaddr[picks],
                    paddr=paddr[picks],
                    is_store=batch.is_store[picks],
                    tlb_hit=tlb_hit[picks],
                    data_source=data_source[picks],
                )
            )
            ring.pending_n += picks.size
            self.stats.samples += int(picks.size)
            if (
                not ring.interrupt_raised
                and ring.pending_n >= self.threshold * self.buffer_records
            ):
                ring.interrupt_raised = True
                self.stats.threshold_interrupts += 1

    def pending(self, pid: int | None = None) -> int:
        """Records awaiting drain (one process, or all)."""
        if pid is not None:
            ring = self._rings.get(pid)
            return ring.pending_n if ring else 0
        return sum(r.pending_n for r in self._rings.values())

    def drain_pid(self, pid: int) -> SampleBatch:
        """The process empties its own ring (re-arming the interrupt)."""
        ring = self._rings.get(pid)
        if ring is None:
            return SampleBatch.empty()
        out = concat_samples(ring.pending)
        ring.pending = []
        ring.pending_n = 0
        ring.interrupt_raised = False
        return out

    def drain(self) -> SampleBatch:
        """Drain every process's ring (TMP's poll)."""
        return concat_samples([self.drain_pid(pid) for pid in sorted(self._rings)])
