"""Physically indexed cache hierarchy.

Three levels (L1D / L2 / shared LLC) of line-granular caches decide
which accesses reach a memory tier.  The hierarchy's job in this
reproduction is to produce the event streams the profilers observe:

* the per-access *data source* (L1/L2/LLC/memory) recorded by IBS/PEBS
  samples,
* LLC-miss counts for the PMU (TMP's gating signal and Fig. 2's
  denominator),
* the set of accesses that actually reach memory, which defines the
  tier-1 hitrate of Fig. 6.

Caches are modeled as capacity-equivalent direct-mapped structures by
default (exactly vectorizable; see ``vecsim``), with an optional exact
set-associative LRU engine (``exact_assoc=True``) for fidelity studies.
Per-CPU private levels are engine *shards* — one dense engine per
level, so a mixed-CPU batch resolves without per-CPU Python loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .address import ADDR_DTYPE, LINE_SIZE
from .events import DataSource
from .vecsim import make_engine

__all__ = ["CacheLevel", "CacheHierarchy", "CacheLevelStats"]


@dataclass
class CacheLevelStats:
    """Cumulative per-level event counters (summed over CPUs)."""

    name: str
    lookups: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.lookups - self.hits

    @property
    def miss_rate(self) -> float:
        return self.misses / self.lookups if self.lookups else 0.0


class CacheLevel:
    """One cache level operating on physical line numbers.

    ``shards > 1`` replicates the level per CPU (private L1/L2):
    ``access(lines, shard=...)`` routes each access to its CPU's copy
    in a single vectorized call.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int = 1,
        *,
        exact_assoc: bool = False,
        reference: bool = False,
        shards: int = 1,
    ):
        lines = size_bytes // LINE_SIZE
        cap = 1 << (int(lines).bit_length() - 1)  # round down to pow2
        self._engine = make_engine(
            cap, ways, exact_assoc=exact_assoc, reference=reference, shards=shards
        )
        self.name = name
        self.capacity_lines = cap
        self.shards = shards
        self.stats = CacheLevelStats(name)

    def access(self, lines: np.ndarray, shard: np.ndarray | None = None) -> np.ndarray:
        """Resolve line accesses in order; return the hit mask."""
        hits = self._engine.access(np.asarray(lines, dtype=ADDR_DTYPE), shard=shard)
        self.stats.lookups += int(lines.size)
        self.stats.hits += int(np.count_nonzero(hits))
        return hits

    def fill(self, lines: np.ndarray, shard: np.ndarray | None = None) -> None:
        """Install lines brought up from a lower level (no hit accounting)."""
        self._engine.fill(np.asarray(lines, dtype=ADDR_DTYPE), shard=shard)

    def flush(self) -> None:
        """Invalidate the whole level (every CPU's copy)."""
        self._engine.flush()


class CacheHierarchy:
    """Private per-CPU L1/L2 caches in front of one shared LLC.

    Mirrors the Ryzen-class topology the paper runs on: each core owns
    its L1D and L2; cores share the LLC.  ``access`` classifies every
    access with its :class:`DataSource`; each level's ``access()``
    installs its misses (fill-on-miss), so a line serviced from below
    is resident at every upper level afterwards — no separate refill
    pass is needed.  Write-allocate is assumed, so loads and stores
    probe identically.
    """

    def __init__(
        self,
        l1_bytes: int = 32 * 1024,
        l2_bytes: int = 512 * 1024,
        llc_bytes: int = 32 * 1024 * 1024,
        *,
        n_cpus: int = 1,
        ways: int = 1,
        exact_assoc: bool = False,
        reference: bool = False,
    ):
        if n_cpus < 1:
            raise ValueError(f"n_cpus must be >= 1, got {n_cpus}")
        self.n_cpus = n_cpus
        kw = dict(ways=ways, exact_assoc=exact_assoc, reference=reference)
        self.l1 = CacheLevel("L1", l1_bytes, shards=n_cpus, **kw)
        self.l2 = CacheLevel("L2", l2_bytes, shards=n_cpus, **kw)
        self._llc = CacheLevel("LLC", llc_bytes, **kw)

    @property
    def llc(self) -> CacheLevel:
        """The shared last-level cache."""
        return self._llc

    @property
    def levels(self) -> list[CacheLevel]:
        """The three levels, upper first."""
        return [self.l1, self.l2, self._llc]

    def miss_counts(self) -> dict[str, int]:
        """Aggregate miss counts per level across CPUs."""
        return {
            "l1": self.l1.stats.misses,
            "l2": self.l2.stats.misses,
            "llc": self._llc.stats.misses,
        }

    def access(self, lines: np.ndarray, cpus: np.ndarray | None = None) -> np.ndarray:
        """Classify each line access with its data source.

        ``cpus`` routes each access to its core's private L1/L2 (all on
        CPU 0 when omitted).  Returns a ``uint8`` array of
        :class:`DataSource` values aligned with ``lines``;
        ``DataSource.MEMORY`` marks accesses that missed every level.
        """
        lines = np.asarray(lines, dtype=ADDR_DTYPE)
        n = lines.size
        source = np.full(n, np.uint8(DataSource.MEMORY), dtype=np.uint8)
        if n == 0:
            return source
        shard = None
        if cpus is not None and self.n_cpus > 1:
            shard = np.asarray(cpus).astype(np.intp) % self.n_cpus

        hits1 = self.l1.access(lines, shard)
        source[hits1] = np.uint8(DataSource.L1)
        rem = np.flatnonzero(~hits1)  # ascending == program order
        if rem.size:
            hits2 = self.l2.access(lines[rem], None if shard is None else shard[rem])
            source[rem[hits2]] = np.uint8(DataSource.L2)
            rem = rem[~hits2]
        if rem.size:
            hits3 = self._llc.access(lines[rem])
            source[rem[hits3]] = np.uint8(DataSource.LLC)
        return source

    def flush(self) -> None:
        """Invalidate every cache on every CPU."""
        self.l1.flush()
        self.l2.flush()
        self._llc.flush()
