"""Translation lookaside buffer model.

The TLB is the pivot of the paper's A-bit mechanics: the hardware
page-table walker only runs — and only sets PTE accessed bits — on TLB
*misses*.  When the A-bit driver clears accessed bits without a
shootdown (the paper's default, §III-B.4), translations still resident
in the TLB keep servicing accesses without walks, so the A bit stays
stale until natural eviction.  Modeling that window requires a TLB whose
state persists across profiler scan intervals, which this class
provides.

Entries are tagged ``(pid, vpn)`` (PID plays the role of the ASID), so
no flush is needed on simulated context switches and per-PID shootdowns
are possible.

Per-CPU privacy is modeled with engine *shards* rather than per-CPU
Python objects: :class:`TLBArray` owns one engine whose set space is
replicated per CPU, so a mixed-CPU batch resolves in a single
vectorized call with no per-CPU loop, while shootdowns broadcast to
every shard exactly as IPI rounds hit every core.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .address import ADDR_DTYPE
from .vecsim import make_engine

__all__ = ["TLB", "TLBArray", "TLBStats"]

_PID_SHIFT = ADDR_DTYPE(48)
_VPN_MASK = ADDR_DTYPE((1 << 48) - 1)


def _keys(pids: np.ndarray, vpns: np.ndarray) -> np.ndarray:
    """Pack (pid, vpn) pairs into single uint64 tags, vpn in low bits."""
    return (pids.astype(ADDR_DTYPE) << _PID_SHIFT) | (
        vpns.astype(ADDR_DTYPE) & _VPN_MASK
    )


def _pow2_floor(entries: int) -> int:
    """Round ``entries`` down to a power of two.

    Lets capacity-equivalent configs (e.g. the Ryzen 3600X's 64 +
    2048-entry L1/L2 dTLBs) be requested loosely.
    """
    return 1 << (int(entries).bit_length() - 1)


@dataclass
class TLBStats:
    """Cumulative TLB event counters."""

    lookups: int = 0
    hits: int = 0
    shootdowns: int = 0
    entries_invalidated: int = 0
    ipis: int = 0

    @property
    def misses(self) -> int:
        return self.lookups - self.hits

    @property
    def miss_rate(self) -> float:
        return self.misses / self.lookups if self.lookups else 0.0


class TLB:
    """A data TLB shared by all simulated cores.

    Parameters
    ----------
    entries:
        Total capacity in translations (power of two).
    ways:
        Associativity; the default direct-mapped engine is exact and
        vectorized, ``exact_assoc=True`` selects the exact vectorized
        set-associative LRU engine, and ``reference=True`` the scalar
        golden reference.
    n_cpus:
        Used only for shootdown IPI accounting (one IPI per remote CPU
        per shootdown, as on x86).
    """

    def __init__(
        self,
        entries: int = 1536,
        ways: int = 1,
        *,
        exact_assoc: bool = False,
        reference: bool = False,
        n_cpus: int = 6,
    ):
        entries = _pow2_floor(entries)
        self._engine = make_engine(
            entries, ways, exact_assoc=exact_assoc, reference=reference
        )
        self.entries = entries
        self.n_cpus = n_cpus
        self.stats = TLBStats()

    def access(self, pids: np.ndarray, vpns: np.ndarray) -> np.ndarray:
        """Look up a batch of translations in order; return hit mask.

        Misses install their translation (the walker's fill).
        """
        keys = _keys(np.asarray(pids), np.asarray(vpns))
        hits = self._engine.access(keys)
        self.stats.lookups += int(keys.size)
        self.stats.hits += int(np.count_nonzero(hits))
        return hits

    def contains(self, pids: np.ndarray, vpns: np.ndarray) -> np.ndarray:
        """Non-mutating residency probe."""
        return self._engine.contains(_keys(np.asarray(pids), np.asarray(vpns)))

    # ------------------------------------------------------------ shootdowns

    def _account_shootdown(self, invalidated: int) -> None:
        self.stats.shootdowns += 1
        self.stats.entries_invalidated += invalidated
        self.stats.ipis += self.n_cpus - 1

    def shootdown_all(self) -> None:
        """Full TLB flush on every CPU (one IPI round)."""
        n = self._engine.occupancy()
        self._engine.flush()
        self._account_shootdown(n)

    def shootdown_pid(self, pid: int) -> None:
        """Invalidate all translations belonging to ``pid``."""
        p = ADDR_DTYPE(pid)
        n = self._engine.flush_where(lambda tags: (tags >> _PID_SHIFT) == p)
        self._account_shootdown(n)

    def shootdown_pages(self, pids: np.ndarray, vpns: np.ndarray) -> None:
        """Invalidate specific translations (one IPI round for the batch).

        This models the epoch-batched shootdown the paper's page mover
        relies on: migrating many pages costs a *single* system-wide
        shootdown (§IV step 2 reason 1).
        """
        n = self._engine.flush_keys(_keys(np.asarray(pids), np.asarray(vpns)))
        self._account_shootdown(n)

    def occupancy(self) -> int:
        """Number of live translations."""
        return self._engine.occupancy()


class TLBArray:
    """Per-CPU private TLBs, as on every real multicore.

    One sharded engine holds every CPU's private set space: lookups
    carry their CPU as the shard index (one vectorized call for a
    mixed-CPU batch), and shootdowns broadcast to every shard (that is
    precisely why they cost IPIs).  Aggregate statistics are summed
    over CPUs, with shootdown rounds counted once (one IPI round
    invalidates on all CPUs).
    """

    def __init__(
        self,
        n_cpus: int = 6,
        entries: int = 1536,
        ways: int = 1,
        *,
        exact_assoc: bool = False,
        reference: bool = False,
    ):
        if n_cpus < 1:
            raise ValueError(f"n_cpus must be >= 1, got {n_cpus}")
        self.n_cpus = n_cpus
        self.entries = _pow2_floor(entries)
        self._engine = make_engine(
            self.entries,
            ways,
            exact_assoc=exact_assoc,
            reference=reference,
            shards=n_cpus,
        )
        self.stats = TLBStats()

    def _fold(self, cpus: np.ndarray) -> np.ndarray:
        return np.asarray(cpus).astype(np.intp) % self.n_cpus

    def access(
        self, pids: np.ndarray, vpns: np.ndarray, cpus: np.ndarray
    ) -> np.ndarray:
        """Route each access to its CPU's shard; return the global hit mask."""
        keys = _keys(np.asarray(pids), np.asarray(vpns))
        hits = self._engine.access(keys, shard=self._fold(cpus))
        self.stats.lookups += int(keys.size)
        self.stats.hits += int(np.count_nonzero(hits))
        return hits

    def contains(self, pids: np.ndarray, vpns: np.ndarray) -> np.ndarray:
        """True where *any* CPU's TLB holds the translation."""
        return self._engine.contains_any(_keys(np.asarray(pids), np.asarray(vpns)))

    def _account(self, invalidated: int) -> None:
        self.stats.shootdowns += 1
        self.stats.entries_invalidated += invalidated
        self.stats.ipis += self.n_cpus - 1

    def shootdown_all(self) -> None:
        """Flush every CPU's TLB (one IPI round)."""
        n = self._engine.occupancy()
        self._engine.flush()
        self._account(n)

    def shootdown_pid(self, pid: int) -> None:
        """Invalidate one PID's translations on every CPU."""
        p = ADDR_DTYPE(pid)
        n = self._engine.flush_where(lambda tags: (tags >> _PID_SHIFT) == p)
        self._account(n)

    def shootdown_pages(self, pids: np.ndarray, vpns: np.ndarray) -> None:
        """Invalidate specific translations everywhere (one IPI round)."""
        n = self._engine.flush_keys(_keys(np.asarray(pids), np.asarray(vpns)))
        self._account(n)

    def occupancy(self) -> int:
        """Live translations summed over CPUs."""
        return self._engine.occupancy()
