"""Translation lookaside buffer model.

The TLB is the pivot of the paper's A-bit mechanics: the hardware
page-table walker only runs — and only sets PTE accessed bits — on TLB
*misses*.  When the A-bit driver clears accessed bits without a
shootdown (the paper's default, §III-B.4), translations still resident
in the TLB keep servicing accesses without walks, so the A bit stays
stale until natural eviction.  Modeling that window requires a TLB whose
state persists across profiler scan intervals, which this class
provides.

Entries are tagged ``(pid, vpn)`` (PID plays the role of the ASID), so
no flush is needed on simulated context switches and per-PID shootdowns
are possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .address import ADDR_DTYPE
from .vecsim import make_engine

__all__ = ["TLB", "TLBArray", "TLBStats"]

_PID_SHIFT = ADDR_DTYPE(48)
_VPN_MASK = ADDR_DTYPE((1 << 48) - 1)


def _keys(pids: np.ndarray, vpns: np.ndarray) -> np.ndarray:
    """Pack (pid, vpn) pairs into single uint64 tags, vpn in low bits."""
    return (pids.astype(ADDR_DTYPE) << _PID_SHIFT) | (
        vpns.astype(ADDR_DTYPE) & _VPN_MASK
    )


@dataclass
class TLBStats:
    """Cumulative TLB event counters."""

    lookups: int = 0
    hits: int = 0
    shootdowns: int = 0
    entries_invalidated: int = 0
    ipis: int = 0

    @property
    def misses(self) -> int:
        return self.lookups - self.hits

    @property
    def miss_rate(self) -> float:
        return self.misses / self.lookups if self.lookups else 0.0


class TLB:
    """A data TLB shared by all simulated cores.

    Parameters
    ----------
    entries:
        Total capacity in translations (power of two).
    ways:
        Associativity; the default direct-mapped engine is exact and
        vectorized, ``exact_assoc=True`` selects the sequential
        LRU reference engine.
    n_cpus:
        Used only for shootdown IPI accounting (one IPI per remote CPU
        per shootdown, as on x86).
    """

    def __init__(
        self,
        entries: int = 1536,
        ways: int = 1,
        *,
        exact_assoc: bool = False,
        n_cpus: int = 6,
    ):
        # Round down to a power of two so capacity-equivalent configs
        # (e.g. the Ryzen 3600X's 64 + 2048-entry L1/L2 dTLBs) can be
        # requested loosely.
        cap = 1 << (int(entries).bit_length() - 1)
        if cap != entries:
            entries = cap
        self._engine = make_engine(entries, ways, exact_assoc=exact_assoc)
        self.entries = entries
        self.n_cpus = n_cpus
        self.stats = TLBStats()

    def access(self, pids: np.ndarray, vpns: np.ndarray) -> np.ndarray:
        """Look up a batch of translations in order; return hit mask.

        Misses install their translation (the walker's fill).
        """
        keys = _keys(np.asarray(pids), np.asarray(vpns))
        hits = self._engine.access(keys)
        self.stats.lookups += int(keys.size)
        self.stats.hits += int(np.count_nonzero(hits))
        return hits

    def contains(self, pids: np.ndarray, vpns: np.ndarray) -> np.ndarray:
        """Non-mutating residency probe."""
        return self._engine.contains(_keys(np.asarray(pids), np.asarray(vpns)))

    # ------------------------------------------------------------ shootdowns

    def _account_shootdown(self, invalidated: int) -> None:
        self.stats.shootdowns += 1
        self.stats.entries_invalidated += invalidated
        self.stats.ipis += self.n_cpus - 1

    def shootdown_all(self) -> None:
        """Full TLB flush on every CPU (one IPI round)."""
        n = self._engine.occupancy()
        self._engine.flush()
        self._account_shootdown(n)

    def shootdown_pid(self, pid: int) -> None:
        """Invalidate all translations belonging to ``pid``."""
        p = ADDR_DTYPE(pid)
        n = self._engine.flush_where(lambda tags: (tags >> _PID_SHIFT) == p)
        self._account_shootdown(n)

    def shootdown_pages(self, pids: np.ndarray, vpns: np.ndarray) -> None:
        """Invalidate specific translations (one IPI round for the batch).

        This models the epoch-batched shootdown the paper's page mover
        relies on: migrating many pages costs a *single* system-wide
        shootdown (§IV step 2 reason 1).
        """
        n = self._engine.flush_keys(_keys(np.asarray(pids), np.asarray(vpns)))
        self._account_shootdown(n)

    def occupancy(self) -> int:
        """Number of live translations."""
        return self._engine.occupancy()


class TLBArray:
    """Per-CPU private TLBs, as on every real multicore.

    Lookups are routed to the issuing CPU's TLB; shootdowns broadcast
    to every TLB (that is precisely why they cost IPIs).  Aggregate
    statistics are summed over CPUs, with shootdown rounds counted once
    (one IPI round invalidates on all CPUs).
    """

    def __init__(
        self,
        n_cpus: int = 6,
        entries: int = 1536,
        ways: int = 1,
        *,
        exact_assoc: bool = False,
    ):
        if n_cpus < 1:
            raise ValueError(f"n_cpus must be >= 1, got {n_cpus}")
        self.n_cpus = n_cpus
        self.cpus = [
            TLB(entries=entries, ways=ways, exact_assoc=exact_assoc, n_cpus=n_cpus)
            for _ in range(n_cpus)
        ]
        self.entries = self.cpus[0].entries
        self.stats = TLBStats()

    def access(
        self, pids: np.ndarray, vpns: np.ndarray, cpus: np.ndarray
    ) -> np.ndarray:
        """Route each access to its CPU's TLB; return the global hit mask."""
        pids = np.asarray(pids)
        vpns = np.asarray(vpns)
        folded = np.asarray(cpus) % self.n_cpus
        hits = np.empty(vpns.size, dtype=bool)
        for cpu in np.unique(folded):
            m = folded == cpu
            hits[m] = self.cpus[int(cpu)].access(pids[m], vpns[m])
        self.stats.lookups += int(vpns.size)
        self.stats.hits += int(np.count_nonzero(hits))
        return hits

    def contains(self, pids: np.ndarray, vpns: np.ndarray) -> np.ndarray:
        """True where *any* CPU's TLB holds the translation."""
        out = np.zeros(np.asarray(vpns).size, dtype=bool)
        for t in self.cpus:
            out |= t.contains(pids, vpns)
        return out

    def _account(self, invalidated: int) -> None:
        self.stats.shootdowns += 1
        self.stats.entries_invalidated += invalidated
        self.stats.ipis += self.n_cpus - 1

    def shootdown_all(self) -> None:
        """Flush every CPU's TLB (one IPI round)."""
        n = sum(t.occupancy() for t in self.cpus)
        for t in self.cpus:
            t._engine.flush()
        self._account(n)

    def shootdown_pid(self, pid: int) -> None:
        """Invalidate one PID's translations on every CPU."""
        p = ADDR_DTYPE(pid)
        n = sum(
            t._engine.flush_where(lambda tags: (tags >> _PID_SHIFT) == p)
            for t in self.cpus
        )
        self._account(n)

    def shootdown_pages(self, pids: np.ndarray, vpns: np.ndarray) -> None:
        """Invalidate specific translations everywhere (one IPI round)."""
        keys = _keys(np.asarray(pids), np.asarray(vpns))
        n = sum(t._engine.flush_keys(keys) for t in self.cpus)
        self._account(n)

    def occupancy(self) -> int:
        """Live translations summed over CPUs."""
        return sum(t.occupancy() for t in self.cpus)
