"""Lookup-structure engines shared by the TLB and cache models.

Three engines implement the same ``access`` contract:

``VectorDirectMapped``
    An *exact*, fully vectorized direct-mapped structure.  A batch of
    accesses is resolved with a single stable sort (``O(n log n)``
    numpy work, no Python loop).

``VectorSetAssoc``
    An *exact*, vectorized set-associative true-LRU structure.  State
    lives in dense ``[nsets * shards, ways]`` tag/valid/recency
    matrices; a batch is stable-sorted into per-set segments, adjacent
    same-key repeats collapse to guaranteed hits, and the surviving
    touches resolve in vectorized *rounds* (round ``r`` handles the
    ``r``-th surviving touch of every set at once, so each round
    gathers/scatters each set row at most once).  Recency is a
    monotonically increasing stamp assigned in program order, which
    reproduces true-LRU ordering exactly regardless of how the batch
    was regrouped.

``SequentialSetAssoc``
    The golden-reference set-associative LRU structure processed one
    access at a time in Python.  Property and equivalence tests
    cross-check the vectorized engines against it.

All engines are *stateful* across batches — essential for the paper's
no-shootdown A-bit semantics, where a translation that stays resident in
the TLB suppresses page-walks (and therefore A-bit re-sets) across scan
intervals.

Keys are ``uint64`` identities (e.g. ``pid << 48 | vpn`` for a TLB,
physical line number for a cache).  The set index is taken from the low
bits of the key, so callers should place the locality-carrying bits
(vpn / line number) at the bottom.

Sharding: passing ``shards=k`` gives an engine ``k`` independent
replicas of its set space inside the same dense arrays — the model for
per-CPU private TLBs/L1/L2.  ``access``/``fill``/``contains`` take an
optional per-access ``shard`` array routing each access to its
replica; ``flush_keys``/``flush_where``/``flush`` act on *every* shard
at once (shootdowns broadcast to all CPUs — that is precisely why they
cost IPIs).  Because a key can only ever reside in its own set of its
own shard, sharded processing is bit-identical to running ``k``
separate engines.
"""

from __future__ import annotations

import numpy as np

from .address import ADDR_DTYPE, is_pow2

__all__ = [
    "VectorDirectMapped",
    "VectorSetAssoc",
    "SequentialSetAssoc",
    "make_engine",
]


def _argsort_rows(rows: np.ndarray, nrows: int) -> np.ndarray:
    """Stable argsort of small-range row indices.

    numpy's stable sort is a radix sort for integers, and its cost
    scales with the key width — row indices fit 16 bits for every
    realistic geometry, which sorts ~5x faster than the intp default.
    """
    if nrows <= (1 << 16):
        return np.argsort(rows.astype(np.uint16), kind="stable")
    return np.argsort(rows, kind="stable")


#: Composite-priority constants for LRU victim selection: a matching
#: way always beats a free way, a free way always beats eviction, and
#: ties fall back to the smallest recency stamp.  Stamps stay far below
#: 2**60, so the bands can never collide.
_PRIO_HIT = np.int64(1) << np.int64(62)
_PRIO_FREE = np.int64(1) << np.int64(61)

#: Below this many live segments, a vector round's fixed cost (~15 µs of
#: numpy dispatch) exceeds scalar per-touch replay, so the rounds loop
#: hands the stragglers to ``_replay_segments``.
_SCALAR_CUTOVER = 64


class VectorDirectMapped:
    """Exact direct-mapped lookup structure with vectorized batch access.

    Parameters
    ----------
    nsets:
        Number of sets (must be a power of two); equals per-shard
        capacity in entries since the structure is direct-mapped.
    shards:
        Number of independent replicas sharing the dense arrays (one
        per CPU for private structures).
    """

    ways = 1

    def __init__(self, nsets: int, shards: int = 1):
        if not is_pow2(nsets):
            raise ValueError(f"nsets must be a power of two, got {nsets}")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.nsets = nsets
        self.shards = shards
        self._mask = ADDR_DTYPE(nsets - 1)
        self._tags = np.zeros(nsets * shards, dtype=ADDR_DTYPE)
        self._valid = np.zeros(nsets * shards, dtype=bool)

    @property
    def capacity(self) -> int:
        """Number of entries one shard can hold."""
        return self.nsets

    def _rows(self, keys: np.ndarray, shard) -> np.ndarray:
        rows = (keys & self._mask).astype(np.intp)
        if shard is not None and self.shards > 1:
            rows += np.asarray(shard, dtype=np.intp) * self.nsets
        return rows

    def flush(self) -> None:
        """Invalidate every entry on every shard (full shootdown)."""
        self._valid[:] = False

    def flush_where(self, predicate) -> int:
        """Invalidate entries (all shards) whose tag satisfies ``predicate``.

        ``predicate`` maps an array of tags to a boolean mask.  Returns
        the number of entries invalidated.  Used for per-PID and
        per-page shootdowns.
        """
        doomed = self._valid & predicate(self._tags)
        n = int(np.count_nonzero(doomed))
        self._valid[doomed] = False
        return n

    def flush_keys(self, keys: np.ndarray) -> int:
        """Invalidate entries matching any of ``keys`` on every shard.

        A key can only reside in its own set, so one membership test
        over the resident tags is exact.
        """
        keys = np.asarray(keys, dtype=ADDR_DTYPE)
        if keys.size == 0:
            return 0
        doomed = self._valid & np.isin(self._tags, keys)
        n = int(np.count_nonzero(doomed))
        self._valid[doomed] = False
        return n

    def contains(self, keys: np.ndarray, shard=None) -> np.ndarray:
        """Non-mutating membership probe for ``keys`` on their shard."""
        keys = np.asarray(keys, dtype=ADDR_DTYPE)
        rows = self._rows(keys, shard)
        return self._valid[rows] & (self._tags[rows] == keys)

    def contains_any(self, keys: np.ndarray) -> np.ndarray:
        """Non-mutating probe: resident on *any* shard?"""
        keys = np.asarray(keys, dtype=ADDR_DTYPE)
        return np.isin(keys, self._tags[self._valid])

    def access(self, keys: np.ndarray, shard=None) -> np.ndarray:
        """Resolve a batch of accesses in order; return the hit mask.

        Each miss installs its key, evicting the set's previous
        occupant, exactly as a sequential direct-mapped structure
        would.  The final resident state after the batch matches the
        sequential semantics as well.
        """
        keys = np.ascontiguousarray(keys, dtype=ADDR_DTYPE)
        n = keys.size
        if n == 0:
            return np.zeros(0, dtype=bool)

        rows = self._rows(keys, shard)
        # Stable sort groups accesses by set while preserving program
        # order within each set.
        order = _argsort_rows(rows, self.nsets * self.shards)
        s_rows = rows[order]
        s_keys = keys[order]

        run_start = np.empty(n, dtype=bool)
        run_start[0] = True
        np.not_equal(s_rows[1:], s_rows[:-1], out=run_start[1:])

        hit_sorted = np.empty(n, dtype=bool)
        # Within a run: hit iff the immediately preceding access to the
        # same set used the same key (direct-mapped ⇒ single occupant).
        hit_sorted[1:] = (~run_start[1:]) & (s_keys[1:] == s_keys[:-1])
        hit_sorted[0] = False
        # First access of each run consults the carried-in state.
        first_idx = np.flatnonzero(run_start)
        fs = s_rows[first_idx]
        hit_sorted[first_idx] = self._valid[fs] & (self._tags[fs] == s_keys[first_idx])

        # Carry-out: the last access of each run is the set's new occupant.
        last_idx = np.empty(first_idx.size, dtype=np.intp)
        last_idx[:-1] = first_idx[1:] - 1
        last_idx[-1] = n - 1
        ls = s_rows[last_idx]
        self._tags[ls] = s_keys[last_idx]
        self._valid[ls] = True

        hits = np.empty(n, dtype=bool)
        hits[order] = hit_sorted
        return hits

    def fill(self, keys: np.ndarray, shard=None) -> None:
        """Install ``keys`` without hit/miss semantics (refill path).

        When the same set appears multiple times, the latest key in
        batch order wins — matching sequential fill order.
        """
        keys = np.asarray(keys, dtype=ADDR_DTYPE)
        if keys.size == 0:
            return
        rows = self._rows(keys, shard)
        # Keep only the last occurrence of each set.
        _, last = np.unique(rows[::-1], return_index=True)
        pick = keys.size - 1 - last
        self._tags[rows[pick]] = keys[pick]
        self._valid[rows[pick]] = True

    def occupancy(self) -> int:
        """Number of currently valid entries (all shards)."""
        return int(np.count_nonzero(self._valid))


class VectorSetAssoc:
    """Exact set-associative true-LRU structure, vectorized over batches.

    State is three dense ``[nsets * shards, ways]`` matrices: tags,
    valid bits, and a per-entry recency *stamp*.  Stamps are assigned
    from a monotonically increasing clock in program order, so "way
    with the smallest stamp" is exactly the LRU way no matter how the
    batch was regrouped for vectorization.

    Batch resolution (:meth:`access` / :meth:`fill`):

    1. stable-sort the batch by set row (program order preserved
       within each set);
    2. collapse adjacent same-key repeats inside a set — after the
       first touch the key is resident, so repeats are guaranteed hits
       and only move the entry's stamp forward;
    3. resolve the surviving touches in rounds: round ``r`` handles
       the ``r``-th surviving touch of every set simultaneously.  Each
       round touches each set row at most once, so the gather /
       compare / scatter is plain numpy with no write conflicts.

    The round count equals the longest per-set *alternation* sequence
    in the batch, which is short for realistic streams (hot keys
    collapse in step 2); adversarial alternating traces degrade to one
    tiny vector op per access but stay exact.
    """

    def __init__(self, nsets: int, ways: int, shards: int = 1):
        if not is_pow2(nsets):
            raise ValueError(f"nsets must be a power of two, got {nsets}")
        if ways < 1:
            raise ValueError(f"ways must be >= 1, got {ways}")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.nsets = nsets
        self.ways = ways
        self.shards = shards
        self._mask = ADDR_DTYPE(nsets - 1)
        rows = nsets * shards
        self._tags = np.zeros((rows, ways), dtype=ADDR_DTYPE)
        self._valid = np.zeros((rows, ways), dtype=bool)
        self._stamp = np.zeros((rows, ways), dtype=np.int64)
        self._clock = 1

    @property
    def capacity(self) -> int:
        """Number of entries one shard can hold."""
        return self.nsets * self.ways

    def _rows(self, keys: np.ndarray, shard) -> np.ndarray:
        rows = (keys & self._mask).astype(np.intp)
        if shard is not None and self.shards > 1:
            rows += np.asarray(shard, dtype=np.intp) * self.nsets
        return rows

    # -------------------------------------------------------------- mutation

    def access(self, keys: np.ndarray, shard=None) -> np.ndarray:
        """Resolve a batch of accesses in order; return the hit mask."""
        keys = np.ascontiguousarray(keys, dtype=ADDR_DTYPE)
        n = keys.size
        if n == 0:
            return np.zeros(0, dtype=bool)
        hits = np.empty(n, dtype=bool)
        self._resolve(keys, self._rows(keys, shard), hits)
        return hits

    def fill(self, keys: np.ndarray, shard=None) -> None:
        """Install ``keys`` without hit/miss accounting (refill path)."""
        keys = np.ascontiguousarray(keys, dtype=ADDR_DTYPE)
        if keys.size == 0:
            return
        self._resolve(keys, self._rows(keys, shard), np.empty(keys.size, dtype=bool))

    def _resolve(self, keys: np.ndarray, rows: np.ndarray, hits: np.ndarray) -> None:
        n = keys.size
        order = _argsort_rows(rows, self.nsets * self.shards)
        s_rows = rows[order]
        s_keys = keys[order]
        # Program-order recency stamps; the clock advances per batch so
        # stamps stay unique and monotonic across the engine lifetime.
        s_stamp = self._clock + order
        self._clock += n

        # Adjacent same-key repeats inside a set are guaranteed hits …
        keep = np.empty(n, dtype=bool)
        keep[0] = True
        np.logical_or(
            s_rows[1:] != s_rows[:-1], s_keys[1:] != s_keys[:-1], out=keep[1:]
        )
        hit_sorted = np.empty(n, dtype=bool)
        hit_sorted[~keep] = True
        kidx = np.flatnonzero(keep)
        m = kidx.size
        # … and the surviving touch carries the run's *last* stamp, so
        # the collapsed stream leaves identical recency state.
        run_end = np.empty(m, dtype=np.intp)
        run_end[:-1] = kidx[1:] - 1
        run_end[-1] = n - 1
        c_rows = s_rows[kidx]
        c_keys = s_keys[kidx]
        c_stamp = s_stamp[run_end]

        seg_start = np.empty(m, dtype=bool)
        seg_start[0] = True
        np.not_equal(c_rows[1:], c_rows[:-1], out=seg_start[1:])
        first = np.flatnonzero(seg_start)
        seg_len = np.diff(np.append(first, m))
        c_hits = np.empty(m, dtype=bool)
        # Rounds: the r-th surviving touch of every set resolves
        # together; rows within a round are distinct, so fancy-indexed
        # scatters are conflict-free.  Once too few segments stay live
        # to amortize a round's fixed numpy cost, the stragglers finish
        # on the scalar tail instead (heavily aliased streams would
        # otherwise degrade to one tiny vector op per access).
        act = first
        for r in range(int(seg_len.max())):
            if r:
                live = seg_len > r
                act = first[live] + r
                if act.size < _SCALAR_CUTOVER:
                    self._replay_segments(
                        first[live], seg_len[live], r, c_rows, c_keys, c_stamp, c_hits
                    )
                    break
            c_hits[act] = self._touch_rows(c_rows[act], c_keys[act], c_stamp[act])
        hit_sorted[kidx] = c_hits
        hits[order] = hit_sorted

    def _replay_segments(
        self,
        starts: np.ndarray,
        lens: np.ndarray,
        r: int,
        c_rows: np.ndarray,
        c_keys: np.ndarray,
        c_stamp: np.ndarray,
        c_hits: np.ndarray,
    ) -> None:
        """Scalar tail: finish the few segments that outlive the rounds.

        Each surviving segment is one set row touched many times; its
        remaining touches (from round ``r`` on) replay sequentially on
        plain Python lists — the same per-touch cost as the reference
        engine, without the per-round numpy overhead.  Victim selection
        mirrors :meth:`_touch_rows` (free way with the stalest stamp,
        else true LRU).
        """
        W = self.ways
        for s0, sl in zip(starts.tolist(), lens.tolist()):
            row = int(c_rows[s0])
            tags = self._tags[row].tolist()
            valid = self._valid[row].tolist()
            stamp = self._stamp[row].tolist()
            seg_hits = []
            for k, st in zip(
                c_keys[s0 + r : s0 + sl].tolist(),
                c_stamp[s0 + r : s0 + sl].tolist(),
            ):
                w = -1
                for j in range(W):
                    if valid[j] and tags[j] == k:
                        w = j
                        break
                if w >= 0:
                    seg_hits.append(True)
                else:
                    seg_hits.append(False)
                    for j in range(W):
                        if not valid[j] and (w < 0 or stamp[j] < stamp[w]):
                            w = j
                    if w < 0:
                        w = 0
                        for j in range(1, W):
                            if stamp[j] < stamp[w]:
                                w = j
                    tags[w] = k
                    valid[w] = True
                stamp[w] = st
            c_hits[s0 + r : s0 + sl] = seg_hits
            self._tags[row] = tags
            self._valid[row] = valid
            self._stamp[row] = stamp

    def _touch_rows(
        self, rows: np.ndarray, keys: np.ndarray, stamps: np.ndarray
    ) -> np.ndarray:
        """One access per (distinct) row: hit → touch, miss → install."""
        tags = self._tags[rows]
        valid = self._valid[rows]
        match = valid & (tags == keys[:, None])
        # One argmax over banded priorities picks the way: the matched
        # way on hits, any invalid way while the set still has room,
        # else the true-LRU (min-stamp) way.
        prio = match * _PRIO_HIT + ~valid * _PRIO_FREE - self._stamp[rows]
        way = prio.argmax(axis=1)
        hit = match.any(axis=1)
        self._tags[rows, way] = keys
        self._valid[rows, way] = True
        self._stamp[rows, way] = stamps
        return hit

    # ---------------------------------------------------------------- probes

    def contains(self, keys: np.ndarray, shard=None) -> np.ndarray:
        """Non-mutating membership probe for ``keys`` on their shard."""
        keys = np.asarray(keys, dtype=ADDR_DTYPE)
        rows = self._rows(keys, shard)
        return (self._valid[rows] & (self._tags[rows] == keys[:, None])).any(axis=1)

    def contains_any(self, keys: np.ndarray) -> np.ndarray:
        """Non-mutating probe: resident on *any* shard?"""
        keys = np.asarray(keys, dtype=ADDR_DTYPE)
        return np.isin(keys, self._tags[self._valid])

    # ------------------------------------------------------------ shootdowns

    def flush(self) -> None:
        """Invalidate every entry on every shard (full shootdown)."""
        self._valid[:] = False

    def flush_where(self, predicate) -> int:
        """Invalidate entries (all shards) whose tag satisfies ``predicate``."""
        doomed = self._valid & predicate(self._tags)
        n = int(np.count_nonzero(doomed))
        self._valid[doomed] = False
        return n

    def flush_keys(self, keys: np.ndarray) -> int:
        """Invalidate entries matching any of ``keys`` on every shard."""
        keys = np.asarray(keys, dtype=ADDR_DTYPE)
        if keys.size == 0:
            return 0
        doomed = self._valid & np.isin(self._tags, keys)
        n = int(np.count_nonzero(doomed))
        self._valid[doomed] = False
        return n

    def occupancy(self) -> int:
        """Number of currently valid entries (all shards)."""
        return int(np.count_nonzero(self._valid))


class SequentialSetAssoc:
    """Reference set-associative structure with true-LRU replacement.

    Processed one access at a time in Python; the golden reference the
    vectorized engines are cross-checked against.  ``ways=1``
    reproduces ``VectorDirectMapped`` exactly; any ``ways`` reproduces
    ``VectorSetAssoc``.
    """

    def __init__(self, nsets: int, ways: int, shards: int = 1):
        if not is_pow2(nsets):
            raise ValueError(f"nsets must be a power of two, got {nsets}")
        if ways < 1:
            raise ValueError(f"ways must be >= 1, got {ways}")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.nsets = nsets
        self.ways = ways
        self.shards = shards
        self._mask = nsets - 1
        # Each set is a list of keys ordered MRU-first.
        self._sets: list[list[int]] = [[] for _ in range(nsets * shards)]

    @property
    def capacity(self) -> int:
        """Number of entries one shard can hold."""
        return self.nsets * self.ways

    def _resident_keys(self) -> np.ndarray:
        """All resident keys, concatenated in set order."""
        total = sum(len(s) for s in self._sets)
        return np.fromiter(
            (k for s in self._sets for k in s), dtype=ADDR_DTYPE, count=total
        )

    def flush(self) -> None:
        """Invalidate every entry on every shard (full shootdown)."""
        for s in self._sets:
            s.clear()

    def flush_where(self, predicate) -> int:
        """Invalidate entries (all shards) whose tag satisfies ``predicate``."""
        n = 0
        for i, s in enumerate(self._sets):
            if not s:
                continue
            keep_mask = ~predicate(np.asarray(s, dtype=ADDR_DTYPE))
            kept = [k for k, keep in zip(s, keep_mask) if keep]
            n += len(s) - len(kept)
            self._sets[i] = kept
        return n

    def flush_keys(self, keys: np.ndarray) -> int:
        """Invalidate entries matching any of ``keys`` on every shard.

        One ``np.isin`` over the materialized resident keys replaces
        the old per-element Python set lookups; only sets that actually
        hold a doomed entry are rebuilt.
        """
        keys = np.asarray(keys, dtype=ADDR_DTYPE)
        if keys.size == 0:
            return 0
        resident = self._resident_keys()
        if resident.size == 0:
            return 0
        doomed = np.isin(resident, keys)
        n = int(np.count_nonzero(doomed))
        if n == 0:
            return 0
        lens = np.fromiter((len(s) for s in self._sets), dtype=np.intp)
        offsets = np.concatenate([[0], np.cumsum(lens)])
        set_ids = np.repeat(np.arange(lens.size), lens)
        for i in np.unique(set_ids[doomed]):
            d = doomed[offsets[i] : offsets[i + 1]]
            s = self._sets[i]
            self._sets[i] = [k for k, dead in zip(s, d) if not dead]
        return n

    def contains(self, keys: np.ndarray, shard=None) -> np.ndarray:
        """Non-mutating membership probe for ``keys`` on their shard.

        A key only ever resides in its own set (and, with ``shard``
        given, its own shard), so a vectorized membership test over the
        materialized resident keys is exact for unsharded engines; the
        sharded probe falls back to per-set lookups.
        """
        keys = np.asarray(keys, dtype=ADDR_DTYPE)
        if self.shards == 1 or shard is None:
            return np.isin(keys, self._resident_keys())
        shard = np.asarray(shard, dtype=np.intp)
        out = np.zeros(keys.size, dtype=bool)
        for i, k in enumerate(keys):
            row = (int(k) & self._mask) + int(shard[i]) * self.nsets
            out[i] = int(k) in self._sets[row]
        return out

    def contains_any(self, keys: np.ndarray) -> np.ndarray:
        """Non-mutating probe: resident on *any* shard?"""
        keys = np.asarray(keys, dtype=ADDR_DTYPE)
        return np.isin(keys, self._resident_keys())

    def access_one(self, key: int, shard: int = 0) -> bool:
        """Resolve a single access; return True on hit."""
        key = int(key)
        s = self._sets[(key & self._mask) + int(shard) * self.nsets]
        try:
            s.remove(key)
            hit = True
        except ValueError:
            hit = False
            if len(s) >= self.ways:
                s.pop()  # evict LRU (tail)
        s.insert(0, key)
        return hit

    def access(self, keys: np.ndarray, shard=None) -> np.ndarray:
        """Resolve a batch of accesses in order; return the hit mask."""
        keys = np.asarray(keys, dtype=ADDR_DTYPE)
        out = np.empty(keys.size, dtype=bool)
        access_one = self.access_one
        if shard is None:
            for i, k in enumerate(keys):
                out[i] = access_one(k)
        else:
            shard = np.asarray(shard, dtype=np.intp)
            for i, k in enumerate(keys):
                out[i] = access_one(k, shard[i])
        return out

    def fill(self, keys: np.ndarray, shard=None) -> None:
        """Install ``keys`` without hit/miss accounting (refill path)."""
        keys = np.asarray(keys, dtype=ADDR_DTYPE)
        shard = None if shard is None else np.asarray(shard, dtype=np.intp)
        for i, k in enumerate(keys):
            key = int(k)
            row = key & self._mask
            if shard is not None:
                row += int(shard[i]) * self.nsets
            s = self._sets[row]
            if key in s:
                s.remove(key)
            elif len(s) >= self.ways:
                s.pop()
            s.insert(0, key)

    def occupancy(self) -> int:
        """Number of currently valid entries (all shards)."""
        return sum(len(s) for s in self._sets)


def make_engine(
    capacity_entries: int,
    ways: int = 1,
    *,
    exact_assoc: bool = False,
    reference: bool = False,
    shards: int = 1,
):
    """Build a lookup engine of ``capacity_entries`` entries per shard.

    By default a capacity-equivalent :class:`VectorDirectMapped` engine
    is returned.  ``exact_assoc=True`` selects the exact vectorized
    set-associative engine (:class:`VectorSetAssoc`) with the requested
    associativity.  ``reference=True`` returns the sequential golden
    reference (:class:`SequentialSetAssoc`) with the same geometry the
    corresponding vectorized engine would have — the scalar arm of the
    equivalence suite and benchmarks.
    """
    if not is_pow2(capacity_entries):
        raise ValueError(f"capacity must be a power of two, got {capacity_entries}")
    if exact_assoc:
        if capacity_entries % ways:
            raise ValueError("capacity must be divisible by ways")
        nsets = capacity_entries // ways
        if not is_pow2(nsets):
            raise ValueError("capacity/ways must be a power of two")
        if reference:
            return SequentialSetAssoc(nsets, ways, shards)
        return VectorSetAssoc(nsets, ways, shards)
    if reference:
        return SequentialSetAssoc(capacity_entries, 1, shards)
    return VectorDirectMapped(capacity_entries, shards)
