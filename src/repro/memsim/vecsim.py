"""Lookup-structure engines shared by the TLB and cache models.

Two engines implement the same ``access`` contract:

``VectorDirectMapped``
    An *exact*, fully vectorized direct-mapped structure.  Hot paths in
    the benchmarks use this engine: a batch of accesses is resolved with
    a single stable sort (``O(n log n)`` numpy work, no Python loop).

``SequentialSetAssoc``
    A reference set-associative LRU structure processed one access at a
    time.  With ``ways=1`` it is semantically identical to
    ``VectorDirectMapped``; property tests cross-check the two.

Both engines are *stateful* across batches — essential for the paper's
no-shootdown A-bit semantics, where a translation that stays resident in
the TLB suppresses page-walks (and therefore A-bit re-sets) across scan
intervals.

Keys are ``uint64`` identities (e.g. ``pid << 48 | vpn`` for a TLB,
physical line number for a cache).  The set index is taken from the low
bits of the key, so callers should place the locality-carrying bits
(vpn / line number) at the bottom.
"""

from __future__ import annotations

import numpy as np

from .address import ADDR_DTYPE, is_pow2

__all__ = ["VectorDirectMapped", "SequentialSetAssoc", "make_engine"]


class VectorDirectMapped:
    """Exact direct-mapped lookup structure with vectorized batch access.

    Parameters
    ----------
    nsets:
        Number of sets (must be a power of two); equals total capacity
        in entries since the structure is direct-mapped.
    """

    ways = 1

    def __init__(self, nsets: int):
        if not is_pow2(nsets):
            raise ValueError(f"nsets must be a power of two, got {nsets}")
        self.nsets = nsets
        self._mask = ADDR_DTYPE(nsets - 1)
        self._tags = np.zeros(nsets, dtype=ADDR_DTYPE)
        self._valid = np.zeros(nsets, dtype=bool)

    @property
    def capacity(self) -> int:
        """Total number of entries the structure can hold."""
        return self.nsets

    def flush(self) -> None:
        """Invalidate every entry (full shootdown)."""
        self._valid[:] = False

    def flush_where(self, predicate) -> int:
        """Invalidate entries whose tag satisfies ``predicate``.

        ``predicate`` maps an array of tags to a boolean mask.  Returns
        the number of entries invalidated.  Used for per-PID and
        per-page shootdowns.
        """
        doomed = self._valid & predicate(self._tags)
        n = int(np.count_nonzero(doomed))
        self._valid[doomed] = False
        return n

    def flush_keys(self, keys: np.ndarray) -> int:
        """Invalidate entries matching any of ``keys`` exactly."""
        keys = np.asarray(keys, dtype=ADDR_DTYPE)
        if keys.size == 0:
            return 0
        sets = (keys & self._mask).astype(np.intp)
        doomed = self._valid[sets] & (self._tags[sets] == keys)
        idx = sets[doomed]
        n = int(np.unique(idx).size)
        self._valid[idx] = False
        return n

    def contains(self, keys: np.ndarray) -> np.ndarray:
        """Non-mutating membership probe for ``keys``."""
        keys = np.asarray(keys, dtype=ADDR_DTYPE)
        sets = (keys & self._mask).astype(np.intp)
        return self._valid[sets] & (self._tags[sets] == keys)

    def access(self, keys: np.ndarray) -> np.ndarray:
        """Resolve a batch of accesses in order; return the hit mask.

        Each miss installs its key, evicting the set's previous
        occupant, exactly as a sequential direct-mapped structure
        would.  The final resident state after the batch matches the
        sequential semantics as well.
        """
        keys = np.ascontiguousarray(keys, dtype=ADDR_DTYPE)
        n = keys.size
        if n == 0:
            return np.zeros(0, dtype=bool)

        sets = (keys & self._mask).astype(np.intp)
        # Stable sort groups accesses by set while preserving program
        # order within each set.
        order = np.argsort(sets, kind="stable")
        s_sets = sets[order]
        s_keys = keys[order]

        run_start = np.empty(n, dtype=bool)
        run_start[0] = True
        np.not_equal(s_sets[1:], s_sets[:-1], out=run_start[1:])

        hit_sorted = np.empty(n, dtype=bool)
        # Within a run: hit iff the immediately preceding access to the
        # same set used the same key (direct-mapped ⇒ single occupant).
        hit_sorted[1:] = (~run_start[1:]) & (s_keys[1:] == s_keys[:-1])
        hit_sorted[0] = False
        # First access of each run consults the carried-in state.
        first_idx = np.flatnonzero(run_start)
        fs = s_sets[first_idx]
        hit_sorted[first_idx] = self._valid[fs] & (self._tags[fs] == s_keys[first_idx])

        # Carry-out: the last access of each run is the set's new occupant.
        last_idx = np.empty(first_idx.size, dtype=np.intp)
        last_idx[:-1] = first_idx[1:] - 1
        last_idx[-1] = n - 1
        ls = s_sets[last_idx]
        self._tags[ls] = s_keys[last_idx]
        self._valid[ls] = True

        hits = np.empty(n, dtype=bool)
        hits[order] = hit_sorted
        return hits

    def fill(self, keys: np.ndarray) -> None:
        """Install ``keys`` without hit/miss semantics (refill path).

        When the same set appears multiple times, the latest key in
        batch order wins — matching sequential fill order.
        """
        keys = np.asarray(keys, dtype=ADDR_DTYPE)
        if keys.size == 0:
            return
        sets = (keys & self._mask).astype(np.intp)
        # Keep only the last occurrence of each set.
        _, last = np.unique(sets[::-1], return_index=True)
        pick = keys.size - 1 - last
        self._tags[sets[pick]] = keys[pick]
        self._valid[sets[pick]] = True

    def occupancy(self) -> int:
        """Number of currently valid entries."""
        return int(np.count_nonzero(self._valid))


class SequentialSetAssoc:
    """Reference set-associative structure with true-LRU replacement.

    Processed one access at a time in Python; use for unit tests,
    fidelity studies, and small traces.  ``ways=1`` reproduces
    ``VectorDirectMapped`` exactly.
    """

    def __init__(self, nsets: int, ways: int):
        if not is_pow2(nsets):
            raise ValueError(f"nsets must be a power of two, got {nsets}")
        if ways < 1:
            raise ValueError(f"ways must be >= 1, got {ways}")
        self.nsets = nsets
        self.ways = ways
        self._mask = nsets - 1
        # Each set is a list of keys ordered MRU-first.
        self._sets: list[list[int]] = [[] for _ in range(nsets)]

    @property
    def capacity(self) -> int:
        """Total number of entries the structure can hold."""
        return self.nsets * self.ways

    def flush(self) -> None:
        """Invalidate every entry (full shootdown)."""
        for s in self._sets:
            s.clear()

    def flush_where(self, predicate) -> int:
        """Invalidate entries whose tag satisfies ``predicate``."""
        n = 0
        for i, s in enumerate(self._sets):
            if not s:
                continue
            keep_mask = ~predicate(np.asarray(s, dtype=ADDR_DTYPE))
            kept = [k for k, keep in zip(s, keep_mask) if keep]
            n += len(s) - len(kept)
            self._sets[i] = kept
        return n

    def flush_keys(self, keys: np.ndarray) -> int:
        """Invalidate entries matching any of ``keys`` exactly."""
        doomed = {int(k) for k in np.asarray(keys, dtype=ADDR_DTYPE)}
        n = 0
        for i, s in enumerate(self._sets):
            kept = [k for k in s if k not in doomed]
            n += len(s) - len(kept)
            self._sets[i] = kept
        return n

    def contains(self, keys: np.ndarray) -> np.ndarray:
        """Non-mutating membership probe for ``keys``."""
        keys = np.asarray(keys, dtype=ADDR_DTYPE)
        out = np.zeros(keys.size, dtype=bool)
        for i, k in enumerate(keys):
            out[i] = int(k) in self._sets[int(k) & self._mask]
        return out

    def access_one(self, key: int) -> bool:
        """Resolve a single access; return True on hit."""
        key = int(key)
        s = self._sets[key & self._mask]
        try:
            s.remove(key)
            hit = True
        except ValueError:
            hit = False
            if len(s) >= self.ways:
                s.pop()  # evict LRU (tail)
        s.insert(0, key)
        return hit

    def access(self, keys: np.ndarray) -> np.ndarray:
        """Resolve a batch of accesses in order; return the hit mask."""
        keys = np.asarray(keys, dtype=ADDR_DTYPE)
        out = np.empty(keys.size, dtype=bool)
        access_one = self.access_one
        for i, k in enumerate(keys):
            out[i] = access_one(k)
        return out

    def fill(self, keys: np.ndarray) -> None:
        """Install ``keys`` without hit/miss accounting (refill path)."""
        for k in np.asarray(keys, dtype=ADDR_DTYPE):
            key = int(k)
            s = self._sets[key & self._mask]
            if key in s:
                s.remove(key)
            elif len(s) >= self.ways:
                s.pop()
            s.insert(0, key)

    def occupancy(self) -> int:
        """Number of currently valid entries."""
        return sum(len(s) for s in self._sets)


def make_engine(capacity_entries: int, ways: int = 1, *, exact_assoc: bool = False):
    """Build a lookup engine of roughly ``capacity_entries`` entries.

    By default a capacity-equivalent :class:`VectorDirectMapped` engine
    is returned (the benchmarks' fast path).  Pass ``exact_assoc=True``
    to get a :class:`SequentialSetAssoc` with the requested
    associativity instead.
    """
    if not is_pow2(capacity_entries):
        raise ValueError(f"capacity must be a power of two, got {capacity_entries}")
    if exact_assoc:
        if capacity_entries % ways:
            raise ValueError("capacity must be divisible by ways")
        nsets = capacity_entries // ways
        if not is_pow2(nsets):
            raise ValueError("capacity/ways must be a power of two")
        return SequentialSetAssoc(nsets, ways)
    return VectorDirectMapped(capacity_entries)
