"""Per-process page tables with VMA-backed vectorized translation.

Real x86-64 page tables are 4-level radix trees; what the paper's
mechanisms observe, however, is the *leaf* PTE state: present/A/D/poison
bits, and the VPN→PFN mapping.  We model exactly that leaf state, with
pages grouped into VMAs (the ``vm_area_struct`` analogue) so that
translation of a whole access batch is pure array arithmetic:

    vma   = interval containing vpn           (searchsorted)
    pfn   = vma.pfn_base  + (vpn - vma.start)
    slot  = vma.slot_base + (vpn - vma.start)  → index into the
                                                  process's PTE-flag array

``walk()`` mirrors the kernel's ``mm_walk``: it visits every valid PTE
range so the A-bit driver can test-and-clear accessed bits in bulk
(§III-B.2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .address import ADDR_DTYPE
from .frames import FrameAllocator, GrowableArray
from .pte import PTE_DEFAULT

__all__ = ["VMA", "PageTable", "TranslationFault"]


class TranslationFault(Exception):
    """Raised when a batch touches an unmapped virtual page."""

    def __init__(self, pid: int, vpns: np.ndarray):
        self.pid = pid
        self.vpns = vpns
        preview = ", ".join(hex(int(v)) for v in vpns[:4])
        super().__init__(
            f"pid {pid}: access to {vpns.size} unmapped page(s), e.g. vpn {preview}"
        )


@dataclass(frozen=True)
class VMA:
    """A mapped virtual region (``vm_area_struct`` analogue).

    ``page_order`` selects the mapping granularity: 0 for 4 KiB base
    pages, 9 for 2 MiB transparent huge pages.  A huge-page VMA is
    still backed by 4 KiB frames (``npages`` of them), but has one PTE
    — one slot, one A/D bit, one TLB entry — per 512-frame unit, which
    is precisely the granularity asymmetry that makes A-bit profiling
    coarse on THP-backed heaps while IBS keeps 4 KiB resolution.
    """

    name: str
    start_vpn: int
    npages: int
    pfn_base: int
    slot_base: int
    page_order: int = 0

    @property
    def unit_pages(self) -> int:
        """4 KiB frames per PTE (1 for base pages, 512 for 2 MiB)."""
        return 1 << self.page_order

    @property
    def n_units(self) -> int:
        """Number of PTEs (mapping units) in the region."""
        return (self.npages + self.unit_pages - 1) >> self.page_order

    @property
    def end_vpn(self) -> int:
        """One past the last mapped VPN."""
        return self.start_vpn + self.npages

    @property
    def vpns(self) -> np.ndarray:
        """All VPNs in the region."""
        return np.arange(self.start_vpn, self.end_vpn, dtype=ADDR_DTYPE)

    @property
    def pfns(self) -> np.ndarray:
        """All backing PFNs, aligned with :attr:`vpns`."""
        return np.arange(self.pfn_base, self.pfn_base + self.npages, dtype=ADDR_DTYPE)

    def __contains__(self, vpn: int) -> bool:
        return self.start_vpn <= vpn < self.end_vpn


class PageTable:
    """Leaf page-table state for one process.

    PTE flags for all of the process's pages live in one contiguous
    ``uint64`` array indexed by *slot*; every VMA occupies a contiguous
    slot range, so bulk flag updates for a translated batch are a
    single fancy-indexed in-place operation.
    """

    def __init__(self, pid: int):
        self.pid = int(pid)
        self.vmas: list[VMA] = []
        self._flags = GrowableArray(np.uint64, fill=0)
        # Sorted interval arrays rebuilt on mmap (mmap is rare; lookups
        # are hot).
        self._starts = np.zeros(0, dtype=ADDR_DTYPE)
        self._ends = np.zeros(0, dtype=ADDR_DTYPE)
        self._pfn_base = np.zeros(0, dtype=ADDR_DTYPE)
        self._slot_base = np.zeros(0, dtype=np.int64)
        self._order = np.zeros(0, dtype=ADDR_DTYPE)

    # ------------------------------------------------------------------ map

    def mmap(
        self,
        start_vpn: int,
        npages: int,
        allocator: FrameAllocator,
        name: str = "anon",
        page_order: int = 0,
    ) -> VMA:
        """Map ``npages`` pages at ``start_vpn``, eagerly backed by frames.

        ``page_order=9`` maps the region with 2 MiB huge PTEs (THP).
        Overlapping an existing VMA raises ``ValueError``.
        """
        if npages <= 0:
            raise ValueError(f"npages must be positive, got {npages}")
        if page_order < 0:
            raise ValueError(f"page_order must be >= 0, got {page_order}")
        end = start_vpn + npages
        for v in self.vmas:
            if start_vpn < v.end_vpn and v.start_vpn < end:
                raise ValueError(
                    f"pid {self.pid}: [{start_vpn:#x}, {end:#x}) overlaps "
                    f"VMA {v.name!r} [{v.start_vpn:#x}, {v.end_vpn:#x})"
                )
        pfn_base = allocator.alloc(npages)
        slot_base = len(self._flags)
        vma = VMA(
            name=name,
            start_vpn=int(start_vpn),
            npages=int(npages),
            pfn_base=pfn_base,
            slot_base=slot_base,
            page_order=int(page_order),
        )
        self._flags.resize(slot_base + vma.n_units)
        self._flags.data()[slot_base:] = PTE_DEFAULT
        self.vmas.append(vma)
        self._rebuild_index()
        return vma

    def _rebuild_index(self) -> None:
        order = sorted(range(len(self.vmas)), key=lambda i: self.vmas[i].start_vpn)
        self.vmas = [self.vmas[i] for i in order]
        self._starts = np.array([v.start_vpn for v in self.vmas], dtype=ADDR_DTYPE)
        self._ends = np.array([v.end_vpn for v in self.vmas], dtype=ADDR_DTYPE)
        self._pfn_base = np.array([v.pfn_base for v in self.vmas], dtype=ADDR_DTYPE)
        self._slot_base = np.array([v.slot_base for v in self.vmas], dtype=np.int64)
        self._order = np.array([v.page_order for v in self.vmas], dtype=ADDR_DTYPE)

    # ------------------------------------------------------------ translate

    @property
    def n_pages(self) -> int:
        """Total PTEs (mapping units) — what an A-bit walk visits."""
        return len(self._flags)

    @property
    def total_frames(self) -> int:
        """Total 4 KiB frames backing the process's mappings."""
        return sum(v.npages for v in self.vmas)

    @property
    def flags(self) -> np.ndarray:
        """The process's PTE-flag array, indexed by slot."""
        return self._flags.data()

    def translate(self, vpns: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Translate an array of VPNs to ``(pfns, slots)``.

        Raises :class:`TranslationFault` listing the offending VPNs if
        any page is unmapped.
        """
        pfns, slots, _ = self.translate_ex(vpns)
        return pfns, slots

    def translate_ex(
        self, vpns: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Translate VPNs to ``(pfns, slots, tlb_vpns)``.

        ``tlb_vpns`` is the mapping-unit-aligned VPN each translation
        is tagged with in the TLB — the VPN itself for base pages, the
        2 MiB-aligned head for huge-page units.
        """
        vpns = np.asarray(vpns, dtype=ADDR_DTYPE)
        if self._starts.size == 0:
            if vpns.size:
                raise TranslationFault(self.pid, np.unique(vpns))
            z = np.zeros(0, dtype=np.int64)
            return vpns.copy(), z, vpns.copy()
        idx = np.searchsorted(self._starts, vpns, side="right") - 1
        bad = (idx < 0) | (vpns >= self._ends[np.clip(idx, 0, None)])
        if bad.any():
            raise TranslationFault(self.pid, np.unique(vpns[bad]))
        off = vpns - self._starts[idx]
        pfns = self._pfn_base[idx] + off
        shift = self._order[idx]
        unit_off = off >> shift
        slots = self._slot_base[idx] + unit_off.astype(np.int64)
        tlb_vpns = self._starts[idx] + (unit_off << shift)
        return pfns, slots, tlb_vpns

    def slot_to_vpn(self, slots: np.ndarray) -> np.ndarray:
        """Slot → VPN of the mapping unit's head."""
        slots = np.asarray(slots, dtype=np.int64)
        out = np.empty(slots.size, dtype=ADDR_DTYPE)
        for v in self.vmas:
            m = (slots >= v.slot_base) & (slots < v.slot_base + v.n_units)
            out[m] = ADDR_DTYPE(v.start_vpn) + (
                (slots[m] - v.slot_base).astype(ADDR_DTYPE) << ADDR_DTYPE(v.page_order)
            )
        return out

    def slot_to_pfn(self, slots: np.ndarray) -> np.ndarray:
        """Slot → PFN of the mapping unit's head frame."""
        slots = np.asarray(slots, dtype=np.int64)
        out = np.empty(slots.size, dtype=ADDR_DTYPE)
        for v in self.vmas:
            m = (slots >= v.slot_base) & (slots < v.slot_base + v.n_units)
            out[m] = ADDR_DTYPE(v.pfn_base) + (
                (slots[m] - v.slot_base).astype(ADDR_DTYPE) << ADDR_DTYPE(v.page_order)
            )
        return out

    # ----------------------------------------------------------------- walk

    def walk(self):
        """Iterate VMAs as ``(vma, flags_view)`` — the ``mm_walk`` analogue.

        ``flags_view`` is a writable view of the VMA's PTE flags; the
        A-bit driver's ``gather_a_history`` callback test-and-clears
        accessed bits directly on it.
        """
        flags = self._flags.data()
        for v in self.vmas:
            yield v, flags[v.slot_base : v.slot_base + v.n_units]

    def find_vma(self, vpn: int) -> VMA | None:
        """Return the VMA containing ``vpn``, or None."""
        for v in self.vmas:
            if vpn in v:
                return v
        return None
