"""Event records and structure-of-arrays sample buffers.

Memory-access streams and profiler sample streams are represented as
numpy structure-of-arrays (SoA) containers rather than lists of objects:
the simulator's hot paths are entirely vectorized over these columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

import numpy as np

from .address import ADDR_DTYPE

__all__ = ["DataSource", "AccessBatch", "SampleBatch", "concat_samples"]


class DataSource(IntEnum):
    """Where a load/store was serviced from (IBS northbridge status)."""

    L1 = 1
    L2 = 2
    LLC = 3
    MEMORY = 4  # missed every cache level; reached a memory tier


@dataclass
class AccessBatch:
    """A batch of memory accesses in program order (SoA layout).

    Attributes
    ----------
    vaddr:
        Virtual byte addresses (``uint64``).
    is_store:
        True for stores, False for loads.
    pid:
        Owning process id per access.
    cpu:
        Logical CPU executing the access.
    ip:
        Instruction pointer per access (synthetic; workloads may tag
        phases with distinct IPs so trace samples carry provenance).
    """

    vaddr: np.ndarray
    is_store: np.ndarray
    pid: np.ndarray
    cpu: np.ndarray
    ip: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self):
        self.vaddr = np.ascontiguousarray(self.vaddr, dtype=ADDR_DTYPE)
        n = self.vaddr.size
        self.is_store = _col(self.is_store, n, bool, "is_store")
        self.pid = _col(self.pid, n, np.int32, "pid")
        self.cpu = _col(self.cpu, n, np.int16, "cpu")
        if self.ip is None:
            self.ip = np.zeros(n, dtype=ADDR_DTYPE)
        else:
            self.ip = _col(self.ip, n, ADDR_DTYPE, "ip")

    def __len__(self) -> int:
        return int(self.vaddr.size)

    @property
    def n(self) -> int:
        """Number of accesses in the batch."""
        return int(self.vaddr.size)

    def take(self, idx) -> "AccessBatch":
        """Return a sub-batch at positions ``idx`` (order preserved).

        A ``slice`` index returns zero-copy column views (the columns
        are already validated contiguous arrays, so re-validation would
        only force copies); epoch slicing leans on this.
        """
        if isinstance(idx, slice):
            sub = object.__new__(AccessBatch)
            sub.vaddr = self.vaddr[idx]
            sub.is_store = self.is_store[idx]
            sub.pid = self.pid[idx]
            sub.cpu = self.cpu[idx]
            sub.ip = self.ip[idx]
            return sub
        return AccessBatch(
            vaddr=self.vaddr[idx],
            is_store=self.is_store[idx],
            pid=self.pid[idx],
            cpu=self.cpu[idx],
            ip=self.ip[idx],
        )

    @staticmethod
    def concat(batches: list["AccessBatch"]) -> "AccessBatch":
        """Concatenate batches in order into one batch."""
        if not batches:
            return AccessBatch.empty()
        return AccessBatch(
            vaddr=np.concatenate([b.vaddr for b in batches]),
            is_store=np.concatenate([b.is_store for b in batches]),
            pid=np.concatenate([b.pid for b in batches]),
            cpu=np.concatenate([b.cpu for b in batches]),
            ip=np.concatenate([b.ip for b in batches]),
        )

    @staticmethod
    def empty() -> "AccessBatch":
        """An empty batch."""
        z = np.zeros(0, dtype=ADDR_DTYPE)
        return AccessBatch(vaddr=z, is_store=z.astype(bool), pid=z, cpu=z, ip=z)

    @staticmethod
    def from_pages(vpns, is_store=False, pid=0, cpu=0, ip=0, offset=0) -> "AccessBatch":
        """Build a batch that touches the given virtual pages.

        Convenience constructor used heavily by workloads and tests:
        scalar ``is_store``/``pid``/``cpu``/``ip``/``offset`` broadcast
        over every access.
        """
        vpns = np.asarray(vpns, dtype=ADDR_DTYPE)
        from .address import compose

        vaddr = compose(vpns, np.asarray(offset, dtype=ADDR_DTYPE))
        n = vaddr.size
        return AccessBatch(
            vaddr=vaddr,
            is_store=np.broadcast_to(np.asarray(is_store, dtype=bool), (n,)).copy(),
            pid=np.broadcast_to(np.asarray(pid, dtype=np.int32), (n,)).copy(),
            cpu=np.broadcast_to(np.asarray(cpu, dtype=np.int16), (n,)).copy(),
            ip=np.broadcast_to(np.asarray(ip, dtype=ADDR_DTYPE), (n,)).copy(),
        )


@dataclass
class SampleBatch:
    """Trace samples emitted by IBS/PEBS (SoA layout).

    Each record mirrors the fields the paper's IBS/PEBS driver collects:
    timestamp (op index), CPU id, PID, instruction pointer, virtual and
    physical data address, access type, and cache/TLB status
    (§III-B.1).
    """

    op_idx: np.ndarray       # global op index at sample time (uint64)
    cpu: np.ndarray          # int16
    pid: np.ndarray          # int32
    ip: np.ndarray           # uint64
    vaddr: np.ndarray        # uint64
    paddr: np.ndarray        # uint64
    is_store: np.ndarray     # bool
    tlb_hit: np.ndarray      # bool
    data_source: np.ndarray  # uint8, DataSource values

    def __len__(self) -> int:
        return int(self.op_idx.size)

    @property
    def n(self) -> int:
        """Number of samples."""
        return int(self.op_idx.size)

    @property
    def pfn(self) -> np.ndarray:
        """Physical frame numbers of the sampled data addresses."""
        from .address import page_of

        return page_of(self.paddr)

    def memory_samples(self) -> "SampleBatch":
        """Samples whose data source is a memory tier (LLC misses)."""
        return self.take(self.data_source == np.uint8(DataSource.MEMORY))

    def take(self, idx) -> "SampleBatch":
        """Return a sub-buffer at positions ``idx`` (order preserved)."""
        return SampleBatch(
            op_idx=self.op_idx[idx],
            cpu=self.cpu[idx],
            pid=self.pid[idx],
            ip=self.ip[idx],
            vaddr=self.vaddr[idx],
            paddr=self.paddr[idx],
            is_store=self.is_store[idx],
            tlb_hit=self.tlb_hit[idx],
            data_source=self.data_source[idx],
        )

    @staticmethod
    def empty() -> "SampleBatch":
        """An empty sample buffer."""
        z64 = np.zeros(0, dtype=ADDR_DTYPE)
        return SampleBatch(
            op_idx=z64,
            cpu=np.zeros(0, dtype=np.int16),
            pid=np.zeros(0, dtype=np.int32),
            ip=z64.copy(),
            vaddr=z64.copy(),
            paddr=z64.copy(),
            is_store=np.zeros(0, dtype=bool),
            tlb_hit=np.zeros(0, dtype=bool),
            data_source=np.zeros(0, dtype=np.uint8),
        )


def concat_samples(buffers: list[SampleBatch]) -> SampleBatch:
    """Concatenate sample buffers in order."""
    buffers = [b for b in buffers if b.n]
    if not buffers:
        return SampleBatch.empty()
    return SampleBatch(
        op_idx=np.concatenate([b.op_idx for b in buffers]),
        cpu=np.concatenate([b.cpu for b in buffers]),
        pid=np.concatenate([b.pid for b in buffers]),
        ip=np.concatenate([b.ip for b in buffers]),
        vaddr=np.concatenate([b.vaddr for b in buffers]),
        paddr=np.concatenate([b.paddr for b in buffers]),
        is_store=np.concatenate([b.is_store for b in buffers]),
        tlb_hit=np.concatenate([b.tlb_hit for b in buffers]),
        data_source=np.concatenate([b.data_source for b in buffers]),
    )


def _col(value, n: int, dtype, name: str) -> np.ndarray:
    """Coerce a column to length ``n``, broadcasting scalars."""
    arr = np.asarray(value, dtype=dtype)
    if arr.ndim == 0:
        return np.broadcast_to(arr, (n,)).copy()
    if arr.size != n:
        raise ValueError(f"column {name!r} has length {arr.size}, expected {n}")
    return np.ascontiguousarray(arr)
