"""Intel Processor Event-Based Sampling.

PEBS arms a precise event (here: a cache-miss event selected by
``data_source`` depth) and deposits a record every *n*-th occurrence of
that event.  Unlike IBS op sampling, the counted population is already
filtered to the event of interest, so at equal period PEBS concentrates
its samples on exactly the accesses TMP cares about — the
vendor-agnostic TMP trace driver accepts either stream (§II-B,
§III-B.1).
"""

from __future__ import annotations

import numpy as np

from .events import AccessBatch, DataSource
from .sampling import TraceSampler

__all__ = ["PEBSSampler"]

#: Default PEBS period: one record per 64 occurrences of the armed event.
DEFAULT_PEBS_PERIOD = 64


class PEBSSampler(TraceSampler):
    """Event sampling: one record per ``period`` armed-event occurrences.

    Parameters
    ----------
    event_source:
        The miss depth that constitutes the armed event.  The default
        (``DataSource.MEMORY``) corresponds to an LLC-miss /
        long-latency-load event, the paper's (and MemBrain's) preferred
        PEBS configuration.
    """

    vendor = "intel"
    name = "pebs"

    def __init__(
        self,
        period: int = DEFAULT_PEBS_PERIOD,
        buffer_records: int = 4096,
        event_source: DataSource = DataSource.MEMORY,
    ):
        super().__init__(period=period, buffer_records=buffer_records)
        self.event_source = DataSource(event_source)

    def observe(
        self,
        batch: AccessBatch,
        *,
        op_base: int,
        paddr: np.ndarray,
        tlb_hit: np.ndarray,
        data_source: np.ndarray,
    ) -> None:
        """Count armed-event occurrences; tag every ``period``-th one."""
        event_pos = np.flatnonzero(data_source >= np.uint8(self.event_source))
        picks_in_events = self._select(event_pos.size)
        if picks_in_events.size == 0:
            return
        picks = event_pos[picks_in_events]
        self._deposit(
            self._records_at(
                batch,
                picks,
                op_base=op_base,
                paddr=paddr,
                tlb_hit=tlb_hit,
                data_source=data_source,
            )
        )
