"""BadgerTrap: fault-based TLB-miss interception.

BadgerTrap (Gandhi et al.) poisons selected PTEs by setting reserved
bit 51 and flushing the translation from the TLB; the next access to
the page page-walks, faults on the poisoned entry, and the handler
counts the event, installs a valid translation in the TLB, and
re-poisons the PTE.  The per-page fault count therefore estimates the
page's TLB-miss count — which Thermostat and the paper's §VI-C
emulation framework use as an access-count proxy (with the caveat the
paper notes: TLB misses ≉ cache misses for hot pages).

In this model a fault occurs on every TLB miss to an instrumented page;
the machine routes the walker's poison-fault hits here.  Each fault
carries a fixed handler cost so BadgerTrap's characteristic overhead is
measurable, and the same machinery doubles as the slow-tier latency
injector of the paper's emulation testbed
(:mod:`repro.tiering.latency_model`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .address import ADDR_DTYPE
from .frames import GrowableArray
from .page_table import PageTable
from .pte import PTE_POISON
from .tlb import TLB

__all__ = ["BadgerTrap", "BadgerTrapStats"]


@dataclass
class BadgerTrapStats:
    """Cumulative BadgerTrap event counters."""

    instrumented: int = 0
    faults: int = 0

    #: Per-fault handler cost in seconds (walk + trap + fixup), used by
    #: the overhead accounting.  ~1 µs is the order of magnitude the
    #: BadgerTrap paper reports per intercepted miss.
    fault_cost_s: float = 1e-6

    @property
    def handler_time_s(self) -> float:
        return self.faults * self.fault_cost_s


class BadgerTrap:
    """PTE-poisoning instrumentation over the simulated page tables."""

    def __init__(self, fault_cost_s: float = 1e-6):
        self.stats = BadgerTrapStats(fault_cost_s=fault_cost_s)
        self._fault_counts = GrowableArray(np.int64)

    # ------------------------------------------------------------ instrument

    def instrument(self, pt: PageTable, slots: np.ndarray, tlb: TLB) -> None:
        """Poison the PTEs at ``slots`` and flush their translations.

        The flush is mandatory: a TLB-resident translation would keep
        servicing accesses without walking, hiding them from the trap.
        """
        slots = np.unique(np.asarray(slots, dtype=np.int64))
        if slots.size == 0:
            return
        newly = (pt.flags[slots] & PTE_POISON) == 0
        pt.flags[slots] |= PTE_POISON
        self.stats.instrumented += int(np.count_nonzero(newly))
        vpns = pt.slot_to_vpn(slots)
        tlb.shootdown_pages(np.full(vpns.size, pt.pid, dtype=np.int32), vpns)

    def uninstrument(self, pt: PageTable, slots: np.ndarray) -> None:
        """Remove the poison from the PTEs at ``slots``."""
        slots = np.asarray(slots, dtype=np.int64)
        if slots.size == 0:
            return
        pt.flags[slots] &= ~PTE_POISON

    def instrumented_slots(self, pt: PageTable) -> np.ndarray:
        """Slots currently poisoned in ``pt``."""
        return np.flatnonzero((pt.flags & PTE_POISON) != 0)

    # ----------------------------------------------------------------- fault

    def handle_faults(self, pfns: np.ndarray) -> None:
        """Count poison faults (one per TLB miss to an instrumented page).

        The handler's unpoison → TLB-install → repoison cycle is folded
        into the count: the PTE stays poisoned, the TLB holds the
        translation until natural eviction (the machine's TLB already
        installed it during the walk).
        """
        pfns = np.asarray(pfns, dtype=ADDR_DTYPE)
        if pfns.size == 0:
            return
        self.stats.faults += int(pfns.size)
        pf = pfns.astype(np.intp)
        self._fault_counts.resize(int(pf.max()) + 1)
        self._fault_counts.data()[:] += np.bincount(
            pf, minlength=len(self._fault_counts)
        )

    @property
    def fault_counts(self) -> np.ndarray:
        """Per-PFN fault counts (the TLB-miss estimate)."""
        return self._fault_counts.data()

    def reset_counts(self) -> None:
        """Zero the per-page estimates (start of a profiling interval)."""
        self._fault_counts.fill(0)
        self.stats.faults = 0
