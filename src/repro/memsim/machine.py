"""Whole-machine assembly: the simulated testbed.

A :class:`Machine` wires together the page tables, TLB + walker, cache
hierarchy, PMU, trace samplers (IBS and PEBS), PML and BadgerTrap, and
executes workload :class:`~repro.memsim.events.AccessBatch` streams
through them in program order.  Each executed batch yields a
:class:`BatchResult` carrying the per-access microarchitectural outcome
(physical address, TLB hit, data source) plus the raw PMU event counts
— everything the profilers under study are allowed to observe, and the
ground truth they are measured against.

The default configuration loosely models the paper's testbed (AMD
Ryzen 5 3600X: 6 cores, 32 MiB LLC, 64 GiB DRAM) with
capacity-equivalent direct-mapped lookup structures (see
:mod:`repro.memsim.vecsim` for the exactness/performance rationale).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .address import (
    ADDR_DTYPE,
    LINE_SHIFT,
    PAGE_OFFSET_MASK,
    PAGE_SHIFT,
    page_of,
)
from .badgertrap import BadgerTrap
from .cache import CacheHierarchy
from .events import AccessBatch, DataSource
from .frames import FrameAllocator, FrameStats
from .ibs import IBSSampler
from .lwp import LWPSampler
from .page_table import PageTable, VMA
from .pebs import PEBSSampler
from .resctrl import ResctrlMonitor
from .pml import PMLogger
from .pmu import PMU
from .ptw import PageTableWalker
from .sampling import DEFAULT_IBS_PERIOD
from .tlb import TLBArray

__all__ = ["MachineConfig", "Machine", "BatchResult"]


def _pid_groups(pid_arr: np.ndarray) -> list[tuple[int, slice | np.ndarray]]:
    """Group batch indices by PID with one stable sort (no per-PID scans).

    Returns ``(pid, index)`` pairs where ``index`` is ``slice(None)``
    for the common single-PID batch (zero-copy) or a program-ordered
    fancy index otherwise.  Groups come out in ascending-PID order,
    matching the previous ``np.unique``-driven iteration.
    """
    if pid_arr[0] == pid_arr[-1] and (pid_arr == pid_arr[0]).all():
        return [(int(pid_arr[0]), slice(None))]
    order = np.argsort(pid_arr, kind="stable")
    sorted_pids = pid_arr[order]
    starts = np.flatnonzero(
        np.concatenate(([True], sorted_pids[1:] != sorted_pids[:-1]))
    )
    ends = np.append(starts[1:], pid_arr.size)
    return [
        (int(sorted_pids[s]), order[s:e]) for s, e in zip(starts, ends)
    ]


def _subset(idx: slice | np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Indices of ``mask`` restricted to a group's index, program order."""
    if isinstance(idx, slice):
        return np.flatnonzero(mask)
    return idx[mask[idx]]


@dataclass
class MachineConfig:
    """Tunable parameters of the simulated machine."""

    #: Physical memory size in 4 KiB frames (default 16 Mi frames = 64 GiB).
    total_frames: int = 1 << 24
    #: dTLB capacity in translations (L1+L2 dTLB capacity-equivalent).
    tlb_entries: int = 2048
    tlb_ways: int = 1
    #: Cache sizes (Ryzen 3600X-like: 32K L1D, 512K L2, 32M shared LLC).
    l1_bytes: int = 32 * 1024
    l2_bytes: int = 512 * 1024
    llc_bytes: int = 32 * 1024 * 1024
    cache_ways: int = 1
    #: Use the exact set-associative LRU engines (vectorized).
    exact_assoc: bool = False
    #: Use the scalar golden-reference engines (slow; equivalence tests).
    assoc_reference: bool = False
    n_cpus: int = 6
    #: Simulated memory-access throughput, accesses/second.  Converts op
    #: counts to wall-clock for scan scheduling and overhead accounting.
    ops_per_second: float = 1e9
    #: IBS op-sampling period (paper default: 1 / 256 Ki ops).
    ibs_period: int = DEFAULT_IBS_PERIOD
    #: IBS period randomization (fraction; real IBS jitters its counter
    #: to break lockstep with loop-structured code).  0 keeps sampling
    #: deterministic, which the calibrated experiments rely on.
    ibs_jitter: float = 0.0
    #: PEBS armed-event period.
    pebs_period: int = 64
    pmu_counters: int = 6
    #: LWP op-sampling period (per-process ring buffers, §II-B).
    lwp_period: int = 64
    enable_ibs: bool = True
    enable_pebs: bool = False
    enable_lwp: bool = False
    enable_pml: bool = False
    #: First VPN handed to auto-placed VMAs, and guard gap between them.
    vma_base_vpn: int = 0x1000
    vma_guard_pages: int = 16

    #: Load-use cycle costs by data source, plus the page-walk penalty.
    #: These feed the machine's AMAT accounting (``Machine.cycles``,
    #: ``BatchResult.cycles``) — an analysis signal; epoch/scan
    #: scheduling stays op-based.
    cycles_l1: int = 4
    cycles_l2: int = 14
    cycles_llc: int = 40
    cycles_mem: int = 200
    cycles_walk: int = 20

    @classmethod
    def scaled(cls, **overrides) -> "MachineConfig":
        """The experiment testbed: the paper's machine scaled ~1/64.

        Workload footprints in :mod:`repro.workloads.registry` are the
        paper's inputs scaled down ~64x; this preset shrinks TLB reach,
        cache capacities, the IBS period, and the clock by the same
        factor so every capacity *ratio* (footprint : TLB reach,
        hot set : LLC, samples : pages, epoch : scan interval) matches
        the full-size system.  One epoch of ~200 K accesses ≈ one
        second of simulated time, the paper's profiling quantum.
        """
        params = dict(
            total_frames=1 << 22,
            tlb_entries=256,
            l1_bytes=8 * 1024,
            l2_bytes=64 * 1024,
            llc_bytes=1024 * 1024,
            ops_per_second=2.0e5,
            # Preserves the paper's samples-per-second: 1e9 ops/s at
            # period 256 Ki ≈ 3.8 K samples/s ⇔ 2e5 ops/s at period 64.
            ibs_period=64,
            pebs_period=64,
        )
        params.update(overrides)
        return cls(**params)


@dataclass
class BatchResult:
    """Per-access outcome of one executed batch (SoA, program order)."""

    #: Global op index of the batch's first access.
    op_base: int
    #: Physical byte address per access.
    paddr: np.ndarray
    #: Physical frame number per access.
    pfn: np.ndarray
    #: PTE slot per access (per-process index; meaningful with ``pid``).
    slot: np.ndarray
    #: True where the access hit the TLB.
    tlb_hit: np.ndarray
    #: DataSource per access (uint8).
    data_source: np.ndarray
    #: Raw PMU-visible event counts for this batch.
    raw_events: dict[str, int] = field(default_factory=dict)
    #: Modelled memory-access cycles for the batch (AMAT accounting).
    cycles: int = 0

    @property
    def n(self) -> int:
        return int(self.paddr.size)

    @property
    def amat_cycles(self) -> float:
        """Average memory-access time in cycles for this batch."""
        return self.cycles / self.n if self.n else 0.0

    @property
    def mem_mask(self) -> np.ndarray:
        """Accesses serviced from a memory tier (missed every cache)."""
        return self.data_source == np.uint8(DataSource.MEMORY)

    def page_access_counts(self, n_frames: int) -> np.ndarray:
        """Per-PFN total access counts for this batch."""
        return np.bincount(self.pfn.astype(np.intp), minlength=n_frames)

    def page_mem_access_counts(self, n_frames: int) -> np.ndarray:
        """Per-PFN memory-access (LLC-miss) counts for this batch."""
        return np.bincount(
            self.pfn[self.mem_mask].astype(np.intp), minlength=n_frames
        )

    def page_tlb_miss_counts(self, n_frames: int) -> np.ndarray:
        """Per-PFN TLB-miss counts for this batch."""
        return np.bincount(
            self.pfn[~self.tlb_hit].astype(np.intp), minlength=n_frames
        )


class Machine:
    """The simulated machine executing access streams."""

    def __init__(self, config: MachineConfig | None = None):
        self.config = config or MachineConfig()
        c = self.config
        self.allocator = FrameAllocator(c.total_frames)
        self.frame_stats = FrameStats()
        self.page_tables: dict[int, PageTable] = {}
        self._next_vpn: dict[int, int] = {}
        self.tlb = TLBArray(
            n_cpus=c.n_cpus,
            entries=c.tlb_entries,
            ways=c.tlb_ways,
            exact_assoc=c.exact_assoc,
            reference=c.assoc_reference,
        )
        self.caches = CacheHierarchy(
            c.l1_bytes,
            c.l2_bytes,
            c.llc_bytes,
            n_cpus=c.n_cpus,
            ways=c.cache_ways,
            exact_assoc=c.exact_assoc,
            reference=c.assoc_reference,
        )
        self.ptw = PageTableWalker()
        self.pmu = PMU(n_counters=c.pmu_counters)
        self.ibs = IBSSampler(period=c.ibs_period, jitter=c.ibs_jitter)
        self.ibs.enabled = c.enable_ibs
        self.pebs = PEBSSampler(period=c.pebs_period)
        self.pebs.enabled = c.enable_pebs
        self.lwp = LWPSampler(period=c.lwp_period)
        self.lwp.enabled = c.enable_lwp
        #: Optional Resource-Control monitor (see :meth:`enable_resctrl`).
        self.resctrl: ResctrlMonitor | None = None
        self.pml = PMLogger()
        self.pml.enabled = c.enable_pml
        self.badgertrap = BadgerTrap()
        self.op_counter = 0
        #: Cumulative modelled memory-access cycles (AMAT numerator).
        self.cycles = 0

    # ------------------------------------------------------------- processes

    def process(self, pid: int) -> PageTable:
        """Get or create the page table for ``pid``."""
        pt = self.page_tables.get(pid)
        if pt is None:
            pt = PageTable(pid)
            self.page_tables[pid] = pt
            self._next_vpn[pid] = self.config.vma_base_vpn
        return pt

    def mmap(
        self,
        pid: int,
        npages: int,
        name: str = "anon",
        start_vpn: int | None = None,
        page_order: int = 0,
    ) -> VMA:
        """Map a new VMA for ``pid``; auto-placed unless ``start_vpn`` given.

        ``page_order=9`` backs the region with 2 MiB huge PTEs (THP).
        """
        pt = self.process(pid)
        if start_vpn is None:
            start_vpn = self._next_vpn[pid]
        vma = pt.mmap(
            start_vpn, npages, self.allocator, name=name, page_order=page_order
        )
        self._next_vpn[pid] = max(
            self._next_vpn[pid], vma.end_vpn + self.config.vma_guard_pages
        )
        self.frame_stats.resize(self.allocator.allocated)
        return vma

    @property
    def n_frames(self) -> int:
        """Frames allocated so far (PFN-indexed array length)."""
        return self.allocator.allocated

    @property
    def time_s(self) -> float:
        """Simulated application wall-clock so far."""
        return self.op_counter / self.config.ops_per_second

    @property
    def amat_cycles(self) -> float:
        """Whole-run average memory-access time in cycles."""
        return self.cycles / self.op_counter if self.op_counter else 0.0

    def enable_resctrl(self, decay: float = 0.5, max_rmids: int = 64) -> ResctrlMonitor:
        """Arm the Resource-Control monitor (CMT/MBM; footnote 3)."""
        if self.resctrl is None:
            self.resctrl = ResctrlMonitor(
                self.config.llc_bytes, decay=decay, max_rmids=max_rmids
            )
        return self.resctrl

    # --------------------------------------------------------------- execute

    def run_batch(self, batch: AccessBatch) -> BatchResult:
        """Execute one access batch through the full machine pipeline."""
        n = batch.n
        op_base = self.op_counter
        if n == 0:
            return BatchResult(
                op_base=op_base,
                paddr=np.zeros(0, dtype=ADDR_DTYPE),
                pfn=np.zeros(0, dtype=ADDR_DTYPE),
                slot=np.zeros(0, dtype=np.int64),
                tlb_hit=np.zeros(0, dtype=bool),
                data_source=np.zeros(0, dtype=np.uint8),
            )

        vpns = page_of(batch.vaddr)

        # 1. Address translation (VMA arithmetic, per process).  The
        #    TLB tag is the mapping unit's head VPN (2 MiB-aligned for
        #    huge-page regions).
        pfn = np.empty(n, dtype=ADDR_DTYPE)
        slot = np.empty(n, dtype=np.int64)
        tlb_vpn = np.empty(n, dtype=ADDR_DTYPE)
        groups = _pid_groups(batch.pid)
        for pid, idx in groups:
            pt = self.page_tables.get(pid)
            if pt is None:
                from .page_table import TranslationFault

                raise TranslationFault(pid, np.unique(vpns[idx]))
            pfn[idx], slot[idx], tlb_vpn[idx] = pt.translate_ex(vpns[idx])

        # 2. Per-CPU TLB lookup (misses install their fill).
        tlb_hit = self.tlb.access(batch.pid, tlb_vpn, batch.cpu)
        miss = ~tlb_hit

        # 3. Page-table walks on misses: A bits, poison faults.
        for pid, idx in groups:
            mm = _subset(idx, miss)
            if mm.size == 0:
                continue
            pt = self.page_tables[pid]
            poisoned = self.ptw.fill_walks(pt, slot[mm])
            if poisoned.any():
                self.badgertrap.handle_faults(pfn[mm][poisoned])

        # 4. Dirty bits on stores (TLB-independent; see ptw docstring).
        if batch.is_store.any():
            for pid, idx in groups:
                ms = _subset(idx, batch.is_store)
                if ms.size == 0:
                    continue
                pt = self.page_tables[pid]
                newly_dirty = self.ptw.dirty_updates(pt, slot[ms])
                if newly_dirty.size and self.pml.enabled:
                    self.pml.observe_dirty(pt.slot_to_pfn(newly_dirty))

        # 5. Cache hierarchy on physical line addresses.
        paddr = (pfn << ADDR_DTYPE(PAGE_SHIFT)) | (
            batch.vaddr & ADDR_DTYPE(PAGE_OFFSET_MASK)
        )
        lines = paddr >> ADDR_DTYPE(LINE_SHIFT)
        data_source = self.caches.access(lines, batch.cpu)

        # 6. Raw PMU events for this batch.
        n_stores = int(np.count_nonzero(batch.is_store))
        l1_miss = int(np.count_nonzero(data_source != np.uint8(DataSource.L1)))
        l2_miss = int(np.count_nonzero(data_source >= np.uint8(DataSource.LLC)))
        llc_miss = int(np.count_nonzero(data_source == np.uint8(DataSource.MEMORY)))
        n_miss = int(np.count_nonzero(miss))
        raw = {
            "retired_ops": n,
            "retired_loads": n - n_stores,
            "retired_stores": n_stores,
            "l1_miss": l1_miss,
            "l2_miss": l2_miss,
            "llc_miss": llc_miss,
            "dtlb_miss": n_miss,
            "ptw_walks": n_miss,
        }
        if self.pmu.events:
            self.pmu.update(raw)

        # AMAT accounting: every access pays its servicing level's
        # load-use latency; TLB misses add a page-walk penalty.
        cfg = self.config
        batch_cycles = int(
            n * cfg.cycles_l1
            + l1_miss * (cfg.cycles_l2 - cfg.cycles_l1)
            + l2_miss * (cfg.cycles_llc - cfg.cycles_l2)
            + llc_miss * (cfg.cycles_mem - cfg.cycles_llc)
            + n_miss * cfg.cycles_walk
        )
        self.cycles += batch_cycles

        # 7. Trace samplers + optional resource-control accounting.
        self.ibs.observe(
            batch, op_base=op_base, paddr=paddr, tlb_hit=tlb_hit, data_source=data_source
        )
        self.pebs.observe(
            batch, op_base=op_base, paddr=paddr, tlb_hit=tlb_hit, data_source=data_source
        )
        self.lwp.observe(
            batch, op_base=op_base, paddr=paddr, tlb_hit=tlb_hit, data_source=data_source
        )
        if self.resctrl is not None:
            self.resctrl.observe(
                batch.pid, data_source == np.uint8(DataSource.MEMORY)
            )

        # 8. Ground truth.
        self.frame_stats.record(
            pfn,
            batch.is_store,
            data_source == np.uint8(DataSource.MEMORY),
            miss,
            op_base,
        )
        self.op_counter += n

        return BatchResult(
            op_base=op_base,
            paddr=paddr,
            pfn=pfn,
            slot=slot,
            tlb_hit=tlb_hit,
            data_source=data_source,
            raw_events=raw,
            cycles=batch_cycles,
        )
