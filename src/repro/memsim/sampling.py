"""Shared machinery for hardware trace samplers (IBS and PEBS).

Both vendors' mechanisms share a shape: a hardware counter ticks on some
population (retired micro-ops for IBS, a precise event such as LLC
misses for PEBS); every time it reaches the programmed period the
current instruction is *tagged*, a record with addresses and
cache/TLB status is deposited into a kernel buffer, and a buffer-full
condition interrupts the OS so the driver can drain it (§II-B,
§III-B.1).

The samplers are fed per-batch by the machine with the already-computed
per-access metadata, select sample positions vectorized, and maintain
the inter-batch counter phase so sampling is exact across batch
boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .events import AccessBatch, SampleBatch, concat_samples

__all__ = ["SamplerStats", "TraceSampler", "DEFAULT_IBS_PERIOD"]

#: The paper's default IBS rate: one sample out of every 256 Ki ops.
DEFAULT_IBS_PERIOD = 262_144


@dataclass
class SamplerStats:
    """Cumulative sampler event counters."""

    population: int = 0  # ops (IBS) or events (PEBS) seen
    samples: int = 0
    interrupts: int = 0
    dropped: int = 0  # samples lost to buffer overrun while unserviced


class TraceSampler:
    """Base sampler: period counting, ring buffer, interrupt accounting.

    Parameters
    ----------
    period:
        Sample one element out of every ``period`` of the counted
        population.
    buffer_records:
        Kernel ring-buffer capacity; each fill costs one interrupt and
        (in the cost model) one drain by the TMP driver.
    enabled:
        Samplers can be toggled by TMP's HWPC gating at run time.
    """

    def __init__(
        self,
        period: int = DEFAULT_IBS_PERIOD,
        buffer_records: int = 4096,
        jitter: float = 0.0,
        jitter_seed: int = 0x1B5,
    ):
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        if buffer_records < 1:
            raise ValueError(f"buffer_records must be >= 1, got {buffer_records}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.period = int(period)
        self.buffer_records = int(buffer_records)
        #: Period randomization: each inter-sample gap is drawn uniformly
        #: from ``[period*(1-jitter), period*(1+jitter)]``.  Real IBS
        #: randomizes the low bits of its current-count register for
        #: exactly this reason — strict periodic sampling aliases with
        #: loop-structured code and systematically over/under-samples
        #: phase-locked accesses.  0 disables (deterministic lockstep).
        self.jitter = float(jitter)
        self._rng = np.random.default_rng(jitter_seed)
        self.enabled = True
        self.stats = SamplerStats()
        self._countdown = self._next_gap()  # population items until next tag
        self._pending: list[SampleBatch] = []
        self._pending_n = 0

    def _next_gap(self) -> int:
        if self.jitter <= 0.0:
            return self.period
        lo = max(1, int(round(self.period * (1 - self.jitter))))
        hi = max(lo, int(round(self.period * (1 + self.jitter))))
        return int(self._rng.integers(lo, hi + 1))

    def set_period(self, period: int) -> None:
        """Reprogram the sampling period (takes effect immediately)."""
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        self.period = int(period)
        self._countdown = min(self._countdown, self._next_gap())

    def _select(self, n_population: int) -> np.ndarray:
        """Positions (0-based, within the population) that get tagged."""
        self.stats.population += n_population
        if not self.enabled or n_population == 0:
            # Hardware disabled: counter does not tick.
            return np.zeros(0, dtype=np.intp)
        if self.jitter <= 0.0:
            first = self._countdown - 1
            if first >= n_population:
                self._countdown -= n_population
                return np.zeros(0, dtype=np.intp)
            picks = np.arange(first, n_population, self.period, dtype=np.intp)
            consumed_after_last = n_population - 1 - int(picks[-1])
            self._countdown = self.period - consumed_after_last
            return picks
        # Jittered mode: walk gap by gap (cheap — gaps are large).
        picks_list: list[int] = []
        pos = self._countdown - 1
        while pos < n_population:
            picks_list.append(pos)
            pos += self._next_gap()
        self._countdown = pos - n_population + 1
        return np.asarray(picks_list, dtype=np.intp)

    def _deposit(self, samples: SampleBatch) -> None:
        """Append records to the kernel buffer, raising interrupts on fills."""
        if samples.n == 0:
            return
        self.stats.samples += samples.n
        before = self._pending_n
        self._pending.append(samples)
        self._pending_n += samples.n
        # Integer number of complete buffer fills crossed by this deposit.
        self.stats.interrupts += (
            self._pending_n // self.buffer_records - before // self.buffer_records
        )

    def drain(self) -> SampleBatch:
        """Drain the kernel buffer (the TMP driver's periodic poll)."""
        out = concat_samples(self._pending)
        self._pending = []
        self._pending_n = 0
        return out

    @property
    def pending(self) -> int:
        """Records currently sitting in the kernel buffer."""
        return self._pending_n

    # Subclasses override:
    def observe(
        self,
        batch: AccessBatch,
        *,
        op_base: int,
        paddr: np.ndarray,
        tlb_hit: np.ndarray,
        data_source: np.ndarray,
    ) -> None:
        """Feed one executed batch with its per-access metadata."""
        raise NotImplementedError

    def _records_at(
        self,
        batch: AccessBatch,
        picks: np.ndarray,
        *,
        op_base: int,
        paddr: np.ndarray,
        tlb_hit: np.ndarray,
        data_source: np.ndarray,
    ) -> SampleBatch:
        """Build sample records for batch positions ``picks``."""
        return SampleBatch(
            op_idx=np.uint64(op_base) + picks.astype(np.uint64),
            cpu=batch.cpu[picks],
            pid=batch.pid[picks],
            ip=batch.ip[picks],
            vaddr=batch.vaddr[picks],
            paddr=paddr[picks],
            is_store=batch.is_store[picks],
            tlb_hit=tlb_hit[picks],
            data_source=data_source[picks],
        )
