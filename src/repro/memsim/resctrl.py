"""Resource-Control-style monitoring (cache occupancy + memory bandwidth).

The paper's footnote 3: beyond classic HWPCs, the x86 Resource Control
feature (Intel RDT / AMD QoS) exposes per-task-group *cache occupancy*
(CMT) and *memory bandwidth* (MBM) through RMIDs.  TMP can use these as
additional coarse, near-free signals — e.g. a process whose LLC
occupancy is high but bandwidth is low holds a cache-resident working
set and gains little from fast memory.

Model: PIDs are assigned RMIDs; each executed batch reports, per RMID,
its LLC fills (misses that installed lines) and memory traffic.
Occupancy is the standard event-driven estimate: an exponentially
decayed fill share scaled to LLC capacity — matching how CMT's
occupancy counters track installs minus (aged-out) evictions without
per-line bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .address import LINE_SIZE

__all__ = ["ResctrlMonitor", "RMIDReading"]


@dataclass
class RMIDReading:
    """One interval's reading for one RMID."""

    rmid: int
    pids: tuple[int, ...]
    #: Estimated LLC occupancy in bytes (CMT).
    llc_occupancy_bytes: float
    #: Memory traffic this interval in bytes (MBM total).
    mbm_bytes: int


class ResctrlMonitor:
    """RMID assignment plus CMT/MBM accounting."""

    def __init__(self, llc_bytes: int, decay: float = 0.5, max_rmids: int = 64):
        if not 0.0 <= decay < 1.0:
            raise ValueError(f"decay must be in [0, 1), got {decay}")
        if max_rmids < 1:
            raise ValueError(f"max_rmids must be >= 1, got {max_rmids}")
        self.llc_bytes = int(llc_bytes)
        self.decay = float(decay)
        self.max_rmids = int(max_rmids)
        self._rmid_of: dict[int, int] = {}
        self._pids_of: dict[int, list[int]] = {}
        self._next_rmid = 1  # RMID 0 is the default/unmonitored group
        self._fill_ewma: dict[int, float] = {}
        self._interval_mem: dict[int, int] = {}

    # ---------------------------------------------------------------- groups

    def assign(self, pids, rmid: int | None = None) -> int:
        """Put ``pids`` into a monitoring group; returns its RMID."""
        if rmid is None:
            if self._next_rmid >= self.max_rmids:
                raise RuntimeError("out of RMIDs")
            rmid = self._next_rmid
            self._next_rmid += 1
        for pid in pids:
            self._rmid_of[int(pid)] = rmid
        group = self._pids_of.setdefault(rmid, [])
        group.extend(int(p) for p in pids if int(p) not in group)
        self._fill_ewma.setdefault(rmid, 0.0)
        self._interval_mem.setdefault(rmid, 0)
        return rmid

    def rmid_of(self, pid: int) -> int:
        """The RMID a PID reports under (0 if unassigned)."""
        return self._rmid_of.get(int(pid), 0)

    # ------------------------------------------------------------- observing

    def observe(self, pids: np.ndarray, mem_mask: np.ndarray) -> None:
        """Account one executed batch's memory traffic per RMID.

        ``mem_mask`` marks accesses that missed the LLC (each one both
        fills a line and moves LINE_SIZE bytes of memory traffic).
        """
        pids = np.asarray(pids)
        mem_mask = np.asarray(mem_mask, dtype=bool)
        if not mem_mask.any():
            return
        mem_pids = pids[mem_mask]
        for pid in np.unique(mem_pids):
            rmid = self.rmid_of(int(pid))
            if rmid == 0:
                continue
            n = int(np.count_nonzero(mem_pids == pid))
            self._interval_mem[rmid] = self._interval_mem.get(rmid, 0) + n

    # --------------------------------------------------------------- reading

    def read_and_reset(self) -> dict[int, RMIDReading]:
        """Interval read: occupancy estimates and bandwidth, then reset."""
        total_fills = sum(self._interval_mem.values())
        out: dict[int, RMIDReading] = {}
        for rmid, pids in self._pids_of.items():
            fills = self._interval_mem.get(rmid, 0)
            self._fill_ewma[rmid] = (
                self.decay * self._fill_ewma.get(rmid, 0.0) + (1 - self.decay) * fills
            )
            # Occupancy: this group's decayed share of recent fills,
            # scaled to LLC capacity (bounded by what it could install).
            ewma_total = sum(self._fill_ewma.values()) or 1.0
            share = self._fill_ewma[rmid] / ewma_total if total_fills or ewma_total else 0.0
            occupancy = min(
                share * self.llc_bytes, self._fill_ewma[rmid] * LINE_SIZE
            )
            out[rmid] = RMIDReading(
                rmid=rmid,
                pids=tuple(pids),
                llc_occupancy_bytes=float(occupancy),
                mbm_bytes=fills * LINE_SIZE,
            )
            self._interval_mem[rmid] = 0
        return out
