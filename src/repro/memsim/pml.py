"""Intel Page-Modification Logging.

When PML is active, each write that transitions a page's D bit from 0
to 1 also appends the write's physical address (4 KiB-aligned) to an
in-memory log; when the 512-entry log fills, the CPU notifies system
software (§II-B).  The machine feeds this logger with the newly-dirtied
PFNs reported by the page-table walker.

PML is a write-set mechanism: the log only grows while D bits keep
*transitioning*, so a consumer that wants a write-rate signal must
periodically clear D bits (the hypervisor pattern the Intel white paper
describes).  :meth:`clear_dirty` provides that reset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .address import ADDR_DTYPE
from .page_table import PageTable
from .pte import PTE_DIRTY

__all__ = ["PMLogger", "PMLStats", "PML_LOG_ENTRIES"]

#: Architectural PML log size (512 entries of 8 bytes — one 4K page).
PML_LOG_ENTRIES = 512


@dataclass
class PMLStats:
    """Cumulative PML event counters."""

    logged: int = 0
    notifications: int = 0


class PMLogger:
    """Accumulates D-bit-set events into a bounded log."""

    def __init__(self, log_entries: int = PML_LOG_ENTRIES):
        if log_entries < 1:
            raise ValueError(f"log_entries must be >= 1, got {log_entries}")
        self.log_entries = int(log_entries)
        self.enabled = True
        self.stats = PMLStats()
        self._pending: list[np.ndarray] = []
        self._pending_n = 0

    def observe_dirty(self, pfns: np.ndarray) -> None:
        """Log newly-dirtied frames (one entry per D-bit 0→1 transition)."""
        if not self.enabled:
            return
        pfns = np.asarray(pfns, dtype=ADDR_DTYPE)
        if pfns.size == 0:
            return
        before = self._pending_n
        self._pending.append(pfns)
        self._pending_n += pfns.size
        self.stats.logged += int(pfns.size)
        self.stats.notifications += (
            self._pending_n // self.log_entries - before // self.log_entries
        )

    def drain(self) -> np.ndarray:
        """Return and clear all logged PFNs (in log order)."""
        if not self._pending:
            return np.zeros(0, dtype=ADDR_DTYPE)
        out = np.concatenate(self._pending)
        self._pending = []
        self._pending_n = 0
        return out

    @property
    def pending(self) -> int:
        """Entries currently in the log."""
        return self._pending_n

    @staticmethod
    def clear_dirty(pt: PageTable) -> int:
        """Clear every D bit in a page table; return how many were set.

        Re-arms the log for the next write-tracking interval.
        """
        flags = pt.flags
        was_dirty = (flags & PTE_DIRTY) != 0
        flags &= ~PTE_DIRTY
        return int(np.count_nonzero(was_dirty))
