"""Page-table-entry flag encoding.

PTE flags follow the x86-64 layout for the bits the paper's mechanisms
care about: the *accessed* (A) bit set by the hardware page-table walker
on a TLB fill, the *dirty* (D) bit set on the first store to a clean
page, and software-reserved bit 51 used by BadgerTrap to *poison* an
entry so that the next hardware walk faults.

Flags are stored as ``uint64`` and manipulated in bulk with numpy; the
scalar helpers exist for readability in tests and sequential reference
code.
"""

from __future__ import annotations

import numpy as np

#: Translation is valid (the page is mapped).
PTE_PRESENT = np.uint64(1 << 0)
#: Page may be written.
PTE_WRITABLE = np.uint64(1 << 1)
#: Set by the page-table walker when the translation is loaded into the TLB.
PTE_ACCESSED = np.uint64(1 << 5)
#: Set by hardware on the first store to the page since the last clear.
PTE_DIRTY = np.uint64(1 << 6)
#: Software-reserved bit 51; a walk of a poisoned PTE raises a fault
#: (BadgerTrap's interception mechanism).
PTE_POISON = np.uint64(1 << 51)

#: Flags of a freshly mapped, writable, not-yet-accessed page.
PTE_DEFAULT = PTE_PRESENT | PTE_WRITABLE

_U64_1 = np.uint64(1)


def is_present(flags) -> np.ndarray:
    """Boolean mask of entries with the present bit set."""
    return (np.asarray(flags) & PTE_PRESENT) != 0


def is_accessed(flags) -> np.ndarray:
    """Boolean mask of entries with the accessed bit set."""
    return (np.asarray(flags) & PTE_ACCESSED) != 0


def is_dirty(flags) -> np.ndarray:
    """Boolean mask of entries with the dirty bit set."""
    return (np.asarray(flags) & PTE_DIRTY) != 0


def is_poisoned(flags) -> np.ndarray:
    """Boolean mask of entries with the BadgerTrap poison bit set."""
    return (np.asarray(flags) & PTE_POISON) != 0


def set_flags(flags: np.ndarray, idx, bits: np.uint64) -> None:
    """Set ``bits`` on ``flags[idx]`` in place."""
    flags[idx] |= bits


def clear_flags(flags: np.ndarray, idx, bits: np.uint64) -> None:
    """Clear ``bits`` on ``flags[idx]`` in place."""
    flags[idx] &= ~bits


def test_and_clear(flags: np.ndarray, bits: np.uint64) -> np.ndarray:
    """Atomically (from the simulation's view) read-and-clear ``bits``.

    Returns the boolean mask of entries that *had* the bits set, and
    clears them — the vectorized analogue of the kernel's
    ``TestClearPageReferenced`` routine used by the A-bit driver.
    """
    had = (flags & bits) != 0
    flags &= ~bits
    return had
