"""Address arithmetic for the simulated memory system.

The simulator models a conventional 64-bit machine with 4 KiB pages and
64-byte cache lines.  All bulk paths operate on ``numpy`` arrays of
``uint64`` addresses; scalar helpers are provided for tests and examples.

Terminology
-----------
vaddr / paddr
    Byte-granularity virtual / physical address.
vpn / pfn
    Virtual page number / physical frame number (``addr >> PAGE_SHIFT``).
line
    Cache-line number (``paddr >> LINE_SHIFT``).
"""

from __future__ import annotations

import numpy as np

#: log2 of the page size (4 KiB pages, as on x86-64 with base pages).
PAGE_SHIFT = 12
#: Page size in bytes.
PAGE_SIZE = 1 << PAGE_SHIFT
#: Mask selecting the in-page offset bits of an address.
PAGE_OFFSET_MASK = PAGE_SIZE - 1

#: log2 of the cache-line size (64-byte lines).
LINE_SHIFT = 6
#: Cache-line size in bytes.
LINE_SIZE = 1 << LINE_SHIFT
#: Mask selecting the in-line offset bits of an address.
LINE_OFFSET_MASK = LINE_SIZE - 1

#: Number of cache lines per page.
LINES_PER_PAGE = PAGE_SIZE // LINE_SIZE

#: dtype used for addresses, page numbers and tags throughout the simulator.
ADDR_DTYPE = np.uint64


def page_of(addr):
    """Return the page number(s) of byte address(es) ``addr``.

    Accepts scalars or arrays; the result has the same shape.
    """
    return np.asarray(addr, dtype=ADDR_DTYPE) >> ADDR_DTYPE(PAGE_SHIFT)


def line_of(addr):
    """Return the cache-line number(s) of byte address(es) ``addr``."""
    return np.asarray(addr, dtype=ADDR_DTYPE) >> ADDR_DTYPE(LINE_SHIFT)


def page_base(vpn):
    """Return the first byte address of page(s) ``vpn``."""
    return np.asarray(vpn, dtype=ADDR_DTYPE) << ADDR_DTYPE(PAGE_SHIFT)


def page_offset(addr):
    """Return the offset of ``addr`` within its page."""
    return np.asarray(addr, dtype=ADDR_DTYPE) & ADDR_DTYPE(PAGE_OFFSET_MASK)


def compose(vpn, offset):
    """Build byte address(es) from page number(s) and in-page offset(s)."""
    vpn = np.asarray(vpn, dtype=ADDR_DTYPE)
    offset = np.asarray(offset, dtype=ADDR_DTYPE)
    return (vpn << ADDR_DTYPE(PAGE_SHIFT)) | (offset & ADDR_DTYPE(PAGE_OFFSET_MASK))


def pages_spanned(nbytes: int) -> int:
    """Number of whole pages needed to hold ``nbytes`` bytes."""
    if nbytes < 0:
        raise ValueError(f"nbytes must be non-negative, got {nbytes}")
    return (nbytes + PAGE_SIZE - 1) >> PAGE_SHIFT


def is_pow2(n: int) -> bool:
    """True if ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0
