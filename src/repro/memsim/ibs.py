"""AMD Instruction-Based Sampling (op flavor).

IBS op sampling tags every *n*-th micro-operation as it enters the
pipeline and records, at retirement: virtual and physical data address,
load/store type, data-cache hit/miss status (our
:class:`~repro.memsim.events.DataSource`), TLB hit/miss, and the
northbridge data source (§II-B).  Because the counted population is
*all ops*, IBS observes cache-hitting accesses too; the TMP trace
driver later filters to memory-sourced samples for hotness.

The paper's rates: default = 1/256Ki ops; the evaluation settles on the
4x rate (1/64Ki) as the visibility/overhead sweet spot (§VI-A).
"""

from __future__ import annotations

import numpy as np

from .events import AccessBatch
from .sampling import DEFAULT_IBS_PERIOD, TraceSampler

__all__ = ["IBSSampler", "DEFAULT_IBS_PERIOD"]


class IBSSampler(TraceSampler):
    """Op-sampling engine: one record per ``period`` executed accesses."""

    vendor = "amd"
    name = "ibs"

    def __init__(
        self,
        period: int = DEFAULT_IBS_PERIOD,
        buffer_records: int = 4096,
        jitter: float = 0.0,
    ):
        super().__init__(period=period, buffer_records=buffer_records, jitter=jitter)

    def observe(
        self,
        batch: AccessBatch,
        *,
        op_base: int,
        paddr: np.ndarray,
        tlb_hit: np.ndarray,
        data_source: np.ndarray,
    ) -> None:
        """Tag every ``period``-th access of the executed batch."""
        picks = self._select(batch.n)
        if picks.size == 0:
            return
        self._deposit(
            self._records_at(
                batch,
                picks,
                op_base=op_base,
                paddr=paddr,
                tlb_hit=tlb_hit,
                data_source=data_source,
            )
        )
