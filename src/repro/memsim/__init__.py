"""Hardware substrate: the simulated memory system TMP profiles.

This subpackage models every mechanism the paper's profiler consumes —
page tables with A/D bits, a stateful TLB with a hardware walker, a
cache hierarchy, a multiplexing PMU, IBS/PEBS trace samplers, Intel
PML, and BadgerTrap — plus the machine assembly that executes workload
access streams through them.
"""

from .address import (
    LINE_SHIFT,
    LINE_SIZE,
    PAGE_SHIFT,
    PAGE_SIZE,
    line_of,
    page_of,
)
from .badgertrap import BadgerTrap
from .cache import CacheHierarchy, CacheLevel
from .events import AccessBatch, DataSource, SampleBatch
from .frames import FrameAllocator, FrameStats
from .ibs import IBSSampler
from .lwp import LWPSampler
from .machine import BatchResult, Machine, MachineConfig
from .page_table import PageTable, TranslationFault, VMA
from .pebs import PEBSSampler
from .pml import PMLogger
from .resctrl import ResctrlMonitor, RMIDReading
from .pmu import EVENT_NAMES, PMU
from .ptw import PageTableWalker
from .sampling import DEFAULT_IBS_PERIOD
from .tlb import TLB

__all__ = [
    "AccessBatch",
    "BadgerTrap",
    "BatchResult",
    "CacheHierarchy",
    "CacheLevel",
    "DataSource",
    "DEFAULT_IBS_PERIOD",
    "EVENT_NAMES",
    "FrameAllocator",
    "FrameStats",
    "IBSSampler",
    "LWPSampler",
    "LINE_SHIFT",
    "LINE_SIZE",
    "Machine",
    "MachineConfig",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "PageTable",
    "PageTableWalker",
    "PEBSSampler",
    "PMLogger",
    "ResctrlMonitor",
    "RMIDReading",
    "PMU",
    "SampleBatch",
    "TLB",
    "TranslationFault",
    "VMA",
    "line_of",
    "page_of",
]
