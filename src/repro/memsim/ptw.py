"""Hardware page-table walker.

On every TLB miss the walker resolves the translation from the page
table and — the behaviour all A-bit profiling hinges on — sets the PTE
*accessed* bit as part of the fill (§II-B).  Dirty bits follow the
different rule the paper quotes from Bhattacharjee et al.: because D
bits are needed for correctness they are part of the TLB entry, and a
store whose cached D bit is 0 triggers a walk to set the PTE D bit even
on a TLB hit.  We model that as "the first store to a page since its D
bit was last cleared sets it", independent of TLB state.

The walker is also BadgerTrap's hook: a walk that lands on a PTE with
the poison bit raises a protection fault that the kernel intercepts
(see ``badgertrap.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .pte import PTE_ACCESSED, PTE_DIRTY, PTE_POISON
from .page_table import PageTable

__all__ = ["PageTableWalker", "PTWStats"]


@dataclass
class PTWStats:
    """Cumulative walker event counters."""

    walks: int = 0
    a_bits_set: int = 0
    d_bits_set: int = 0
    poison_faults: int = 0


class PageTableWalker:
    """Sets A/D bits and surfaces poison faults for executed batches."""

    def __init__(self):
        self.stats = PTWStats()

    def fill_walks(self, pt: PageTable, miss_slots: np.ndarray) -> np.ndarray:
        """Process TLB-miss fills for one process's accesses.

        ``miss_slots`` are PTE slots of the accesses that missed the
        TLB, in program order (duplicates allowed — several misses can
        walk the same PTE within a batch).  Sets the accessed bit on
        each walked PTE and returns the per-miss boolean mask of walks
        that hit a *poisoned* PTE (BadgerTrap faults).
        """
        miss_slots = np.asarray(miss_slots, dtype=np.int64)
        self.stats.walks += int(miss_slots.size)
        if miss_slots.size == 0:
            return np.zeros(0, dtype=bool)
        flags = pt.flags
        touched = np.unique(miss_slots)
        newly = (flags[touched] & PTE_ACCESSED) == 0
        flags[touched] |= PTE_ACCESSED
        self.stats.a_bits_set += int(np.count_nonzero(newly))

        poisoned_mask = (flags[miss_slots] & PTE_POISON) != 0
        self.stats.poison_faults += int(np.count_nonzero(poisoned_mask))
        return poisoned_mask

    def dirty_updates(self, pt: PageTable, store_slots: np.ndarray) -> np.ndarray:
        """Set D bits for a batch of stores; return slots newly dirtied.

        Newly dirtied slots are what Intel PML would append to its
        write log.  A store to an already-dirty page costs nothing.
        """
        store_slots = np.asarray(store_slots, dtype=np.int64)
        if store_slots.size == 0:
            return store_slots
        flags = pt.flags
        touched = np.unique(store_slots)
        newly = touched[(flags[touched] & PTE_DIRTY) == 0]
        flags[newly] |= PTE_DIRTY
        self.stats.d_bits_set += int(newly.size)
        return newly
