"""Physical frame allocation and per-frame bookkeeping.

The machine hands out physical frames eagerly when a VMA is mapped, in
ascending PFN order, and frames are never recycled within a simulation
run.  PFNs therefore double as stable global page identities: the page
descriptor store (``repro.core.page_stats``), the tier placement map
(``repro.tiering.placement``) and the heatmap/CDF analyses all index by
PFN.

``FrameStats`` holds the *ground-truth* per-frame access counters the
machine maintains regardless of which profilers are armed.  Ground
truth feeds the Oracle policy and the accuracy metrics; the profilers
under evaluation only ever see their own (partial) sampled views.
"""

from __future__ import annotations

import numpy as np

from .address import ADDR_DTYPE

__all__ = ["FrameAllocator", "FrameStats", "GrowableArray"]


class GrowableArray:
    """A 1-D numpy array that grows geometrically as frames are added.

    Reads and vectorized updates go through :meth:`data`, which returns
    a view trimmed to the current logical length.
    """

    def __init__(self, dtype, fill=0, initial_capacity: int = 1024):
        self._dtype = np.dtype(dtype)
        self._fill = fill
        self._buf = np.full(int(initial_capacity), fill, dtype=self._dtype)
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def resize(self, n: int) -> None:
        """Grow the logical length to ``n`` (no-op if already larger)."""
        if n <= self._len:
            return
        if n > self._buf.size:
            cap = max(n, self._buf.size * 2)
            newbuf = np.full(cap, self._fill, dtype=self._dtype)
            newbuf[: self._len] = self._buf[: self._len]
            self._buf = newbuf
        self._len = n

    def data(self) -> np.ndarray:
        """View of the live portion of the array."""
        return self._buf[: self._len]

    def fill(self, value) -> None:
        """Set every live element to ``value``."""
        self._buf[: self._len] = value


class FrameAllocator:
    """Monotonic physical-frame allocator.

    Parameters
    ----------
    total_frames:
        Hard cap on the number of frames (the machine's physical memory
        size in pages); exceeding it raises ``MemoryError``.
    """

    def __init__(self, total_frames: int):
        if total_frames <= 0:
            raise ValueError(f"total_frames must be positive, got {total_frames}")
        self.total_frames = int(total_frames)
        self._next = 0

    @property
    def allocated(self) -> int:
        """Number of frames handed out so far."""
        return self._next

    @property
    def free(self) -> int:
        """Number of frames still available."""
        return self.total_frames - self._next

    def alloc(self, n: int) -> int:
        """Allocate ``n`` contiguous frames; return the base PFN."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if self._next + n > self.total_frames:
            raise MemoryError(
                f"out of physical frames: requested {n}, "
                f"free {self.free} of {self.total_frames}"
            )
        base = self._next
        self._next += n
        return base


class FrameStats:
    """Ground-truth per-frame counters maintained by the machine.

    Attributes (all PFN-indexed, grown lazily as frames are allocated):

    ``access_count``   total loads+stores that touched the frame.
    ``store_count``    total stores.
    ``mem_access_count`` accesses serviced from memory (LLC misses) —
                       the paper's notion of an access that a tier
                       actually observes; tier-1 hitrate is computed
                       over these.
    ``tlb_miss_count`` accesses that missed the TLB (page walks).
    ``first_touch_op`` global op index of the frame's first access
                       (``UINT64_MAX`` until touched) — drives the
                       first-come-first-allocate baseline.
    """

    _NEVER = np.uint64(np.iinfo(np.uint64).max)

    def __init__(self):
        self._access = GrowableArray(np.int64)
        self._store = GrowableArray(np.int64)
        self._mem = GrowableArray(np.int64)
        self._tlbmiss = GrowableArray(np.int64)
        self._first = GrowableArray(ADDR_DTYPE, fill=self._NEVER)

    def resize(self, n_frames: int) -> None:
        """Ensure counters exist for PFNs ``[0, n_frames)``."""
        for arr in (self._access, self._store, self._mem, self._tlbmiss, self._first):
            arr.resize(n_frames)

    def __len__(self) -> int:
        return len(self._access)

    @property
    def access_count(self) -> np.ndarray:
        return self._access.data()

    @property
    def store_count(self) -> np.ndarray:
        return self._store.data()

    @property
    def mem_access_count(self) -> np.ndarray:
        return self._mem.data()

    @property
    def tlb_miss_count(self) -> np.ndarray:
        return self._tlbmiss.data()

    @property
    def first_touch_op(self) -> np.ndarray:
        return self._first.data()

    def touched_mask(self) -> np.ndarray:
        """Boolean mask of frames that have ever been accessed."""
        return self._first.data() != self._NEVER

    def record(
        self,
        pfns: np.ndarray,
        is_store: np.ndarray,
        mem_mask: np.ndarray,
        tlb_miss_mask: np.ndarray,
        op_base: int,
    ) -> None:
        """Accumulate one executed batch into the counters.

        ``pfns`` are per-access frame numbers; the masks are per-access
        booleans aligned with ``pfns``; ``op_base`` is the global op
        index of the batch's first access (used for first-touch
        stamps).
        """
        if pfns.size == 0:
            return
        n = len(self._access)
        pf = pfns.astype(np.intp, copy=False)
        self._access.data()[:] += np.bincount(pf, minlength=n)
        if is_store.any():
            self._store.data()[:] += np.bincount(pf[is_store], minlength=n)
        if mem_mask.any():
            self._mem.data()[:] += np.bincount(pf[mem_mask], minlength=n)
        if tlb_miss_mask.any():
            self._tlbmiss.data()[:] += np.bincount(pf[tlb_miss_mask], minlength=n)

        first = self._first.data()
        untouched = np.flatnonzero(first[pf] == self._NEVER)
        if untouched.size:
            # First position in the batch at which each new frame appears.
            new_pfns, first_pos = np.unique(pf[untouched], return_index=True)
            first[new_pfns] = ADDR_DTYPE(op_base) + untouched[first_pos].astype(
                ADDR_DTYPE
            )
