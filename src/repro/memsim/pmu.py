"""Performance monitoring unit with counter multiplexing.

HWPCs give TMP its near-free, coarse-grained signal: LLC-miss and
dTLB-miss rates gate the expensive profilers (§III-B.4, first
optimization).  The PMU has a fixed number of physical counter
registers; when software programs more events than registers, ``perf``
time-multiplexes them and scales the counts by observed duty cycle —
which is exactly what this model does, so the verbosity loss the paper
lists as HWPCs' disadvantage (Table I) is reproducible.

Event names understood by the machine:

======================  =================================================
``retired_ops``         every executed access (proxy for retired µops)
``retired_loads``       load accesses
``retired_stores``      store accesses
``l1_miss``             accesses missing L1
``l2_miss``             accesses missing L2
``llc_miss``            accesses missing the LLC (reaching memory)
``dtlb_miss``           accesses missing the TLB
``ptw_walks``           hardware page-table walks
======================  =================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["PMU", "EVENT_NAMES", "PMUReading"]

EVENT_NAMES = (
    "retired_ops",
    "retired_loads",
    "retired_stores",
    "l1_miss",
    "l2_miss",
    "llc_miss",
    "dtlb_miss",
    "ptw_walks",
)


@dataclass
class PMUReading:
    """A scaled event estimate plus its multiplexing metadata."""

    event: str
    estimate: float
    raw_counted: int
    duty_cycle: float

    @property
    def scheduled(self) -> bool:
        """The event held a physical register for at least one slice."""
        return self.duty_cycle > 0.0

    @property
    def multiplexed(self) -> bool:
        """The event was time-sliced: counted, but not in every slice.

        An event that was *never* scheduled (``duty_cycle == 0.0`` —
        the PMU has seen no slices yet, or rotation has not reached
        it) is not multiplexed; its estimate is missing, not scaled.
        Check :attr:`scheduled` to distinguish that case.
        """
        return 0.0 < self.duty_cycle < 1.0


class PMU:
    """Per-machine performance counters with round-robin multiplexing.

    Parameters
    ----------
    n_counters:
        Physical counter registers (6 on Zen 2, the paper's testbed
        family).
    """

    def __init__(self, n_counters: int = 6):
        if n_counters < 1:
            raise ValueError(f"n_counters must be >= 1, got {n_counters}")
        self.n_counters = n_counters
        self._events: list[str] = []
        self._counted: dict[str, int] = {}
        self._active_slices: dict[str, int] = {}
        self._total_slices = 0
        self._rotor = 0

    def configure(self, events: list[str]) -> None:
        """Program the PMU with an event list (resets all counts)."""
        unknown = [e for e in events if e not in EVENT_NAMES]
        if unknown:
            raise ValueError(f"unknown PMU events: {unknown}")
        if len(set(events)) != len(events):
            raise ValueError("duplicate PMU events")
        self._events = list(events)
        self.reset()

    @property
    def events(self) -> list[str]:
        """Currently programmed events."""
        return list(self._events)

    @property
    def is_multiplexing(self) -> bool:
        """True when more events are programmed than registers exist."""
        return len(self._events) > self.n_counters

    def reset(self) -> None:
        """Zero all counts and duty bookkeeping."""
        self._counted = {e: 0 for e in self._events}
        self._active_slices = {e: 0 for e in self._events}
        self._total_slices = 0
        self._rotor = 0

    def _active_set(self) -> list[str]:
        if not self.is_multiplexing:
            return self._events
        n = len(self._events)
        picked = [self._events[(self._rotor + i) % n] for i in range(self.n_counters)]
        self._rotor = (self._rotor + self.n_counters) % n
        return picked

    def update(self, raw: dict[str, int]) -> None:
        """Feed one time slice of raw event counts from the machine.

        Only the events resident in physical registers during this
        slice accumulate; the rest lose this slice's counts (the
        multiplexing information loss).
        """
        active = self._active_set()
        self._total_slices += 1
        for e in active:
            self._active_slices[e] += 1
            self._counted[e] += int(raw.get(e, 0))

    def read(self, event: str) -> PMUReading:
        """Duty-cycle-scaled estimate of one event's total count."""
        if event not in self._counted:
            raise KeyError(f"event {event!r} is not programmed")
        duty_slices = self._active_slices[event]
        duty = duty_slices / self._total_slices if self._total_slices else 0.0
        counted = self._counted[event]
        estimate = counted / duty if duty > 0 else 0.0
        return PMUReading(event, estimate, counted, duty)

    def read_all(self) -> dict[str, PMUReading]:
        """Estimates for every programmed event."""
        return {e: self.read(e) for e in self._events}

    def read_and_reset(self) -> dict[str, PMUReading]:
        """Interval read: return estimates and zero the counters."""
        out = self.read_all()
        rotor = self._rotor  # keep rotation phase across intervals
        self.reset()
        self._rotor = rotor
        return out
