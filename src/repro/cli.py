"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the library's main entry points so the paper's
experiments can be driven without writing code:

``list``
    Show available workloads and policies.
``profile WORKLOAD``
    Run TMP over a workload; print per-epoch detections and the
    summary statistics / numa_maps.
``tier WORKLOAD``
    Run the tiered simulator with a chosen policy/source/ratio.
``heatmap WORKLOAD``
    Print the Fig. 3 / Fig. 4 ASCII heatmaps for one workload.
``sweep WORKLOAD``
    The Fig. 6 grid (policies × sources × ratios) for one workload.
``serve``
    Run the online multi-session profiling service (JSON lines over
    TCP or a unix socket).  ``--workers N`` executes sessions on a
    sticky pool of N worker processes (default: core count;
    ``$REPRO_SERVICE_WORKERS`` overrides; 0 steps in-process).
    ``--metrics-port`` exposes a Prometheus scrape endpoint and
    ``--log-json`` switches on structured logs; see ``docs/service.md``
    and ``docs/observability.md``.

``record``, ``evaluate`` and ``sweep`` accept ``--jobs N`` (process-
pool fan-out; default ``$REPRO_JOBS`` or the core count) and
``--cache-dir DIR`` (content-addressed recorded-run cache; default
``$REPRO_CACHE_DIR``).  ``record`` and ``sweep`` accept ``all`` as the
workload to run the whole Table III suite.  See ``docs/performance.md``.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="TMP tiered-memory profiling reproduction (IPDPS 2021)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and policies")

    p = sub.add_parser("profile", help="profile a workload with TMP")
    _common(p)
    p.add_argument("--no-abit", action="store_true", help="disable the A-bit driver")
    p.add_argument("--no-trace", action="store_true", help="disable the trace driver")
    p.add_argument(
        "--trace-source", choices=("ibs", "pebs"), default="ibs",
        help="which hardware sampler feeds the trace driver",
    )
    p.add_argument("--gating", action="store_true", help="enable HWPC gating")
    p.add_argument("--numa-maps", action="store_true", help="print numa_maps at the end")

    p = sub.add_parser("tier", help="run tiered-memory placement")
    _common(p)
    p.add_argument("--policy", default="history", help="placement policy name")
    p.add_argument(
        "--source", choices=("abit", "trace", "combined"), default="combined"
    )
    p.add_argument("--ratio", type=float, default=1 / 16, help="tier1 : footprint")
    p.add_argument(
        "--baseline", action="store_true",
        help="also run the FCFA baseline and report the speedup",
    )

    p = sub.add_parser("heatmap", help="print Fig. 3/4 heatmaps for a workload")
    _common(p)
    p.add_argument("--bins", type=int, default=28, help="address bins (rows)")

    p = sub.add_parser("sweep", help="Fig. 6 grid for one workload (or `all`)")
    _common(p)
    _runner_opts(p)
    p.add_argument(
        "--bench-out", default=None, metavar="PATH",
        help="write per-stage runner timings as JSON (BENCH_runner.json)",
    )

    p = sub.add_parser("record", help="record a run (or `all`) to .npz")
    _common(p)
    _runner_opts(p)
    p.add_argument(
        "output",
        help="destination .npz path (a directory when workload is `all`)",
    )
    p.add_argument(
        "--no-samples", action="store_true", help="omit raw trace samples (smaller file)"
    )

    p = sub.add_parser("evaluate", help="score policies on a saved recording")
    p.add_argument(
        "recording",
        help=".npz file from `repro record`, or a workload name with "
        "--cache-dir (recorded on miss)",
    )
    _runner_opts(p)
    p.add_argument(
        "--policy", default="history",
        help="policy name, or a comma-separated list for a grid",
    )
    p.add_argument(
        "--source", default="combined",
        help="abit|trace|combined, or a comma-separated list",
    )
    p.add_argument(
        "--ratio", default=str(1 / 16),
        help="tier1 : footprint, or a comma-separated list",
    )
    p.add_argument("--epochs", type=int, default=8, help="epochs when recording")
    p.add_argument("--seed", type=int, default=0, help="seed when recording")
    p.add_argument(
        "--ibs-period", type=int, default=16, help="trace period when recording"
    )

    p = sub.add_parser(
        "serve", help="run the online profiling service (docs/service.md)"
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address (TCP mode)")
    p.add_argument(
        "--port", type=int, default=7790, help="TCP port (0 picks a free one)"
    )
    p.add_argument(
        "--socket", default=None, metavar="PATH",
        help="serve on a unix socket instead of TCP",
    )
    p.add_argument(
        "--max-sessions", type=_positive_int, default=16,
        help="admission limit on concurrent sessions",
    )
    p.add_argument(
        "--idle-ttl", type=float, default=600.0, metavar="SECONDS",
        help="evict sessions idle longer than this (<= 0 disables)",
    )
    p.add_argument(
        "--reap-interval", type=float, default=5.0, metavar="SECONDS",
        help="how often the reaper scans for idle sessions (<= 0 disables)",
    )
    p.add_argument(
        "--step-workers", type=_positive_int, default=None, metavar="N",
        help="worker threads executing session steps",
    )
    p.add_argument(
        "--workers", type=_nonnegative_int, default=None, metavar="N",
        help="sticky session worker processes (0 = step in-process; "
        "default: $REPRO_SERVICE_WORKERS or the core count)",
    )
    p.add_argument(
        "--metrics-port", type=_nonnegative_int, default=None, metavar="PORT",
        help="serve Prometheus metrics on this port (0 picks a free one; "
        "default: $REPRO_METRICS_PORT or disabled)",
    )
    p.add_argument(
        "--log-json", action="store_true",
        help="emit structured JSON logs on stderr (also $REPRO_LOG_JSON)",
    )
    p.add_argument(
        "--ledger-dir", default=None, metavar="DIR",
        help="durable telemetry ledger root: frames persist per session, "
        "subscribe(from_seq=...) replays history, and crashed worker "
        "sessions are recovered (default: $REPRO_LEDGER_DIR or disabled)",
    )
    p.add_argument(
        "--ledger-fsync", choices=("always", "rotate", "never"),
        default="rotate",
        help="ledger durability: fsync every append, only on segment "
        "rotation (default), or never",
    )
    p.add_argument(
        "--ledger-retention-bytes", type=_positive_int, default=None,
        metavar="N",
        help="compact each session's oldest sealed segments above this size",
    )
    p.add_argument(
        "--evict-to-disk", action="store_true",
        help="checkpoint idle-evicted sessions to the ledger instead of "
        "discarding them; resume_session re-admits them bit-identically "
        "(needs --ledger-dir)",
    )
    p.add_argument(
        "--tenant-quota", type=_positive_int, default=None, metavar="N",
        help="max live sessions per tenant (create_session's tenant param); "
        "over-quota creates are rejected with the `overloaded` error code",
    )
    p.add_argument(
        "--max-inflight-steps", type=_positive_int, default=None, metavar="N",
        help="global cap on concurrently executing steps; excess steps are "
        "rejected with `overloaded` instead of queueing (load shedding)",
    )

    p = sub.add_parser(
        "loadtest",
        help="open-loop load test against a live `repro serve` "
        "(docs/performance.md)",
    )
    target = p.add_mutually_exclusive_group()
    target.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="TCP address of a running server",
    )
    target.add_argument(
        "--socket", default=None, metavar="PATH",
        help="unix socket of a running server",
    )
    target.add_argument(
        "--spawn", action="store_true",
        help="spawn a throwaway `repro serve` subprocess for the run",
    )
    p.add_argument(
        "--sessions", type=_positive_int, default=200,
        help="total sessions to launch",
    )
    p.add_argument(
        "--arrival-rate", type=float, default=100.0, metavar="PER_S",
        help="mean session arrivals per second (Poisson, open loop)",
    )
    p.add_argument(
        "--steps", type=_positive_int, default=3, metavar="N",
        help="steps per session",
    )
    p.add_argument(
        "--step-epochs", type=_positive_int, default=1, metavar="N",
        help="epochs per step op",
    )
    p.add_argument("--workload", default="gups", help="workload for every session")
    p.add_argument(
        "--footprint-pages", type=_positive_int, default=256,
        help="per-session workload footprint (kept small so one box can "
        "host hundreds of concurrent sessions)",
    )
    p.add_argument(
        "--accesses-per-epoch", type=_positive_int, default=1000,
        help="per-session accesses simulated each epoch",
    )
    p.add_argument(
        "--connections", type=_positive_int, default=4,
        help="client connections the session population multiplexes over",
    )
    p.add_argument(
        "--subscribe-fraction", type=float, default=0.25,
        help="fraction of sessions that subscribe to their event stream",
    )
    p.add_argument(
        "--stats-fraction", type=float, default=0.25,
        help="probability of a stats call after each step",
    )
    p.add_argument(
        "--tenants", type=_positive_int, default=1,
        help="spread creates across this many tenant names (t0, t1, ...)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--timeout", type=float, default=300.0, metavar="SECONDS",
        help="hard wall-clock cap on the run",
    )
    p.add_argument(
        "--out", default="BENCH_load.json", metavar="PATH",
        help="report path (atomic write)",
    )
    p.add_argument(
        "--slo-step-p99", type=float, default=None, metavar="SECONDS",
        help="fail (exit 1) when step p99 latency exceeds this",
    )
    # --spawn server shape; ignored with --connect/--socket.
    p.add_argument(
        "--spawn-max-sessions", type=_positive_int, default=None, metavar="N",
        help="--max-sessions for the spawned server (default: sessions)",
    )
    p.add_argument(
        "--spawn-workers", type=_nonnegative_int, default=0, metavar="N",
        help="--workers for the spawned server (default 0: in-process steps)",
    )
    p.add_argument(
        "--spawn-tenant-quota", type=_positive_int, default=None, metavar="N",
        help="--tenant-quota for the spawned server",
    )
    p.add_argument(
        "--spawn-max-inflight-steps", type=_positive_int, default=None,
        metavar="N", help="--max-inflight-steps for the spawned server",
    )
    p.add_argument(
        "--spawn-idle-ttl", type=float, default=None, metavar="SECONDS",
        help="--idle-ttl for the spawned server",
    )
    p.add_argument(
        "--spawn-reap-interval", type=float, default=None, metavar="SECONDS",
        help="--reap-interval for the spawned server",
    )
    p.add_argument(
        "--spawn-ledger-dir", default=None, metavar="DIR",
        help="--ledger-dir for the spawned server",
    )
    p.add_argument(
        "--spawn-evict-to-disk", action="store_true",
        help="--evict-to-disk for the spawned server "
        "(needs --spawn-ledger-dir)",
    )
    p.add_argument(
        "--evict-resume-fraction", type=float, default=0.0,
        help="fraction of sessions that pause mid-life, wait to be "
        "idle-evicted (checkpointed), then resume_session and finish",
    )
    p.add_argument(
        "--evict-wait", type=float, default=10.0, metavar="SECONDS",
        help="max wall-clock an evict/resume session waits to be evicted",
    )

    p = sub.add_parser(
        "ledger", help="inspect a service telemetry ledger (docs/service.md)"
    )
    lsub = p.add_subparsers(dest="ledger_command", required=True)
    lp = lsub.add_parser("list", help="list recorded sessions under a root")
    lp.add_argument("dir", help="ledger root (what serve --ledger-dir got)")
    lp = lsub.add_parser("cat", help="print one session's records, JSONL")
    lp.add_argument("dir", help="ledger root")
    lp.add_argument("session", help="session id (see `repro ledger list`)")
    lp.add_argument(
        "--from-seq", type=_nonnegative_int, default=0, metavar="N",
        help="first seq to print",
    )
    lp.add_argument(
        "--to-seq", type=_nonnegative_int, default=None, metavar="N",
        help="stop before this seq",
    )
    lp = lsub.add_parser(
        "replay", help="rebuild and summarize the session's SimulationResult"
    )
    lp.add_argument("dir", help="ledger root")
    lp.add_argument("session", help="session id (see `repro ledger list`)")
    return parser


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _runner_opts(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--jobs", type=_positive_int, default=None, metavar="N",
        help="parallel worker processes (default: $REPRO_JOBS or cpu count)",
    )
    p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed recorded-run cache (default: $REPRO_CACHE_DIR)",
    )


def _common(p: argparse.ArgumentParser) -> None:
    p.add_argument("workload", help="workload name (see `repro list`)")
    p.add_argument("--epochs", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--ibs-period", type=int, default=16,
        help="trace sampling period (scaled; 64=default rate, 16=4x, 8=8x)",
    )


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "list": _cmd_list,
        "profile": _cmd_profile,
        "tier": _cmd_tier,
        "heatmap": _cmd_heatmap,
        "sweep": _cmd_sweep,
        "record": _cmd_record,
        "evaluate": _cmd_evaluate,
        "serve": _cmd_serve,
        "loadtest": _cmd_loadtest,
        "ledger": _cmd_ledger,
    }[args.command]
    return handler(args)


def _machine_config(args):
    from .memsim import MachineConfig

    return MachineConfig.scaled(ibs_period=args.ibs_period)


def _workload(args):
    from .workloads import WORKLOAD_NAMES, make_workload

    if args.workload not in WORKLOAD_NAMES:
        raise SystemExit(
            f"unknown workload {args.workload!r}; available: {', '.join(WORKLOAD_NAMES)}"
        )
    return make_workload(args.workload)


def _workload_names(args) -> list[str]:
    """Resolve the workload positional, allowing ``all`` for the suite."""
    from .workloads import WORKLOAD_NAMES

    if args.workload == "all":
        return list(WORKLOAD_NAMES)
    if args.workload not in WORKLOAD_NAMES:
        raise SystemExit(
            f"unknown workload {args.workload!r}; available: "
            f"all, {', '.join(WORKLOAD_NAMES)}"
        )
    return [args.workload]


def _cache(args):
    from .runner import RunCache

    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    return RunCache(cache_dir) if cache_dir else None


def _cmd_list(args) -> int:
    from .tiering.policies import POLICIES
    from .workloads import WORKLOADS, make_workload

    print("workloads (Table III):")
    for name in WORKLOADS:
        w = make_workload(name)
        print(
            f"  {name:16s} {w.footprint_pages:7d} pages, "
            f"{w.n_processes:2d} processes, "
            f"{w.accesses_per_epoch} accesses/epoch"
        )
    print("\npolicies:")
    for name, cls in POLICIES.items():
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:12s} {doc}")
    return 0


def _cmd_profile(args) -> int:
    from .core import TMPConfig, TMPDaemon, TMProfiler
    from .memsim import Machine

    machine = Machine(_machine_config(args))
    workload = _workload(args)
    workload.attach(machine)
    cfg = TMPConfig(
        abit_enabled=not args.no_abit,
        trace_enabled=not args.no_trace,
        trace_source=args.trace_source,
        hwpc_gating=args.gating,
    )
    profiler = TMProfiler(machine, cfg)
    daemon = TMPDaemon(profiler)
    daemon.add_workload(workload)

    rng = np.random.default_rng(args.seed)
    for epoch in range(args.epochs):
        batch = workload.epoch(epoch, rng)
        result = machine.run_batch(batch)
        profiler.observe_batch(batch, result)
        report = daemon.poll_epoch()
        gate = ""
        if report.gating is not None:
            gate = f" gate[trace={report.gating.trace_active} abit={report.gating.abit_active}]"
        print(
            f"epoch {epoch}: accesses={batch.n} abit={report.abit_pages_found} "
            f"trace={report.trace_samples} overhead={report.overhead.total_s*1e3:.2f}ms{gate}"
        )

    print("\nstatistics:")
    for key, value in daemon.statistics().items():
        print(f"  {key}: {value}")
    if args.numa_maps:
        print("\n" + daemon.numa_maps(workload.pids[:1]))
    return 0


def _cmd_tier(args) -> int:
    from .tiering import TieredSimulator
    from .tiering.policies import POLICIES, FCFAPolicy

    if args.policy not in POLICIES:
        raise SystemExit(
            f"unknown policy {args.policy!r}; available: {', '.join(POLICIES)}"
        )
    sim = TieredSimulator(
        _workload(args),
        POLICIES[args.policy](),
        tier1_ratio=args.ratio,
        rank_source=args.source,
        machine_config=_machine_config(args),
        seed=args.seed,
    )
    res = sim.run(args.epochs)
    print(
        f"{res.workload} / {res.policy} / {res.rank_source} "
        f"@ tier1={args.ratio:.4g} ({res.tier1_capacity} pages)"
    )
    for e in res.epochs:
        print(
            f"  epoch {e.epoch}: hitrate={e.hitrate:.3f} "
            f"promoted={e.promoted} demoted={e.demoted} runtime={e.runtime_s:.3f}s"
        )
    print(f"mean hitrate {res.mean_hitrate:.3f}, runtime {res.total_runtime_s:.2f}s")
    if args.baseline:
        base = TieredSimulator(
            _workload(args),
            FCFAPolicy(),
            tier1_ratio=args.ratio,
            machine_config=_machine_config(args),
            seed=args.seed,
        ).run(args.epochs)
        print(
            f"fcfa baseline: hitrate {base.mean_hitrate:.3f}, "
            f"runtime {base.total_runtime_s:.2f}s, "
            f"speedup {res.speedup_over(base):.3f}x"
        )
    return 0


def _cmd_heatmap(args) -> int:
    from .analysis import heatmap_from_profiles, render_heatmap
    from .analysis.heatmap import heatmap_from_epoch_samples
    from .tiering import record_run

    rec = record_run(
        _workload(args),
        machine_config=_machine_config(args),
        epochs=args.epochs,
        seed=args.seed,
    )
    ibs = heatmap_from_epoch_samples(
        [r.samples for r in rec.epochs], n_addr_bins=args.bins, n_frames=rec.n_frames
    )
    print(render_heatmap(ibs, title=f"[{rec.workload}] IBS samples (Fig. 3 view)"))
    print()
    abit = heatmap_from_profiles(
        [r.profile for r in rec.epochs],
        field="abit",
        n_addr_bins=args.bins,
        n_frames=rec.n_frames,
    )
    print(render_heatmap(abit, title=f"[{rec.workload}] A-bit (Fig. 4 view)"))
    return 0


def _cmd_sweep(args) -> int:
    from .analysis import DEFAULT_RATIOS, fig6_sweep, format_series

    names = _workload_names(args)
    points = fig6_sweep(
        names,
        epochs=args.epochs,
        seed=args.seed,
        ibs_period=args.ibs_period,
        jobs=args.jobs,
        cache=_cache(args),
        bench_path=args.bench_out,
    )
    labels = [f"1/{int(round(1/r))}" for r in DEFAULT_RATIOS]
    for name in names:
        print(f"Fig. 6 grid for {name}:")
        for policy in ("oracle", "history"):
            for source in ("abit", "trace", "combined"):
                ys = [
                    p.hitrate
                    for p in points
                    if p.workload == name
                    and p.policy == policy
                    and p.source == source
                ]
                print(format_series(f"{policy}/{source}", labels, ys))
    if args.bench_out:
        print(f"runner timings -> {args.bench_out}")
    return 0


def _record_specs(args, names):
    from .runner import RecordSpec

    return [
        RecordSpec(
            name,
            machine_config=_machine_config(args),
            epochs=args.epochs,
            seed=args.seed,
        )
        for name in names
    ]


def _cmd_record(args) -> int:
    from pathlib import Path

    from .runner import record_suite
    from .tiering import save_recorded

    names = _workload_names(args)
    runs = record_suite(
        _record_specs(args, names), jobs=args.jobs, cache=_cache(args)
    )
    include_samples = not args.no_samples
    if len(names) == 1:
        targets = [Path(args.output)]
    else:
        out_dir = Path(args.output)
        out_dir.mkdir(parents=True, exist_ok=True)
        targets = [out_dir / f"{name}.npz" for name in names]
    for rec, target in zip(runs, targets):
        path = save_recorded(rec, target, include_samples=include_samples)
        print(
            f"recorded {rec.workload}: {rec.n_epochs} epochs, "
            f"{rec.n_frames} frames -> {path}"
        )
    return 0


def _cmd_evaluate(args) -> int:
    from pathlib import Path

    from .runner import GridCell, RecordSpec, evaluate_grid, get_or_record
    from .tiering import load_recorded
    from .tiering.policies import POLICIES
    from .workloads import WORKLOAD_NAMES

    policies = args.policy.split(",")
    sources = args.source.split(",")
    try:
        ratios = [float(r) for r in args.ratio.split(",")]
    except ValueError:
        raise SystemExit(
            f"invalid --ratio {args.ratio!r}: expected a float or a "
            "comma-separated list of floats"
        )
    for policy in policies:
        if policy not in POLICIES:
            raise SystemExit(
                f"unknown policy {policy!r}; available: {', '.join(POLICIES)}"
            )

    cache = _cache(args)
    if Path(args.recording).exists():
        rec = load_recorded(args.recording)
    elif args.recording in WORKLOAD_NAMES and cache is not None:
        # Resolve via the cache: load the content-addressed entry for
        # this exact config, recording it on a miss.
        rec = get_or_record(
            RecordSpec(
                args.recording,
                machine_config=_machine_config(args),
                epochs=args.epochs,
                seed=args.seed,
            ),
            cache=cache,
        )
    else:
        raise SystemExit(
            f"recording {args.recording!r} is neither a file nor a workload "
            "name usable with --cache-dir"
        )

    cells = [
        GridCell(policy, source, ratio)
        for policy in policies
        for source in sources
        for ratio in ratios
    ]
    results = evaluate_grid(rec, cells, jobs=args.jobs)
    for cell, res in zip(cells, results):
        print(
            f"{res.workload} / {res.policy} / {res.rank_source} "
            f"@ tier1={cell.ratio:.4g}: hitrate={res.mean_hitrate:.3f} "
            f"migrations={res.total_migrations} runtime={res.total_runtime_s:.2f}s"
        )
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .obs import log as obs_log
    from .service import ServiceServer

    if args.log_json:
        obs_log.configure(enabled=True)
        # Worker processes read the environment, not our in-process state.
        os.environ["REPRO_LOG_JSON"] = "1"
    metrics_port = args.metrics_port
    if metrics_port is None and os.environ.get("REPRO_METRICS_PORT"):
        metrics_port = int(os.environ["REPRO_METRICS_PORT"])
    ledger_dir = args.ledger_dir or os.environ.get("REPRO_LEDGER_DIR") or None
    if args.evict_to_disk and not ledger_dir:
        raise SystemExit("--evict-to-disk needs --ledger-dir")

    async def _serve() -> None:
        server = ServiceServer(
            host=args.host,
            port=args.port,
            socket_path=args.socket,
            max_sessions=args.max_sessions,
            idle_ttl_s=args.idle_ttl,
            reap_interval_s=args.reap_interval,
            step_workers=args.step_workers,
            workers=args.workers,
            metrics_port=metrics_port,
            ledger_dir=ledger_dir,
            ledger_fsync=args.ledger_fsync,
            ledger_retention_bytes=args.ledger_retention_bytes,
            tenant_quota=args.tenant_quota,
            max_inflight_steps=args.max_inflight_steps,
            evict_to_disk=args.evict_to_disk,
        )
        await server.start()
        if isinstance(server.address, tuple):
            where = "{}:{}".format(*server.address)
        else:
            where = server.address
        print(
            f"repro service listening on {where} "
            f"(max_sessions={args.max_sessions}, idle_ttl={args.idle_ttl:g}s, "
            f"workers={server.workers}); SIGTERM drains gracefully",
            flush=True,
        )
        if server.metrics_address is not None:
            print(
                "metrics at http://{}:{}/metrics".format(*server.metrics_address),
                flush=True,
            )
        if ledger_dir:
            print(
                f"telemetry ledger at {ledger_dir} "
                f"(fsync={args.ledger_fsync})",
                flush=True,
            )
        await server.serve_forever()
        print("repro service drained, exiting", flush=True)

    asyncio.run(_serve())
    return 0


def _spawn_server(args, socket_path: str):
    """Start a throwaway `repro serve` subprocess on a unix socket.

    Returns the Popen handle once the socket accepts connections.
    """
    import socket as socketlib
    import subprocess
    import time as timelib

    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--socket", socket_path,
        "--max-sessions", str(args.spawn_max_sessions or args.sessions),
        "--workers", str(args.spawn_workers),
    ]
    if args.spawn_tenant_quota is not None:
        cmd += ["--tenant-quota", str(args.spawn_tenant_quota)]
    if args.spawn_max_inflight_steps is not None:
        cmd += ["--max-inflight-steps", str(args.spawn_max_inflight_steps)]
    if args.spawn_idle_ttl is not None:
        cmd += ["--idle-ttl", str(args.spawn_idle_ttl)]
    if args.spawn_reap_interval is not None:
        cmd += ["--reap-interval", str(args.spawn_reap_interval)]
    if args.spawn_ledger_dir is not None:
        cmd += ["--ledger-dir", args.spawn_ledger_dir]
    if args.spawn_evict_to_disk:
        cmd += ["--evict-to-disk"]
    proc = subprocess.Popen(cmd)
    deadline = timelib.monotonic() + 30.0
    while timelib.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(
                f"spawned server exited early (code {proc.returncode})"
            )
        try:
            probe = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
            probe.connect(socket_path)
            probe.close()
            return proc
        except OSError:
            timelib.sleep(0.05)
    proc.terminate()
    raise SystemExit("spawned server did not come up within 30s")


def _cmd_loadtest(args) -> int:
    import json
    import signal
    import tempfile

    from .loadgen import LoadTestConfig, run_load_test, write_report

    config = LoadTestConfig(
        sessions=args.sessions,
        arrival_rate=args.arrival_rate,
        steps_per_session=args.steps,
        epochs_per_step=args.step_epochs,
        workload=args.workload,
        workload_kwargs={
            "footprint_pages": args.footprint_pages,
            "accesses_per_epoch": args.accesses_per_epoch,
        },
        connections=args.connections,
        subscribe_fraction=args.subscribe_fraction,
        stats_fraction=args.stats_fraction,
        tenants=args.tenants,
        seed=args.seed,
        timeout_s=args.timeout,
        evict_resume_fraction=args.evict_resume_fraction,
        evict_wait_s=args.evict_wait,
    )
    proc = None
    tmpdir = None
    if args.connect:
        host, _, port = args.connect.rpartition(":")
        if not host or not port.isdigit():
            raise SystemExit(f"--connect wants HOST:PORT, got {args.connect!r}")
        address = (host, int(port))
    elif args.socket:
        address = args.socket
    elif args.spawn:
        tmpdir = tempfile.TemporaryDirectory(prefix="repro-loadtest-")
        socket_path = os.path.join(tmpdir.name, "serve.sock")
        proc = _spawn_server(args, socket_path)
        address = socket_path
    else:
        raise SystemExit("pick a target: --connect, --socket, or --spawn")
    try:
        report = run_load_test(
            address, config, slo_step_p99_s=args.slo_step_p99
        )
    finally:
        if proc is not None:
            proc.send_signal(signal.SIGTERM)  # drain gracefully
            try:
                proc.wait(timeout=15)
            except Exception:
                proc.kill()
                proc.wait()
        if tmpdir is not None:
            tmpdir.cleanup()
    write_report(args.out, report)
    sessions = report["sessions"]
    timed_out = " TIMED OUT" if report.get("timed_out") else ""
    print(
        f"loadtest{timed_out}: {sessions['completed']}/{sessions['target']} "
        f"sessions completed (peak concurrent {sessions['peak_concurrent']}, "
        f"rejected {sum(sessions['rejected'].values())}, "
        f"evicted mid-life {sessions['evicted_midlife']}, "
        f"resumed {sessions['resumed']}) "
        f"in {report['wall_s']:.2f}s -> {args.out}"
    )
    for op, stats in sorted(report["ops"].items()):
        if stats.get("count"):
            print(
                f"  {op:>10}: n={stats['count']:<6} "
                f"p50={stats['p50_s'] * 1e3:.2f}ms "
                f"p99={stats['p99_s'] * 1e3:.2f}ms "
                f"max={stats['max_s'] * 1e3:.2f}ms "
                f"errors={json.dumps(stats['errors'])}"
            )
        else:
            print(f"  {op:>10}: n=0 errors={json.dumps(stats['errors'])}")
    slo = report["slo"]
    if slo["ok"] is False:
        observed = slo["step_p99_s"]
        shown = "n/a" if observed is None else f"{observed * 1e3:.2f}ms"
        print(
            f"SLO FAIL: step p99 {shown} exceeds "
            f"{slo['threshold_s'] * 1e3:.2f}ms"
        )
        return 1
    if slo["ok"]:
        print(
            f"SLO ok: step p99 {slo['step_p99_s'] * 1e3:.2f}ms <= "
            f"{slo['threshold_s'] * 1e3:.2f}ms"
        )
    return 0


def _cmd_ledger(args) -> int:
    import json

    from .ledger import Ledger, replay_result

    ledger = Ledger(args.dir)
    if args.ledger_command == "list":
        sessions = ledger.list_sessions()
        if not sessions:
            print(f"no session ledgers under {args.dir}")
            return 0
        for entry in sessions:
            key = entry.get("config_key") or ""
            print(
                f"{entry['session']}: workload={entry['workload']} "
                f"epochs={entry['epochs']} seq=[{entry['first_seq']}, "
                f"{entry['next_seq']}) segments={entry['segments']} "
                f"bytes={entry['bytes']} key={key[:12]}"
            )
        return 0
    try:
        session_ledger = ledger.open_session(args.session)
    except FileNotFoundError as exc:
        raise SystemExit(str(exc)) from exc
    try:
        if args.ledger_command == "cat":
            for record in session_ledger.read(args.from_seq, args.to_seq):
                print(json.dumps(record, separators=(",", ":")))
            return 0
        result = replay_result(
            session_ledger, meta=ledger.load_meta(args.session)
        )
        print(
            f"{result.workload} / {result.policy} / {result.rank_source} "
            f"@ tier1={result.tier1_ratio:.4g}: "
            f"epochs={len(result.epochs)} "
            f"hitrate={result.mean_hitrate:.3f} "
            f"migrations={result.total_migrations} "
            f"runtime={result.total_runtime_s:.2f}s"
        )
        return 0
    finally:
        session_ledger.close()


if __name__ == "__main__":
    sys.exit(main())
