"""Property-based machine invariants over random access streams."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim import AccessBatch, DataSource, Machine, MachineConfig


def _machine(n_cpus=2):
    return Machine(
        MachineConfig(
            total_frames=1 << 14,
            tlb_entries=16,
            l1_bytes=1024,
            l2_bytes=4096,
            llc_bytes=8192,
            ibs_period=7,
            n_cpus=n_cpus,
        )
    )


@st.composite
def random_run(draw):
    """A multi-batch, multi-process access plan over small regions."""
    n_pids = draw(st.integers(1, 3))
    region_pages = draw(st.integers(1, 64))
    n_batches = draw(st.integers(1, 4))
    batches = []
    for _ in range(n_batches):
        per_pid = []
        for pid in range(1, n_pids + 1):
            n = draw(st.integers(0, 60))
            pages = draw(
                st.lists(
                    st.integers(0, region_pages - 1), min_size=n, max_size=n
                )
            )
            stores = draw(st.lists(st.booleans(), min_size=n, max_size=n))
            per_pid.append((pid, pages, stores))
        batches.append(per_pid)
    return n_pids, region_pages, batches


def _build_batch(machine, vmas, per_pid, cpu_mod=2):
    parts = []
    for pid, pages, stores in per_pid:
        if not pages:
            continue
        vma = vmas[pid]
        vpns = vma.start_vpn + np.asarray(pages, dtype=np.uint64)
        parts.append(
            AccessBatch.from_pages(
                vpns, is_store=np.asarray(stores), pid=pid, cpu=pid % cpu_mod
            )
        )
    return AccessBatch.concat(parts)


class TestMachineInvariants:
    @given(random_run())
    @settings(max_examples=50, deadline=None)
    def test_event_count_invariants(self, plan):
        """Counter relationships hold for any stream."""
        n_pids, region_pages, batches = plan
        m = _machine()
        vmas = {pid: m.mmap(pid, region_pages) for pid in range(1, n_pids + 1)}
        total_ops = 0
        for per_pid in batches:
            batch = _build_batch(m, vmas, per_pid)
            res = m.run_batch(batch)
            total_ops += batch.n
            raw = res.raw_events
            if batch.n == 0:
                continue
            # Miss-path containment at each level.
            assert raw["retired_ops"] >= raw["l1_miss"] >= raw["l2_miss"] >= raw["llc_miss"] >= 0
            assert raw["dtlb_miss"] <= raw["retired_ops"]
            assert raw["retired_loads"] + raw["retired_stores"] == raw["retired_ops"]
            # Data-source classification is total.
            assert res.data_source.min() >= np.uint8(DataSource.L1)
            assert res.data_source.max() <= np.uint8(DataSource.MEMORY)
        assert m.op_counter == total_ops
        # Ground-truth totals match the ops executed.
        assert m.frame_stats.access_count.sum() == total_ops

    @given(random_run())
    @settings(max_examples=30, deadline=None)
    def test_tlb_walk_equivalence(self, plan):
        """Page walks == TLB misses; A bits only on walked pages."""
        n_pids, region_pages, batches = plan
        m = _machine()
        vmas = {pid: m.mmap(pid, region_pages) for pid in range(1, n_pids + 1)}
        for per_pid in batches:
            m.run_batch(_build_batch(m, vmas, per_pid))
        assert m.ptw.stats.walks == m.tlb.stats.misses
        # Every page with the A bit set was actually accessed.
        from repro.memsim.pte import is_accessed

        for pid, vma in vmas.items():
            pt = m.page_tables[pid]
            accessed = is_accessed(pt.flags)
            touched = m.frame_stats.access_count[vma.pfn_base : vma.pfn_base + vma.npages] > 0
            assert not (accessed & ~touched).any()

    @given(random_run())
    @settings(max_examples=30, deadline=None)
    def test_sampler_counts(self, plan):
        """IBS samples exactly floor(ops/period) records."""
        n_pids, region_pages, batches = plan
        m = _machine()
        vmas = {pid: m.mmap(pid, region_pages) for pid in range(1, n_pids + 1)}
        for per_pid in batches:
            m.run_batch(_build_batch(m, vmas, per_pid))
        samples = m.ibs.drain()
        assert samples.n == m.op_counter // m.ibs.period
        if samples.n:
            # Sampled ops are strictly increasing (program order).
            assert (np.diff(samples.op_idx.astype(np.int64)) > 0).all()

    @given(random_run())
    @settings(max_examples=20, deadline=None)
    def test_dirty_only_on_stores(self, plan):
        n_pids, region_pages, batches = plan
        m = _machine()
        vmas = {pid: m.mmap(pid, region_pages) for pid in range(1, n_pids + 1)}
        for per_pid in batches:
            m.run_batch(_build_batch(m, vmas, per_pid))
        from repro.memsim.pte import is_dirty

        for pid, vma in vmas.items():
            pt = m.page_tables[pid]
            dirty = is_dirty(pt.flags)
            stored = m.frame_stats.store_count[vma.pfn_base : vma.pfn_base + vma.npages] > 0
            np.testing.assert_array_equal(dirty, stored)
