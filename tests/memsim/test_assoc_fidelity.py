"""Fidelity study: direct-mapped vs exact set-associative engines.

The benches run capacity-equivalent direct-mapped TLBs/caches because
they vectorize exactly (DESIGN.md §6).  These tests quantify the
simplification on a real workload slice: global miss rates under the
exact 8-way LRU reference engine must land close to the direct-mapped
ones, and every profiling-visible ordering the experiments rely on
(IBS sees more pages than the A-bit window on sparse workloads, etc.)
must be engine-independent.
"""

import numpy as np
import pytest

from repro.core import TMPConfig, TMProfiler
from repro.memsim import Machine, MachineConfig
from repro.workloads import make_workload


def _run(exact_assoc: bool, wname="data-caching", n_accesses=30_000):
    m = Machine(
        MachineConfig.scaled(
            ibs_period=16,
            exact_assoc=exact_assoc,
            tlb_ways=8 if exact_assoc else 1,
            cache_ways=8 if exact_assoc else 1,
        )
    )
    w = make_workload(wname, accesses_per_epoch=n_accesses)
    w.attach(m)
    prof = TMProfiler(m, TMPConfig())
    prof.register_workload(w)
    rng = np.random.default_rng(0)
    for e in range(2):
        b = w.epoch(e, rng)
        r = m.run_batch(b)
        prof.observe_batch(b, r)
        prof.end_epoch()
    return m, prof


@pytest.fixture(scope="module")
def engines():
    return _run(False), _run(True)


class TestAssociativityFidelity:
    def test_tlb_miss_rate_close(self, engines):
        (dm, _), (ex, _) = engines
        a = dm.tlb.stats.miss_rate
        b = ex.tlb.stats.miss_rate
        # 8-way LRU has fewer conflict misses; direct-mapped must stay
        # within a modest factor.
        assert b <= a
        assert a < b + 0.15

    def test_llc_miss_rate_close(self, engines):
        (dm, _), (ex, _) = engines
        a = dm.caches.llc.stats.miss_rate
        b = ex.caches.llc.stats.miss_rate
        assert abs(a - b) < 0.2

    def test_profiling_orderings_engine_independent(self, engines):
        (_, p_dm), (_, p_ex) = engines
        for prof in (p_dm, p_ex):
            s = prof.store
            # The Zipf head dominates trace detections either way.
            assert s.detected_pages("trace") > 0
            assert s.detected_pages("abit") > 0
            assert s.detected_pages("both") <= min(
                s.detected_pages("trace"), s.detected_pages("abit")
            )

    def test_detected_counts_same_ballpark(self, engines):
        (_, p_dm), (_, p_ex) = engines
        a = p_dm.store.detected_pages("trace")
        b = p_ex.store.detected_pages("trace")
        assert 0.5 < a / b < 2.0

    def test_exact_engine_amat_not_higher(self, engines):
        (dm, _), (ex, _) = engines
        # Associativity can only reduce conflict misses → lower AMAT.
        assert ex.amat_cycles <= dm.amat_cycles * 1.05
