"""Tests for IBS period randomization (anti-aliasing jitter)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim import AccessBatch, DataSource, Machine, MachineConfig
from repro.memsim.ibs import IBSSampler


def _meta(batch):
    n = batch.n
    return dict(
        paddr=batch.vaddr.copy(),
        tlb_hit=np.zeros(n, dtype=bool),
        data_source=np.full(n, np.uint8(DataSource.MEMORY), dtype=np.uint8),
    )


def _batch(n):
    return AccessBatch.from_pages(np.arange(n, dtype=np.uint64) % 64, pid=1)


class TestJitter:
    def test_gaps_within_bounds(self):
        ibs = IBSSampler(period=100, jitter=0.25)
        b = _batch(50_000)
        ibs.observe(b, op_base=0, **_meta(b))
        ops = ibs.drain().op_idx.astype(np.int64)
        gaps = np.diff(ops)
        assert gaps.min() >= 75
        assert gaps.max() <= 125

    def test_gaps_actually_vary(self):
        ibs = IBSSampler(period=100, jitter=0.25)
        b = _batch(50_000)
        ibs.observe(b, op_base=0, **_meta(b))
        gaps = np.diff(ibs.drain().op_idx.astype(np.int64))
        assert np.unique(gaps).size > 10

    def test_mean_rate_preserved(self):
        ibs = IBSSampler(period=100, jitter=0.25)
        b = _batch(200_000)
        ibs.observe(b, op_base=0, **_meta(b))
        n = ibs.drain().n
        assert n == pytest.approx(2000, rel=0.1)

    def test_deterministic_under_seed(self):
        def run():
            ibs = IBSSampler(period=50, jitter=0.2)
            b = _batch(10_000)
            ibs.observe(b, op_base=0, **_meta(b))
            return ibs.drain().op_idx

        np.testing.assert_array_equal(run(), run())

    def test_zero_jitter_is_lockstep(self):
        ibs = IBSSampler(period=10, jitter=0.0)
        b = _batch(100)
        ibs.observe(b, op_base=0, **_meta(b))
        np.testing.assert_array_equal(
            ibs.drain().op_idx, np.arange(9, 100, 10, dtype=np.uint64)
        )

    def test_bad_jitter(self):
        with pytest.raises(ValueError):
            IBSSampler(period=10, jitter=1.0)
        with pytest.raises(ValueError):
            IBSSampler(period=10, jitter=-0.1)

    @given(
        period=st.integers(2, 200),
        jitter=st.floats(0.01, 0.9),
        sizes=st.lists(st.integers(0, 2000), min_size=1, max_size=6),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_gap_bounds_across_batches(self, period, jitter, sizes):
        ibs = IBSSampler(period=period, jitter=jitter)
        base = 0
        for n in sizes:
            b = _batch(n) if n else AccessBatch.empty()
            ibs.observe(b, op_base=base, **_meta(b))
            base += n
        ops = ibs.drain().op_idx.astype(np.int64)
        if ops.size > 1:
            gaps = np.diff(ops)
            lo = max(1, int(round(period * (1 - jitter))))
            hi = max(lo, int(round(period * (1 + jitter))))
            assert gaps.min() >= lo
            assert gaps.max() <= hi

    def test_defeats_phase_locked_aliasing(self):
        """A loop touching page X every `period` ops is systematically
        over-sampled by lockstep sampling; jitter fixes the bias."""
        period = 64

        def sampled_share(jitter):
            m = Machine(
                MachineConfig(
                    total_frames=1 << 14,
                    ibs_period=period,
                    ibs_jitter=jitter,
                    n_cpus=1,
                )
            )
            vma = m.mmap(1, period)  # one loop iteration = one period
            pages = np.tile(vma.vpns, 2000)  # phase-locked loop
            m.run_batch(AccessBatch.from_pages(pages, pid=1))
            s = m.ibs.drain()
            counts = np.bincount(
                (s.pfn - vma.pfn_base).astype(np.intp), minlength=period
            )
            return counts.max() / max(counts.sum(), 1)

        # Lockstep: every sample lands on the same page (share = 1).
        assert sampled_share(0.0) == 1.0
        # Jittered: samples spread across the loop body.
        assert sampled_share(0.25) < 0.2
