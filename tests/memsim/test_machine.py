"""Integration tests for the whole-machine pipeline."""

import numpy as np
import pytest

from repro.memsim import (
    AccessBatch,
    DataSource,
    Machine,
    MachineConfig,
    TranslationFault,
)
from repro.memsim.pte import is_accessed, is_dirty


def small_machine(**kw):
    defaults = dict(
        total_frames=1 << 16,
        tlb_entries=64,
        l1_bytes=4 * 1024,
        l2_bytes=16 * 1024,
        llc_bytes=64 * 1024,
        enable_pml=True,
    )
    defaults.update(kw)
    return Machine(MachineConfig(**defaults))


class TestMmap:
    def test_auto_placement_no_overlap(self):
        m = small_machine()
        v1 = m.mmap(1, 100)
        v2 = m.mmap(1, 100)
        assert v2.start_vpn >= v1.end_vpn + m.config.vma_guard_pages

    def test_explicit_placement(self):
        m = small_machine()
        v = m.mmap(1, 10, start_vpn=0x9000)
        assert v.start_vpn == 0x9000

    def test_frames_tracked(self):
        m = small_machine()
        m.mmap(1, 100)
        m.mmap(2, 50)
        assert m.n_frames == 150
        assert len(m.frame_stats) == 150

    def test_unknown_pid_faults_on_access(self):
        m = small_machine()
        m.mmap(1, 10)
        with pytest.raises(TranslationFault):
            m.run_batch(AccessBatch.from_pages([0x1000], pid=99))


class TestRunBatch:
    def test_basic_outcome_shapes(self):
        m = small_machine()
        v = m.mmap(1, 10)
        b = AccessBatch.from_pages(v.vpns, pid=1)
        r = m.run_batch(b)
        assert r.n == 10
        assert r.paddr.size == r.pfn.size == r.tlb_hit.size == 10
        np.testing.assert_array_equal(r.pfn, v.pfns)

    def test_empty_batch(self):
        m = small_machine()
        r = m.run_batch(AccessBatch.empty())
        assert r.n == 0
        assert m.op_counter == 0

    def test_op_counter_and_time(self):
        m = small_machine(ops_per_second=1000.0)
        v = m.mmap(1, 4)
        m.run_batch(AccessBatch.from_pages(v.vpns, pid=1))
        m.run_batch(AccessBatch.from_pages(v.vpns, pid=1))
        assert m.op_counter == 8
        assert m.time_s == pytest.approx(0.008)

    def test_a_bits_set_on_first_touch(self):
        m = small_machine()
        v = m.mmap(1, 10)
        m.run_batch(AccessBatch.from_pages(v.vpns[:5], pid=1))
        acc = is_accessed(m.page_tables[1].flags)
        assert acc[:5].all()
        assert not acc[5:].any()

    def test_tlb_resident_page_no_second_walk(self):
        m = small_machine()
        v = m.mmap(1, 1)
        m.run_batch(AccessBatch.from_pages(v.vpns, pid=1))
        walks_before = m.ptw.stats.walks
        m.run_batch(AccessBatch.from_pages(v.vpns, pid=1))
        assert m.ptw.stats.walks == walks_before  # TLB hit, no walk

    def test_dirty_bits_on_stores_only(self):
        m = small_machine()
        v = m.mmap(1, 4)
        b = AccessBatch.from_pages(v.vpns, is_store=[True, False, True, False], pid=1)
        m.run_batch(b)
        d = is_dirty(m.page_tables[1].flags)
        np.testing.assert_array_equal(d, [True, False, True, False])

    def test_pml_receives_newly_dirty_frames(self):
        m = small_machine()
        v = m.mmap(1, 4)
        m.run_batch(AccessBatch.from_pages(v.vpns[:2], is_store=True, pid=1))
        logged = m.pml.drain()
        np.testing.assert_array_equal(np.sort(logged), np.sort(v.pfns[:2]))

    def test_raw_events_consistency(self):
        m = small_machine()
        v = m.mmap(1, 50)
        rng = np.random.default_rng(1)
        b = AccessBatch.from_pages(
            rng.choice(v.vpns, 500), is_store=rng.random(500) < 0.5, pid=1
        )
        r = m.run_batch(b)
        raw = r.raw_events
        assert raw["retired_ops"] == 500
        assert raw["retired_loads"] + raw["retired_stores"] == 500
        assert raw["l1_miss"] >= raw["l2_miss"] >= raw["llc_miss"]
        assert raw["dtlb_miss"] == raw["ptw_walks"]
        assert raw["llc_miss"] == int(np.count_nonzero(r.mem_mask))

    def test_multi_process_isolation(self):
        m = small_machine()
        v1 = m.mmap(1, 8)
        v2 = m.mmap(2, 8)
        b = AccessBatch.concat(
            [
                AccessBatch.from_pages(v1.vpns, pid=1),
                AccessBatch.from_pages(v2.vpns, pid=2),
            ]
        )
        r = m.run_batch(b)
        assert set(np.unique(r.pfn[:8])) == set(v1.pfns)
        assert set(np.unique(r.pfn[8:])) == set(v2.pfns)
        assert is_accessed(m.page_tables[1].flags).all()
        assert is_accessed(m.page_tables[2].flags).all()

    def test_cache_locality_visible(self):
        m = small_machine()
        v = m.mmap(1, 1)
        b = AccessBatch.from_pages(np.repeat(v.vpns, 100), pid=1)
        r = m.run_batch(b)
        # Same line 100x: first access cold-misses, rest hit L1.
        assert r.data_source[0] == np.uint8(DataSource.MEMORY)
        assert (r.data_source[1:] == np.uint8(DataSource.L1)).all()


class TestGroundTruth:
    def test_frame_access_counts(self):
        m = small_machine()
        v = m.mmap(1, 4)
        vpns = np.array([v.start_vpn, v.start_vpn, v.start_vpn + 2], dtype=np.uint64)
        m.run_batch(AccessBatch.from_pages(vpns, pid=1))
        np.testing.assert_array_equal(m.frame_stats.access_count, [2, 0, 1, 0])

    def test_batch_page_counts(self):
        m = small_machine()
        v = m.mmap(1, 4)
        vpns = np.array([v.start_vpn + 1] * 3, dtype=np.uint64)
        r = m.run_batch(AccessBatch.from_pages(vpns, pid=1))
        counts = r.page_access_counts(m.n_frames)
        assert counts[v.pfn_base + 1] == 3
        assert counts.sum() == 3

    def test_mem_access_counts_bounded_by_access_counts(self):
        m = small_machine()
        v = m.mmap(1, 64)
        rng = np.random.default_rng(2)
        b = AccessBatch.from_pages(rng.choice(v.vpns, 2000), pid=1)
        r = m.run_batch(b)
        mem = r.page_mem_access_counts(m.n_frames)
        tot = r.page_access_counts(m.n_frames)
        assert (mem <= tot).all()

    def test_first_touch_order(self):
        m = small_machine()
        v = m.mmap(1, 3)
        m.run_batch(
            AccessBatch.from_pages(
                [v.start_vpn + 2, v.start_vpn, v.start_vpn + 1], pid=1
            )
        )
        ft = m.frame_stats.first_touch_op
        assert ft[v.pfn_base + 2] < ft[v.pfn_base] < ft[v.pfn_base + 1]


class TestBadgerTrapIntegration:
    def test_faults_on_tlb_misses_to_poisoned_pages(self):
        m = small_machine()
        v = m.mmap(1, 4)
        pt = m.page_tables[1]
        m.badgertrap.instrument(pt, np.array([0], dtype=np.int64), m.tlb)
        m.run_batch(AccessBatch.from_pages([v.start_vpn], pid=1))
        assert m.badgertrap.stats.faults == 1
        assert m.badgertrap.fault_counts[v.pfn_base] == 1
        # TLB now holds the translation: no further fault until eviction.
        m.run_batch(AccessBatch.from_pages([v.start_vpn], pid=1))
        assert m.badgertrap.stats.faults == 1


class TestSamplerIntegration:
    def test_ibs_samples_flow(self):
        m = small_machine(ibs_period=100)
        v = m.mmap(1, 64)
        rng = np.random.default_rng(3)
        b = AccessBatch.from_pages(rng.choice(v.vpns, 1000), pid=1)
        m.run_batch(b)
        s = m.ibs.drain()
        assert s.n == 10
        assert set(np.unique(s.pid)) == {1}
        # Sampled pfns are real frames of this VMA.
        assert np.isin(s.pfn, v.pfns).all()

    def test_pebs_disabled_by_default(self):
        m = small_machine()
        v = m.mmap(1, 8)
        m.run_batch(AccessBatch.from_pages(v.vpns, pid=1))
        assert m.pebs.drain().n == 0

    def test_pmu_integration(self):
        m = small_machine()
        m.pmu.configure(["llc_miss", "dtlb_miss"])
        v = m.mmap(1, 8)
        m.run_batch(AccessBatch.from_pages(v.vpns, pid=1))
        assert m.pmu.read("dtlb_miss").estimate == 8  # all cold misses


class TestDeterminism:
    def test_identical_runs_identical_outcomes(self):
        def run():
            m = small_machine()
            v = m.mmap(1, 32)
            rng = np.random.default_rng(7)
            out = []
            for _ in range(3):
                b = AccessBatch.from_pages(
                    rng.choice(v.vpns, 500), is_store=rng.random(500) < 0.3, pid=1
                )
                r = m.run_batch(b)
                out.append((r.tlb_hit.copy(), r.data_source.copy()))
            return out, m.ptw.stats.walks

        a, walks_a = run()
        b, walks_b = run()
        assert walks_a == walks_b
        for (ha, da), (hb, db) in zip(a, b):
            np.testing.assert_array_equal(ha, hb)
            np.testing.assert_array_equal(da, db)
