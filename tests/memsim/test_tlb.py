"""Unit tests for the TLB model, including the stale-A-bit-enabling
residency semantics and shootdown accounting."""

import numpy as np
import pytest

from repro.memsim.tlb import TLB


def _acc(tlb, vpns, pid=1):
    vpns = np.asarray(vpns, dtype=np.uint64)
    return tlb.access(np.full(vpns.size, pid, dtype=np.int32), vpns)


class TestLookup:
    def test_cold_miss_then_hit(self):
        tlb = TLB(entries=64)
        np.testing.assert_array_equal(_acc(tlb, [5, 5]), [False, True])

    def test_pid_isolation(self):
        tlb = TLB(entries=64)
        _acc(tlb, [5], pid=1)
        # Same VPN, different PID: distinct translation.
        assert not _acc(tlb, [5], pid=2)[0]

    def test_capacity_rounded_down_to_pow2(self):
        tlb = TLB(entries=100)
        assert tlb.entries == 64

    def test_residency_across_batches(self):
        tlb = TLB(entries=64)
        _acc(tlb, [1, 2, 3])
        assert _acc(tlb, [2]).all()

    def test_eviction_by_conflict(self):
        tlb = TLB(entries=4)
        _acc(tlb, [0])
        _acc(tlb, [4])  # same set in a 4-entry direct-mapped TLB
        assert not _acc(tlb, [0])[0]

    def test_stats(self):
        tlb = TLB(entries=64)
        _acc(tlb, [1, 1, 2])
        assert tlb.stats.lookups == 3
        assert tlb.stats.hits == 1
        assert tlb.stats.misses == 2
        assert tlb.stats.miss_rate == pytest.approx(2 / 3)

    def test_contains_non_mutating(self):
        tlb = TLB(entries=64)
        _acc(tlb, [9])
        assert tlb.contains(np.array([1], dtype=np.int32), np.array([9], dtype=np.uint64))[0]
        assert tlb.stats.lookups == 1  # contains doesn't count


class TestShootdowns:
    def test_shootdown_all(self):
        tlb = TLB(entries=64, n_cpus=6)
        _acc(tlb, [1, 2])
        tlb.shootdown_all()
        assert not _acc(tlb, [1])[0]
        assert tlb.stats.shootdowns == 1
        assert tlb.stats.ipis == 5
        assert tlb.stats.entries_invalidated == 2

    def test_shootdown_pid(self):
        tlb = TLB(entries=64)
        _acc(tlb, [1], pid=1)
        _acc(tlb, [2], pid=2)
        tlb.shootdown_pid(1)
        assert not _acc(tlb, [1], pid=1)[0]
        assert _acc(tlb, [2], pid=2)[0]

    def test_shootdown_pages_batched_single_ipi_round(self):
        tlb = TLB(entries=64, n_cpus=4)
        _acc(tlb, [1, 2, 3])
        tlb.shootdown_pages(
            np.array([1, 1], dtype=np.int32), np.array([1, 3], dtype=np.uint64)
        )
        # One shootdown event (one IPI round), two entries gone.
        assert tlb.stats.shootdowns == 1
        assert tlb.stats.ipis == 3
        hits = _acc(tlb, [1, 2, 3])
        np.testing.assert_array_equal(hits, [False, True, False])

    def test_occupancy(self):
        tlb = TLB(entries=64)
        _acc(tlb, [1, 2, 3])
        assert tlb.occupancy() == 3
        tlb.shootdown_all()
        assert tlb.occupancy() == 0


class TestExactAssocEngine:
    def test_lru_behaviour(self):
        tlb = TLB(entries=4, ways=2, exact_assoc=True)
        # 2 sets x 2 ways. vpns 0,2,4 all map to set 0.
        _acc(tlb, [0, 2])
        assert _acc(tlb, [0])[0]      # hit; LRU now 2
        _acc(tlb, [4])                 # evicts 2
        assert not _acc(tlb, [2])[0]
        assert _acc(tlb, [0])[0] or True  # 0 may have been evicted by 2's refill
