"""Unit tests for the page-table walker's A/D/poison semantics."""

import numpy as np
import pytest

from repro.memsim.frames import FrameAllocator
from repro.memsim.page_table import PageTable
from repro.memsim.ptw import PageTableWalker
from repro.memsim.pte import PTE_POISON, is_accessed, is_dirty


@pytest.fixture
def pt():
    table = PageTable(1)
    table.mmap(0x100, 16, FrameAllocator(1 << 16))
    return table


class TestFillWalks:
    def test_sets_accessed_bits(self, pt):
        w = PageTableWalker()
        w.fill_walks(pt, np.array([0, 3, 3], dtype=np.int64))
        acc = is_accessed(pt.flags)
        assert acc[0] and acc[3]
        assert not acc[1]

    def test_counts_walks_per_miss(self, pt):
        w = PageTableWalker()
        w.fill_walks(pt, np.array([0, 3, 3], dtype=np.int64))
        assert w.stats.walks == 3

    def test_a_bits_set_counts_transitions_only(self, pt):
        w = PageTableWalker()
        w.fill_walks(pt, np.array([0], dtype=np.int64))
        w.fill_walks(pt, np.array([0], dtype=np.int64))
        assert w.stats.a_bits_set == 1

    def test_empty(self, pt):
        w = PageTableWalker()
        assert w.fill_walks(pt, np.zeros(0, dtype=np.int64)).size == 0
        assert w.stats.walks == 0

    def test_poison_fault_mask(self, pt):
        w = PageTableWalker()
        pt.flags[5] |= PTE_POISON
        mask = w.fill_walks(pt, np.array([4, 5, 5, 6], dtype=np.int64))
        np.testing.assert_array_equal(mask, [False, True, True, False])
        assert w.stats.poison_faults == 2

    def test_poisoned_pte_still_gets_a_bit(self, pt):
        w = PageTableWalker()
        pt.flags[5] |= PTE_POISON
        w.fill_walks(pt, np.array([5], dtype=np.int64))
        assert is_accessed(pt.flags)[5]


class TestDirtyUpdates:
    def test_sets_dirty_on_store(self, pt):
        w = PageTableWalker()
        newly = w.dirty_updates(pt, np.array([2, 2, 7], dtype=np.int64))
        np.testing.assert_array_equal(np.sort(newly), [2, 7])
        assert is_dirty(pt.flags)[2] and is_dirty(pt.flags)[7]

    def test_already_dirty_not_relogged(self, pt):
        w = PageTableWalker()
        w.dirty_updates(pt, np.array([2], dtype=np.int64))
        newly = w.dirty_updates(pt, np.array([2], dtype=np.int64))
        assert newly.size == 0
        assert w.stats.d_bits_set == 1

    def test_dirty_independent_of_accessed(self, pt):
        w = PageTableWalker()
        w.dirty_updates(pt, np.array([2], dtype=np.int64))
        assert not is_accessed(pt.flags)[2]

    def test_empty(self, pt):
        w = PageTableWalker()
        assert w.dirty_updates(pt, np.zeros(0, dtype=np.int64)).size == 0
