"""Unit tests for IBS/PEBS sampling engines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim.events import AccessBatch, DataSource
from repro.memsim.ibs import IBSSampler
from repro.memsim.pebs import PEBSSampler


def _meta(batch, ds=DataSource.MEMORY):
    n = batch.n
    return dict(
        paddr=batch.vaddr.copy(),
        tlb_hit=np.zeros(n, dtype=bool),
        data_source=np.full(n, np.uint8(ds), dtype=np.uint8),
    )


def _batch(n, pid=1):
    return AccessBatch.from_pages(np.arange(n, dtype=np.uint64), pid=pid)


class TestIBSSelection:
    def test_every_nth_op(self):
        ibs = IBSSampler(period=10)
        b = _batch(25)
        ibs.observe(b, op_base=0, **_meta(b))
        s = ibs.drain()
        np.testing.assert_array_equal(s.op_idx, [9, 19])

    def test_phase_continues_across_batches(self):
        ibs = IBSSampler(period=10)
        for i in range(5):
            b = _batch(5)
            ibs.observe(b, op_base=5 * i, **_meta(b))
        s = ibs.drain()
        np.testing.assert_array_equal(s.op_idx, [9, 19])

    def test_period_one_samples_everything(self):
        ibs = IBSSampler(period=1)
        b = _batch(7)
        ibs.observe(b, op_base=0, **_meta(b))
        assert ibs.drain().n == 7

    def test_disabled_counter_does_not_tick(self):
        ibs = IBSSampler(period=10)
        ibs.enabled = False
        b = _batch(100)
        ibs.observe(b, op_base=0, **_meta(b))
        assert ibs.drain().n == 0
        ibs.enabled = True
        ibs.observe(b, op_base=100, **_meta(b))
        # Counter resumed from where it stopped: first sample at op 9 of
        # the re-enabled stream.
        assert ibs.drain().op_idx[0] == 109

    def test_record_fields(self):
        ibs = IBSSampler(period=5)
        b = AccessBatch.from_pages(
            np.arange(10, dtype=np.uint64), is_store=True, pid=42, cpu=3, ip=7
        )
        meta = _meta(b)
        meta["tlb_hit"][4] = True
        ibs.observe(b, op_base=100, **meta)
        s = ibs.drain()
        assert s.n == 2
        assert s.op_idx[0] == 104
        assert s.pid[0] == 42
        assert s.cpu[0] == 3
        assert s.ip[0] == 7
        assert s.is_store.all()
        assert s.tlb_hit[0]

    def test_set_period(self):
        ibs = IBSSampler(period=1000)
        ibs.set_period(2)
        b = _batch(10)
        ibs.observe(b, op_base=0, **_meta(b))
        assert ibs.drain().n == 5

    def test_bad_params(self):
        with pytest.raises(ValueError):
            IBSSampler(period=0)
        with pytest.raises(ValueError):
            IBSSampler(buffer_records=0)
        with pytest.raises(ValueError):
            IBSSampler().set_period(0)

    @given(
        period=st.integers(1, 50),
        sizes=st.lists(st.integers(0, 200), min_size=1, max_size=10),
    )
    @settings(max_examples=100, deadline=None)
    def test_sample_positions_are_exact_multiples(self, period, sizes):
        """Across arbitrary batch splits, samples land at ops
        period-1, 2*period-1, ... of the global stream."""
        ibs = IBSSampler(period=period)
        base = 0
        for n in sizes:
            b = _batch(n)
            ibs.observe(b, op_base=base, **_meta(b))
            base += n
        got = ibs.drain().op_idx
        expected = np.arange(period - 1, base, period, dtype=np.uint64)
        np.testing.assert_array_equal(got, expected)


class TestRingBuffer:
    def test_interrupt_per_fill(self):
        ibs = IBSSampler(period=1, buffer_records=10)
        b = _batch(35)
        ibs.observe(b, op_base=0, **_meta(b))
        assert ibs.stats.interrupts == 3
        assert ibs.pending == 35

    def test_drain_resets_pending(self):
        ibs = IBSSampler(period=1, buffer_records=10)
        b = _batch(5)
        ibs.observe(b, op_base=0, **_meta(b))
        ibs.drain()
        assert ibs.pending == 0
        assert ibs.drain().n == 0


class TestPEBS:
    def test_counts_only_armed_events(self):
        pebs = PEBSSampler(period=2, event_source=DataSource.MEMORY)
        b = _batch(8)
        meta = _meta(b)
        # Only even positions are LLC misses.
        meta["data_source"][1::2] = np.uint8(DataSource.L1)
        pebs.observe(b, op_base=0, **meta)
        s = pebs.drain()
        # Misses at ops 0,2,4,6; every 2nd → ops 2 and 6.
        np.testing.assert_array_equal(s.op_idx, [2, 6])
        assert (s.data_source == np.uint8(DataSource.MEMORY)).all()

    def test_no_events_no_samples(self):
        pebs = PEBSSampler(period=1)
        b = _batch(10)
        pebs.observe(b, op_base=0, **_meta(b, ds=DataSource.L1))
        assert pebs.drain().n == 0

    def test_event_phase_across_batches(self):
        pebs = PEBSSampler(period=3)
        for i in range(6):
            b = _batch(1)
            pebs.observe(b, op_base=i, **_meta(b))
        s = pebs.drain()
        np.testing.assert_array_equal(s.op_idx, [2, 5])

    def test_llc_source_also_counts_for_llc_event(self):
        # event_source=LLC arms "L2 miss" (serviced by LLC or beyond).
        pebs = PEBSSampler(period=1, event_source=DataSource.LLC)
        b = _batch(3)
        meta = _meta(b, ds=DataSource.LLC)
        pebs.observe(b, op_base=0, **meta)
        assert pebs.drain().n == 3

    def test_stats_population_counts_events(self):
        pebs = PEBSSampler(period=4)
        b = _batch(10)
        pebs.observe(b, op_base=0, **_meta(b))
        assert pebs.stats.population == 10
