"""Unit tests for the PMU, including multiplexing semantics."""

import pytest

from repro.memsim.pmu import EVENT_NAMES, PMU


class TestConfigure:
    def test_unknown_event_rejected(self):
        pmu = PMU()
        with pytest.raises(ValueError, match="unknown"):
            pmu.configure(["bogus_event"])

    def test_duplicate_rejected(self):
        pmu = PMU()
        with pytest.raises(ValueError, match="duplicate"):
            pmu.configure(["llc_miss", "llc_miss"])

    def test_bad_register_count(self):
        with pytest.raises(ValueError):
            PMU(n_counters=0)

    def test_events_property_is_copy(self):
        pmu = PMU()
        pmu.configure(["llc_miss"])
        pmu.events.append("dtlb_miss")
        assert pmu.events == ["llc_miss"]


class TestNoMultiplexing:
    def test_exact_counts(self):
        pmu = PMU(n_counters=4)
        pmu.configure(["llc_miss", "dtlb_miss"])
        pmu.update({"llc_miss": 10, "dtlb_miss": 5})
        pmu.update({"llc_miss": 3, "dtlb_miss": 0})
        r = pmu.read("llc_miss")
        assert r.estimate == 13
        assert r.duty_cycle == 1.0
        assert not r.multiplexed
        assert pmu.read("dtlb_miss").estimate == 5

    def test_is_multiplexing_flag(self):
        pmu = PMU(n_counters=2)
        pmu.configure(["llc_miss", "dtlb_miss"])
        assert not pmu.is_multiplexing
        pmu.configure(["llc_miss", "dtlb_miss", "retired_ops"])
        assert pmu.is_multiplexing

    def test_read_unprogrammed_raises(self):
        pmu = PMU()
        pmu.configure(["llc_miss"])
        with pytest.raises(KeyError):
            pmu.read("dtlb_miss")


class TestNeverScheduled:
    def test_no_slices_yet_is_not_multiplexed(self):
        # Regression: duty_cycle == 0.0 (the event never held a
        # register) used to report multiplexed=True.  "Never counted"
        # and "time-sliced" are different failure modes.
        pmu = PMU(n_counters=4)
        pmu.configure(["llc_miss"])
        r = pmu.read("llc_miss")
        assert r.duty_cycle == 0.0
        assert not r.scheduled
        assert not r.multiplexed

    def test_rotation_not_reached_is_not_multiplexed(self):
        # 3 events, 1 register, 1 slice: only the first event has been
        # scheduled; the others are unscheduled, not multiplexed.
        pmu = PMU(n_counters=1)
        pmu.configure(["llc_miss", "dtlb_miss", "retired_ops"])
        pmu.update({"llc_miss": 7, "dtlb_miss": 7, "retired_ops": 7})
        scheduled = pmu.read("llc_miss")
        assert scheduled.scheduled
        assert not scheduled.multiplexed  # duty 1.0 so far: every slice
        for event in ("dtlb_miss", "retired_ops"):
            r = pmu.read(event)
            assert r.duty_cycle == 0.0
            assert not r.scheduled
            assert not r.multiplexed
            assert r.estimate == 0.0

    def test_time_sliced_is_multiplexed(self):
        pmu = PMU(n_counters=1)
        pmu.configure(["llc_miss", "dtlb_miss"])
        for _ in range(10):
            pmu.update({"llc_miss": 1, "dtlb_miss": 1})
        r = pmu.read("llc_miss")
        assert 0.0 < r.duty_cycle < 1.0
        assert r.scheduled
        assert r.multiplexed


class TestMultiplexing:
    def test_duty_scaling_recovers_uniform_rate(self):
        # 4 events, 2 registers → each event active ~half the slices.
        pmu = PMU(n_counters=2)
        events = ["llc_miss", "dtlb_miss", "retired_ops", "retired_loads"]
        pmu.configure(events)
        for _ in range(100):
            pmu.update({e: 10 for e in events})
        for e in events:
            r = pmu.read(e)
            assert r.multiplexed
            assert r.duty_cycle == pytest.approx(0.5, abs=0.02)
            assert r.estimate == pytest.approx(1000, rel=0.05)

    def test_bursty_event_estimate_error(self):
        # A burst can fall entirely in another event's slice: the scaled
        # estimate is then wrong — the verbosity loss from Table I.
        pmu = PMU(n_counters=1)
        pmu.configure(["llc_miss", "dtlb_miss"])
        pmu.update({"llc_miss": 0, "dtlb_miss": 0})    # llc slice
        pmu.update({"llc_miss": 100, "dtlb_miss": 0})  # dtlb slice: burst lost
        assert pmu.read("llc_miss").estimate == 0

    def test_all_events_make_progress(self):
        pmu = PMU(n_counters=3)
        pmu.configure(list(EVENT_NAMES))
        for _ in range(32):
            pmu.update({e: 1 for e in EVENT_NAMES})
        for e in EVENT_NAMES:
            assert pmu.read(e).duty_cycle > 0


class TestIntervals:
    def test_read_and_reset(self):
        pmu = PMU(n_counters=4)
        pmu.configure(["llc_miss"])
        pmu.update({"llc_miss": 7})
        first = pmu.read_and_reset()
        assert first["llc_miss"].estimate == 7
        pmu.update({"llc_miss": 2})
        assert pmu.read("llc_miss").estimate == 2

    def test_read_all(self):
        pmu = PMU(n_counters=4)
        pmu.configure(["llc_miss", "dtlb_miss"])
        pmu.update({"llc_miss": 1, "dtlb_miss": 2})
        out = pmu.read_all()
        assert set(out) == {"llc_miss", "dtlb_miss"}

    def test_zero_slices_reads_zero(self):
        pmu = PMU()
        pmu.configure(["llc_miss"])
        assert pmu.read("llc_miss").estimate == 0.0
