"""Failure-injection and edge-condition tests for the substrate."""

import numpy as np
import pytest

from repro.memsim import (
    AccessBatch,
    Machine,
    MachineConfig,
    TranslationFault,
)


class TestResourceExhaustion:
    def test_physical_memory_exhaustion(self):
        m = Machine(MachineConfig(total_frames=16))
        m.mmap(1, 10)
        with pytest.raises(MemoryError, match="out of physical frames"):
            m.mmap(1, 10)

    def test_partial_exhaustion_leaves_consistent_state(self):
        m = Machine(MachineConfig(total_frames=16))
        v = m.mmap(1, 16)
        with pytest.raises(MemoryError):
            m.mmap(2, 1)
        # The first mapping still works.
        r = m.run_batch(AccessBatch.from_pages(v.vpns, pid=1))
        assert r.n == 16


class TestTranslationFaults:
    def test_fault_reports_pid_and_vpns(self):
        m = Machine(MachineConfig(total_frames=1 << 10))
        m.mmap(5, 4)
        bad_vpn = 0xDEAD000
        with pytest.raises(TranslationFault) as ei:
            m.run_batch(AccessBatch.from_pages([bad_vpn], pid=5))
        assert ei.value.pid == 5
        assert bad_vpn in ei.value.vpns

    def test_fault_on_guard_gap(self):
        m = Machine(MachineConfig(total_frames=1 << 10))
        v1 = m.mmap(1, 4)
        m.mmap(1, 4)
        with pytest.raises(TranslationFault):
            m.run_batch(AccessBatch.from_pages([v1.end_vpn + 1], pid=1))

    def test_machine_state_unchanged_after_fault(self):
        m = Machine(MachineConfig(total_frames=1 << 10))
        v = m.mmap(1, 4)
        ops_before = m.op_counter
        with pytest.raises(TranslationFault):
            m.run_batch(AccessBatch.from_pages([0xBAD00], pid=1))
        assert m.op_counter == ops_before
        # A valid batch still runs.
        assert m.run_batch(AccessBatch.from_pages(v.vpns, pid=1)).n == 4


class TestDegenerateConfigs:
    def test_single_entry_tlb(self):
        m = Machine(MachineConfig(total_frames=1 << 10, tlb_entries=1, n_cpus=1))
        v = m.mmap(1, 4)
        r = m.run_batch(AccessBatch.from_pages(np.tile(v.vpns[:2], 10), pid=1))
        # Two alternating pages in a 1-entry TLB: everything misses.
        assert not r.tlb_hit.any()

    def test_single_cpu_machine(self):
        m = Machine(MachineConfig(total_frames=1 << 10, n_cpus=1))
        v = m.mmap(1, 4)
        b = AccessBatch.from_pages(v.vpns, pid=1, cpu=5)  # cpu folded mod 1
        assert m.run_batch(b).n == 4

    def test_tiny_caches(self):
        m = Machine(
            MachineConfig(
                total_frames=1 << 10, l1_bytes=64, l2_bytes=64, llc_bytes=64
            )
        )
        v = m.mmap(1, 2)
        r = m.run_batch(AccessBatch.from_pages(np.tile(v.vpns, 5), pid=1))
        assert r.n == 10

    def test_zero_ops_machine_time(self):
        m = Machine(MachineConfig(total_frames=16))
        assert m.time_s == 0.0


class TestSamplerEdgeCases:
    def test_huge_period_never_samples(self):
        m = Machine(MachineConfig(total_frames=1 << 10, ibs_period=1 << 30))
        v = m.mmap(1, 8)
        m.run_batch(AccessBatch.from_pages(v.vpns, pid=1))
        assert m.ibs.drain().n == 0

    def test_pmu_without_configuration_noop(self):
        m = Machine(MachineConfig(total_frames=1 << 10))
        v = m.mmap(1, 4)
        m.run_batch(AccessBatch.from_pages(v.vpns, pid=1))  # must not raise
        assert m.pmu.events == []

    def test_sampling_across_many_tiny_batches(self):
        m = Machine(MachineConfig(total_frames=1 << 10, ibs_period=3))
        v = m.mmap(1, 2)
        for _ in range(10):
            m.run_batch(AccessBatch.from_pages(v.vpns[:1], pid=1))
        assert m.ibs.drain().n == 10 // 3
