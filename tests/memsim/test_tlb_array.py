"""Unit tests for per-CPU TLB arrays."""

import numpy as np
import pytest

from repro.memsim.tlb import TLBArray


def _acc(tlbs, vpns, pid=1, cpu=0):
    vpns = np.asarray(vpns, dtype=np.uint64)
    return tlbs.access(
        np.full(vpns.size, pid, dtype=np.int32),
        vpns,
        np.full(vpns.size, cpu, dtype=np.int16),
    )


class TestRouting:
    def test_per_cpu_isolation(self):
        tlbs = TLBArray(n_cpus=2, entries=64)
        _acc(tlbs, [5], cpu=0)
        # Same translation from another CPU: its private TLB is cold.
        assert not _acc(tlbs, [5], cpu=1)[0]
        assert _acc(tlbs, [5], cpu=0)[0]

    def test_cpu_folding(self):
        tlbs = TLBArray(n_cpus=2, entries=64)
        _acc(tlbs, [5], cpu=0)
        assert _acc(tlbs, [5], cpu=2)[0]  # cpu 2 folds onto cpu 0

    def test_mixed_cpus_in_one_batch(self):
        tlbs = TLBArray(n_cpus=2, entries=64)
        pids = np.ones(4, dtype=np.int32)
        vpns = np.array([9, 9, 9, 9], dtype=np.uint64)
        cpus = np.array([0, 1, 0, 1], dtype=np.int16)
        hits = tlbs.access(pids, vpns, cpus)
        np.testing.assert_array_equal(hits, [False, False, True, True])

    def test_aggregate_stats(self):
        tlbs = TLBArray(n_cpus=2, entries=64)
        _acc(tlbs, [1, 1], cpu=0)
        _acc(tlbs, [1], cpu=1)
        assert tlbs.stats.lookups == 3
        assert tlbs.stats.hits == 1

    def test_bad_n_cpus(self):
        with pytest.raises(ValueError):
            TLBArray(n_cpus=0)


class TestBroadcastShootdowns:
    def test_shootdown_all_flushes_every_cpu(self):
        tlbs = TLBArray(n_cpus=3, entries=64)
        for cpu in range(3):
            _acc(tlbs, [7], cpu=cpu)
        tlbs.shootdown_all()
        assert tlbs.occupancy() == 0
        assert tlbs.stats.shootdowns == 1
        assert tlbs.stats.ipis == 2
        assert tlbs.stats.entries_invalidated == 3

    def test_shootdown_pid_everywhere(self):
        tlbs = TLBArray(n_cpus=2, entries=64)
        _acc(tlbs, [1], pid=1, cpu=0)
        _acc(tlbs, [1], pid=2, cpu=1)
        tlbs.shootdown_pid(1)
        assert not _acc(tlbs, [1], pid=1, cpu=0)[0]
        assert _acc(tlbs, [1], pid=2, cpu=1)[0]

    def test_shootdown_pages_everywhere(self):
        tlbs = TLBArray(n_cpus=2, entries=64)
        _acc(tlbs, [1, 2], cpu=0)
        _acc(tlbs, [1, 2], cpu=1)
        tlbs.shootdown_pages(
            np.array([1], dtype=np.int32), np.array([1], dtype=np.uint64)
        )
        for cpu in (0, 1):
            hits = _acc(tlbs, [1, 2], cpu=cpu)
            np.testing.assert_array_equal(hits, [False, True])

    def test_contains_any_cpu(self):
        tlbs = TLBArray(n_cpus=2, entries=64)
        _acc(tlbs, [4], cpu=1)
        assert tlbs.contains(
            np.array([1], dtype=np.int32), np.array([4], dtype=np.uint64)
        )[0]
