"""Unit tests for AccessBatch / SampleBatch containers."""

import numpy as np
import pytest

from repro.memsim.events import AccessBatch, DataSource, SampleBatch, concat_samples


class TestAccessBatch:
    def test_from_pages_broadcast(self):
        b = AccessBatch.from_pages([1, 2, 3], is_store=True, pid=7, cpu=2)
        assert b.n == 3
        assert b.is_store.all()
        assert (b.pid == 7).all()
        assert (b.cpu == 2).all()

    def test_from_pages_addresses(self):
        b = AccessBatch.from_pages([1], offset=100)
        assert b.vaddr[0] == 4096 + 100

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="is_store"):
            AccessBatch(
                vaddr=np.zeros(3, dtype=np.uint64),
                is_store=np.zeros(2, dtype=bool),
                pid=0,
                cpu=0,
            )

    def test_len(self):
        assert len(AccessBatch.from_pages([1, 2])) == 2
        assert len(AccessBatch.empty()) == 0

    def test_take_preserves_order(self):
        b = AccessBatch.from_pages([10, 20, 30])
        sub = b.take([2, 0])
        np.testing.assert_array_equal(sub.vaddr >> 12, [30, 10])

    def test_take_slice_is_zero_copy(self):
        b = AccessBatch.from_pages([10, 20, 30, 40], pid=3, cpu=1, is_store=True)
        sub = b.take(slice(1, 3))
        assert sub.n == 2
        np.testing.assert_array_equal(sub.vaddr >> 12, [20, 30])
        for col in ("vaddr", "is_store", "pid", "cpu", "ip"):
            assert np.shares_memory(getattr(sub, col), getattr(b, col)), col
        np.testing.assert_array_equal(sub.pid, [3, 3])
        assert sub.is_store.all()

    def test_take_fancy_index_copies(self):
        b = AccessBatch.from_pages([10, 20, 30])
        sub = b.take(np.array([0, 2]))
        assert not np.shares_memory(sub.vaddr, b.vaddr)

    def test_concat(self):
        a = AccessBatch.from_pages([1], pid=1)
        b = AccessBatch.from_pages([2, 3], pid=2)
        c = AccessBatch.concat([a, b])
        assert c.n == 3
        np.testing.assert_array_equal(c.pid, [1, 2, 2])

    def test_concat_empty_list(self):
        assert AccessBatch.concat([]).n == 0

    def test_default_ip_zero(self):
        b = AccessBatch.from_pages([1, 2])
        assert (b.ip == 0).all()

    def test_per_access_columns(self):
        b = AccessBatch(
            vaddr=np.array([0, 4096], dtype=np.uint64),
            is_store=np.array([True, False]),
            pid=np.array([1, 2]),
            cpu=np.array([0, 1]),
        )
        assert b.is_store[0] and not b.is_store[1]
        np.testing.assert_array_equal(b.pid, [1, 2])


def _samples(n, ds=DataSource.MEMORY):
    return SampleBatch(
        op_idx=np.arange(n, dtype=np.uint64),
        cpu=np.zeros(n, dtype=np.int16),
        pid=np.ones(n, dtype=np.int32),
        ip=np.zeros(n, dtype=np.uint64),
        vaddr=np.arange(n, dtype=np.uint64) * 4096,
        paddr=np.arange(n, dtype=np.uint64) * 4096,
        is_store=np.zeros(n, dtype=bool),
        tlb_hit=np.zeros(n, dtype=bool),
        data_source=np.full(n, np.uint8(ds), dtype=np.uint8),
    )


class TestSampleBatch:
    def test_pfn(self):
        s = _samples(3)
        np.testing.assert_array_equal(s.pfn, [0, 1, 2])

    def test_memory_samples_filter(self):
        s = _samples(4)
        s.data_source[1] = np.uint8(DataSource.L1)
        mem = s.memory_samples()
        assert mem.n == 3
        np.testing.assert_array_equal(mem.op_idx, [0, 2, 3])

    def test_empty(self):
        assert SampleBatch.empty().n == 0
        assert SampleBatch.empty().memory_samples().n == 0

    def test_concat_samples(self):
        merged = concat_samples([_samples(2), SampleBatch.empty(), _samples(3)])
        assert merged.n == 5

    def test_concat_samples_all_empty(self):
        assert concat_samples([SampleBatch.empty()]).n == 0
        assert concat_samples([]).n == 0

    def test_take(self):
        s = _samples(5)
        sub = s.take(s.op_idx >= 3)
        assert sub.n == 2


class TestDataSource:
    def test_ordering_by_depth(self):
        assert DataSource.L1 < DataSource.L2 < DataSource.LLC < DataSource.MEMORY
