"""Unit tests for the Resource-Control (CMT/MBM) monitor."""

import numpy as np
import pytest

from repro.memsim import AccessBatch, Machine, MachineConfig
from repro.memsim.address import LINE_SIZE
from repro.memsim.resctrl import ResctrlMonitor


class TestAssignment:
    def test_auto_rmids(self):
        mon = ResctrlMonitor(llc_bytes=1 << 20)
        r1 = mon.assign([1, 2])
        r2 = mon.assign([3])
        assert r1 != r2
        assert mon.rmid_of(1) == r1
        assert mon.rmid_of(3) == r2

    def test_unassigned_is_rmid_zero(self):
        mon = ResctrlMonitor(llc_bytes=1 << 20)
        assert mon.rmid_of(42) == 0

    def test_explicit_rmid(self):
        mon = ResctrlMonitor(llc_bytes=1 << 20)
        assert mon.assign([1], rmid=7) == 7

    def test_rmid_exhaustion(self):
        mon = ResctrlMonitor(llc_bytes=1 << 20, max_rmids=2)
        mon.assign([1])
        with pytest.raises(RuntimeError, match="RMID"):
            mon.assign([2])

    def test_bad_params(self):
        with pytest.raises(ValueError):
            ResctrlMonitor(llc_bytes=1, decay=1.0)
        with pytest.raises(ValueError):
            ResctrlMonitor(llc_bytes=1, max_rmids=0)


class TestAccounting:
    def _feed(self, mon, pid, n_mem):
        pids = np.full(n_mem, pid, dtype=np.int32)
        mon.observe(pids, np.ones(n_mem, dtype=bool))

    def test_mbm_counts_traffic(self):
        mon = ResctrlMonitor(llc_bytes=1 << 20)
        r = mon.assign([1])
        self._feed(mon, 1, 100)
        reading = mon.read_and_reset()[r]
        assert reading.mbm_bytes == 100 * LINE_SIZE

    def test_interval_reset(self):
        mon = ResctrlMonitor(llc_bytes=1 << 20)
        r = mon.assign([1])
        self._feed(mon, 1, 100)
        mon.read_and_reset()
        reading = mon.read_and_reset()[r]
        assert reading.mbm_bytes == 0

    def test_unassigned_traffic_ignored(self):
        mon = ResctrlMonitor(llc_bytes=1 << 20)
        r = mon.assign([1])
        self._feed(mon, 99, 50)  # not in any group
        assert mon.read_and_reset()[r].mbm_bytes == 0

    def test_cache_hits_not_counted(self):
        mon = ResctrlMonitor(llc_bytes=1 << 20)
        r = mon.assign([1])
        pids = np.full(10, 1, dtype=np.int32)
        mon.observe(pids, np.zeros(10, dtype=bool))  # all hits
        assert mon.read_and_reset()[r].mbm_bytes == 0

    def test_occupancy_share(self):
        mon = ResctrlMonitor(llc_bytes=64 * LINE_SIZE, decay=0.0)
        r1 = mon.assign([1])
        r2 = mon.assign([2])
        self._feed(mon, 1, 300)
        self._feed(mon, 2, 100)
        readings = mon.read_and_reset()
        # Heavy filler holds ~3x the light one's occupancy.
        assert readings[r1].llc_occupancy_bytes > 2 * readings[r2].llc_occupancy_bytes
        assert readings[r1].llc_occupancy_bytes <= 64 * LINE_SIZE

    def test_occupancy_bounded_by_fills(self):
        mon = ResctrlMonitor(llc_bytes=1 << 30, decay=0.0)
        r = mon.assign([1])
        self._feed(mon, 1, 2)
        reading = mon.read_and_reset()[r]
        assert reading.llc_occupancy_bytes <= 2 * LINE_SIZE


class TestMachineIntegration:
    def test_end_to_end(self):
        m = Machine(
            MachineConfig(
                total_frames=1 << 14,
                tlb_entries=64,
                l1_bytes=4096,
                l2_bytes=8192,
                llc_bytes=16384,
                n_cpus=1,
            )
        )
        mon = m.enable_resctrl()
        v1 = m.mmap(1, 512)
        v2 = m.mmap(2, 16)
        rmid_big = mon.assign([1])
        rmid_small = mon.assign([2])
        rng = np.random.default_rng(0)
        b = AccessBatch.concat(
            [
                AccessBatch.from_pages(rng.choice(v1.vpns, 2000), pid=1),
                AccessBatch.from_pages(np.repeat(v2.vpns[:1], 100), pid=2),
            ]
        )
        m.run_batch(b)
        readings = mon.read_and_reset()
        # The streaming process moves far more memory bandwidth.
        assert readings[rmid_big].mbm_bytes > 10 * readings[rmid_small].mbm_bytes

    def test_enable_idempotent(self):
        m = Machine(MachineConfig(total_frames=1 << 10))
        a = m.enable_resctrl()
        b = m.enable_resctrl()
        assert a is b
