"""Unit tests for the cache hierarchy."""

import numpy as np
import pytest

from repro.memsim.cache import CacheHierarchy, CacheLevel
from repro.memsim.events import DataSource


def _lines(*vals):
    return np.asarray(vals, dtype=np.uint64)


class TestCacheLevel:
    def test_capacity_in_lines(self):
        lvl = CacheLevel("L1", 32 * 1024)
        assert lvl.capacity_lines == 512

    def test_hit_miss_stats(self):
        lvl = CacheLevel("x", 64 * 64)  # 64 lines
        lvl.access(_lines(1, 1, 2))
        assert lvl.stats.lookups == 3
        assert lvl.stats.hits == 1
        assert lvl.stats.miss_rate == pytest.approx(2 / 3)

    def test_flush(self):
        lvl = CacheLevel("x", 64 * 64)
        lvl.access(_lines(1))
        lvl.flush()
        assert not lvl.access(_lines(1))[0]


class TestHierarchy:
    def _small(self):
        # 4-line L1, 16-line L2, 64-line LLC.
        return CacheHierarchy(l1_bytes=256, l2_bytes=1024, llc_bytes=4096)

    def test_cold_access_reaches_memory(self):
        h = self._small()
        src = h.access(_lines(100))
        assert src[0] == DataSource.MEMORY

    def test_repeat_hits_l1(self):
        h = self._small()
        h.access(_lines(100))
        src = h.access(_lines(100))
        assert src[0] == DataSource.L1

    def test_l1_victim_found_in_l2(self):
        h = self._small()
        h.access(_lines(0))
        # Evict line 0 from the 4-line L1 (line 4 conflicts), but the
        # 16-line L2 holds both.
        h.access(_lines(4))
        src = h.access(_lines(0))
        assert src[0] == DataSource.L2

    def test_llc_catch(self):
        h = self._small()
        h.access(_lines(0))
        # Conflict line 0 out of L1 (4 sets) and L2 (16 sets) but not LLC (64).
        h.access(_lines(16))
        src = h.access(_lines(0))
        assert src[0] == DataSource.LLC

    def test_miss_path_installs_all_levels(self):
        h = self._small()
        h.access(_lines(7))
        assert h.levels[0].stats.misses == 1
        assert h.levels[1].stats.misses == 1
        assert h.levels[2].stats.misses == 1
        # Now resident everywhere: an L1 hit doesn't probe lower levels.
        h.access(_lines(7))
        assert h.levels[1].stats.lookups == 1

    def test_order_preserved_within_batch(self):
        h = self._small()
        src = h.access(_lines(9, 9, 9))
        assert src[0] == DataSource.MEMORY
        assert src[1] == DataSource.L1
        assert src[2] == DataSource.L1

    def test_empty_batch(self):
        h = self._small()
        assert h.access(np.zeros(0, dtype=np.uint64)).size == 0

    def test_flush_all_levels(self):
        h = self._small()
        h.access(_lines(3))
        h.flush()
        assert h.access(_lines(3))[0] == DataSource.MEMORY

    def test_llc_property(self):
        h = self._small()
        assert h.llc is h.levels[2]
        assert h.llc.name == "LLC"

    def test_working_set_larger_than_llc_misses(self):
        h = self._small()
        lines = np.arange(128, dtype=np.uint64)  # 2x LLC capacity
        h.access(lines)
        src = h.access(lines)
        # Streaming through 2x LLC: every line evicted before reuse.
        assert (src == DataSource.MEMORY).all()

    def test_working_set_fits_llc_hits(self):
        h = self._small()
        lines = np.arange(32, dtype=np.uint64)  # half the LLC
        h.access(lines)
        src = h.access(lines)
        assert (src != DataSource.MEMORY).all()
