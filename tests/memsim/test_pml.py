"""Unit tests for page-modification logging."""

import numpy as np
import pytest

from repro.memsim.frames import FrameAllocator
from repro.memsim.page_table import PageTable
from repro.memsim.pml import PML_LOG_ENTRIES, PMLogger
from repro.memsim.ptw import PageTableWalker
from repro.memsim.pte import is_dirty


class TestLog:
    def test_logs_pfns(self):
        pml = PMLogger()
        pml.observe_dirty(np.array([3, 9], dtype=np.uint64))
        np.testing.assert_array_equal(pml.drain(), [3, 9])

    def test_notification_per_fill(self):
        pml = PMLogger(log_entries=4)
        pml.observe_dirty(np.arange(10, dtype=np.uint64))
        assert pml.stats.notifications == 2
        assert pml.stats.logged == 10

    def test_disabled(self):
        pml = PMLogger()
        pml.enabled = False
        pml.observe_dirty(np.array([1], dtype=np.uint64))
        assert pml.drain().size == 0

    def test_empty_observe(self):
        pml = PMLogger()
        pml.observe_dirty(np.zeros(0, dtype=np.uint64))
        assert pml.pending == 0

    def test_drain_empties(self):
        pml = PMLogger()
        pml.observe_dirty(np.array([1], dtype=np.uint64))
        pml.drain()
        assert pml.pending == 0
        assert pml.drain().size == 0

    def test_architectural_default_size(self):
        assert PML_LOG_ENTRIES == 512
        assert PMLogger().log_entries == 512

    def test_bad_size(self):
        with pytest.raises(ValueError):
            PMLogger(log_entries=0)


class TestClearDirty:
    def test_rearm_cycle(self):
        pt = PageTable(1)
        pt.mmap(0x100, 8, FrameAllocator(64))
        w = PageTableWalker()
        pml = PMLogger()

        newly = w.dirty_updates(pt, np.array([1, 2], dtype=np.int64))
        pml.observe_dirty(pt.slot_to_pfn(newly))
        assert pml.pending == 2

        # Stores to already-dirty pages log nothing.
        newly = w.dirty_updates(pt, np.array([1], dtype=np.int64))
        assert newly.size == 0

        # Clearing D bits re-arms logging.
        cleared = PMLogger.clear_dirty(pt)
        assert cleared == 2
        assert not is_dirty(pt.flags).any()
        newly = w.dirty_updates(pt, np.array([1], dtype=np.int64))
        assert newly.size == 1
