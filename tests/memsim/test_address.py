"""Unit tests for address arithmetic."""

import numpy as np
import pytest

from repro.memsim import address as A


class TestConstants:
    def test_page_size(self):
        assert A.PAGE_SIZE == 4096
        assert A.PAGE_SIZE == 1 << A.PAGE_SHIFT

    def test_line_size(self):
        assert A.LINE_SIZE == 64
        assert A.LINES_PER_PAGE == 64

    def test_masks(self):
        assert A.PAGE_OFFSET_MASK == 0xFFF
        assert A.LINE_OFFSET_MASK == 0x3F


class TestPageOf:
    def test_scalar(self):
        assert A.page_of(0) == 0
        assert A.page_of(4095) == 0
        assert A.page_of(4096) == 1

    def test_array(self):
        addrs = np.array([0, 4096, 8192 + 17], dtype=np.uint64)
        np.testing.assert_array_equal(A.page_of(addrs), [0, 1, 2])

    def test_dtype(self):
        assert A.page_of(np.array([1], dtype=np.uint64)).dtype == np.uint64

    def test_high_addresses(self):
        addr = np.uint64((1 << 47) + 123)
        assert A.page_of(addr) == (1 << 47) >> 12


class TestLineOf:
    def test_scalar(self):
        assert A.line_of(63) == 0
        assert A.line_of(64) == 1

    def test_lines_within_page(self):
        base = 5 * A.PAGE_SIZE
        lines = A.line_of(np.arange(base, base + A.PAGE_SIZE, 64, dtype=np.uint64))
        assert len(np.unique(lines)) == A.LINES_PER_PAGE


class TestCompose:
    def test_roundtrip(self):
        vpn = np.array([0, 7, 123456], dtype=np.uint64)
        off = np.array([0, 100, 4095], dtype=np.uint64)
        addr = A.compose(vpn, off)
        np.testing.assert_array_equal(A.page_of(addr), vpn)
        np.testing.assert_array_equal(A.page_offset(addr), off)

    def test_offset_wrap_masked(self):
        # Offsets beyond page size are masked, not carried.
        assert A.compose(1, 4096) == A.page_base(1)

    def test_page_base(self):
        assert A.page_base(3) == 3 * 4096


class TestPagesSpanned:
    def test_exact(self):
        assert A.pages_spanned(4096) == 1
        assert A.pages_spanned(8192) == 2

    def test_partial(self):
        assert A.pages_spanned(1) == 1
        assert A.pages_spanned(4097) == 2

    def test_zero(self):
        assert A.pages_spanned(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            A.pages_spanned(-1)


class TestIsPow2:
    @pytest.mark.parametrize("n", [1, 2, 4, 1024, 1 << 40])
    def test_true(self, n):
        assert A.is_pow2(n)

    @pytest.mark.parametrize("n", [0, -2, 3, 6, 1023])
    def test_false(self, n):
        assert not A.is_pow2(n)
