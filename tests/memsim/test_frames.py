"""Unit tests for frame allocation and ground-truth frame stats."""

import numpy as np
import pytest

from repro.memsim.frames import FrameAllocator, FrameStats, GrowableArray


class TestGrowableArray:
    def test_starts_empty(self):
        g = GrowableArray(np.int64)
        assert len(g) == 0
        assert g.data().size == 0

    def test_resize_and_fill_value(self):
        g = GrowableArray(np.int64, fill=-1, initial_capacity=2)
        g.resize(5)
        assert len(g) == 5
        assert (g.data() == -1).all()

    def test_growth_preserves_data(self):
        g = GrowableArray(np.int64, initial_capacity=2)
        g.resize(2)
        g.data()[:] = [7, 8]
        g.resize(100)
        np.testing.assert_array_equal(g.data()[:2], [7, 8])
        assert (g.data()[2:] == 0).all()

    def test_shrink_is_noop(self):
        g = GrowableArray(np.int64)
        g.resize(10)
        g.resize(3)
        assert len(g) == 10

    def test_fill(self):
        g = GrowableArray(np.int64)
        g.resize(4)
        g.fill(9)
        assert (g.data() == 9).all()


class TestFrameAllocator:
    def test_monotonic(self):
        a = FrameAllocator(100)
        assert a.alloc(10) == 0
        assert a.alloc(5) == 10
        assert a.allocated == 15
        assert a.free == 85

    def test_exhaustion(self):
        a = FrameAllocator(8)
        a.alloc(8)
        with pytest.raises(MemoryError):
            a.alloc(1)

    def test_bad_args(self):
        with pytest.raises(ValueError):
            FrameAllocator(0)
        a = FrameAllocator(4)
        with pytest.raises(ValueError):
            a.alloc(0)


class TestFrameStats:
    def _record(self, fs, pfns, stores=None, mem=None, tlbmiss=None, op_base=0):
        pfns = np.asarray(pfns, dtype=np.uint64)
        n = pfns.size
        z = np.zeros(n, dtype=bool)
        fs.record(
            pfns,
            z if stores is None else np.asarray(stores, dtype=bool),
            z if mem is None else np.asarray(mem, dtype=bool),
            z if tlbmiss is None else np.asarray(tlbmiss, dtype=bool),
            op_base,
        )

    def test_access_counts(self):
        fs = FrameStats()
        fs.resize(4)
        self._record(fs, [0, 1, 1, 3])
        np.testing.assert_array_equal(fs.access_count, [1, 2, 0, 1])

    def test_store_and_mem_counts(self):
        fs = FrameStats()
        fs.resize(2)
        self._record(fs, [0, 0, 1], stores=[True, False, True], mem=[False, True, True])
        np.testing.assert_array_equal(fs.store_count, [1, 1])
        np.testing.assert_array_equal(fs.mem_access_count, [1, 1])

    def test_tlb_miss_counts(self):
        fs = FrameStats()
        fs.resize(2)
        self._record(fs, [0, 1, 1], tlbmiss=[True, True, False])
        np.testing.assert_array_equal(fs.tlb_miss_count, [1, 1])

    def test_first_touch_stamps_once(self):
        fs = FrameStats()
        fs.resize(3)
        self._record(fs, [2, 0], op_base=10)
        self._record(fs, [0, 1], op_base=100)
        np.testing.assert_array_equal(fs.first_touch_op, [11, 101, 10])

    def test_first_touch_within_batch_duplicates(self):
        fs = FrameStats()
        fs.resize(1)
        self._record(fs, [0, 0, 0], op_base=5)
        assert fs.first_touch_op[0] == 5

    def test_touched_mask(self):
        fs = FrameStats()
        fs.resize(3)
        self._record(fs, [1])
        np.testing.assert_array_equal(fs.touched_mask(), [False, True, False])

    def test_empty_record_noop(self):
        fs = FrameStats()
        fs.resize(2)
        self._record(fs, [])
        assert fs.access_count.sum() == 0

    def test_accumulates_across_batches(self):
        fs = FrameStats()
        fs.resize(1)
        self._record(fs, [0])
        self._record(fs, [0])
        assert fs.access_count[0] == 2
