"""Tests for the machine's AMAT (cycle) accounting."""

import numpy as np
import pytest

from repro.memsim import AccessBatch, Machine, MachineConfig


def _machine(**kw):
    defaults = dict(
        total_frames=1 << 14,
        tlb_entries=64,
        l1_bytes=4096,
        l2_bytes=8192,
        llc_bytes=16384,
        n_cpus=1,
    )
    defaults.update(kw)
    return Machine(MachineConfig(**defaults))


class TestCycleAccounting:
    def test_l1_resident_costs_base_latency(self):
        m = _machine()
        vma = m.mmap(1, 1)
        m.run_batch(AccessBatch.from_pages(vma.vpns, pid=1))  # warm up
        r = m.run_batch(AccessBatch.from_pages(np.repeat(vma.vpns, 10), pid=1))
        assert r.cycles == 10 * m.config.cycles_l1
        assert r.amat_cycles == pytest.approx(m.config.cycles_l1)

    def test_cold_miss_costs_memory_plus_walk(self):
        m = _machine()
        vma = m.mmap(1, 1)
        r = m.run_batch(AccessBatch.from_pages(vma.vpns, pid=1))
        assert r.cycles == m.config.cycles_mem + m.config.cycles_walk

    def test_cumulative(self):
        m = _machine()
        vma = m.mmap(1, 8)
        c1 = m.run_batch(AccessBatch.from_pages(vma.vpns, pid=1)).cycles
        c2 = m.run_batch(AccessBatch.from_pages(vma.vpns, pid=1)).cycles
        assert m.cycles == c1 + c2
        assert m.amat_cycles == pytest.approx(m.cycles / 16)

    def test_empty_batch_zero(self):
        m = _machine()
        r = m.run_batch(AccessBatch.empty())
        assert r.cycles == 0
        assert r.amat_cycles == 0.0

    def test_hostile_workload_has_higher_amat(self):
        from repro.workloads import make_workload

        def amat(name):
            m = Machine(MachineConfig.scaled())
            w = make_workload(name)
            w.attach(m)
            rng = np.random.default_rng(0)
            for e in range(2):
                m.run_batch(w.epoch(e, rng))
            return m.amat_cycles

        # Uniform random updates pay far more per access than the
        # cache-friendly web service.
        assert amat("gups") > 1.5 * amat("web-serving")

    def test_custom_cycle_costs(self):
        m = _machine(cycles_l1=1, cycles_l2=2, cycles_llc=3, cycles_mem=4, cycles_walk=5)
        vma = m.mmap(1, 1)
        r = m.run_batch(AccessBatch.from_pages(vma.vpns, pid=1))
        assert r.cycles == 4 + 5
