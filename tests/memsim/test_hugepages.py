"""Tests for transparent-huge-page (2 MiB) mappings.

THP changes the granularity of everything PTE-borne: one A/D bit, one
TLB entry, one scan slot per 512 frames — while physical addresses (and
therefore IBS/PEBS samples and cache behaviour) stay 4 KiB-resolved.
This is the asymmetry that collapses A-bit detection counts on
THP-backed heaps (the paper's flat Table IV HPC rows).
"""

import numpy as np
import pytest

from repro.core import ABitDriver, PageStatsStore, TMPConfig, TMProfiler
from repro.memsim import AccessBatch, Machine, MachineConfig
from repro.memsim.frames import FrameAllocator
from repro.memsim.page_table import PageTable
from repro.memsim.pte import is_accessed


def _machine(**kw):
    defaults = dict(
        total_frames=1 << 16, tlb_entries=64, ibs_period=10, n_cpus=1
    )
    defaults.update(kw)
    return Machine(MachineConfig(**defaults))


class TestHugeVMA:
    def test_unit_accounting(self):
        pt = PageTable(1)
        vma = pt.mmap(0x1000, 1024, FrameAllocator(1 << 16), page_order=9)
        assert vma.unit_pages == 512
        assert vma.n_units == 2
        assert pt.n_pages == 2  # PTEs, not frames
        assert pt.total_frames == 1024

    def test_partial_last_unit(self):
        pt = PageTable(1)
        vma = pt.mmap(0x1000, 513, FrameAllocator(1 << 16), page_order=9)
        assert vma.n_units == 2

    def test_translate_frames_4k_slots_2m(self):
        pt = PageTable(1)
        vma = pt.mmap(0x1000, 1024, FrameAllocator(1 << 16), page_order=9)
        vpns = np.array([0x1000, 0x1001, 0x1000 + 511, 0x1000 + 512], dtype=np.uint64)
        pfns, slots, tlb_vpns = pt.translate_ex(vpns)
        # Frames are 4 KiB-resolved.
        np.testing.assert_array_equal(pfns, vma.pfn_base + np.array([0, 1, 511, 512]))
        # All of the first unit shares slot 0; the next unit is slot 1.
        np.testing.assert_array_equal(slots, [0, 0, 0, 1])
        # TLB tags are unit heads.
        np.testing.assert_array_equal(tlb_vpns, [0x1000, 0x1000, 0x1000, 0x1000 + 512])

    def test_slot_maps_to_unit_head(self):
        pt = PageTable(1)
        vma = pt.mmap(0x1000, 1024, FrameAllocator(1 << 16), page_order=9)
        np.testing.assert_array_equal(pt.slot_to_vpn(np.array([0, 1])), [0x1000, 0x1200])
        np.testing.assert_array_equal(
            pt.slot_to_pfn(np.array([0, 1])), [vma.pfn_base, vma.pfn_base + 512]
        )

    def test_mixed_orders_in_one_table(self):
        pt = PageTable(1)
        alloc = FrameAllocator(1 << 16)
        huge = pt.mmap(0x1000, 512, alloc, page_order=9)
        base = pt.mmap(0x8000, 4, alloc, page_order=0)
        pfns, slots, tlb_vpns = pt.translate_ex(
            np.array([0x1100, 0x8002], dtype=np.uint64)
        )
        assert slots[0] == 0          # inside the huge unit
        assert slots[1] == 1 + 2      # huge unit slots come first
        assert tlb_vpns[0] == 0x1000
        assert tlb_vpns[1] == 0x8002

    def test_bad_order(self):
        pt = PageTable(1)
        with pytest.raises(ValueError):
            pt.mmap(0x1000, 4, FrameAllocator(16), page_order=-1)


class TestHugeTLBBehaviour:
    def test_one_entry_covers_whole_unit(self):
        m = _machine()
        vma = m.mmap(1, 1024, page_order=9)
        # Touch 100 distinct 4K pages within one 2 MiB unit.
        vpns = vma.start_vpn + np.arange(100, dtype=np.uint64)
        r = m.run_batch(AccessBatch.from_pages(vpns, pid=1))
        # One cold miss for the unit, then hits: huge TLB reach.
        assert int((~r.tlb_hit).sum()) == 1
        assert m.ptw.stats.walks == 1

    def test_base_pages_miss_per_page(self):
        m = _machine()
        vma = m.mmap(1, 1024, page_order=0)
        vpns = vma.start_vpn + np.arange(100, dtype=np.uint64)
        r = m.run_batch(AccessBatch.from_pages(vpns, pid=1))
        assert int((~r.tlb_hit).sum()) == 100

    def test_a_bit_per_unit(self):
        m = _machine()
        vma = m.mmap(1, 1024, page_order=9)
        vpns = vma.start_vpn + np.arange(600, dtype=np.uint64)  # spans 2 units
        m.run_batch(AccessBatch.from_pages(vpns, pid=1))
        acc = is_accessed(m.page_tables[1].flags)
        assert acc.sum() == 2


class TestHugeProfilingAsymmetry:
    def test_abit_counts_units_ibs_counts_frames(self):
        """The Table IV THP effect: the A-bit scan detects mapping
        units while IBS detects 4 KiB frames."""
        m = _machine(ibs_period=4)
        vma = m.mmap(1, 2048, page_order=9)  # 4 huge units
        prof = TMProfiler(m, TMPConfig())
        prof.register_pids([1])
        rng = np.random.default_rng(0)
        b = AccessBatch.from_pages(rng.choice(vma.vpns, 4000), pid=1)
        r = m.run_batch(b)
        prof.observe_batch(b, r)
        prof.end_epoch()
        abit = prof.store.detected_pages("abit")
        trace = prof.store.detected_pages("trace")
        assert abit == 4            # one detection per huge unit
        assert trace > 100          # hundreds of distinct frames sampled

    def test_abit_scan_visits_few_ptes(self):
        m = _machine()
        vma = m.mmap(1, 2048, page_order=9)
        store = PageStatsStore()
        store.resize(m.n_frames)
        drv = ABitDriver(m, TMPConfig(), store)
        m.run_batch(AccessBatch.from_pages(vma.vpns[:1024], pid=1))
        drv.scan([1])
        assert drv.stats.ptes_visited == 4  # the whole table is 4 PTEs

    def test_workload_thp_option(self):
        from repro.workloads import GUPS

        m = Machine(MachineConfig.scaled())
        w = GUPS(footprint_pages=8192, thp=True)
        w.attach(m)
        pt = m.page_tables[w.pids[0]]
        table_vma = pt.find_vma(w.processes[0].vma("table").start_vpn)
        assert table_vma.page_order == 9
        # Streams stay base-paged.
        assert w.processes[0].vma("stream").page_order == 0
        r = m.run_batch(w.epoch(0, np.random.default_rng(0)))
        assert r.n > 0

    @pytest.mark.parametrize("name", ["xsbench", "lulesh", "graph500"])
    def test_thp_parity_across_hpc_workloads(self, name):
        from repro.workloads import make_workload

        m = Machine(MachineConfig.scaled())
        w = make_workload(name, thp=True)
        w.attach(m)
        pt = m.page_tables[w.pids[0]]
        # The big allocation is huge-paged...
        assert any(v.page_order == 9 for v in pt.vmas)
        # ...which collapses the PTE count well below the frame count
        # (graph500 keeps base-paged frontier/visited arrays alongside).
        assert pt.n_pages < pt.total_frames / 3
        r = m.run_batch(w.epoch(0, np.random.default_rng(0)))
        assert r.n > 0
