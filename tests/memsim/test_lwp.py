"""Unit tests for the LWP sampler (per-process ring buffers)."""

import numpy as np
import pytest

from repro.memsim.events import AccessBatch, DataSource
from repro.memsim.lwp import LWPSampler


def _meta(batch):
    n = batch.n
    return dict(
        paddr=batch.vaddr.copy(),
        tlb_hit=np.zeros(n, dtype=bool),
        data_source=np.full(n, np.uint8(DataSource.MEMORY), dtype=np.uint8),
    )


def _batch(n, pid=1):
    return AccessBatch.from_pages(np.arange(n, dtype=np.uint64), pid=pid)


def _mixed(n_per_pid, pids):
    return AccessBatch.concat([_batch(n_per_pid, pid=p) for p in pids])


class TestSampling:
    def test_per_pid_counters(self):
        lwp = LWPSampler(period=10)
        b = _mixed(25, [1, 2])
        lwp.observe(b, op_base=0, **_meta(b))
        # Each PID's own ops are counted: 25 ops each → 2 samples each.
        assert lwp.pending(1) == 2
        assert lwp.pending(2) == 2

    def test_phase_continues_per_pid(self):
        lwp = LWPSampler(period=10)
        for i in range(5):
            b = _batch(5, pid=7)
            lwp.observe(b, op_base=5 * i, **_meta(b))
        s = lwp.drain_pid(7)
        assert s.n == 2

    def test_records_carry_pid(self):
        lwp = LWPSampler(period=5)
        b = _mixed(10, [3, 4])
        lwp.observe(b, op_base=0, **_meta(b))
        s = lwp.drain()
        assert set(np.unique(s.pid)) == {3, 4}

    def test_disabled(self):
        lwp = LWPSampler(period=1)
        lwp.enabled = False
        b = _batch(10)
        lwp.observe(b, op_base=0, **_meta(b))
        assert lwp.pending() == 0

    def test_set_period(self):
        lwp = LWPSampler(period=100)
        lwp.set_period(2)
        b = _batch(10)
        lwp.observe(b, op_base=0, **_meta(b))
        assert lwp.pending(1) == 5

    def test_bad_params(self):
        with pytest.raises(ValueError):
            LWPSampler(period=0)
        with pytest.raises(ValueError):
            LWPSampler(buffer_records=0)
        with pytest.raises(ValueError):
            LWPSampler(threshold=0.0)
        with pytest.raises(ValueError):
            LWPSampler().set_period(0)


class TestRingSemantics:
    def test_threshold_interrupt_once(self):
        lwp = LWPSampler(period=1, buffer_records=10, threshold=0.5)
        b = _batch(4)
        lwp.observe(b, op_base=0, **_meta(b))
        assert lwp.stats.threshold_interrupts == 0
        lwp.observe(b, op_base=4, **_meta(b))  # 8 >= 5: fires once
        lwp.observe(b, op_base=8, **_meta(b))  # still armed: no re-fire
        assert lwp.stats.threshold_interrupts == 1

    def test_drain_rearms_interrupt(self):
        lwp = LWPSampler(period=1, buffer_records=4, threshold=0.5)
        b = _batch(3)
        lwp.observe(b, op_base=0, **_meta(b))
        assert lwp.stats.threshold_interrupts == 1
        lwp.drain_pid(1)
        lwp.observe(b, op_base=3, **_meta(b))
        assert lwp.stats.threshold_interrupts == 2

    def test_overflow_drops(self):
        lwp = LWPSampler(period=1, buffer_records=5)
        b = _batch(8)
        lwp.observe(b, op_base=0, **_meta(b))
        assert lwp.pending(1) == 5
        assert lwp.stats.dropped == 3

    def test_per_pid_rings_independent(self):
        lwp = LWPSampler(period=1, buffer_records=5)
        big = _batch(8, pid=1)
        small = _batch(2, pid=2)
        lwp.observe(big, op_base=0, **_meta(big))
        lwp.observe(small, op_base=8, **_meta(small))
        assert lwp.pending(1) == 5  # overflowed
        assert lwp.pending(2) == 2  # unaffected

    def test_drain_all(self):
        lwp = LWPSampler(period=1)
        b = _mixed(3, [1, 2, 3])
        lwp.observe(b, op_base=0, **_meta(b))
        s = lwp.drain()
        assert s.n == 9
        assert lwp.pending() == 0

    def test_drain_unknown_pid(self):
        assert LWPSampler().drain_pid(99).n == 0


class TestTMPIntegration:
    def test_trace_driver_with_lwp_source(self):
        from repro.core import PageStatsStore, TMPConfig, TraceDriver
        from repro.memsim import Machine, MachineConfig

        m = Machine(
            MachineConfig(
                total_frames=1 << 14,
                tlb_entries=64,
                l1_bytes=4096,
                l2_bytes=8192,
                llc_bytes=16384,
                lwp_period=10,
                enable_lwp=True,
                n_cpus=1,
            )
        )
        vma = m.mmap(1, 256)
        store = PageStatsStore()
        store.resize(m.n_frames)
        drv = TraceDriver(m, TMPConfig(trace_source="lwp"), store)
        assert drv.sampler is m.lwp
        rng = np.random.default_rng(0)
        b = AccessBatch.from_pages(rng.choice(vma.vpns, 1000), pid=1)
        m.run_batch(b)
        samples = drv.drain()
        assert samples.n == 100
        assert store.trace_total.sum() > 0
