"""Unit tests for PTE flag encoding."""

import numpy as np

from repro.memsim import pte


class TestFlagBits:
    def test_bits_disjoint(self):
        bits = [pte.PTE_PRESENT, pte.PTE_WRITABLE, pte.PTE_ACCESSED, pte.PTE_DIRTY, pte.PTE_POISON]
        for i, a in enumerate(bits):
            for b in bits[i + 1 :]:
                assert a & b == 0

    def test_poison_is_bit_51(self):
        assert pte.PTE_POISON == np.uint64(1 << 51)

    def test_default_present_writable_clean(self):
        f = np.array([pte.PTE_DEFAULT])
        assert pte.is_present(f).all()
        assert not pte.is_accessed(f).any()
        assert not pte.is_dirty(f).any()
        assert not pte.is_poisoned(f).any()


class TestPredicates:
    def test_masks(self):
        f = np.array(
            [0, pte.PTE_PRESENT, pte.PTE_PRESENT | pte.PTE_ACCESSED, pte.PTE_DIRTY],
            dtype=np.uint64,
        )
        np.testing.assert_array_equal(pte.is_present(f), [False, True, True, False])
        np.testing.assert_array_equal(pte.is_accessed(f), [False, False, True, False])
        np.testing.assert_array_equal(pte.is_dirty(f), [False, False, False, True])


class TestSetClear:
    def test_set_flags(self):
        f = np.zeros(4, dtype=np.uint64)
        pte.set_flags(f, [1, 3], pte.PTE_ACCESSED)
        np.testing.assert_array_equal(pte.is_accessed(f), [False, True, False, True])

    def test_clear_flags(self):
        f = np.full(3, pte.PTE_ACCESSED | pte.PTE_DIRTY, dtype=np.uint64)
        pte.clear_flags(f, [0, 2], pte.PTE_ACCESSED)
        np.testing.assert_array_equal(pte.is_accessed(f), [False, True, False])
        # Dirty untouched.
        assert pte.is_dirty(f).all()


class TestTestAndClear:
    def test_returns_previous_and_clears(self):
        f = np.array([pte.PTE_ACCESSED, 0, pte.PTE_ACCESSED], dtype=np.uint64)
        had = pte.test_and_clear(f, pte.PTE_ACCESSED)
        np.testing.assert_array_equal(had, [True, False, True])
        assert not pte.is_accessed(f).any()

    def test_other_bits_preserved(self):
        f = np.array([pte.PTE_PRESENT | pte.PTE_ACCESSED | pte.PTE_DIRTY], dtype=np.uint64)
        pte.test_and_clear(f, pte.PTE_ACCESSED)
        assert pte.is_present(f).all()
        assert pte.is_dirty(f).all()

    def test_idempotent_second_clear(self):
        f = np.array([pte.PTE_ACCESSED], dtype=np.uint64)
        assert pte.test_and_clear(f, pte.PTE_ACCESSED).all()
        assert not pte.test_and_clear(f, pte.PTE_ACCESSED).any()
