"""Unit and property tests for the lookup-structure engines.

The key invariant: ``VectorDirectMapped`` is bit-for-bit equivalent to
``SequentialSetAssoc(ways=1)`` on any access sequence, including across
batch boundaries, flushes and fills.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim.vecsim import (
    SequentialSetAssoc,
    VectorDirectMapped,
    VectorSetAssoc,
    make_engine,
)


class TestVectorDirectMappedBasics:
    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            VectorDirectMapped(12)

    def test_cold_miss_then_hit(self):
        e = VectorDirectMapped(16)
        keys = np.array([5, 5, 5], dtype=np.uint64)
        np.testing.assert_array_equal(e.access(keys), [False, True, True])

    def test_conflict_eviction(self):
        e = VectorDirectMapped(16)
        # 5 and 21 map to the same set (mod 16): they evict each other.
        keys = np.array([5, 21, 5, 21], dtype=np.uint64)
        np.testing.assert_array_equal(e.access(keys), [False, False, False, False])

    def test_distinct_sets_no_interference(self):
        e = VectorDirectMapped(16)
        keys = np.array([1, 2, 3, 1, 2, 3], dtype=np.uint64)
        np.testing.assert_array_equal(
            e.access(keys), [False, False, False, True, True, True]
        )

    def test_state_persists_across_batches(self):
        e = VectorDirectMapped(16)
        e.access(np.array([7], dtype=np.uint64))
        assert e.access(np.array([7], dtype=np.uint64))[0]

    def test_empty_batch(self):
        e = VectorDirectMapped(16)
        assert e.access(np.zeros(0, dtype=np.uint64)).size == 0

    def test_flush(self):
        e = VectorDirectMapped(16)
        e.access(np.array([3], dtype=np.uint64))
        e.flush()
        assert not e.access(np.array([3], dtype=np.uint64))[0]
        assert e.occupancy() == 1

    def test_flush_keys(self):
        e = VectorDirectMapped(16)
        e.access(np.array([3, 4], dtype=np.uint64))
        n = e.flush_keys(np.array([3], dtype=np.uint64))
        assert n == 1
        hits = e.access(np.array([3, 4], dtype=np.uint64))
        np.testing.assert_array_equal(hits, [False, True])

    def test_flush_keys_nonresident_noop(self):
        e = VectorDirectMapped(16)
        e.access(np.array([3], dtype=np.uint64))
        assert e.flush_keys(np.array([19], dtype=np.uint64)) == 0  # same set, diff tag
        assert e.access(np.array([3], dtype=np.uint64))[0]

    def test_flush_where(self):
        e = VectorDirectMapped(16)
        e.access(np.array([1, 2, 3], dtype=np.uint64))
        n = e.flush_where(lambda tags: tags >= 2)
        assert n == 2
        hits = e.access(np.array([1, 2, 3], dtype=np.uint64))
        np.testing.assert_array_equal(hits, [True, False, False])

    def test_contains_non_mutating(self):
        e = VectorDirectMapped(16)
        e.access(np.array([9], dtype=np.uint64))
        assert e.contains(np.array([9], dtype=np.uint64))[0]
        assert not e.contains(np.array([10], dtype=np.uint64))[0]
        # contains must not install.
        assert not e.access(np.array([10], dtype=np.uint64))[0]

    def test_fill_installs_without_stats(self):
        e = VectorDirectMapped(16)
        e.fill(np.array([5], dtype=np.uint64))
        assert e.access(np.array([5], dtype=np.uint64))[0]

    def test_fill_last_wins_per_set(self):
        e = VectorDirectMapped(16)
        e.fill(np.array([5, 21], dtype=np.uint64))  # same set; 21 should stay
        hits = e.access(np.array([21], dtype=np.uint64))
        assert hits[0]

    def test_occupancy(self):
        e = VectorDirectMapped(16)
        assert e.occupancy() == 0
        e.access(np.array([1, 2, 18], dtype=np.uint64))  # 2 and 18 collide
        assert e.occupancy() == 2


class TestSequentialSetAssoc:
    def test_lru_within_set(self):
        e = SequentialSetAssoc(1, 2)  # one set, two ways
        keys = np.array([1, 2, 1, 3, 2], dtype=np.uint64)
        # 1 miss, 2 miss, 1 hit (LRU now 2), 3 evicts 2, 2 miss.
        np.testing.assert_array_equal(
            e.access(keys), [False, False, True, False, False]
        )

    def test_ways_capacity(self):
        e = SequentialSetAssoc(1, 4)
        e.access(np.arange(4, dtype=np.uint64))
        assert e.access(np.arange(4, dtype=np.uint64)).all()

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            SequentialSetAssoc(3, 2)
        with pytest.raises(ValueError):
            SequentialSetAssoc(4, 0)

    def test_flush_keys(self):
        e = SequentialSetAssoc(2, 2)
        e.access(np.array([1, 2, 3], dtype=np.uint64))
        assert e.flush_keys(np.array([1, 3], dtype=np.uint64)) == 2

    def test_fill_respects_capacity(self):
        e = SequentialSetAssoc(1, 2)
        e.fill(np.array([1, 2, 3], dtype=np.uint64))
        assert e.occupancy() == 2
        hits = e.access(np.array([2, 3], dtype=np.uint64))
        np.testing.assert_array_equal(hits, [True, True])


class TestMakeEngine:
    def test_default_direct_mapped(self):
        e = make_engine(64)
        assert isinstance(e, VectorDirectMapped)
        assert e.capacity == 64

    def test_exact_assoc(self):
        e = make_engine(64, ways=4, exact_assoc=True)
        assert isinstance(e, VectorSetAssoc)
        assert e.capacity == 64
        assert e.ways == 4

    def test_reference_engines(self):
        e = make_engine(64, ways=4, exact_assoc=True, reference=True)
        assert isinstance(e, SequentialSetAssoc)
        assert e.capacity == 64
        assert e.ways == 4
        e = make_engine(64, reference=True)
        assert isinstance(e, SequentialSetAssoc)
        assert e.ways == 1

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            make_engine(60)
        with pytest.raises(ValueError):
            make_engine(64, ways=3, exact_assoc=True)


@st.composite
def access_trace(draw):
    """A trace split into batches, over a small key universe."""
    nsets = draw(st.sampled_from([1, 2, 4, 8]))
    universe = draw(st.integers(min_value=1, max_value=4 * nsets))
    n_batches = draw(st.integers(min_value=1, max_value=4))
    batches = [
        draw(
            st.lists(
                st.integers(min_value=0, max_value=universe - 1),
                min_size=0,
                max_size=50,
            )
        )
        for _ in range(n_batches)
    ]
    return nsets, batches


class TestEquivalenceProperty:
    @given(access_trace())
    @settings(max_examples=200, deadline=None)
    def test_vector_equals_sequential_direct_mapped(self, trace):
        """VectorDirectMapped ≡ SequentialSetAssoc(ways=1) on any trace."""
        nsets, batches = trace
        vec = VectorDirectMapped(nsets)
        seq = SequentialSetAssoc(nsets, 1)
        for batch in batches:
            keys = np.asarray(batch, dtype=np.uint64)
            np.testing.assert_array_equal(
                vec.access(keys), seq.access(keys), err_msg=f"batch={batch}"
            )
        assert vec.occupancy() == seq.occupancy()

    @given(access_trace(), st.lists(st.integers(0, 31), max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_equivalence_with_flush_keys(self, trace, flushes):
        nsets, batches = trace
        vec = VectorDirectMapped(nsets)
        seq = SequentialSetAssoc(nsets, 1)
        for batch in batches:
            keys = np.asarray(batch, dtype=np.uint64)
            np.testing.assert_array_equal(vec.access(keys), seq.access(keys))
            fk = np.asarray(flushes, dtype=np.uint64)
            assert vec.flush_keys(fk) == seq.flush_keys(fk)

    @given(access_trace())
    @settings(max_examples=100, deadline=None)
    def test_hits_never_exceed_capacity_cold(self, trace):
        """First batch on a cold engine: hits require a prior access."""
        nsets, batches = trace
        vec = VectorDirectMapped(nsets)
        seen: set[int] = set()
        for batch in batches:
            keys = np.asarray(batch, dtype=np.uint64)
            hits = vec.access(keys)
            for k, h in zip(batch, hits):
                if h:
                    assert k in seen
                seen.add(k)
