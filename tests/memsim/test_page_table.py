"""Unit tests for VMA-backed page tables."""

import numpy as np
import pytest

from repro.memsim.frames import FrameAllocator
from repro.memsim.page_table import PageTable, TranslationFault
from repro.memsim.pte import PTE_ACCESSED, is_accessed, is_present


@pytest.fixture
def alloc():
    return FrameAllocator(1 << 20)


class TestMmap:
    def test_basic(self, alloc):
        pt = PageTable(1)
        vma = pt.mmap(0x100, 10, alloc, name="heap")
        assert vma.start_vpn == 0x100
        assert vma.end_vpn == 0x10A
        assert vma.npages == 10
        assert pt.n_pages == 10

    def test_eager_frames(self, alloc):
        pt = PageTable(1)
        v1 = pt.mmap(0x100, 4, alloc)
        v2 = pt.mmap(0x200, 4, alloc)
        assert v2.pfn_base == v1.pfn_base + 4

    def test_overlap_rejected(self, alloc):
        pt = PageTable(1)
        pt.mmap(0x100, 10, alloc)
        with pytest.raises(ValueError, match="overlaps"):
            pt.mmap(0x105, 10, alloc)
        with pytest.raises(ValueError, match="overlaps"):
            pt.mmap(0xF8, 9, alloc)  # tail overlaps head

    def test_adjacent_ok(self, alloc):
        pt = PageTable(1)
        pt.mmap(0x100, 10, alloc)
        pt.mmap(0x10A, 10, alloc)  # exactly adjacent
        assert pt.n_pages == 20

    def test_zero_pages_rejected(self, alloc):
        pt = PageTable(1)
        with pytest.raises(ValueError):
            pt.mmap(0x100, 0, alloc)

    def test_fresh_ptes_present_not_accessed(self, alloc):
        pt = PageTable(1)
        pt.mmap(0x100, 4, alloc)
        assert is_present(pt.flags).all()
        assert not is_accessed(pt.flags).any()


class TestTranslate:
    def test_identity_mapping_within_vma(self, alloc):
        pt = PageTable(1)
        vma = pt.mmap(0x100, 10, alloc)
        pfns, slots = pt.translate(np.array([0x100, 0x105, 0x109], dtype=np.uint64))
        np.testing.assert_array_equal(pfns, vma.pfn_base + np.array([0, 5, 9]))
        np.testing.assert_array_equal(slots, [0, 5, 9])

    def test_multiple_vmas(self, alloc):
        pt = PageTable(1)
        v1 = pt.mmap(0x100, 4, alloc)
        v2 = pt.mmap(0x500, 4, alloc)
        pfns, slots = pt.translate(np.array([0x501, 0x101], dtype=np.uint64))
        assert pfns[0] == v2.pfn_base + 1
        assert pfns[1] == v1.pfn_base + 1
        np.testing.assert_array_equal(slots, [5, 1])

    def test_unmapped_faults(self, alloc):
        pt = PageTable(3)
        pt.mmap(0x100, 4, alloc)
        with pytest.raises(TranslationFault) as ei:
            pt.translate(np.array([0x104], dtype=np.uint64))
        assert ei.value.pid == 3

    def test_below_first_vma_faults(self, alloc):
        pt = PageTable(1)
        pt.mmap(0x100, 4, alloc)
        with pytest.raises(TranslationFault):
            pt.translate(np.array([0x50], dtype=np.uint64))

    def test_gap_between_vmas_faults(self, alloc):
        pt = PageTable(1)
        pt.mmap(0x100, 4, alloc)
        pt.mmap(0x200, 4, alloc)
        with pytest.raises(TranslationFault):
            pt.translate(np.array([0x150], dtype=np.uint64))

    def test_empty_table_empty_query(self, alloc):
        pt = PageTable(1)
        pfns, slots = pt.translate(np.zeros(0, dtype=np.uint64))
        assert pfns.size == 0 and slots.size == 0

    def test_empty_table_faults(self, alloc):
        pt = PageTable(1)
        with pytest.raises(TranslationFault):
            pt.translate(np.array([1], dtype=np.uint64))


class TestSlotMappings:
    def test_slot_to_vpn_roundtrip(self, alloc):
        pt = PageTable(1)
        pt.mmap(0x100, 4, alloc)
        pt.mmap(0x500, 4, alloc)
        vpns = np.array([0x100, 0x103, 0x500, 0x502], dtype=np.uint64)
        _, slots = pt.translate(vpns)
        np.testing.assert_array_equal(pt.slot_to_vpn(slots), vpns)

    def test_slot_to_pfn_roundtrip(self, alloc):
        pt = PageTable(1)
        pt.mmap(0x100, 8, alloc)
        vpns = np.array([0x101, 0x107], dtype=np.uint64)
        pfns, slots = pt.translate(vpns)
        np.testing.assert_array_equal(pt.slot_to_pfn(slots), pfns)


class TestWalk:
    def test_walk_visits_all_vmas(self, alloc):
        pt = PageTable(1)
        pt.mmap(0x100, 4, alloc)
        pt.mmap(0x500, 6, alloc)
        visited = [(vma.name, flags.size) for vma, flags in pt.walk()]
        assert sum(n for _, n in visited) == 10
        assert len(visited) == 2

    def test_walk_flags_are_writable_views(self, alloc):
        pt = PageTable(1)
        pt.mmap(0x100, 4, alloc)
        for _, flags in pt.walk():
            flags |= PTE_ACCESSED
        assert is_accessed(pt.flags).all()

    def test_walk_sorted_by_vpn(self, alloc):
        pt = PageTable(1)
        pt.mmap(0x500, 2, alloc)
        pt.mmap(0x100, 2, alloc)
        starts = [vma.start_vpn for vma, _ in pt.walk()]
        assert starts == sorted(starts)


class TestFindVMA:
    def test_hit_and_miss(self, alloc):
        pt = PageTable(1)
        vma = pt.mmap(0x100, 4, alloc, name="x")
        assert pt.find_vma(0x102) is vma
        assert pt.find_vma(0x104) is None
        assert 0x102 in vma
        assert 0x104 not in vma

    def test_vma_arrays(self, alloc):
        pt = PageTable(1)
        vma = pt.mmap(0x10, 3, alloc)
        np.testing.assert_array_equal(vma.vpns, [0x10, 0x11, 0x12])
        assert vma.pfns.size == 3
