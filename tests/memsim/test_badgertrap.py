"""Unit tests for the BadgerTrap fault-counting instrumentation."""

import numpy as np
import pytest

from repro.memsim.badgertrap import BadgerTrap
from repro.memsim.frames import FrameAllocator
from repro.memsim.page_table import PageTable
from repro.memsim.pte import is_poisoned
from repro.memsim.tlb import TLB


@pytest.fixture
def setup():
    pt = PageTable(1)
    pt.mmap(0x100, 8, FrameAllocator(64))
    return pt, TLB(entries=64), BadgerTrap()


class TestInstrument:
    def test_poisons_and_flushes(self, setup):
        pt, tlb, bt = setup
        # Warm the TLB with page 0x102.
        tlb.access(np.array([1], dtype=np.int32), np.array([0x102], dtype=np.uint64))
        bt.instrument(pt, np.array([2], dtype=np.int64), tlb)
        assert is_poisoned(pt.flags)[2]
        # Its translation must be gone so the next access walks.
        assert not tlb.contains(
            np.array([1], dtype=np.int32), np.array([0x102], dtype=np.uint64)
        )[0]

    def test_instrumented_count_transitions_only(self, setup):
        pt, tlb, bt = setup
        bt.instrument(pt, np.array([2, 2, 3], dtype=np.int64), tlb)
        bt.instrument(pt, np.array([2], dtype=np.int64), tlb)
        assert bt.stats.instrumented == 2

    def test_uninstrument(self, setup):
        pt, tlb, bt = setup
        bt.instrument(pt, np.array([2], dtype=np.int64), tlb)
        bt.uninstrument(pt, np.array([2], dtype=np.int64))
        assert not is_poisoned(pt.flags).any()

    def test_instrumented_slots(self, setup):
        pt, tlb, bt = setup
        bt.instrument(pt, np.array([1, 5], dtype=np.int64), tlb)
        np.testing.assert_array_equal(bt.instrumented_slots(pt), [1, 5])

    def test_empty_instrument(self, setup):
        pt, tlb, bt = setup
        bt.instrument(pt, np.zeros(0, dtype=np.int64), tlb)
        assert bt.stats.instrumented == 0


class TestFaults:
    def test_fault_counts_per_page(self, setup):
        _, _, bt = setup
        bt.handle_faults(np.array([4, 4, 7], dtype=np.uint64))
        assert bt.stats.faults == 3
        assert bt.fault_counts[4] == 2
        assert bt.fault_counts[7] == 1

    def test_handler_time(self, setup):
        _, _, bt = setup
        bt.stats.fault_cost_s = 2e-6
        bt.handle_faults(np.array([1, 2], dtype=np.uint64))
        assert bt.stats.handler_time_s == pytest.approx(4e-6)

    def test_reset_counts(self, setup):
        _, _, bt = setup
        bt.handle_faults(np.array([1], dtype=np.uint64))
        bt.reset_counts()
        assert bt.stats.faults == 0
        assert bt.fault_counts[1] == 0

    def test_empty_faults(self, setup):
        _, _, bt = setup
        bt.handle_faults(np.zeros(0, dtype=np.uint64))
        assert bt.stats.faults == 0
