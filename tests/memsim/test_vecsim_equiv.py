"""Randomized cross-checks: vectorized engines ≡ the scalar reference.

``SequentialSetAssoc`` is the golden reference — per-set MRU-ordered
lists, one Python step per access, trivially auditable.  Every test
here drives a vectorized engine and the reference through identical
operation sequences and asserts bit-identical observable state: hit
masks, flush counts, ``contains``/``contains_any`` masks, occupancy.

Coverage axes:

* geometry — ``nsets`` x ``ways`` x ``shards``, down to the degenerate
  one-set engine (pure LRU) where the rounds loop's scalar tail does
  all the work;
* operation mix — interleaved ``access``/``fill``/``flush_keys``/
  ``flush_where``/``contains``/``flush``, including eviction-heavy
  traces (universe >> capacity) and shootdown-heavy mixes;
* machine level — whole ``Machine``/``TieredSimulator`` runs with
  vectorized vs ``assoc_reference=True`` engines must yield identical
  per-access outcomes and ``EpochMetrics``.
"""

import numpy as np
import pytest

from repro.memsim.vecsim import (
    SequentialSetAssoc,
    VectorDirectMapped,
    VectorSetAssoc,
)

SEEDS = range(6)
GEOMETRIES = [(1, 2, 1), (1, 4, 1), (2, 1, 1), (8, 4, 1), (8, 2, 6), (64, 4, 2)]


def _drive(vec, seq, rng, universe, *, flush_weight=1, steps=8, batch_max=300):
    """Interleave random operations, asserting equivalence after each."""
    ops = ["access", "access", "fill", "contains"] + [
        "flush_keys",
        "flush_where",
        "flush_all",
    ] * flush_weight
    shards = vec.shards
    for step in range(steps):
        op = ops[int(rng.integers(0, len(ops)))]
        n = int(rng.integers(0, batch_max))
        keys = rng.integers(0, universe, n).astype(np.uint64)
        shard = rng.integers(0, shards, n) if shards > 1 else None
        if op == "access":
            np.testing.assert_array_equal(
                vec.access(keys, shard), seq.access(keys, shard), err_msg=f"step {step}"
            )
        elif op == "fill":
            vec.fill(keys, shard)
            seq.fill(keys, shard)
        elif op == "contains":
            np.testing.assert_array_equal(
                vec.contains(keys, shard), seq.contains(keys, shard)
            )
            np.testing.assert_array_equal(
                vec.contains_any(keys), seq.contains_any(keys)
            )
        elif op == "flush_keys":
            fk = rng.integers(0, universe, int(rng.integers(0, 24))).astype(np.uint64)
            assert vec.flush_keys(fk) == seq.flush_keys(fk)
        elif op == "flush_where":
            t = np.uint64(rng.integers(0, universe))
            assert vec.flush_where(lambda x: x >= t) == seq.flush_where(
                lambda x: x >= t
            )
        else:
            vec.flush()
            seq.flush()
        assert vec.occupancy() == seq.occupancy(), f"step {step}"


class TestSetAssocEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("nsets,ways,shards", GEOMETRIES)
    def test_interleaved_ops(self, nsets, ways, shards, seed):
        rng = np.random.default_rng(seed * 1000 + nsets * 10 + ways)
        vec = VectorSetAssoc(nsets, ways, shards)
        seq = SequentialSetAssoc(nsets, ways, shards)
        universe = int(rng.integers(2, 6 * nsets * ways + 2))
        _drive(vec, seq, rng, universe)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_eviction_heavy(self, seed):
        # Universe 16x capacity: nearly every access evicts.
        rng = np.random.default_rng(seed)
        vec = VectorSetAssoc(8, 4)
        seq = SequentialSetAssoc(8, 4)
        for _ in range(6):
            keys = rng.integers(0, 512, 400).astype(np.uint64)
            np.testing.assert_array_equal(vec.access(keys), seq.access(keys))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_shootdown_heavy(self, seed):
        rng = np.random.default_rng(seed + 100)
        vec = VectorSetAssoc(8, 2, shards=4)
        seq = SequentialSetAssoc(8, 2, shards=4)
        _drive(vec, seq, rng, universe=64, flush_weight=4, steps=12)

    @pytest.mark.parametrize("ways", [1, 2, 4, 8])
    def test_single_set_alternation(self, ways):
        # One set, keys cycling just past capacity: worst-case LRU churn
        # resolved almost entirely by the scalar-tail path.
        rng = np.random.default_rng(ways)
        vec = VectorSetAssoc(1, ways)
        seq = SequentialSetAssoc(1, ways)
        keys = rng.integers(0, ways + 2, 5000).astype(np.uint64)
        np.testing.assert_array_equal(vec.access(keys), seq.access(keys))
        keys = np.arange(5000, dtype=np.uint64) % (ways + 1)  # strict cycle
        np.testing.assert_array_equal(vec.access(keys), seq.access(keys))

    def test_repeat_runs_collapse_to_hits(self):
        # Adjacent same-key repeats are hits and advance recency: after
        # [a a a b], a must be MRU-ranked above nothing but b.
        vec = VectorSetAssoc(1, 2)
        seq = SequentialSetAssoc(1, 2)
        trace = np.array([5, 5, 5, 9, 5, 7, 9], dtype=np.uint64)
        np.testing.assert_array_equal(vec.access(trace), seq.access(trace))

    def test_state_carries_across_batches(self):
        rng = np.random.default_rng(0)
        vec = VectorSetAssoc(4, 2)
        seq = SequentialSetAssoc(4, 2)
        for _ in range(10):
            keys = rng.integers(0, 32, int(rng.integers(0, 50))).astype(np.uint64)
            np.testing.assert_array_equal(vec.access(keys), seq.access(keys))


class TestDirectMappedEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("shards", [1, 3, 6])
    def test_interleaved_ops(self, shards, seed):
        rng = np.random.default_rng(seed * 31 + shards)
        vec = VectorDirectMapped(16, shards=shards)
        seq = SequentialSetAssoc(16, 1, shards=shards)
        _drive(vec, seq, rng, universe=80)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_vector_set_assoc_ways1_matches_direct_mapped(self, seed):
        # ways=1 set-assoc degenerates to direct-mapped exactly.
        rng = np.random.default_rng(seed)
        a = VectorSetAssoc(16, 1)
        b = VectorDirectMapped(16)
        for _ in range(5):
            keys = rng.integers(0, 64, int(rng.integers(0, 200))).astype(np.uint64)
            np.testing.assert_array_equal(a.access(keys), b.access(keys))
        assert a.occupancy() == b.occupancy()


class TestMachineLevelEquivalence:
    """The whole pipeline, vectorized vs golden-reference engines."""

    def _run_pair(self, **config_kw):
        from repro.memsim import AccessBatch, Machine, MachineConfig

        results = []
        for reference in (False, True):
            cfg = MachineConfig.scaled(assoc_reference=reference, **config_kw)
            m = Machine(cfg)
            vma = m.mmap(1, 512)
            rng = np.random.default_rng(0)
            outs = []
            for _ in range(3):
                n = 4000
                batch = AccessBatch.from_pages(
                    rng.choice(vma.vpns, n),
                    pid=1,
                    cpu=rng.integers(0, cfg.n_cpus, n).astype(np.int16),
                    is_store=rng.random(n) < 0.3,
                    offset=(rng.integers(0, 64, n) << 6).astype(np.uint64),
                )
                outs.append(m.run_batch(batch))
            results.append((m, outs))
        return results

    @pytest.mark.parametrize(
        "config_kw",
        [
            {},  # default direct-mapped
            {"exact_assoc": True, "tlb_ways": 4, "cache_ways": 4},
            {"exact_assoc": True, "tlb_ways": 8, "cache_ways": 2},
        ],
        ids=["direct", "ways4", "mixed"],
    )
    def test_run_batch_bit_identical(self, config_kw):
        (m_vec, out_vec), (m_ref, out_ref) = self._run_pair(**config_kw)
        for rv, rr in zip(out_vec, out_ref):
            np.testing.assert_array_equal(rv.tlb_hit, rr.tlb_hit)
            np.testing.assert_array_equal(rv.data_source, rr.data_source)
            np.testing.assert_array_equal(rv.pfn, rr.pfn)
            assert rv.raw_events == rr.raw_events
            assert rv.cycles == rr.cycles
        assert m_vec.tlb.stats == m_ref.tlb.stats
        assert m_vec.caches.miss_counts() == m_ref.caches.miss_counts()

    @pytest.mark.parametrize("exact", [False, True], ids=["direct", "ways4"])
    def test_simulator_epoch_metrics_identical(self, exact):
        from repro.memsim import MachineConfig
        from repro.tiering import TieredSimulator
        from repro.tiering.policies import POLICIES
        from repro.workloads import make_workload

        results = []
        for reference in (False, True):
            kw = {"exact_assoc": True, "tlb_ways": 4, "cache_ways": 4} if exact else {}
            sim = TieredSimulator(
                make_workload("gups", footprint_pages=512, accesses_per_epoch=4000),
                POLICIES["history"](),
                machine_config=MachineConfig.scaled(
                    ibs_period=64, assoc_reference=reference, **kw
                ),
                seed=3,
            )
            sim.start()
            sim.step(3)
            results.append(sim.result)
        vec, ref = results
        assert len(vec.epochs) == len(ref.epochs)
        for ev, er in zip(vec.epochs, ref.epochs):
            assert ev == er
