"""End-to-end smoke test: `repro serve` as a real process + SIGTERM."""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.service import ServiceClient

STARTUP_TIMEOUT_S = 30


@pytest.fixture()
def serve_process():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--max-sessions", "2"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    try:
        yield proc
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(STARTUP_TIMEOUT_S)


def _wait_for_address(proc) -> tuple:
    deadline = time.monotonic() + STARTUP_TIMEOUT_S
    line = proc.stdout.readline()
    assert line, "server exited before announcing its address"
    assert time.monotonic() < deadline
    # "repro service listening on 127.0.0.1:NNNNN (...)"
    where = line.split(" listening on ")[1].split()[0]
    host, port = where.rsplit(":", 1)
    return host, int(port)


class TestServeCommand:
    def test_serve_answers_and_drains_on_sigterm(self, serve_process):
        address = _wait_for_address(serve_process)
        with ServiceClient(address=address, timeout_s=STARTUP_TIMEOUT_S) as client:
            assert client.ping() == {"pong": True}
            sid = client.create_session(
                "gups",
                workload_kwargs={"footprint_pages": 512, "accesses_per_epoch": 2000},
            )["session"]
            assert client.step(sid, epochs=1)["epochs_run"] == 1

            serve_process.send_signal(signal.SIGTERM)
            assert serve_process.wait(STARTUP_TIMEOUT_S) == 0
        out = serve_process.stdout.read()
        assert "drained" in out
