"""End-to-end smoke test: `repro serve` as a real process + SIGTERM."""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.service import ServiceClient

STARTUP_TIMEOUT_S = 30


def _spawn_serve(*extra_args):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--max-sessions", "2", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )


def _reap(proc):
    if proc.poll() is None:
        proc.kill()
    proc.wait(STARTUP_TIMEOUT_S)


@pytest.fixture()
def serve_process():
    proc = _spawn_serve()
    try:
        yield proc
    finally:
        _reap(proc)


@pytest.fixture()
def pooled_serve_process():
    proc = _spawn_serve("--workers", "2")
    try:
        yield proc
    finally:
        _reap(proc)


def _wait_for_address(proc) -> tuple:
    deadline = time.monotonic() + STARTUP_TIMEOUT_S
    line = proc.stdout.readline()
    assert line, "server exited before announcing its address"
    assert time.monotonic() < deadline
    # "repro service listening on 127.0.0.1:NNNNN (...)"
    where = line.split(" listening on ")[1].split()[0]
    host, port = where.rsplit(":", 1)
    return host, int(port)


class TestServeCommand:
    def test_serve_answers_and_drains_on_sigterm(self, serve_process):
        address = _wait_for_address(serve_process)
        with ServiceClient(address=address, timeout_s=STARTUP_TIMEOUT_S) as client:
            assert client.ping() == {"pong": True}
            sid = client.create_session(
                "gups",
                workload_kwargs={"footprint_pages": 512, "accesses_per_epoch": 2000},
            )["session"]
            assert client.step(sid, epochs=1)["epochs_run"] == 1

            serve_process.send_signal(signal.SIGTERM)
            assert serve_process.wait(STARTUP_TIMEOUT_S) == 0
        out = serve_process.stdout.read()
        assert "drained" in out

    def test_serve_with_worker_pool_drains_on_sigterm(self, pooled_serve_process):
        address = _wait_for_address(pooled_serve_process)
        with ServiceClient(address=address, timeout_s=STARTUP_TIMEOUT_S) as client:
            info = client.request("server_info")
            assert info["workers"] == 2
            assert info["worker_pool"]["alive"] == 2
            sids = [
                client.create_session(
                    "gups",
                    seed=i,
                    workload_kwargs={
                        "footprint_pages": 512, "accesses_per_epoch": 2000,
                    },
                )["session"]
                for i in range(2)
            ]
            for sid in sids:
                assert client.step(sid, epochs=1)["epochs_run"] == 1

            pooled_serve_process.send_signal(signal.SIGTERM)
            assert pooled_serve_process.wait(STARTUP_TIMEOUT_S) == 0
        out = pooled_serve_process.stdout.read()
        assert "drained" in out
