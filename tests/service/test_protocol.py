"""Unit tests for the JSON-lines wire format."""

import numpy as np
import pytest

from repro.service.protocol import (
    MAX_LINE_BYTES,
    ErrorCode,
    ServiceError,
    decode_frame,
    encode_frame,
    error_response,
    event_frame,
    ok_response,
)


class TestEncode:
    def test_roundtrip(self):
        frame = {"id": 7, "op": "step", "params": {"session": "s1", "epochs": 2}}
        assert decode_frame(encode_frame(frame)) == frame

    def test_one_line_per_frame(self):
        data = encode_frame({"id": 1, "op": "ping"})
        assert data.endswith(b"\n")
        assert data.count(b"\n") == 1

    def test_numpy_scalars_coerced(self):
        frame = {"hit": np.float64(0.5), "n": np.int64(3), "arr": np.arange(2)}
        decoded = decode_frame(encode_frame(frame))
        assert decoded == {"hit": 0.5, "n": 3, "arr": [0, 1]}

    def test_unserializable_rejected(self):
        with pytest.raises(TypeError):
            encode_frame({"bad": object()})


class TestDecode:
    def test_invalid_json(self):
        with pytest.raises(ServiceError) as exc:
            decode_frame(b"{nope")
        assert exc.value.code == ErrorCode.BAD_REQUEST

    def test_non_object(self):
        with pytest.raises(ServiceError) as exc:
            decode_frame(b"[1, 2]")
        assert exc.value.code == ErrorCode.BAD_REQUEST

    def test_oversized_frame(self):
        line = b'"' + b"x" * MAX_LINE_BYTES + b'"'
        with pytest.raises(ServiceError) as exc:
            decode_frame(line)
        assert exc.value.code == ErrorCode.BAD_REQUEST


class TestFrames:
    def test_ok_response(self):
        assert ok_response(3, {"a": 1}) == {"id": 3, "ok": True, "result": {"a": 1}}

    def test_error_response_carries_code(self):
        frame = error_response(4, ErrorCode.UNKNOWN_SESSION, "gone")
        assert frame["ok"] is False
        assert frame["error"]["code"] == "unknown_session"
        err = ServiceError(frame["error"]["code"], frame["error"]["message"])
        assert err.to_error() == frame["error"]

    def test_event_frame_shape(self):
        frame = event_frame("epoch", "s1", "s1.sub1", 5, {"epoch": 5}, dropped=2)
        assert frame["event"] == "epoch"
        assert frame["seq"] == 5
        assert frame["dropped"] == 2
        assert "id" not in frame
