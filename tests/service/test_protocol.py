"""Unit tests for the JSON-lines wire format."""

import numpy as np
import pytest

from repro.service.protocol import (
    MAX_LINE_BYTES,
    ErrorCode,
    ServiceError,
    decode_frame,
    encode_frame,
    encode_payload,
    error_response,
    event_frame,
    ok_response,
    splice_event_frame,
)


class TestEncode:
    def test_roundtrip(self):
        frame = {"id": 7, "op": "step", "params": {"session": "s1", "epochs": 2}}
        assert decode_frame(encode_frame(frame)) == frame

    def test_one_line_per_frame(self):
        data = encode_frame({"id": 1, "op": "ping"})
        assert data.endswith(b"\n")
        assert data.count(b"\n") == 1

    def test_numpy_scalars_coerced(self):
        frame = {"hit": np.float64(0.5), "n": np.int64(3), "arr": np.arange(2)}
        decoded = decode_frame(encode_frame(frame))
        assert decoded == {"hit": 0.5, "n": 3, "arr": [0, 1]}

    def test_unserializable_rejected(self):
        with pytest.raises(TypeError):
            encode_frame({"bad": object()})

    def test_oversized_outbound_frame_rejected(self):
        frame = {"id": 1, "ok": True, "result": {"blob": "x" * MAX_LINE_BYTES}}
        with pytest.raises(ServiceError) as exc:
            encode_frame(frame)
        assert exc.value.code == ErrorCode.BAD_REQUEST
        assert "smaller window" in exc.value.message

    def test_outbound_limit_is_resolved_at_call_time(self, monkeypatch):
        frame = {"id": 1, "ok": True, "result": {"blob": "x" * 256}}
        assert encode_frame(frame)  # fine at the default limit
        monkeypatch.setattr("repro.service.protocol.MAX_LINE_BYTES", 64)
        with pytest.raises(ServiceError):
            encode_frame(frame)

    def test_explicit_max_bytes_overrides_default(self):
        frame = {"id": 1, "op": "ping"}
        assert encode_frame(frame, max_bytes=64)
        with pytest.raises(ServiceError):
            encode_frame(frame, max_bytes=4)


class TestDecode:
    def test_invalid_json(self):
        with pytest.raises(ServiceError) as exc:
            decode_frame(b"{nope")
        assert exc.value.code == ErrorCode.BAD_REQUEST

    def test_non_object(self):
        with pytest.raises(ServiceError) as exc:
            decode_frame(b"[1, 2]")
        assert exc.value.code == ErrorCode.BAD_REQUEST

    def test_oversized_frame(self):
        line = b'"' + b"x" * MAX_LINE_BYTES + b'"'
        with pytest.raises(ServiceError) as exc:
            decode_frame(line)
        assert exc.value.code == ErrorCode.BAD_REQUEST


class TestFrames:
    def test_ok_response(self):
        assert ok_response(3, {"a": 1}) == {"id": 3, "ok": True, "result": {"a": 1}}

    def test_error_response_carries_code(self):
        frame = error_response(4, ErrorCode.UNKNOWN_SESSION, "gone")
        assert frame["ok"] is False
        assert frame["error"]["code"] == "unknown_session"
        err = ServiceError(frame["error"]["code"], frame["error"]["message"])
        assert err.to_error() == frame["error"]

    def test_event_frame_shape(self):
        frame = event_frame("epoch", "s1", "s1.sub1", 5, {"epoch": 5}, dropped=2)
        assert frame["event"] == "epoch"
        assert frame["seq"] == 5
        assert frame["dropped"] == 2
        assert "id" not in frame


class TestSplice:
    def test_splice_matches_whole_frame_encode(self):
        data = {"epoch": 3, "hitrate": 0.875, "latency": {"total_s": 1e-3}}
        payload = encode_payload(data)
        spliced = splice_event_frame("epoch", "s1", "s1.sub2", 9, 4, payload)
        whole = encode_frame(event_frame("epoch", "s1", "s1.sub2", 9, data, dropped=4))
        assert spliced == whole

    def test_splice_survives_hostile_strings(self):
        # Quotes, backslashes, newlines and non-ASCII in ids and data —
        # everything json.dumps escapes must escape identically on both
        # paths or the marker-based ledger splitter would misparse.
        data = {'k"ey': 'v"al\\ue\nwith ,"data": inside', "π": "héllo"}
        sid = 's"1\\'
        sub = 's"1.sub,"seq":'
        payload = encode_payload(data)
        spliced = splice_event_frame("error", sid, sub, 0, 0, payload)
        whole = encode_frame(event_frame("error", sid, sub, 0, data))
        assert spliced == whole
        assert decode_frame(spliced)["data"] == data

    def test_encode_payload_coerces_numpy(self):
        data = {"hit": np.float64(0.25), "arr": np.arange(3)}
        payload = encode_payload(data)
        spliced = splice_event_frame("epoch", "s1", "s1.sub1", 1, 0, payload)
        assert decode_frame(spliced)["data"] == {"hit": 0.25, "arr": [0, 1, 2]}
