"""Golden-equivalence suite for the serialize-once fan-out.

The tentpole claim is that splicing pre-encoded payload bytes into
per-subscriber envelopes is *bit-identical* to the old path that ran
``encode_frame(event_frame(...))`` once per subscriber.  These tests
pin that claim three ways: randomized payloads against the old encoder
directly, raw wire lines from a live server (in-process and worker
pool), and raw replay lines spliced from ledger-stored payload bytes.

The canonical-form check used on wire lines — ``line ==
encode_frame(decode_frame(line))`` — is exactly equivalence with the
old per-subscriber encoder: JSON objects preserve insertion order
through a decode/encode round-trip, and the envelope key order on the
wire matches ``event_frame``'s insertion order, so the re-encode *is*
the old path's output for that frame.
"""

import json
import string
from collections import deque

import numpy as np

from repro.service.protocol import (
    decode_frame,
    encode_frame,
    encode_payload,
    event_frame,
    splice_event_frame,
)

from .test_server import WireClient, _start_server, run_async

SMALL = {"footprint_pages": 512, "accesses_per_epoch": 2000}


def _random_value(rng, depth=0):
    kind = rng.integers(0, 8 if depth < 2 else 6)
    if kind == 0:
        return int(rng.integers(-(10**12), 10**12))
    if kind == 1:
        return float(rng.standard_normal() * 10 ** int(rng.integers(-8, 8)))
    if kind == 2:
        return np.int64(rng.integers(-(10**9), 10**9))
    if kind == 3:
        return np.float64(rng.standard_normal())
    if kind == 4:
        alphabet = string.printable + 'π"\\\n\t,"data":,"unix":'
        n = int(rng.integers(0, 40))
        return "".join(
            alphabet[int(i)] for i in rng.integers(0, len(alphabet), n)
        )
    if kind == 5:
        return [None, True, False][int(rng.integers(0, 3))]
    if kind == 6:
        return {
            f"k{i}": _random_value(rng, depth + 1)
            for i in range(int(rng.integers(0, 4)))
        }
    return [_random_value(rng, depth + 1) for _ in range(int(rng.integers(0, 4)))]


class TestRandomizedSpliceEquivalence:
    def test_splice_matches_legacy_encode_on_random_payloads(self):
        rng = np.random.default_rng(1234)
        for trial in range(200):
            data = {
                f"field{i}": _random_value(rng)
                for i in range(int(rng.integers(1, 6)))
            }
            seq = int(rng.integers(0, 10**9))
            dropped = int(rng.integers(0, 1000))
            sid = f's"{trial}\\x'
            sub = f"{sid}.sub{trial}"
            legacy = encode_frame(
                event_frame("epoch", sid, sub, seq, data, dropped=dropped)
            )
            spliced = splice_event_frame(
                "epoch", sid, sub, seq, dropped, encode_payload(data)
            )
            assert spliced == legacy, f"trial {trial} diverged"

    def test_epoch_shaped_payload_with_numpy_scalars(self):
        data = {
            "epoch": np.int64(7),
            "hitrate": np.float64(0.123456789),
            "latency": {"total_s": np.float64(3.5e-4), "reads": np.int64(12)},
            "arr": np.arange(3),
        }
        legacy = encode_frame(event_frame("epoch", "s1", "s1.sub1", 7, data))
        spliced = splice_event_frame(
            "epoch", "s1", "s1.sub1", 7, 0, encode_payload(data)
        )
        assert spliced == legacy


class RawWireClient(WireClient):
    """WireClient that also retains each event frame's raw wire line."""

    def __init__(self, reader, writer):
        super().__init__(reader, writer)
        self.raw_events = deque()

    async def _read(self):
        line = await self.reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        frame = json.loads(line)
        if "event" in frame:
            self.raw_events.append(line)
        return frame

    async def next_raw_event(self) -> bytes:
        while not self.raw_events:
            frame = await self._read()
            if "event" in frame:
                self.events.append(frame)
        self.events.popleft()
        return self.raw_events.popleft()


def _assert_canonical(line: bytes):
    assert line == encode_frame(decode_frame(line))


def _payload_of(line: bytes) -> bytes:
    # ``data`` is the envelope's final key, so the payload runs from
    # the marker to the closing ``}\n``.
    return line[line.index(b',"data":') + 8 : -2]


async def _stream_raw_lines(workers: int, epochs: int = 4) -> list[bytes]:
    server = await _start_server(workers=workers)
    try:
        client = await RawWireClient.open(server.address)
        try:
            info = await client.request(
                "create_session",
                workload="gups",
                seed=3,
                workload_kwargs=dict(SMALL),
            )
            sid = info["session"]
            await client.request("subscribe", session=sid, max_queue=32)
            await client.request("subscribe", session=sid, max_queue=32)
            await client.request("step", session=sid, epochs=epochs)
            return [await client.next_raw_event() for _ in range(2 * epochs)]
        finally:
            await client.close()
    finally:
        await server.drain()


class TestLiveWireBitIdentity:
    def test_in_process_frames_are_canonical(self):
        lines = run_async(_stream_raw_lines(workers=0))
        assert len(lines) == 8
        for line in lines:
            _assert_canonical(line)
        # Both subscribers of the same epoch share the payload bytes.
        by_seq: dict[int, set] = {}
        for line in lines:
            by_seq.setdefault(decode_frame(line)["seq"], set()).add(
                _payload_of(line)
            )
        assert all(len(payloads) == 1 for payloads in by_seq.values())

    def test_worker_pool_frames_are_canonical(self):
        lines = run_async(_stream_raw_lines(workers=2))
        assert len(lines) == 8
        for line in lines:
            _assert_canonical(line)


class TestLedgerReplayBitIdentity:
    def test_replayed_payload_bytes_match_live_frames(self, tmp_path):
        epochs = 5

        async def main():
            server = await _start_server(ledger_dir=str(tmp_path))
            try:
                live = await RawWireClient.open(server.address)
                try:
                    info = await live.request(
                        "create_session",
                        workload="gups",
                        seed=11,
                        workload_kwargs=dict(SMALL),
                    )
                    sid = info["session"]
                    await live.request("subscribe", session=sid, max_queue=32)
                    await live.request("step", session=sid, epochs=epochs)
                    live_lines = [
                        await live.next_raw_event() for _ in range(epochs)
                    ]
                    replayer = await RawWireClient.open(server.address)
                    try:
                        await replayer.request(
                            "subscribe", session=sid, from_seq=0
                        )
                        replay_lines = [
                            await replayer.next_raw_event()
                            for _ in range(epochs)
                        ]
                    finally:
                        await replayer.close()
                    return live_lines, replay_lines
                finally:
                    await live.close()
            finally:
                await server.drain()

        live_lines, replay_lines = run_async(main())
        for line in live_lines + replay_lines:
            _assert_canonical(line)
        # Replay splices the ledger-stored payload bytes; only the
        # subscription envelope may differ from the live frame.
        for live_line, replay_line in zip(live_lines, replay_lines):
            assert _payload_of(replay_line) == _payload_of(live_line)
            live_frame = decode_frame(live_line)
            replay_frame = decode_frame(replay_line)
            assert replay_frame["seq"] == live_frame["seq"]
            assert replay_frame["data"] == live_frame["data"]
