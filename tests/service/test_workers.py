"""Integration tests for the server's sticky worker-process pool.

The acceptance scenarios for multi-core execution: worker-pool runs
are bit-identical to direct simulator runs, ``workers=0`` preserves
the in-process path exactly, sessions stay pinned across workers, a
SIGKILLed worker fails only its own sessions with structured error
frames and the pool respawns, and the server stays responsive to
pings while every worker is busy stepping.
"""

import asyncio
import os
import signal
import time

from repro.memsim import MachineConfig
from repro.service import ServiceError, ServiceServer
from repro.tiering import TieredSimulator
from repro.tiering.policies import POLICIES
from repro.workloads import WORKLOAD_NAMES, make_workload

from .test_server import SMALL, WireClient, run_async


async def _start_server(**kw):
    kw.setdefault("port", 0)
    kw.setdefault("reap_interval_s", 0)
    server = ServiceServer(**kw)
    await server.start()
    return server


class TestBitIdentical:
    """Worker-pool sessions must match direct simulator runs exactly."""

    def test_eight_pooled_sessions_match_direct_runs(self):
        epochs = 3
        names = list(WORKLOAD_NAMES)[:8]

        async def drive(address, name, seed):
            client = await WireClient.open(address)
            try:
                info = await client.request(
                    "create_session",
                    workload=name,
                    seed=seed,
                    tier1_ratio=0.125,
                    workload_kwargs=dict(SMALL),
                )
                sid = info["session"]
                assert "worker" in info  # pool placement is visible
                await client.request("subscribe", session=sid, max_queue=32)
                stepped = await client.request("step", session=sid, epochs=epochs)
                assert stepped["epochs_run"] == epochs
                frames = [await client.next_event() for _ in range(epochs)]
                closed = await client.request("close_session", session=sid)
                return name, frames, closed["result"]
            finally:
                await client.close()

        async def main():
            server = await _start_server(max_sessions=8, workers=2)
            try:
                return await asyncio.gather(
                    *(
                        drive(server.address, name, seed)
                        for seed, name in enumerate(names)
                    )
                )
            finally:
                await server.drain()

        results = run_async(main())
        assert len(results) == 8
        for seed, (name, frames, summary) in enumerate(results):
            sim = TieredSimulator(
                make_workload(name, **SMALL),
                POLICIES["history"](),
                tier1_ratio=0.125,
                machine_config=MachineConfig.scaled(ibs_period=16),
                seed=seed,
            )
            direct = sim.run(epochs)
            assert [f["seq"] for f in frames] == list(range(epochs))
            for frame, direct_epoch in zip(frames, direct.epochs):
                data = frame["data"]
                assert data["epoch"] == direct_epoch.epoch
                assert data["hitrate"] == direct_epoch.hitrate
                assert data["promoted"] == direct_epoch.promoted
                assert data["demoted"] == direct_epoch.demoted
                assert data["runtime_s"] == direct_epoch.runtime_s
            assert summary["mean_hitrate"] == direct.mean_hitrate
            assert summary["total_migrations"] == direct.total_migrations


class TestInProcessPath:
    def test_workers_zero_keeps_sessions_in_process(self):
        async def main():
            server = await _start_server(workers=0)
            try:
                assert server._pool is None
                client = await WireClient.open(server.address)
                info = await client.request(
                    "create_session", workload="gups", workload_kwargs=dict(SMALL)
                )
                session = server.manager.get(info["session"])
                # The in-process session owns a live simulator object.
                assert session.sim.epochs_run == 0
                assert "worker" not in info
                stepped = await client.request(
                    "step", session=info["session"], epochs=1
                )
                assert stepped["epochs_run"] == session.sim.epochs_run == 1
                srv_info = await client.request("server_info")
                assert srv_info["workers"] == 0
                assert "worker_pool" not in srv_info
                await client.close()
            finally:
                await server.drain()

        run_async(main())


class TestStickyPlacement:
    def test_sessions_spread_and_stay_pinned(self):
        async def main():
            server = await _start_server(max_sessions=4, workers=2)
            try:
                client = await WireClient.open(server.address)
                placements = {}
                for i in range(4):
                    info = await client.request(
                        "create_session",
                        workload="gups",
                        seed=i,
                        workload_kwargs=dict(SMALL),
                    )
                    placements[info["session"]] = info["worker"]
                # Least-loaded placement alternates across the slots.
                assert sorted(placements.values()) == [0, 0, 1, 1]
                for sid, worker in placements.items():
                    await client.request("step", session=sid, epochs=1)
                    stats = await client.request("stats", session=sid)
                    assert stats["session"]["worker"] == worker  # still pinned
                srv_info = await client.request("server_info")
                assert srv_info["worker_pool"]["sessions_per_worker"] == {
                    "0": 2,
                    "1": 2,
                }
                await client.close()
            finally:
                await server.drain()

        run_async(main())


class TestWorkerCrash:
    """SIGKILL mid-step: structured error frames, isolation, respawn."""

    def test_killed_worker_fails_only_its_sessions_then_respawns(self):
        async def main():
            server = await _start_server(max_sessions=4, workers=2)
            try:
                victim = await WireClient.open(server.address)
                survivor = await WireClient.open(server.address)
                v_info = await victim.request(
                    "create_session",
                    workload="gups",
                    seed=1,
                    workload_kwargs=dict(SMALL),
                )
                s_info = await survivor.request(
                    "create_session",
                    workload="xsbench",
                    seed=2,
                    workload_kwargs=dict(SMALL),
                )
                v_sid, s_sid = v_info["session"], s_info["session"]
                assert v_info["worker"] != s_info["worker"]
                await victim.request("subscribe", session=v_sid)
                await survivor.request("subscribe", session=s_sid)

                # Launch a long step, then kill the worker once the
                # first epoch frame proves the step is in flight.
                # While the step request awaits its reply it buffers
                # event frames into ``victim.events`` — poll that
                # instead of reading the socket from a second coroutine.
                step_task = asyncio.ensure_future(
                    victim.request("step", session=v_sid, epochs=500)
                )
                while not victim.events:
                    await asyncio.sleep(0.01)
                assert victim.events[0]["event"] == "epoch"
                handle = server._pool.workers[v_info["worker"]]
                doomed_pid = handle.process.pid
                os.kill(doomed_pid, signal.SIGKILL)

                try:
                    await step_task
                    raise AssertionError("step should fail on a killed worker")
                except ServiceError as exc:
                    assert exc.code == "worker_crashed"

                # The victim's subscriber receives one structured error
                # frame; seq keeps counting from the epoch frames.
                while True:
                    frame = await victim.next_event()
                    if frame["event"] == "error":
                        break
                assert frame["data"]["code"] == "worker_crashed"
                assert frame["data"]["worker"] == v_info["worker"]
                assert frame["seq"] > 0

                # The other worker's session is untouched.
                stepped = await survivor.request("step", session=s_sid, epochs=1)
                assert stepped["epochs_run"] == 1

                # The crashed session is discarded from the registry.
                listed = await survivor.request("list_sessions")
                ids = [s["session"] for s in listed["sessions"]]
                assert v_sid not in ids and s_sid in ids

                # The slot respawns and accepts new sessions.
                deadline = time.monotonic() + 15
                while time.monotonic() < deadline:
                    proc = handle.process
                    if proc is not None and proc.is_alive() and proc.pid != doomed_pid:
                        break
                    await asyncio.sleep(0.05)
                fresh = await survivor.request(
                    "create_session",
                    workload="gups",
                    seed=3,
                    workload_kwargs=dict(SMALL),
                )
                stepped = await survivor.request(
                    "step", session=fresh["session"], epochs=1
                )
                assert stepped["epochs_run"] == 1
                info = await survivor.request("server_info")
                assert info["worker_pool"]["respawns"] == 1
                await victim.close()
                await survivor.close()
            finally:
                await server.drain()

        run_async(main())


class TestResponsiveness:
    """Satellite: pings stay fast while every worker is busy stepping."""

    def test_ping_latency_bounded_under_load(self):
        async def stepper(address, seed):
            client = await WireClient.open(address)
            try:
                info = await client.request(
                    "create_session",
                    workload="gups",
                    seed=seed,
                    workload_kwargs=dict(SMALL),
                )
                for _ in range(4):
                    await client.request("step", session=info["session"], epochs=2)
            finally:
                await client.close()

        async def pinger(address, n_pings=5):
            client = await WireClient.open(address)
            worst = 0.0
            try:
                for _ in range(n_pings):
                    t0 = time.perf_counter()
                    await client.request("ping")
                    worst = max(worst, time.perf_counter() - t0)
                    await asyncio.sleep(0.05)
            finally:
                await client.close()
            return worst

        async def main():
            server = await _start_server(max_sessions=8, workers=2)
            try:
                results = await asyncio.gather(
                    pinger(server.address),
                    *(stepper(server.address, seed) for seed in range(8)),
                )
                return results[0]
            finally:
                await server.drain()

        worst = run_async(main())
        # Generous bound: the event loop only couriers RPCs, so pings
        # must never wait behind a whole multi-epoch step.
        assert worst < 2.0, f"worst ping {worst:.3f}s under load"
