"""Checkpoint-to-disk idle eviction and resumable sessions.

The acceptance scenario: a ledger-backed ``--evict-to-disk`` server
evicts an idle session at epoch k — persisting a checkpoint marker and
fanning a ``resumable: true`` goodbye — and a later ``resume_session``
re-admits it through normal admission, catches it up deterministically,
and continues stepping.  The completed run is bit-identical to an
uninterrupted direct run, and a ``from_seq=0`` subscriber sees one
gap-free seq stream spanning checkpoint, goodbye, and resume.

Also pins the session-lifecycle fixes that ride along: the
unregister-and-goodbye ordering on eviction (no subscriber can attach
silently to a half-dead session) and the replay-vs-retention race
(records compacted away mid-replay surface as cumulative ``dropped``,
never a silent seq gap).
"""

import pytest

from repro.service import ServiceError, ServiceServer
from repro.service.protocol import ErrorCode
from repro.service.session import ProfilingSession
from repro.service.telemetry import epoch_metrics_to_dict

from .test_server import SMALL, WireClient, run_async

PARAMS = {
    "workload": "gups",
    "seed": 11,
    "workload_kwargs": dict(SMALL),
}


async def _start_server(**kw):
    kw.setdefault("port", 0)
    kw.setdefault("reap_interval_s", 0)
    server = ServiceServer(**kw)
    await server.start()
    return server


def _evict_now(server):
    """Drive one reaper pass with a clock far past the idle TTL."""
    manager = server.manager
    return manager.evict_idle(now=manager._clock() + manager.idle_ttl_s + 1)


def _direct_epochs(total):
    session = ProfilingSession("direct", **PARAMS)
    session.sim.step(total)
    return [epoch_metrics_to_dict(m) for m in session.sim.result.epochs]


class TestCheckpointResume:
    """Tentpole acceptance: evict at epoch k, resume, bit-identical."""

    def _run_cycle(self, tmp_path, workers):
        async def main():
            server = await _start_server(
                workers=workers,
                ledger_dir=str(tmp_path),
                evict_to_disk=True,
            )
            try:
                client = await WireClient.open(server.address)
                info = await client.request("create_session", **PARAMS)
                sid = info["session"]
                await client.request("step", session=sid, epochs=3)

                # A live subscriber rides through the eviction: it gets
                # the structured goodbye promising resumability.
                await client.request("subscribe", session=sid)
                evicted = _evict_now(server)
                assert evicted == [sid]
                goodbye = await client.next_event()
                assert goodbye["event"] == "error"
                assert goodbye["data"]["code"] == "evicted"
                assert goodbye["data"]["resumable"] is True
                assert goodbye["seq"] == 3

                # Gone from the registry; its slots are free.
                listed = await client.request("list_sessions")
                assert listed["sessions"] == []
                srv_info = await client.request("server_info")
                assert srv_info["sessions_checkpointed"] == 1
                assert srv_info["evict_to_disk"] is True

                # Resume keeps the id and reports the caught-up state.
                resumed = await client.request("resume_session", session=sid)
                assert resumed["session"] == sid
                assert resumed["epochs_run"] == 3
                srv_info = await client.request("server_info")
                assert srv_info["sessions_resumed"] == 1

                # A from_seq=0 subscriber replays one continuous stream:
                # 3 epochs, the goodbye, and the resumed marker.
                sub = await client.request(
                    "subscribe", session=sid, from_seq=0
                )
                assert sub["replayed"] == 5
                assert sub["dropped"] == 0
                frames = [await client.next_event() for _ in range(5)]
                frames = [
                    f for f in frames
                    if f["subscription"] == sub["subscription"]
                ]
                assert [f["seq"] for f in frames] == [0, 1, 2, 3, 4]
                assert [f["event"] for f in frames] == [
                    "epoch", "epoch", "epoch", "error", "resumed"
                ]
                assert frames[4]["data"]["epochs_resumed"] == 3
                assert all(f["dropped"] == 0 for f in frames)

                # Stepping continues at epoch 3, seq numbering intact.
                stepped = await client.request("step", session=sid, epochs=2)
                assert stepped["epochs_run"] == 5
                post = [await client.next_event() for _ in range(2)]
                post = [
                    f for f in post
                    if f["subscription"] == sub["subscription"]
                ]
                assert [f["seq"] for f in post] == [5, 6]
                assert [f["data"]["epoch"] for f in post] == [3, 4]

                closed = await client.request("close_session", session=sid)
                assert closed["result"]["epochs_run"] == 5
                await client.close()
                return [
                    f["data"] for f in frames + post if f["event"] == "epoch"
                ]
            finally:
                await server.drain()

        return run_async(main())

    def test_inprocess_evict_resume_bit_identical(self, tmp_path):
        epochs = self._run_cycle(tmp_path, workers=0)
        assert epochs == _direct_epochs(5)

    def test_worker_pool_evict_resume_bit_identical(self, tmp_path):
        epochs = self._run_cycle(tmp_path, workers=2)
        assert epochs == _direct_epochs(5)

    def test_resume_goes_through_admission(self, tmp_path):
        """A resume cannot sneak past capacity or still-live ids."""

        async def main():
            server = await _start_server(
                workers=0,
                max_sessions=1,
                ledger_dir=str(tmp_path),
                evict_to_disk=True,
            )
            try:
                client = await WireClient.open(server.address)
                info = await client.request("create_session", **PARAMS)
                sid = info["session"]
                await client.request("step", session=sid, epochs=1)

                # Still live: resume is a bad request, not a rebuild.
                with pytest.raises(ServiceError) as exc_info:
                    await client.request("resume_session", session=sid)
                assert exc_info.value.code == ErrorCode.BAD_REQUEST

                assert _evict_now(server) == [sid]
                # Another tenant takes the only slot the eviction freed.
                other = await client.request("create_session", **PARAMS)
                with pytest.raises(ServiceError) as exc_info:
                    await client.request("resume_session", session=sid)
                assert exc_info.value.code == ErrorCode.AT_CAPACITY

                await client.request(
                    "close_session", session=other["session"]
                )
                resumed = await client.request("resume_session", session=sid)
                assert resumed["epochs_run"] == 1

                # Resuming twice is refused: the checkpoint was cleared
                # and the session is live again.
                with pytest.raises(ServiceError) as exc_info:
                    await client.request("resume_session", session=sid)
                assert exc_info.value.code == ErrorCode.BAD_REQUEST
                await client.close()
            finally:
                await server.drain()

        run_async(main())

    def test_resume_alias_on_create_session(self, tmp_path):
        async def main():
            server = await _start_server(
                workers=0, ledger_dir=str(tmp_path), evict_to_disk=True
            )
            try:
                client = await WireClient.open(server.address)
                info = await client.request("create_session", **PARAMS)
                sid = info["session"]
                await client.request("step", session=sid, epochs=2)
                assert _evict_now(server) == [sid]
                resumed = await client.request("create_session", resume=sid)
                assert resumed["session"] == sid
                assert resumed["epochs_run"] == 2
                await client.close()
            finally:
                await server.drain()

        run_async(main())

    def test_resume_unknown_session_and_ledgerless_server(self, tmp_path):
        async def main():
            server = await _start_server(
                workers=0, ledger_dir=str(tmp_path), evict_to_disk=True
            )
            try:
                client = await WireClient.open(server.address)
                with pytest.raises(ServiceError) as exc_info:
                    await client.request("resume_session", session="nope")
                assert exc_info.value.code == ErrorCode.UNKNOWN_SESSION
                await client.close()
            finally:
                await server.drain()

            bare = await _start_server(workers=0)
            try:
                client = await WireClient.open(bare.address)
                with pytest.raises(ServiceError) as exc_info:
                    await client.request("resume_session", session="s1")
                assert exc_info.value.code == ErrorCode.BAD_PARAMS
                await client.close()
            finally:
                await bare.drain()

        run_async(main())

    def test_plain_eviction_without_flag_is_not_resumable(self, tmp_path):
        """A ledger-backed server without --evict-to-disk keeps the
        historical discard-on-evict contract: goodbye says
        ``resumable: false`` equivalent (absent) and resume fails."""

        async def main():
            server = await _start_server(
                workers=0, ledger_dir=str(tmp_path)
            )
            try:
                client = await WireClient.open(server.address)
                info = await client.request("create_session", **PARAMS)
                sid = info["session"]
                await client.request("step", session=sid, epochs=1)
                await client.request("subscribe", session=sid)
                assert _evict_now(server) == [sid]
                goodbye = await client.next_event()
                assert goodbye["data"]["code"] == "evicted"
                assert "resumable" not in goodbye["data"]
                with pytest.raises(ServiceError) as exc_info:
                    await client.request("resume_session", session=sid)
                assert exc_info.value.code == ErrorCode.UNKNOWN_SESSION
                await client.close()
            finally:
                await server.drain()

        run_async(main())


class TestEvictionSubscribeOrdering:
    """Satellite: no subscriber can attach silently to a half-dead
    session between the reaper's claim and the registry pop."""

    def test_subscribe_refused_once_eviction_claimed(self):
        session = ProfilingSession("s1", **PARAMS)
        try:
            assert session.try_mark_evicting(
                session.last_active_s + 10, idle_ttl_s=1.0
            )
            with pytest.raises(ServiceError) as exc_info:
                session.subscribe()
            assert exc_info.value.code == ErrorCode.EVICTED
        finally:
            session.close()

    def test_subscribe_refused_on_closed_session(self):
        session = ProfilingSession("s1", **PARAMS)
        session.close()
        with pytest.raises(ServiceError) as exc_info:
            session.subscribe()
        assert exc_info.value.code == ErrorCode.UNKNOWN_SESSION

    def test_goodbye_fans_out_before_the_registry_pop(self, tmp_path):
        """A subscriber attached at claim time receives the goodbye:
        the fan-out runs while the session is still registered."""

        async def main():
            server = await _start_server(workers=0)
            try:
                client = await WireClient.open(server.address)
                info = await client.request("create_session", **PARAMS)
                sid = info["session"]
                await client.request("subscribe", session=sid)
                await client.request("step", session=sid, epochs=1)
                await client.next_event()  # the stepped epoch frame
                assert _evict_now(server) == [sid]
                goodbye = await client.next_event()
                assert goodbye["event"] == "error"
                assert goodbye["data"]["code"] == "evicted"
                # And post-pop subscribes get unknown_session, never a
                # silent half-dead attach.
                with pytest.raises(ServiceError) as exc_info:
                    await client.request("subscribe", session=sid)
                assert exc_info.value.code == ErrorCode.UNKNOWN_SESSION
                await client.close()
            finally:
                await server.drain()

        run_async(main())


class TestReplayRetentionRace:
    """Satellite: retention compaction mid-replay surfaces as
    cumulative ``dropped``, never a silent seq gap."""

    def test_compaction_between_replay_batches_is_accounted(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(ServiceServer, "_REPLAY_BATCH", 2)

        async def main():
            server = await _start_server(
                workers=0,
                ledger_dir=str(tmp_path),
                # Tiny segments: every appended frame seals its own
                # segment, so retention has fine-grained units to drop.
                ledger_segment_bytes=64,
            )
            try:
                client = await WireClient.open(server.address)
                info = await client.request("create_session", **PARAMS)
                sid = info["session"]
                await client.request("step", session=sid, epochs=8)

                session = server.manager.get(sid)
                ledger = session.ledger
                real_read = ledger.read_encoded
                calls = {"n": 0}

                def racing_read(start, end_seq):
                    # Between the first and second replay batch, the
                    # retention policy kicks in and compacts every
                    # sealed segment — exactly the race a slow replayer
                    # can lose against a busy session's retention.
                    calls["n"] += 1
                    if calls["n"] == 2:
                        ledger.retention_bytes = 1
                        ledger.compact()
                    return real_read(start, end_seq)

                monkeypatch.setattr(ledger, "read_encoded", racing_read)

                sub = await client.request(
                    "subscribe", session=sid, from_seq=0
                )
                assert calls["n"] >= 2, "compaction never raced the replay"
                # Whatever compaction removed mid-replay is accounted:
                # served + dropped covers the whole requested window.
                assert sub["dropped"] > 0
                assert sub["replayed"] + sub["dropped"] == 8

                frames = [
                    await client.next_event() for _ in range(sub["replayed"])
                ]
                frames = [
                    f for f in frames
                    if f["subscription"] == sub["subscription"]
                ]
                assert frames[0]["seq"] == 0
                # The live tail continues at seq 8 carrying the same
                # cumulative counter, so the loss arithmetic spans the
                # replay/live splice.
                await client.request("step", session=sid, epochs=1)
                live = await client.next_event()
                while live["subscription"] != sub["subscription"]:
                    live = await client.next_event()
                frames.append(live)
                # Loss arithmetic: every seq jump is exactly covered by
                # the cumulative dropped counter — no silent gaps.
                for prev, cur in zip(frames, frames[1:]):
                    gap = cur["seq"] - prev["seq"] - 1
                    assert gap == cur["dropped"] - prev["dropped"], (
                        f"silent gap between seq {prev['seq']} and "
                        f"{cur['seq']}"
                    )
                assert live["seq"] == 8
                assert live["dropped"] == sub["dropped"]
                await client.close()
            finally:
                await server.drain()

        run_async(main())
