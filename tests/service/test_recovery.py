"""Crashed-session recovery: ledger re-materialization end to end.

The acceptance scenario: SIGKILL a worker mid-life, and the ledger
rebuilds its session in a fresh worker from the recorded config plus
epoch count.  The subscriber sees one ``worker_crashed`` error frame,
one ``recovered`` frame, and then gap-free epoch frames whose payloads
are bit-identical to an uncrashed in-process run; ``seq``/``dropped``
stay continuous across the whole ordeal.
"""

import asyncio
import os
import signal
import threading
import time

import pytest

from repro.service import ServiceError, ServiceServer, WorkerPool
from repro.service.protocol import ErrorCode
from repro.service.session import ProfilingSession
from repro.service.telemetry import epoch_metrics_to_dict

from .test_server import SMALL, WireClient, run_async


async def _start_server(**kw):
    kw.setdefault("port", 0)
    kw.setdefault("reap_interval_s", 0)
    server = ServiceServer(**kw)
    await server.start()
    return server


class TestLedgerRecovery:
    def test_killed_session_recovers_and_stream_stays_gap_free(
        self, tmp_path
    ):
        params = {
            "workload": "gups",
            "seed": 7,
            "workload_kwargs": dict(SMALL),
        }

        async def main():
            server = await _start_server(
                workers=2, ledger_dir=str(tmp_path)
            )
            try:
                client = await WireClient.open(server.address)
                info = await client.request("create_session", **params)
                sid = info["session"]
                await client.request("step", session=sid, epochs=3)
                sub = await client.request(
                    "subscribe", session=sid, from_seq=0
                )
                assert sub["replayed"] == 3
                pre = [await client.next_event() for _ in range(3)]
                assert [f["seq"] for f in pre] == [0, 1, 2]

                handle = server._pool.workers[info["worker"]]
                os.kill(handle.process.pid, signal.SIGKILL)

                # One structured crash frame, then one recovered frame
                # once a fresh worker has replayed the 3 epochs.
                crash = await client.next_event()
                assert crash["event"] == "error"
                assert crash["data"]["code"] == "worker_crashed"
                assert crash["seq"] == 3
                recovered = await client.next_event()
                assert recovered["event"] == "recovered"
                assert recovered["seq"] == 4
                assert recovered["data"]["epochs_replayed"] == 3

                # The session still answers, continuing at epoch 3.
                stepped = await client.request(
                    "step", session=sid, epochs=2
                )
                assert stepped["epochs_run"] == 5
                post = [await client.next_event() for _ in range(2)]
                assert [f["seq"] for f in post] == [5, 6]
                assert all(f["dropped"] == 0 for f in post)
                assert [f["data"]["epoch"] for f in post] == [3, 4]

                # Still registered (not discarded like ledgerless crashes).
                listed = await client.request("list_sessions")
                assert sid in [s["session"] for s in listed["sessions"]]

                closed = await client.request("close_session", session=sid)
                assert closed["result"]["epochs_run"] == 5
                await client.close()
                return [f["data"] for f in pre + post]
            finally:
                await server.drain()

        epochs = run_async(main())

        # Bit-identity: the crashed-and-recovered stream equals an
        # uncrashed in-process run of the same recorded config.
        direct = ProfilingSession("direct", **params)
        direct.sim.step(5)
        expected = [
            epoch_metrics_to_dict(m) for m in direct.sim.result.epochs
        ]
        assert epochs == expected

    def test_late_subscriber_replays_across_the_crash(self, tmp_path):
        """from_seq replay after recovery covers pre-crash history."""

        async def main():
            server = await _start_server(
                workers=1, ledger_dir=str(tmp_path)
            )
            try:
                client = await WireClient.open(server.address)
                info = await client.request(
                    "create_session",
                    workload="gups",
                    seed=2,
                    workload_kwargs=dict(SMALL),
                )
                sid = info["session"]
                await client.request("step", session=sid, epochs=2)
                watcher = await client.request("subscribe", session=sid)

                handle = server._pool.workers[info["worker"]]
                os.kill(handle.process.pid, signal.SIGKILL)
                while True:
                    frame = await client.next_event()
                    if frame["event"] == "recovered":
                        break

                await client.request("step", session=sid, epochs=1)
                frame = await client.next_event()
                assert frame["event"] == "epoch"

                # A post-crash subscriber replays everything from disk:
                # epochs, the crash marker, the recovery marker, then
                # the live tail — one continuous numbered stream.
                sub = await client.request(
                    "subscribe", session=sid, from_seq=0
                )
                assert sub["replayed"] == 5  # 2 epochs + error + recovered + 1
                frames = [await client.next_event() for _ in range(5)]
                frames = [
                    f for f in frames
                    if f["subscription"] == sub["subscription"]
                ]
                assert [f["seq"] for f in frames] == [0, 1, 2, 3, 4]
                assert [f["event"] for f in frames] == [
                    "epoch", "epoch", "error", "recovered", "epoch"
                ]
                await client.close()
            finally:
                await server.drain()

        run_async(main())


class TestRecoveryTenantAccounting:
    """Exactly one tenant-quota slot across SIGKILL → recover → close."""

    def test_tenant_quota_one_holds_through_crash_recovery(self, tmp_path):
        params = {
            "workload": "gups",
            "seed": 5,
            "workload_kwargs": dict(SMALL),
            "tenant": "acme",
        }

        async def main():
            server = ServiceServer(
                port=0,
                reap_interval_s=0,
                workers=1,
                tenant_quota=1,
                ledger_dir=str(tmp_path),
            )
            await server.start()
            try:
                client = await WireClient.open(server.address)
                info = await client.request("create_session", **params)
                sid = info["session"]
                await client.request("step", session=sid, epochs=2)
                await client.request("subscribe", session=sid)

                os.kill(
                    server._pool.workers[info["worker"]].process.pid,
                    signal.SIGKILL,
                )
                while True:
                    frame = await client.next_event()
                    if frame["event"] == "recovered":
                        break

                # The recovered session holds exactly its original
                # slot: a second create for the tenant is over quota.
                with pytest.raises(ServiceError) as exc_info:
                    await client.request("create_session", **params)
                assert exc_info.value.code == ErrorCode.OVERLOADED
                srv_info = await client.request("server_info")
                assert srv_info["tenants"] == {"acme": 1}

                # Closing releases it exactly once: the tenant can
                # create again, and the accounting ends at zero.
                closed = await client.request("close_session", session=sid)
                assert closed["result"]["epochs_run"] == 2
                fresh = await client.request("create_session", **params)
                await client.request(
                    "close_session", session=fresh["session"]
                )
                srv_info = await client.request("server_info")
                assert srv_info["tenants"] == {}
                await client.close()
            finally:
                await server.drain()

        run_async(main())

    @staticmethod
    def _crash(session, timeout_s=20.0):
        """SIGKILL the session's worker; wait for crash + respawn."""
        worker = session.worker
        os.kill(worker.process.pid, signal.SIGKILL)
        end = time.monotonic() + timeout_s
        while time.monotonic() < end:
            if (
                session.crashed is not None
                and worker.process is not None
                and worker.process.is_alive()
            ):
                return
            time.sleep(0.02)
        raise AssertionError("worker did not crash/respawn in time")

    def test_close_before_recovery_is_honored_not_resurrected(self):
        """A session closed while crashed must stay closed: recovery
        aborts instead of re-pinning it to a worker as an unmanaged
        zombie that holds a worker slot forever."""
        pool = WorkerPool(1)
        try:
            session = pool.session_factory(
                "doomed", workload="gups", seed=3, workload_kwargs=dict(SMALL)
            )
            self._crash(session)
            session.close()
            with pytest.raises(ServiceError) as exc_info:
                pool.recover_session(
                    session,
                    {"workload": "gups", "seed": 3,
                     "workload_kwargs": dict(SMALL)},
                    0,
                )
            assert exc_info.value.code == ErrorCode.UNKNOWN_SESSION
            assert pool._sessions == {}
            assert all(not w.sessions for w in pool.workers)
        finally:
            pool.shutdown()

    def test_close_mid_rebuild_drops_the_rebuilt_copy(self):
        """close() landing while the worker is rebuilding: the freshly
        rebuilt worker-side copy is dropped, not adopted."""
        pool = WorkerPool(1)
        try:
            session = pool.session_factory(
                "doomed", workload="gups", seed=4, workload_kwargs=dict(SMALL)
            )
            session.step(2)
            self._crash(session)

            worker = pool.workers[0]
            real_request = worker.request
            rebuild_started = threading.Event()
            close_done = threading.Event()

            def gated_request(op, payload=None, **kw):
                if op == "recover":
                    rebuild_started.set()
                    assert close_done.wait(15)
                return real_request(op, payload, **kw)

            worker.request = gated_request
            result = {}

            def recover():
                try:
                    pool.recover_session(
                        session,
                        {"workload": "gups", "seed": 4,
                         "workload_kwargs": dict(SMALL)},
                        2,
                    )
                except ServiceError as exc:
                    result["code"] = exc.code

            thread = threading.Thread(target=recover)
            thread.start()
            assert rebuild_started.wait(15)
            session.close()  # crashed close: local, no worker RPC
            close_done.set()
            thread.join(30)
            assert not thread.is_alive()

            assert result.get("code") == ErrorCode.UNKNOWN_SESSION
            assert pool._sessions == {}
            assert all(not w.sessions for w in pool.workers)
            # The worker-side rebuilt copy was closed too: a fresh
            # session with the same id builds cleanly.
            fresh = pool.session_factory(
                "doomed", workload="gups", seed=4, workload_kwargs=dict(SMALL)
            )
            assert fresh.step(1)["epochs_run"] == 1
            fresh.close()
        finally:
            pool.shutdown()
