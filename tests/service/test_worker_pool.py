"""Unit tests for the sticky worker-process pool (no server involved).

Exercises the pipe protocol, fault injection (unpicklable replies,
in-worker exceptions, hard exits), respawn, and the bit-identical
parity of a worker-hosted session with a direct simulator run.
"""

import time

import pytest

from repro.memsim import MachineConfig
from repro.service import ServiceError, WorkerPool, resolve_workers
from repro.service.protocol import ErrorCode
from repro.tiering import TieredSimulator
from repro.tiering.policies import POLICIES
from repro.workloads import make_workload

SMALL = {"footprint_pages": 512, "accesses_per_epoch": 2000}
SESSION_KW = {"workload": "gups", "workload_kwargs": dict(SMALL)}


@pytest.fixture
def pool():
    pool = WorkerPool(1)
    yield pool
    pool.shutdown()


def _wait(predicate, timeout_s=15.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


class TestResolveWorkers:
    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_WORKERS", "7")
        assert resolve_workers(3) == 3
        assert resolve_workers(0) == 0

    def test_none_reads_env_then_cpu_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_WORKERS", "5")
        assert resolve_workers(None) == 5
        monkeypatch.delenv("REPRO_SERVICE_WORKERS")
        assert resolve_workers(None) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestWorkerProtocol:
    def test_ping_round_trips(self, pool):
        (reply,) = pool.ping_all()
        assert reply["worker"] == 0
        assert reply["pid"] == pool.workers[0].process.pid
        assert reply["sessions"] == 0

    def test_unknown_op_is_an_error_not_a_crash(self, pool):
        with pytest.raises(ServiceError) as err:
            pool.workers[0].request("no_such_op")
        assert err.value.code == ErrorCode.UNKNOWN_OP
        assert pool.ping_all()[0]["worker"] == 0  # still alive

    def test_unpicklable_reply_degrades_to_internal_error(self, pool):
        with pytest.raises(ServiceError) as err:
            pool.workers[0].request("_debug", {"action": "unpicklable"})
        assert err.value.code == ErrorCode.INTERNAL
        assert "unserializable" in err.value.message
        assert pool.ping_all()[0]["worker"] == 0  # worker survived

    def test_worker_exception_maps_to_internal_error(self, pool):
        with pytest.raises(ServiceError) as err:
            pool.workers[0].request("_debug", {"action": "raise"})
        assert err.value.code == ErrorCode.INTERNAL
        assert "injected worker failure" in err.value.message
        assert pool.ping_all()[0]["worker"] == 0


class TestCrashRecovery:
    def test_hard_exit_fails_request_and_respawns(self, pool):
        worker = pool.workers[0]
        old_pid = worker.process.pid
        with pytest.raises(ServiceError) as err:
            worker.request("_debug", {"action": "exit"})
        assert err.value.code == ErrorCode.WORKER_CRASHED
        assert _wait(
            lambda: worker.process is not None
            and worker.process.is_alive()
            and worker.process.pid != old_pid
        )
        assert pool.ping_all()[0]["pid"] != old_pid
        assert pool.respawns == 1

    def test_crash_marks_sessions_and_fires_callback(self):
        crashes = []
        pool = WorkerPool(1, on_session_crash=lambda s, m: crashes.append((s, m)))
        try:
            session = pool.session_factory("doomed", seed=3, **SESSION_KW)
            frames = []
            session.add_sink(lambda event, data: frames.append((event, data)))
            with pytest.raises(ServiceError) as err:
                session.worker.request("_debug", {"action": "exit"})
            assert err.value.code == ErrorCode.WORKER_CRASHED
            assert _wait(lambda: bool(crashes))
            assert crashes[0][0] == ["doomed"]
            assert session.crashed is not None
            errors = [d for e, d in frames if e == "error"]
            assert errors and errors[0]["code"] == ErrorCode.WORKER_CRASHED
            assert errors[0]["worker"] == 0
            with pytest.raises(ServiceError) as err:
                session.step(1)
            assert err.value.code == ErrorCode.WORKER_CRASHED
            # close() on a crashed session must not raise.
            assert session.close()["crashed"]
            # The respawned slot accepts new sessions.
            assert _wait(lambda: pool.workers[0].process.is_alive())
            fresh = pool.session_factory("fresh", seed=4, **SESSION_KW)
            assert fresh.step(1)["epochs_run"] == 1
            fresh.close()
        finally:
            pool.shutdown()


class TestSessionParity:
    def test_worker_session_matches_direct_run(self, pool):
        epochs = 3
        session = pool.session_factory(
            "parity", seed=11, tier1_ratio=0.125, **SESSION_KW
        )
        frames = []
        session.add_sink(lambda event, data: frames.append(data))
        stepped = session.step(epochs)
        summary = session.close()

        sim = TieredSimulator(
            make_workload("gups", **SMALL),
            POLICIES["history"](),
            tier1_ratio=0.125,
            machine_config=MachineConfig.scaled(ibs_period=16),
            seed=11,
        )
        direct = sim.run(epochs)
        for data, direct_epoch in zip(frames, direct.epochs, strict=True):
            assert data["epoch"] == direct_epoch.epoch
            assert data["hitrate"] == direct_epoch.hitrate
            assert data["runtime_s"] == direct_epoch.runtime_s
        assert stepped["epochs_run"] == epochs
        assert summary["mean_hitrate"] == direct.mean_hitrate
        assert summary["total_migrations"] == direct.total_migrations

    def test_bad_params_rejected_and_slot_released(self, pool):
        with pytest.raises(ServiceError) as err:
            pool.session_factory("bad", workload="doom")
        assert err.value.code == ErrorCode.BAD_PARAMS
        assert pool.info()["sessions_per_worker"][0] == 0


class TestShutdown:
    def test_shutdown_joins_worker_processes(self):
        pool = WorkerPool(2)
        processes = [w.process for w in pool.workers]
        assert all(p.is_alive() for p in processes)
        pool.shutdown()
        assert all(not p.is_alive() for p in processes)
