"""Integration tests for the asyncio JSON-lines profiling server.

Every test runs its own in-process server inside ``asyncio.run`` and
is wrapped in ``asyncio.wait_for`` so a wedged server fails the test
instead of hanging the suite.
"""

import asyncio
import json
from collections import deque

from repro.memsim import MachineConfig
from repro.service import ServiceError, ServiceServer
from repro.service.protocol import encode_frame
from repro.tiering import TieredSimulator
from repro.tiering.policies import POLICIES
from repro.workloads import WORKLOAD_NAMES, make_workload

SMALL = {"footprint_pages": 512, "accesses_per_epoch": 2000}
TEST_TIMEOUT_S = 120


def run_async(coro):
    """Drive one async test body with a hard timeout."""
    return asyncio.run(asyncio.wait_for(coro, TEST_TIMEOUT_S))


class WireClient:
    """Minimal async protocol client for exercising the server."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        self.events = deque()
        self._id = 0

    @classmethod
    async def open(cls, address):
        reader, writer = await asyncio.open_connection(*address)
        return cls(reader, writer)

    async def _read(self):
        line = await self.reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    async def request(self, op, **params):
        self._id += 1
        request_id = self._id
        self.writer.write(encode_frame({"id": request_id, "op": op, "params": params}))
        await self.writer.drain()
        while True:
            frame = await self._read()
            if "event" in frame:
                self.events.append(frame)
                continue
            assert frame["id"] == request_id
            if frame["ok"]:
                return frame["result"]
            raise ServiceError(frame["error"]["code"], frame["error"]["message"])

    async def send_raw(self, data: bytes):
        self.writer.write(data)
        await self.writer.drain()

    async def next_event(self):
        if self.events:
            return self.events.popleft()
        while True:
            frame = await self._read()
            if "event" in frame:
                return frame

    async def close(self):
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _start_server(**kw):
    kw.setdefault("port", 0)
    kw.setdefault("reap_interval_s", 0)
    server = ServiceServer(**kw)
    await server.start()
    return server


class TestConcurrentSessions:
    """The acceptance scenario: many tenants, streamed, bit-identical."""

    def test_eight_sessions_stream_and_match_direct_runs(self):
        epochs = 3
        names = list(WORKLOAD_NAMES)[:8]
        assert len(names) == 8

        async def drive(address, name, seed):
            client = await WireClient.open(address)
            try:
                info = await client.request(
                    "create_session",
                    workload=name,
                    seed=seed,
                    tier1_ratio=0.125,
                    workload_kwargs=dict(SMALL),
                )
                sid = info["session"]
                await client.request("subscribe", session=sid, max_queue=32)
                stepped = await client.request("step", session=sid, epochs=epochs)
                assert stepped["epochs_run"] == epochs
                frames = [await client.next_event() for _ in range(epochs)]
                closed = await client.request("close_session", session=sid)
                return name, frames, closed["result"]
            finally:
                await client.close()

        async def main():
            server = await _start_server(max_sessions=8, step_workers=8)
            try:
                return await asyncio.gather(
                    *(
                        drive(server.address, name, seed)
                        for seed, name in enumerate(names)
                    )
                )
            finally:
                await server.drain()

        results = run_async(main())
        assert len(results) == 8
        for seed, (name, frames, summary) in enumerate(results):
            sim = TieredSimulator(
                make_workload(name, **SMALL),
                POLICIES["history"](),
                tier1_ratio=0.125,
                machine_config=MachineConfig.scaled(ibs_period=16),
                seed=seed,
            )
            direct = sim.run(epochs)
            assert [f["seq"] for f in frames] == list(range(epochs))
            for frame, direct_epoch in zip(frames, direct.epochs):
                data = frame["data"]
                assert data["epoch"] == direct_epoch.epoch
                assert data["hitrate"] == direct_epoch.hitrate
                assert data["promoted"] == direct_epoch.promoted
                assert data["demoted"] == direct_epoch.demoted
                assert data["runtime_s"] == direct_epoch.runtime_s
            assert summary["mean_hitrate"] == direct.mean_hitrate
            assert summary["total_migrations"] == direct.total_migrations


class TestBackpressure:
    def test_slow_subscriber_drops_oldest_without_stalling_others(self):
        epochs = 12

        async def main():
            server = await _start_server(max_sessions=4, step_workers=4)
            slow = await WireClient.open(server.address)
            busy = await WireClient.open(server.address)
            try:
                a = (
                    await slow.request(
                        "create_session", workload="gups",
                        workload_kwargs=dict(SMALL),
                    )
                )["session"]
                b = (
                    await busy.request(
                        "create_session", workload="xsbench",
                        workload_kwargs=dict(SMALL), seed=1,
                    )
                )["session"]
                # A tiny queue plus a 2 Hz delivery throttle makes this
                # subscriber structurally slower than the epoch rate.
                await slow.request(
                    "subscribe", session=a, max_queue=4, max_rate_hz=2
                )

                t0 = asyncio.get_running_loop().time()
                stepped_a, stepped_b = await asyncio.gather(
                    slow.request("step", session=a, epochs=epochs),
                    busy.request("step", session=b, epochs=epochs),
                )
                elapsed = asyncio.get_running_loop().time() - t0
                assert stepped_a["epochs_run"] == epochs
                assert stepped_b["epochs_run"] == epochs
                # Draining 12 frames at 2 Hz would alone take ~6 s; the
                # steps must not be serialized behind that delivery.
                assert elapsed < 5.0

                frames = []
                while True:
                    frame = await asyncio.wait_for(slow.next_event(), 10)
                    frames.append(frame)
                    if frame["data"]["epoch"] == epochs - 1:
                        break
                    assert len(frames) < epochs  # drops must have happened
                return frames
            finally:
                await slow.close()
                await busy.close()
                await server.drain()

        frames = run_async(main())
        seqs = [f["seq"] for f in frames]
        assert seqs == sorted(seqs)
        assert len(frames) < 12  # oldest frames were shed, not queued
        assert frames[-1]["dropped"] > 0
        assert frames[-1]["seq"] == 11  # the newest epoch survived


class TestCoalescedWriter:
    """The output side of serialize-once: batched writes per connection."""

    def test_stalled_connection_does_not_wedge_other_pumps(self):
        epochs = 30
        chunk = 5
        subs = 8

        async def main():
            import socket

            server = await _start_server(max_sessions=4, step_workers=4)
            driver = await WireClient.open(server.address)
            # The stalled client caps its receive buffer so the
            # server-side socket fills after a few KB of frames.
            raw = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            raw.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
            raw.connect(tuple(server.address))
            # A small StreamReader limit keeps the client from slurping
            # unread frames into user space: once ~2 KB is buffered the
            # reader pauses the transport and the kernel buffers fill.
            reader, writer = await asyncio.open_connection(sock=raw, limit=2048)
            stalled = WireClient(reader, writer)
            try:
                sid_a = (
                    await driver.request(
                        "create_session", workload="gups",
                        workload_kwargs=dict(SMALL),
                    )
                )["session"]
                sid_b = (
                    await driver.request(
                        "create_session", workload="xsbench",
                        workload_kwargs=dict(SMALL), seed=1,
                    )
                )["session"]
                for _ in range(subs):
                    await stalled.request(
                        "subscribe", session=sid_a, max_queue=4
                    )
                await driver.request("subscribe", session=sid_b, max_queue=64)
                # Shrink every server-side send buffer so the stalled
                # connection's pump wedges in drain() after a few KB
                # (the driver reads promptly, so it never blocks).
                for conn in server._connections:
                    sock = conn.writer.get_extra_info("socket")
                    if sock is not None:
                        sock.setsockopt(
                            socket.SOL_SOCKET, socket.SO_SNDBUF, 4096
                        )
                    conn.writer.transport.set_write_buffer_limits(high=1024)

                # The stalled client reads nothing while both sessions
                # step; the driver's subscription must stream freely.
                t0 = asyncio.get_running_loop().time()
                for _ in range(0, epochs, chunk):
                    await driver.request("step", session=sid_a, epochs=chunk)
                    await driver.request("step", session=sid_b, epochs=chunk)
                b_frames = [await driver.next_event() for _ in range(epochs)]
                elapsed = asyncio.get_running_loop().time() - t0
                assert [f["seq"] for f in b_frames] == list(range(epochs))
                assert all(f["dropped"] == 0 for f in b_frames)
                assert elapsed < 60.0

                # Now drain the stalled connection: every subscription
                # must surface the newest frame with exact drop-oldest
                # accounting (pushed == delivered + dropped).
                per_sub: dict[str, list] = {}
                while len(per_sub) < subs or any(
                    frames[-1]["seq"] != epochs - 1
                    for frames in per_sub.values()
                ):
                    frame = await asyncio.wait_for(stalled.next_event(), 30)
                    per_sub.setdefault(frame["subscription"], []).append(frame)
                return per_sub
            finally:
                await stalled.close()
                await driver.close()
                await server.drain()

        per_sub = run_async(main())
        assert len(per_sub) == subs
        total_dropped = 0
        for frames in per_sub.values():
            seqs = [f["seq"] for f in frames]
            assert seqs == sorted(seqs)
            assert seqs[-1] == 29  # the newest epoch always survives
            last = frames[-1]
            # Exact accounting: 30 pushed = delivered + cumulative drops.
            assert last["dropped"] == 30 - len(frames)
            total_dropped += last["dropped"]
        # The wedge must actually have produced drop-oldest shedding.
        assert total_dropped > 0


class TestOversizedResponse:
    """Outbound frames obey MAX_LINE_BYTES with a structured error."""

    def test_oversized_epoch_window_is_bad_request(self, monkeypatch):
        # Shrink the outbound limit (resolved at call time inside
        # encode_frame); the server's inbound readline limit was bound
        # at start() and small requests/responses stay well under 4 KB.
        monkeypatch.setattr("repro.service.protocol.MAX_LINE_BYTES", 4096)
        epochs = 50

        async def main():
            server = await _start_server()
            client = await WireClient.open(server.address)
            try:
                sid = (
                    await client.request(
                        "create_session", workload="gups",
                        workload_kwargs=dict(SMALL),
                    )
                )["session"]
                for _ in range(0, epochs, 5):
                    await client.request("step", session=sid, epochs=5)
                try:
                    await client.request(
                        "close_session", session=sid, include_epochs=True
                    )
                    raise AssertionError("oversized response should fail")
                except ServiceError as exc:
                    assert exc.code == "bad_request"
                    assert "smaller window" in exc.message
                # The connection survives the substituted error frame —
                # no oversized line ever hit the socket.
                assert (await client.request("ping"))["pong"] is True
                # A bounded window on a fresh session encodes fine.
                sid2 = (
                    await client.request(
                        "create_session", workload="gups",
                        workload_kwargs=dict(SMALL),
                    )
                )["session"]
                await client.request("step", session=sid2, epochs=5)
                result = await client.request(
                    "close_session", session=sid2, include_epochs=True,
                    epochs_from=0, epochs_to=5,
                )
                assert len(result["result"]["epochs"]) == 5
            finally:
                await client.close()
                await server.drain()

        run_async(main())


class TestAdmissionAndErrors:
    def test_admission_limit_over_wire(self):
        async def main():
            server = await _start_server(max_sessions=2)
            client = await WireClient.open(server.address)
            try:
                first = await client.request(
                    "create_session", workload="gups", workload_kwargs=dict(SMALL)
                )
                await client.request(
                    "create_session", workload="gups", workload_kwargs=dict(SMALL)
                )
                try:
                    await client.request(
                        "create_session", workload="gups",
                        workload_kwargs=dict(SMALL),
                    )
                    raise AssertionError("third create should be rejected")
                except ServiceError as exc:
                    assert exc.code == "at_capacity"
                await client.request("close_session", session=first["session"])
                await client.request(
                    "create_session", workload="gups", workload_kwargs=dict(SMALL)
                )
            finally:
                await client.close()
                await server.drain()

        run_async(main())

    def test_error_codes(self):
        async def main():
            server = await _start_server()
            client = await WireClient.open(server.address)
            try:
                for op, params, code in [
                    ("step", {"session": "s404"}, "unknown_session"),
                    ("frobnicate", {}, "unknown_op"),
                    ("step", {}, "bad_params"),
                    ("create_session", {"workload": "doom"}, "bad_params"),
                    ("create_session", {"workload": "gups", "bogus_kw": 1},
                     "bad_params"),
                ]:
                    try:
                        await client.request(op, **params)
                        raise AssertionError(f"{op} should have failed")
                    except ServiceError as exc:
                        assert exc.code == code, (op, exc.code)
                # A malformed line gets an id-less bad_request response.
                await client.send_raw(b"this is not json\n")
                frame = await client._read()
                assert frame["ok"] is False
                assert frame["id"] is None
                assert frame["error"]["code"] == "bad_request"
            finally:
                await client.close()
                await server.drain()

        run_async(main())

    def test_reconfigure_and_numa_maps_over_wire(self):
        async def main():
            server = await _start_server()
            client = await WireClient.open(server.address)
            try:
                sid = (
                    await client.request(
                        "create_session", workload="gups",
                        workload_kwargs=dict(SMALL),
                    )
                )["session"]
                await client.request("step", session=sid, epochs=1)
                result = await client.request(
                    "reconfigure", session=sid,
                    changes={"trace_sample_period": 8, "min_cpu_share": 0.01},
                )
                assert sorted(result["applied"]) == [
                    "min_cpu_share", "trace_sample_period",
                ]
                session = server.manager.get(sid)
                assert session.sim.machine.ibs.period == 8
                maps = await client.request("numa_maps", session=sid)
                assert "# pid" in maps["numa_maps"]
                stats = await client.request("stats", session=sid)
                assert stats["daemon"]["programs"] == ["gups"]
            finally:
                await client.close()
                await server.drain()

        run_async(main())


class TestLifecycle:
    def test_graceful_drain(self):
        async def main():
            server = await _start_server(max_sessions=2)
            client = await WireClient.open(server.address)
            sid = (
                await client.request(
                    "create_session", workload="gups", workload_kwargs=dict(SMALL)
                )
            )["session"]
            await client.request("subscribe", session=sid, max_queue=8)
            await client.request("step", session=sid, epochs=2)

            await server.drain()
            await asyncio.wait_for(server.serve_forever(), 5)
            assert len(server.manager) == 0
            # The listening socket is gone: new connections fail.
            try:
                await WireClient.open(server.address)
                raise AssertionError("connect after drain should fail")
            except (ConnectionError, OSError):
                pass
            # Buffered subscription frames were flushed before close.
            events = [e for e in [*client.events] if e.get("event") == "epoch"]
            while len(events) < 2:
                events.append(await asyncio.wait_for(client.next_event(), 5))
            await client.close()

        run_async(main())

    def test_draining_rejects_new_work(self):
        async def main():
            server = await _start_server()
            client = await WireClient.open(server.address)
            try:
                # Enter the draining state without tearing sockets down
                # so the rejection path itself is observable.
                server._draining = True
                for op, params in [
                    ("create_session", {"workload": "gups"}),
                    ("step", {"session": "s1"}),
                ]:
                    try:
                        await client.request(op, **params)
                        raise AssertionError(f"{op} should be rejected")
                    except ServiceError as exc:
                        assert exc.code == "shutting_down"
            finally:
                await client.close()
                server._draining = False
                await server.drain()

        run_async(main())

    def test_idle_eviction_over_wire(self):
        async def main():
            server = await _start_server(idle_ttl_s=0.15, reap_interval_s=0.05)
            client = await WireClient.open(server.address)
            try:
                await client.request(
                    "create_session", workload="gups", workload_kwargs=dict(SMALL)
                )
                assert (await client.request("server_info"))["sessions"] == 1
                deadline = asyncio.get_running_loop().time() + 10
                while (await client.request("list_sessions"))["sessions"]:
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.05)
            finally:
                await client.close()
                await server.drain()

        run_async(main())
