"""Service observability: the metrics op, aggregation, and scraping.

Covers the three exposure paths promised by ``docs/observability.md``:
the ``metrics`` protocol op, :meth:`ServiceClient.metrics`, and the
Prometheus HTTP endpoint — including aggregation across worker
*processes* (per-worker snapshots piggyback over the pool pipes and
merge in the parent).
"""

import json
import urllib.request

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.http import PROMETHEUS_CONTENT_TYPE
from repro.service import ServerThread, ServiceClient, ServiceError
from repro.service.session import ProfilingSession

from .test_server import SMALL

TEST_TIMEOUT_S = 120


@pytest.fixture(autouse=True)
def fresh_registry():
    """Isolate each test from the process-global default registry."""
    previous = obs_metrics.set_default_registry(obs_metrics.MetricsRegistry())
    yield
    obs_metrics.set_default_registry(previous)


def value(snapshot, name, **labels):
    """One sample's value from a snapshot (0 when absent)."""
    want = {str(k): str(v) for k, v in labels.items()}
    for sample in snapshot.get(name, {"samples": []})["samples"]:
        if sample["labels"] == want:
            return sample.get("value", sample.get("count"))
    return 0


class TestInProcessMetrics:
    def test_metrics_op_counts_sessions_and_epochs(self):
        with ServerThread(workers=0, reap_interval_s=0) as srv:
            with ServiceClient(address=srv.address) as c:
                info = c.create_session("gups", workload_kwargs=dict(SMALL))
                c.step(info["session"], 3)
                snap = c.metrics()
                assert value(snap, "repro_service_sessions_created_total") == 1
                assert value(snap, "repro_service_sessions_active") == 1
                assert value(snap, "repro_session_epochs_total") == 3
                step_hist = snap["repro_session_step_seconds"]["samples"][0]
                assert step_hist["count"] == 1
                assert value(
                    snap, "repro_service_requests_total", op="step", outcome="ok"
                ) == 1
                c.close_session(info["session"])
                snap = c.metrics()
                assert value(snap, "repro_service_sessions_closed_total") == 1
                assert value(snap, "repro_service_sessions_active") == 0

    def test_client_metrics_matches_raw_op(self):
        with ServerThread(workers=0, reap_interval_s=0) as srv:
            with ServiceClient(address=srv.address) as c:
                info = c.create_session("gups", workload_kwargs=dict(SMALL))
                c.step(info["session"], 2)
                raw = c.request("metrics")["metrics"]
                convenience = c.metrics()
                assert set(raw) == set(convenience)
                for name in (
                    "repro_session_epochs_total",
                    "repro_service_sessions_created_total",
                ):
                    assert value(raw, name) == value(convenience, name)

    def test_rejected_create_counts(self):
        with ServerThread(workers=0, max_sessions=1, reap_interval_s=0) as srv:
            with ServiceClient(address=srv.address) as c:
                c.create_session("gups", workload_kwargs=dict(SMALL))
                with pytest.raises(ServiceError):
                    c.create_session("gups", workload_kwargs=dict(SMALL))
                snap = c.metrics()
                assert value(
                    snap,
                    "repro_service_sessions_rejected_total",
                    reason="at_capacity",
                ) == 1
                assert value(
                    snap,
                    "repro_service_requests_total",
                    op="create_session",
                    outcome="at_capacity",
                ) == 1

    def test_error_outcomes_labelled(self):
        with ServerThread(workers=0, reap_interval_s=0) as srv:
            with ServiceClient(address=srv.address) as c:
                with pytest.raises(ServiceError):
                    c.request("no_such_op")
                snap = c.metrics()
                assert value(
                    snap,
                    "repro_service_requests_total",
                    op="no_such_op",
                    outcome="unknown_op",
                ) == 1


class TestActiveSessionsGauge:
    """Regression: the active-sessions gauge used to be published
    outside the manager lock, so mixed close/evict/crash sequences
    could leave it permanently out of sync with ``list_sessions()``.
    It must now agree at every exit path."""

    def _gauge(self):
        snap = obs_metrics.default_registry().snapshot()
        return value(snap, "repro_service_sessions_active")

    def _assert_consistent(self, mgr):
        assert self._gauge() == len(mgr.list_sessions()) == len(mgr)

    def test_gauge_tracks_mixed_lifecycle(self):
        from repro.service import SessionManager

        now = [0.0]
        mgr = SessionManager(
            max_sessions=8, idle_ttl_s=10.0, clock=lambda: now[0]
        )
        sessions = [
            mgr.create(
                workload="gups",
                workload_kwargs=dict(SMALL),
                tenant=f"t{i % 2}",
            )
            for i in range(5)
        ]
        self._assert_consistent(mgr)
        assert self._gauge() == 5

        mgr.close(sessions[0].session_id)  # deliberate close
        self._assert_consistent(mgr)
        mgr.discard(sessions[1].session_id)  # worker-crash path
        self._assert_consistent(mgr)

        now[0] = 5.0
        survivor = mgr.create(workload="gups", workload_kwargs=dict(SMALL))
        now[0] = 12.0  # sessions[2..4] idle > TTL; survivor is not
        evicted = mgr.evict_idle()
        assert set(evicted) == {s.session_id for s in sessions[2:]}
        self._assert_consistent(mgr)
        assert self._gauge() == 1

        assert mgr.close_all() == [survivor.session_id]
        self._assert_consistent(mgr)
        assert self._gauge() == 0


class TestSubscriberDropCounter:
    def test_bounded_queue_drops_are_counted(self):
        session = ProfilingSession(
            "s1", workload="gups", workload_kwargs=dict(SMALL)
        )
        try:
            session.subscribe(max_queue=1)
            session.step(3)  # 3 frames into a 1-deep queue: 2 dropped
        finally:
            session.close()
        snap = obs_metrics.default_registry().snapshot()
        assert value(snap, "repro_service_subscriber_frames_total") == 3
        assert value(snap, "repro_service_subscriber_dropped_total") == 2


class TestWorkerAggregation:
    def test_epochs_aggregate_across_worker_processes(self):
        with ServerThread(workers=2, reap_interval_s=0) as srv:
            with ServiceClient(address=srv.address) as c:
                a = c.create_session("gups", workload_kwargs=dict(SMALL))
                b = c.create_session("gups", workload_kwargs=dict(SMALL))
                c.step(a["session"], 3)
                c.step(b["session"], 2)
                per_worker = c.server_info()["worker_pool"]["sessions_per_worker"]
                busy = [w for w, n in per_worker.items() if n > 0]
                assert len(busy) >= 2  # round-robin put them on 2 cores
                snap = c.metrics()
                # Stepping happened in the workers; the total only reads
                # 5 if both worker snapshots merged into the parent's.
                assert value(snap, "repro_session_epochs_total") == 5
                assert value(snap, "repro_service_workers_alive") == 2
                # Lifecycle counters live parent-side and must not be
                # double-counted by the merge.
                assert value(snap, "repro_service_sessions_created_total") == 2

    def test_prometheus_endpoint_serves_merged_snapshot(self):
        with ServerThread(workers=2, reap_interval_s=0, metrics_port=0) as srv:
            assert srv.server.metrics_address is not None
            with ServiceClient(address=srv.address) as c:
                a = c.create_session("gups", workload_kwargs=dict(SMALL))
                b = c.create_session("gups", workload_kwargs=dict(SMALL))
                c.step(a["session"], 2)
                c.step(b["session"], 1)
            url = "http://{}:{}/metrics".format(*srv.server.metrics_address)
            with urllib.request.urlopen(url, timeout=TEST_TIMEOUT_S) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
                text = resp.read().decode()
            assert "# TYPE repro_session_epochs_total counter" in text
            assert "repro_session_epochs_total 3" in text
            assert "repro_service_workers_alive 2" in text
            assert "# TYPE repro_session_step_seconds histogram" in text
            assert 'repro_session_step_seconds_bucket{le="+Inf"} 2' in text

    def test_metrics_json_endpoint(self):
        with ServerThread(workers=0, reap_interval_s=0, metrics_port=0) as srv:
            with ServiceClient(address=srv.address) as c:
                info = c.create_session("gups", workload_kwargs=dict(SMALL))
                c.step(info["session"], 1)
            url = "http://{}:{}/metrics.json".format(*srv.server.metrics_address)
            with urllib.request.urlopen(url, timeout=TEST_TIMEOUT_S) as resp:
                snap = json.loads(resp.read().decode())
            assert value(snap, "repro_session_epochs_total") == 1
