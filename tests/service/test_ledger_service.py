"""Server-level ledger tests: from_seq replay, goodbyes, bounded close.

The acceptance scenario rides here: many concurrent ledgered sessions
whose replayed streams are bit-identical to both their live streams
and direct simulator runs, with seq numbering continuous across the
disk→live handoff.
"""

import asyncio

from repro.memsim import MachineConfig
from repro.service import ServiceError, ServiceServer
from repro.service.telemetry import epoch_metrics_to_dict
from repro.tiering import TieredSimulator
from repro.tiering.policies import POLICIES
from repro.workloads import WORKLOAD_NAMES, make_workload

from .test_server import SMALL, WireClient, run_async


async def _start_server(**kw):
    kw.setdefault("port", 0)
    kw.setdefault("reap_interval_s", 0)
    server = ServiceServer(**kw)
    await server.start()
    return server


class TestFromSeqReplay:
    """``subscribe(from_seq=...)``: exactly-once, in-order, bit-identical."""

    def test_eight_sessions_replay_equals_live_and_direct(self, tmp_path):
        epochs = 3
        names = list(WORKLOAD_NAMES)[:8]

        async def drive(address, name, seed):
            client = await WireClient.open(address)
            try:
                info = await client.request(
                    "create_session",
                    workload=name,
                    seed=seed,
                    tier1_ratio=0.125,
                    workload_kwargs=dict(SMALL),
                )
                sid = info["session"]
                await client.request("subscribe", session=sid, max_queue=32)
                await client.request("step", session=sid, epochs=epochs)
                live = [await client.next_event() for _ in range(epochs)]
                # A late subscriber replays the whole history from disk.
                sub = await client.request(
                    "subscribe", session=sid, from_seq=0
                )
                assert sub["replayed"] == epochs
                assert sub["dropped"] == 0
                assert sub["live_seq"] == epochs
                replayed = [
                    await client.next_event() for _ in range(epochs)
                ]
                replayed = [
                    f for f in replayed
                    if f["subscription"] == sub["subscription"]
                ]
                await client.request("close_session", session=sid)
                return name, live, replayed
            finally:
                await client.close()

        async def main():
            server = await _start_server(
                max_sessions=8,
                step_workers=8,
                ledger_dir=str(tmp_path),
            )
            try:
                return await asyncio.gather(
                    *(
                        drive(server.address, name, seed)
                        for seed, name in enumerate(names)
                    )
                )
            finally:
                await server.drain()

        results = run_async(main())
        assert len(results) == 8
        for seed, (name, live, replayed) in enumerate(results):
            # Replay is exactly-once and in order, with the same
            # session-global seq numbers the live stream used.
            assert [f["seq"] for f in live] == list(range(len(live)))
            assert [f["seq"] for f in replayed] == [f["seq"] for f in live]
            assert [f["data"] for f in replayed] == [f["data"] for f in live]
            sim = TieredSimulator(
                make_workload(name, **SMALL),
                POLICIES["history"](),
                tier1_ratio=0.125,
                machine_config=MachineConfig.scaled(ibs_period=16),
                seed=seed,
            )
            sim.run(epochs=len(live))
            direct = [epoch_metrics_to_dict(m) for m in sim.result.epochs]
            assert [f["data"] for f in replayed] == direct

    def test_from_seq_mid_stream_splices_into_live_tail(self, tmp_path):
        async def main():
            server = await _start_server(ledger_dir=str(tmp_path))
            try:
                client = await WireClient.open(server.address)
                info = await client.request(
                    "create_session",
                    workload="gups",
                    workload_kwargs=dict(SMALL),
                )
                sid = info["session"]
                await client.request("step", session=sid, epochs=4)
                sub = await client.request(
                    "subscribe", session=sid, from_seq=2
                )
                assert sub["replayed"] == 2 and sub["live_seq"] == 4
                await client.request("step", session=sid, epochs=2)
                frames = [await client.next_event() for _ in range(4)]
                # 2 replayed (seq 2,3) then 2 live (seq 4,5): gap-free.
                assert [f["seq"] for f in frames] == [2, 3, 4, 5]
                assert [f["data"]["epoch"] for f in frames] == [2, 3, 4, 5]
                assert all(f["dropped"] == 0 for f in frames)
                await client.close()
            finally:
                await server.drain()

        run_async(main())

    def test_from_seq_without_ledger_is_bad_params(self):
        async def main():
            server = await _start_server()
            try:
                client = await WireClient.open(server.address)
                info = await client.request(
                    "create_session",
                    workload="gups",
                    workload_kwargs=dict(SMALL),
                )
                try:
                    await client.request(
                        "subscribe", session=info["session"], from_seq=0
                    )
                    raise AssertionError("from_seq should need a ledger")
                except ServiceError as exc:
                    assert exc.code == "bad_params"
                await client.close()
            finally:
                await server.drain()

        run_async(main())

    def test_from_seq_validation(self, tmp_path):
        async def main():
            server = await _start_server(ledger_dir=str(tmp_path))
            try:
                client = await WireClient.open(server.address)
                info = await client.request(
                    "create_session",
                    workload="gups",
                    workload_kwargs=dict(SMALL),
                )
                for bad in (-1, "zero", 1.5):
                    try:
                        await client.request(
                            "subscribe", session=info["session"], from_seq=bad
                        )
                        raise AssertionError(f"from_seq={bad!r} accepted")
                    except ServiceError as exc:
                        assert exc.code == "bad_params"
                await client.close()
            finally:
                await server.drain()

        run_async(main())


class TestStructuredGoodbyes:
    """Evictions and drains announce themselves before detaching."""

    def test_idle_eviction_pushes_evicted_frame(self, tmp_path):
        async def main():
            server = await _start_server(
                idle_ttl_s=0.05, reap_interval_s=0.05
            )
            try:
                client = await WireClient.open(server.address)
                info = await client.request(
                    "create_session",
                    workload="gups",
                    workload_kwargs=dict(SMALL),
                )
                sid = info["session"]
                await client.request("step", session=sid, epochs=1)
                await client.request("subscribe", session=sid)
                # The subscribe touched the session; now let it idle
                # out.  The goodbye is the subscriber's first frame
                # (it attached after the epoch), numbered *past* the
                # epoch frame — seq accounting survives the eviction.
                frame = await client.next_event()
                assert frame["event"] == "error"
                assert frame["data"]["code"] == "evicted"
                assert frame["seq"] == 1
                listed = await client.request("list_sessions")
                assert listed["sessions"] == []
                await client.close()
            finally:
                await server.drain()

        run_async(main())

    def test_drain_pushes_server_drain_frame(self):
        async def main():
            server = await _start_server()
            client = await WireClient.open(server.address)
            info = await client.request(
                "create_session",
                workload="gups",
                workload_kwargs=dict(SMALL),
            )
            await client.request("subscribe", session=info["session"])
            await server.drain()
            frame = await client.next_event()
            assert frame["event"] == "error"
            assert frame["data"]["code"] == "server_drain"
            assert info["session"] in frame["data"]["message"]

        run_async(main())


class TestBoundedClose:
    def test_close_session_epoch_window(self):
        async def main():
            server = await _start_server()
            try:
                client = await WireClient.open(server.address)
                info = await client.request(
                    "create_session",
                    workload="gups",
                    workload_kwargs=dict(SMALL),
                )
                sid = info["session"]
                await client.request("step", session=sid, epochs=6)
                closed = await client.request(
                    "close_session",
                    session=sid,
                    include_epochs=True,
                    epochs_from=2,
                    epochs_to=5,
                )
                result = closed["result"]
                assert result["epochs_from"] == 2
                assert result["epochs_to"] == 5
                assert [e["epoch"] for e in result["epochs"]] == [2, 3, 4]
                assert result["epochs_run"] == 6  # summary still global
                await client.close()
            finally:
                await server.drain()

        run_async(main())

    def test_close_session_window_validation(self):
        async def main():
            server = await _start_server()
            try:
                client = await WireClient.open(server.address)
                info = await client.request(
                    "create_session",
                    workload="gups",
                    workload_kwargs=dict(SMALL),
                )
                try:
                    await client.request(
                        "close_session",
                        session=info["session"],
                        epochs_from=-1,
                    )
                    raise AssertionError("negative epochs_from accepted")
                except ServiceError as exc:
                    assert exc.code == "bad_params"
                await client.close()
            finally:
                await server.drain()

        run_async(main())


class TestServerInfo:
    def test_ledger_visibility(self, tmp_path):
        async def main():
            server = await _start_server(ledger_dir=str(tmp_path))
            try:
                client = await WireClient.open(server.address)
                info = await client.request("server_info")
                assert info["ledger"]["root"] == str(tmp_path)
                assert info["ledger"]["fsync"] == "rotate"
                await client.close()
            finally:
                await server.drain()

        run_async(main())

    def test_no_ledger_reports_none(self):
        async def main():
            server = await _start_server()
            try:
                client = await WireClient.open(server.address)
                info = await client.request("server_info")
                assert info["ledger"] is None
                await client.close()
            finally:
                await server.drain()

        run_async(main())
